// Package repro is a from-scratch reproduction of "CLIC: CLient-Informed
// Caching for Storage Servers" (Liu, Aboulnaga, Salem, Li — FAST 2009).
//
// Start with README.md: it maps the package layout, the policy set, and
// the scaling substitutions made for artifacts we do not have (the
// instrumented DB2/MySQL I/O traces). Every table and figure of the
// paper's evaluation can be regenerated with cmd/experiments; the
// benchmarks in this package regenerate the same artifacts at reduced
// scale.
//
// Beyond the paper's trace replay, the reproduction also runs CLIC as an
// actual storage server (cmd/clicserve): clients stream page requests with
// hints over a length-prefixed binary TCP protocol and get hit/miss
// verdicts back. Each frame is a uvarint length plus a typed payload —
// hello (client name + hint vocabulary), intern (hints discovered
// mid-stream), batch (flags, delta-encoded page, hint index per request),
// results (hit bitmap + server outqueue depth), error. See internal/wire
// for the exact layout, internal/server and internal/netclient for the two
// endpoints, and README.md ("Running the cache as a server") for a
// walkthrough.
//
// CLIC's hint-statistics learning — window accounting, decay blending,
// the priority table, and the Space-Saving top-k bound — is a pluggable
// layer (internal/clicstats) behind the cache. The sharded concurrent
// front can learn partitioned (each shard privately, over a W/N window) or
// globally (all shards feed one shared lock-striped learner over the full
// window W, keeping one coherent priority model while page placement stays
// hash-partitioned). Select with core.Config.Stats, the -stats flag of
// clicsim/clicserve, and measure with the "learner" ablation of
// cmd/experiments; README.md ("Learner modes") discusses when each wins.
package repro
