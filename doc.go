// Package repro is a from-scratch reproduction of "CLIC: CLient-Informed
// Caching for Storage Servers" (Liu, Aboulnaga, Salem, Li — FAST 2009).
//
// The system layout, the per-experiment index, and the substitutions made
// for artifacts we do not have (the instrumented DB2/MySQL I/O traces) are
// documented in DESIGN.md; measured-vs-paper results for every table and
// figure live in EXPERIMENTS.md. Start with README.md.
package repro
