// Package repro is a from-scratch reproduction of "CLIC: CLient-Informed
// Caching for Storage Servers" (Liu, Aboulnaga, Salem, Li — FAST 2009).
//
// Start with README.md: it maps the package layout, the policy set, and
// the scaling substitutions made for artifacts we do not have (the
// instrumented DB2/MySQL I/O traces). Every table and figure of the
// paper's evaluation can be regenerated with cmd/experiments; the
// benchmarks in this package regenerate the same artifacts at reduced
// scale.
package repro
