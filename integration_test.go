// End-to-end integration tests: workload generation → trace file round
// trip → policy simulation → the paper's headline orderings. These cross
// every module boundary in one pass, at small scale.
package repro_test

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func generateSmall(t *testing.T, name string, requests int) *trace.Trace {
	t.Helper()
	p, err := workload.PresetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p.Requests = requests
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestEndToEndPipeline generates a trace, round-trips it through the binary
// codec, and verifies a simulation on the loaded copy matches one on the
// original exactly.
func TestEndToEndPipeline(t *testing.T) {
	tr := generateSmall(t, "DB2_C60", 150000)
	path := filepath.Join(t.TempDir(), "c60.trc")
	if err := trace.Save(path, tr); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"LRU", "CLIC"} {
		cfg := core.Config{Window: 20000}
		p1, err := sim.NewPolicy(pol, 6000, tr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := sim.NewPolicy(pol, 6000, loaded, cfg)
		if err != nil {
			t.Fatal(err)
		}
		r1 := sim.Run(p1, tr)
		r2 := sim.Run(p2, loaded)
		if r1.ReadHits != r2.ReadHits || r1.Reads != r2.Reads {
			t.Errorf("%s: original %d/%d vs loaded %d/%d", pol, r1.ReadHits, r1.Reads, r2.ReadHits, r2.Reads)
		}
	}
}

// TestHeadlineOrdering verifies the paper's central comparative claims on
// a small DB2_C60 trace: OPT bounds everything, and the hint-aware
// policies beat the hint-oblivious ones at the smallest cache size, where
// recency has the least to work with.
func TestHeadlineOrdering(t *testing.T) {
	tr := generateSmall(t, "DB2_C60", 300000)
	const cache = 6000
	hits := map[string]uint64{}
	for _, pol := range []string{"OPT", "LRU", "ARC", "TQ", "CLIC"} {
		p, err := sim.NewPolicy(pol, cache, tr, core.Config{Window: 30000})
		if err != nil {
			t.Fatal(err)
		}
		hits[pol] = sim.Run(p, tr).ReadHits
	}
	for _, pol := range []string{"LRU", "ARC", "TQ", "CLIC"} {
		if hits[pol] > hits["OPT"] {
			t.Errorf("%s (%d) beat OPT (%d)", pol, hits[pol], hits["OPT"])
		}
	}
	if hits["CLIC"] <= hits["ARC"] || hits["CLIC"] <= hits["LRU"] {
		t.Errorf("CLIC (%d) did not beat hint-oblivious policies (ARC %d, LRU %d)",
			hits["CLIC"], hits["ARC"], hits["LRU"])
	}
	if hits["TQ"] <= hits["LRU"] {
		t.Errorf("TQ (%d) did not beat LRU (%d)", hits["TQ"], hits["LRU"])
	}
}

// TestMultiClientSharedBeatsPartitioned reproduces Figure 11's overall
// conclusion at small scale.
func TestMultiClientSharedBeatsPartitioned(t *testing.T) {
	names := []string{"DB2_C60", "DB2_C300", "DB2_C540"}
	traces := make([]*trace.Trace, len(names))
	for i, n := range names {
		traces[i] = generateSmall(t, n, 120000)
	}
	merged, err := trace.Interleave("m", traces...)
	if err != nil {
		t.Fatal(err)
	}
	const shared = 9000
	cfg := core.Config{Window: 20000, TopK: 100, Capacity: sim.ClicCapacity(shared)}
	sharedRes := sim.Run(core.New(cfg), merged)

	var privHits, privReads uint64
	for _, tr := range traces {
		pcfg := core.Config{Window: 20000, TopK: 100, Capacity: sim.ClicCapacity(shared / 3)}
		r := sim.Run(core.New(pcfg), tr)
		privHits += r.ReadHits
		privReads += r.Reads
	}
	sharedRatio := sharedRes.HitRatio()
	privRatio := float64(privHits) / float64(privReads)
	if sharedRatio <= privRatio {
		t.Errorf("shared cache (%.3f) did not beat equal partitioning (%.3f)", sharedRatio, privRatio)
	}
}

// TestNoiseToleranceAtC60 reproduces Figure 10's C60 claim: mild
// degradation only, even with T=3 noise hint types.
func TestNoiseToleranceAtC60(t *testing.T) {
	base := generateSmall(t, "DB2_C60", 200000)
	run := func(tr *trace.Trace) float64 {
		cfg := core.Config{Window: 20000, TopK: 100, Capacity: sim.ClicCapacity(6000)}
		return sim.Run(core.New(cfg), tr).HitRatio()
	}
	clean := run(base)
	noisy3, err := trace.WithNoise(base, trace.DefaultNoise(3, 99))
	if err != nil {
		t.Fatal(err)
	}
	dirty := run(noisy3)
	if clean <= 0 {
		t.Fatal("degenerate baseline")
	}
	if dirty < clean*0.5 {
		t.Errorf("T=3 noise more than halved the hit ratio: %.3f -> %.3f", clean, dirty)
	}
}
