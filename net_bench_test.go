// Network-path benchmarks: the §6.4 three-client loopback replay at
// in-flight depth 1 (lock-step, one round trip per batch — the v2
// behaviour) versus the pipelined default, with batch round-trip latency
// quantiles. `go run ./cmd/benchrecord -suite net` records these into
// BENCH_net.json; CI replays the comparison as a smoke check.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netclient"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchNetReplay runs the standard serving workload through TCP loopback
// with the given replay options and reports throughput, hit ratio, and
// batch-RTT p50/p99 (microseconds) over just this benchmark's batches.
func benchNetReplay(b *testing.B, t *trace.Trace, opt netclient.ReplayOptions) {
	cfg := serveBenchConfig()
	cfg.Engine = core.EngineOwner
	var before, after metrics.HistSnapshot
	netclient.BatchRTT().Snapshot(&before)
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		b.StopTimer() // server construction and teardown are not the serve path
		srv := server.New(server.Config{Cache: cfg, Shards: serveBenchShards})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		r, err := netclient.Replay(srv.Addr().String(), t, opt)
		if err != nil {
			b.Fatal(err)
		}
		res = r
		b.StopTimer()
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.StopTimer()
	netclient.BatchRTT().Snapshot(&after)
	after.Sub(&before)
	reportServeMetrics(b, t, res)
	b.ReportMetric(after.Quantile(0.50)/1e3, "p50_us")
	b.ReportMetric(after.Quantile(0.99)/1e3, "p99_us")
}

// BenchmarkNetDepth1 is the lock-step baseline: one batch in flight, the
// client stalled for a full round trip per batch, fixed 512-request
// batches (the sweet spot, so the comparison isolates pipelining).
func BenchmarkNetDepth1(b *testing.B) {
	benchNetReplay(b, serveBenchTrace(b), netclient.ReplayOptions{Depth: 1, BatchSize: 512})
}

// BenchmarkNetPipelined is the saturating configuration: the default
// in-flight window with adaptive batch sizing, coalesced writes on both
// sides. The ratio over BenchmarkNetDepth1 is the pipelining win.
func BenchmarkNetPipelined(b *testing.B) {
	benchNetReplay(b, serveBenchTrace(b), netclient.ReplayOptions{})
}
