// Per-stage benchmarks for the streaming trace pipeline: generation
// (serial and parallel multi-client), v2 block encoding, scanning,
// streaming hint projection and noise dilution, and the streaming serve
// path. Every stage reports reqs/s (and bytes/s where bytes move), so
// `go run ./cmd/benchrecord -suite gen` records the full pipeline's
// throughput into BENCH_gen.json. Profile one stage with the usual flags:
//
//	go test -run ^$ -bench BenchmarkGenScan -cpuprofile cpu.out .
package repro_test

import (
	"bytes"
	"io"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hint"
	"repro/internal/hintproj"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

const genBenchReqs = 200000

// countSink absorbs a request stream without storing it — the measuring
// cup for generator and transform stages, so their cost is not polluted by
// trace materialisation.
type countSink struct {
	dict  *hint.Dict
	n     int
	reads uint64
}

func newCountSink() *countSink { return &countSink{dict: hint.NewDict()} }

func (s *countSink) HintDict() *hint.Dict { return s.dict }
func (s *countSink) Len() int             { return s.n }
func (s *countSink) AppendReq(r trace.Request) {
	s.n++
	if r.Op == trace.Read {
		s.reads++
	}
}

func genBenchPreset(b *testing.B) workload.Preset {
	b.Helper()
	p, err := workload.PresetByName("DB2_C60")
	if err != nil {
		b.Fatal(err)
	}
	p.Requests = genBenchReqs
	return p
}

func reportGenMetrics(b *testing.B, reqs int) {
	b.ReportMetric(float64(reqs)*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
}

// BenchmarkGenSerial is the single-client generation baseline: one dbsim
// client emitting straight into a counting sink.
func BenchmarkGenSerial(b *testing.B) {
	p := genBenchPreset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := newCountSink()
		if err := workload.GenerateTo(p, sink); err != nil {
			b.Fatal(err)
		}
		if sink.n != genBenchReqs {
			b.Fatalf("generated %d requests, want %d", sink.n, genBenchReqs)
		}
	}
	reportGenMetrics(b, genBenchReqs)
}

// BenchmarkGenParallel generates four clients concurrently through bounded
// pipes and merges them in canonical order — the parallel path whose output
// is proven bit-identical to the serial one by the workload golden tests.
func BenchmarkGenParallel(b *testing.B) {
	spec, err := workload.ParseSpec("DB2_C60*4:" + itoa(genBenchReqs))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := newCountSink()
		if err := spec.GenerateTo(sink); err != nil {
			b.Fatal(err)
		}
		if sink.n != genBenchReqs {
			b.Fatalf("generated %d requests, want %d", sink.n, genBenchReqs)
		}
	}
	reportGenMetrics(b, genBenchReqs)
}

// BenchmarkGenEncode prices the v2 block encoder alone: an in-RAM trace
// streamed through the parallel writer into io.Discard.
func BenchmarkGenEncode(b *testing.B) {
	t := genBenchTrace(b)
	var written uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := trace.NewWriter(io.Discard, t.Name, t.PageSize, t.Clients, trace.WriterOptions{})
		for id := 0; id < t.Dict.Len(); id++ {
			w.HintDict().InternKey(t.Dict.Key(hint.ID(id)))
		}
		for _, r := range t.Reqs {
			w.AppendReq(r)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		written = w.Bytes()
	}
	reportGenMetrics(b, t.Len())
	b.ReportMetric(float64(written)*float64(b.N)/b.Elapsed().Seconds(), "bytes/s")
}

// BenchmarkGenScan prices decoding: a v2 byte stream scanned end to end.
// The steady-state scan is allocation-free (pinned by the trace package's
// alloc test), so this is pure varint/branch work.
func BenchmarkGenScan(b *testing.B) {
	t := genBenchTrace(b)
	var buf bytes.Buffer
	if err := trace.WriteBinaryV2(&buf, t); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := trace.NewScanner(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for sc.Scan() {
			n++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if n != t.Len() {
			b.Fatalf("scanned %d requests, want %d", n, t.Len())
		}
	}
	reportGenMetrics(b, t.Len())
}

// BenchmarkGenProject prices the streaming hint projection stage.
func BenchmarkGenProject(b *testing.B) {
	t := genBenchTrace(b)
	types := []string{"objtype"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := newCountSink()
		it := t.Iter()
		if err := hintproj.ProjectStream(it, sink, types); err != nil {
			b.Fatal(err)
		}
		it.Close()
	}
	reportGenMetrics(b, t.Len())
}

// BenchmarkGenNoise prices the streaming noise dilution stage (§6.3's
// transform, three junk types).
func BenchmarkGenNoise(b *testing.B) {
	t := genBenchTrace(b)
	cfg := trace.DefaultNoise(3, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := newCountSink()
		it := t.Iter()
		if err := trace.StreamNoise(it, sink, cfg); err != nil {
			b.Fatal(err)
		}
		it.Close()
	}
	reportGenMetrics(b, t.Len())
}

// BenchmarkGenPipeline is the end-to-end generation path the CI smoke runs
// at 10M-request scale: parallel multi-client generation, canonical merge,
// parallel v2 block encoding — measured here into io.Discard so disk speed
// does not gate the number.
func BenchmarkGenPipeline(b *testing.B) {
	spec, err := workload.ParseSpec("DB2_C60*4:" + itoa(genBenchReqs))
	if err != nil {
		b.Fatal(err)
	}
	var written uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := trace.NewWriter(io.Discard, spec.Preset.Name, spec.Preset.PageSize,
			spec.ClientNames(), trace.WriterOptions{})
		if err := spec.GenerateTo(w); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		written = w.Bytes()
	}
	reportGenMetrics(b, genBenchReqs)
	b.ReportMetric(float64(written)*float64(b.N)/b.Elapsed().Seconds(), "bytes/s")
}

// BenchmarkServeIterator is the streaming twin of BenchmarkServeClients —
// the same interleaved trace and sharded front, but dispatched from an
// iterator through recycled batch buffers instead of pre-split slices.
// The acceptance bar: within a few percent of BenchmarkServeClients.
func BenchmarkServeIterator(b *testing.B) {
	t := serveBenchTrace(b)
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		front := core.NewSharded(serveBenchConfig(), serveBenchShards)
		it := t.Iter()
		r, err := engine.ServeIterator(front, it, 0)
		if err != nil {
			b.Fatal(err)
		}
		it.Close()
		res = r
	}
	reportServeMetrics(b, t, res)
}

var genTraceOnce struct {
	t *trace.Trace
}

// genBenchTrace generates the encode/scan/transform input once per binary.
func genBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	if genTraceOnce.t == nil {
		t, err := workload.Generate(genBenchPreset(b))
		if err != nil {
			b.Fatal(err)
		}
		genTraceOnce.t = t
	}
	return genTraceOnce.t
}

func itoa(n int) string { return strconv.Itoa(n) }
