// Noise hints: what happens when clients attach useless hints? This example
// reproduces the paper's §6.3 robustness experiment in miniature: synthetic
// Zipf-distributed hint types are appended to every request, diluting the
// informative hint sets, while CLIC's Space-Saving top-k filter tries to
// keep its limited tracking budget on the hints that matter.
//
//	go run ./examples/noisehints [-requests 300000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	requests := flag.Int("requests", 300000, "trace length")
	flag.Parse()

	p, err := workload.PresetByName("DB2_C60")
	if err != nil {
		fail(err)
	}
	p.Requests = *requests
	fmt.Fprintln(os.Stderr, "generating DB2_C60...")
	base, err := workload.Generate(p)
	if err != nil {
		fail(err)
	}

	const cache = 18000
	tbl := report.NewTable(
		fmt.Sprintf("CLIC (k=100) under noise hints — %s-page cache, D=10, Zipf z=1", report.Num(cache)),
		"T (noise types)", "distinct hint sets", "read hit ratio")
	for _, T := range []int{0, 1, 2, 3} {
		noisy, err := trace.WithNoise(base, trace.DefaultNoise(T, 42+int64(T)))
		if err != nil {
			fail(err)
		}
		cfg := core.Config{TopK: 100, Window: 50000, Capacity: sim.ClicCapacity(cache)}
		res := sim.Run(core.New(cfg), noisy)
		tbl.AddRow(report.Num(T), report.Num(noisy.Stats().DistinctHints), report.Pct(res.HitRatio()))
	}
	tbl.AddNote("each noise type multiplies the hint-set space by up to D=10; k stays fixed at 100 (§6.3)")
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "noisehints:", err)
	os.Exit(1)
}
