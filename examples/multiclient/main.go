// Multi-client caching: three database clients with different buffer sizes
// share one storage-server cache, as in the paper's §6.4 / Figure 11. CLIC
// receives each client's hints (namespaced, uncoordinated) and learns which
// client's requests are the best caching opportunities.
//
//	go run ./examples/multiclient [-requests 300000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	requests := flag.Int("requests", 300000, "per-client trace length")
	flag.Parse()

	names := []string{"DB2_C60", "DB2_C300", "DB2_C540"}
	traces := make([]*trace.Trace, len(names))
	for i, name := range names {
		p, err := workload.PresetByName(name)
		if err != nil {
			fail(err)
		}
		p.Requests = *requests
		fmt.Fprintf(os.Stderr, "generating %s...\n", name)
		traces[i], err = workload.Generate(p)
		if err != nil {
			fail(err)
		}
	}

	merged, err := trace.Interleave("THREE_CLIENTS", traces...)
	if err != nil {
		fail(err)
	}
	fmt.Printf("interleaved trace: %s requests from %d clients, %d hint sets\n\n",
		report.Num(merged.Len()), len(merged.Clients), merged.Stats().DistinctHints)

	const shared = 18000
	partition := shared / len(names)

	cfg := core.Config{TopK: 100, Window: 50000, Capacity: sim.ClicCapacity(shared)}
	sharedRes := sim.Run(core.New(cfg), merged)

	tbl := report.NewTable(
		fmt.Sprintf("CLIC with a %s-page shared cache vs %d × %s-page private caches",
			report.Num(shared), len(names), report.Num(partition)),
		"client", "shared cache hit ratio", "private cache hit ratio")
	var privReads, privHits uint64
	for i, t := range traces {
		pcfg := core.Config{TopK: 100, Window: 50000, Capacity: sim.ClicCapacity(partition)}
		priv := sim.Run(core.New(pcfg), t)
		privReads += priv.Reads
		privHits += priv.ReadHits
		tbl.AddRow(names[i],
			report.Pct(sharedRes.PerClient[i].HitRatio()),
			report.Pct(priv.HitRatio()))
	}
	overallPriv := 0.0
	if privReads > 0 {
		overallPriv = float64(privHits) / float64(privReads)
	}
	tbl.AddRow("overall", report.Pct(sharedRes.HitRatio()), report.Pct(overallPriv))
	tbl.AddNote("CLIC concentrates the shared cache on the client with the most residual locality (§6.4)")
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "multiclient:", err)
	os.Exit(1)
}
