// Multi-client caching: three database clients with different buffer sizes
// share one storage-server cache, as in the paper's §6.4 / Figure 11. CLIC
// receives each client's hints (namespaced, uncoordinated) and learns which
// client's requests are the best caching opportunities.
//
// Beyond the paper's serial round-robin replay, the example also serves the
// three clients concurrently — one goroutine each — against a sharded CLIC
// front (core.Sharded), the configuration a real storage server under
// simultaneous load would run.
//
//	go run ./examples/multiclient [-requests 300000] [-shards 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	requests := flag.Int("requests", 300000, "per-client trace length")
	shards := flag.Int("shards", 8, "shards for the concurrent CLIC front")
	flag.Parse()
	if *shards < 1 {
		fail(fmt.Errorf("-shards must be at least 1, got %d", *shards))
	}

	names := []string{"DB2_C60", "DB2_C300", "DB2_C540"}
	traces := make([]*trace.Trace, len(names))
	for i, name := range names {
		p, err := workload.PresetByName(name)
		if err != nil {
			fail(err)
		}
		p.Requests = *requests
		fmt.Fprintf(os.Stderr, "generating %s...\n", name)
		traces[i], err = workload.Generate(p)
		if err != nil {
			fail(err)
		}
	}

	merged, err := trace.Interleave("THREE_CLIENTS", traces...)
	if err != nil {
		fail(err)
	}
	fmt.Printf("interleaved trace: %s requests from %d clients, %d hint sets\n\n",
		report.Num(merged.Len()), len(merged.Clients), merged.Stats().DistinctHints)

	const shared = 18000
	partition := shared / len(names)
	mkClic := func(capacity int) func() policy.Policy {
		cfg := core.Config{TopK: 100, Window: 50000, Capacity: sim.ClicCapacity(capacity)}
		return func() policy.Policy { return core.New(cfg) }
	}

	// The serial shared-cache replay and the three private-cache runs are
	// four independent simulations; fan them across the cores.
	jobs := []engine.Job{{New: mkClic(shared), Trace: merged}}
	for _, t := range traces {
		jobs = append(jobs, engine.Job{New: mkClic(partition), Trace: t})
	}
	all := engine.Run(jobs, engine.Options{})
	sharedRes, private := all[0], all[1:]

	tbl := report.NewTable(
		fmt.Sprintf("CLIC with a %s-page shared cache vs %d × %s-page private caches",
			report.Num(shared), len(names), report.Num(partition)),
		"client", "shared cache hit ratio", "private cache hit ratio")
	var privReads, privHits uint64
	for i := range traces {
		privReads += private[i].Reads
		privHits += private[i].ReadHits
		tbl.AddRow(names[i],
			report.Pct(sharedRes.PerClient[i].HitRatio()),
			report.Pct(private[i].HitRatio()))
	}
	overallPriv := 0.0
	if privReads > 0 {
		overallPriv = float64(privHits) / float64(privReads)
	}
	tbl.AddRow("overall", report.Pct(sharedRes.HitRatio()), report.Pct(overallPriv))
	tbl.AddNote("CLIC concentrates the shared cache on the client with the most residual locality (§6.4)")
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}
	fmt.Println()

	// Concurrent serving: the same merged workload, but each client drives
	// the server from its own goroutine against one sharded CLIC front.
	front := core.NewSharded(core.Config{TopK: 100, Window: 50000, Capacity: sim.ClicCapacity(shared)}, *shards)
	conc := engine.ServeClients(front, merged)
	ctbl := report.NewTable(
		fmt.Sprintf("concurrent serving — %d clients driving one %s-page %s front",
			len(names), report.Num(shared), front.Name()),
		"client", "read hit ratio")
	for _, cs := range conc.PerClient {
		ctbl.AddRow(cs.Name, report.Pct(cs.HitRatio()))
	}
	ctbl.AddRow("overall", report.Pct(conc.HitRatio()))
	ctbl.AddNote("hash-partitioned shards serve the clients in parallel")
	ctbl.AddNote("unlike the round-robin replay above, the arrival order here is whatever the scheduler")
	ctbl.AddNote("produces and CLIC adapts to that order — on few cores expect markedly different hit ratios")
	if err := ctbl.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "multiclient:", err)
	os.Exit(1)
}
