// Network loopback serving: the storage-server scenario of the paper run
// over a real TCP connection per client. Three database clients with
// different buffer sizes replay their workloads against one CLIC cache
// server in the same process — first through engine.ServeClients (shared
// memory, one goroutine per client), then through internal/server and
// internal/netclient (the wire protocol, one connection per client).
//
// Per-client read counts are identical on both paths; aggregate hit ratios
// differ only through arrival order, which on both paths is whatever the
// scheduler produces.
//
//	go run ./examples/netloopback [-requests 200000] [-shards 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netclient"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	requests := flag.Int("requests", 200000, "per-client trace length")
	shards := flag.Int("shards", 8, "server shard count")
	flag.Parse()

	names := []string{"DB2_C60", "DB2_C300", "DB2_C540"}
	traces := make([]*trace.Trace, len(names))
	for i, name := range names {
		p, err := workload.PresetByName(name)
		if err != nil {
			fail(err)
		}
		p.Requests = *requests
		fmt.Fprintf(os.Stderr, "generating %s...\n", name)
		traces[i], err = workload.Generate(p)
		if err != nil {
			fail(err)
		}
	}
	merged, err := trace.Interleave("THREE_CLIENTS", traces...)
	if err != nil {
		fail(err)
	}

	const shared = 18000
	cfg := core.Config{TopK: 100, Window: 50000, Capacity: sim.ClicCapacity(shared)}

	// In-process path: one goroutine per client against a sharded front.
	inproc := engine.ServeClients(core.NewSharded(cfg, *shards), merged)

	// Network path: a real TCP server on loopback, one connection per
	// client, same cache configuration.
	srv := server.New(server.Config{Cache: cfg, Shards: *shards})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fail(err)
	}
	defer srv.Close()
	netres, err := netclient.Replay(srv.Addr().String(), merged, netclient.ReplayOptions{})
	if err != nil {
		fail(err)
	}

	tbl := report.NewTable(
		fmt.Sprintf("%d clients, one %s-page %s front — in-process vs loopback TCP",
			len(names), report.Num(shared), inproc.Policy),
		"client", "in-process hit ratio", "loopback hit ratio")
	for i := range netres.PerClient {
		tbl.AddRow(netres.PerClient[i].Name,
			report.Pct(inproc.PerClient[i].HitRatio()),
			report.Pct(netres.PerClient[i].HitRatio()))
	}
	tbl.AddRow("overall", report.Pct(inproc.HitRatio()), report.Pct(netres.HitRatio()))
	tbl.AddNote("both paths drive the same sharded CLIC configuration; they differ only in")
	tbl.AddNote("arrival order (scheduler for goroutines, TCP interleaving for connections)")
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}

	st := srv.Cache().Stats()
	fmt.Printf("\nserver accounting: %s requests, %s read hits, outqueue %s, %d windows\n",
		report.Num(st.Requests), report.Num(st.ReadHits), report.Num(st.OutqueueLen), st.Windows)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netloopback:", err)
	os.Exit(1)
}
