// Quickstart: build a tiny hinted I/O trace by hand, run CLIC over it, and
// watch it learn which hint sets identify good caching candidates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hint"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. Build a trace. Two clients-worth of behaviour in one stream:
	//    - "hot" requests: pages that are re-read quickly,
	//    - "cold" requests: pages written once and never touched again.
	// The hint sets are opaque to CLIC; their names are for us.
	t := trace.New("quickstart", 4096)
	hot := t.Dict.Intern(hint.Make("reqtype", "repl-write", "object", "stock"))
	cold := t.Dict.Intern(hint.Make("reqtype", "rec-write", "object", "log"))

	const hotPages = 64
	coldPage := uint64(1000)
	for round := 0; round < 400; round++ {
		for p := uint64(0); p < hotPages; p++ {
			// A write announces the page (a caching opportunity)…
			t.Append(p, trace.Write, hot)
		}
		for p := uint64(0); p < hotPages; p++ {
			// …and a quick re-read rewards caching it.
			t.Append(p, trace.Read, hot)
		}
		for i := 0; i < 32; i++ {
			// Cold pages are written and never read back.
			t.Append(coldPage, trace.Write, cold)
			coldPage++
		}
	}
	fmt.Printf("trace: %d requests, %d distinct pages, %d hint sets\n\n",
		t.Len(), t.Stats().DistinctPages, t.Stats().DistinctHints)

	// 2. Run CLIC with a cache big enough for the hot set only.
	clic := core.New(core.Config{Capacity: hotPages + 16, Window: 2000})
	res := sim.Run(clic, t)

	// 3. CLIC learns the hot hint set's priority and caches accordingly.
	fmt.Printf("CLIC read hit ratio: %s (over %d statistics windows)\n\n",
		report.Pct(res.HitRatio()), clic.Windows())
	tbl := report.NewTable("what CLIC learned (priorities in effect)",
		"hint set", "Pr(H)")
	for h, pr := range clic.Priorities() {
		tbl.AddRow(t.Dict.Key(h), report.Sci(pr))
	}
	tbl.AddNote("the replacement-write hint set earns a positive priority; the recovery-write one stays at zero")
	if err := tbl.Render(os.Stdout); err != nil {
		panic(err)
	}
}
