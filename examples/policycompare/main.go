// Policy comparison: generate a scaled DB2 TPC-C trace (the paper's
// DB2_C60) and compare every implemented replacement policy — the paper's
// five plus the related-work extras — across server cache sizes, printing a
// Figure-6-style table.
//
//	go run ./examples/policycompare [-requests 400000]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	requests := flag.Int("requests", 400000, "trace length (larger = closer to the paper)")
	flag.Parse()

	preset, err := workload.PresetByName("DB2_C60")
	if err != nil {
		fail(err)
	}
	preset.Requests = *requests
	fmt.Fprintf(os.Stderr, "generating %s (%d requests)...\n", preset.Name, preset.Requests)
	t, err := workload.Generate(preset)
	if err != nil {
		fail(err)
	}
	s := t.Stats()
	fmt.Printf("trace %s: %s requests (%s reads), %s pages, %d hint sets\n\n",
		t.Name, report.Num(s.Requests), report.Num(s.Reads),
		report.Num(s.DistinctPages), s.DistinctHints)

	sizes := []int{6000, 12000, 18000, 24000, 30000}
	cols := append([]string{"policy"}, func() []string {
		out := make([]string, len(sizes))
		for i, sz := range sizes {
			out[i] = report.Num(sz) + " pages"
		}
		return out
	}()...)
	tbl := report.NewTable("read hit ratio by policy and server cache size", cols...)
	clicCfg := core.Config{Window: 50000}
	for _, name := range sim.PolicyNames {
		row := []string{name}
		for _, size := range sizes {
			p, err := sim.NewPolicy(name, size, t, clicCfg)
			if err != nil {
				fail(err)
			}
			row = append(row, report.Pct(sim.Run(p, t).HitRatio()))
		}
		tbl.AddRow(row...)
	}
	tbl.AddNote("OPT is the off-line upper bound; CLIC is the paper's contribution")
	if err := tbl.Render(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "policycompare:", err)
	os.Exit(1)
}
