// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§6), one benchmark per artifact, at a reduced request scale
// so the whole suite completes in minutes:
//
//	go test -bench=. -benchmem
//
// Run `go run ./cmd/experiments` for the full-scale versions. Each bench
// logs its table (visible with -v) and reports the headline hit ratio as a
// custom metric, so regressions in the reproduced *shape* show up in plain
// benchmark diffs.
package repro_test

import (
	"io"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/netclient"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchScale reduces every trace's request count; 0.1 keeps each figure's
// bench in the tens of seconds.
const benchScale = 0.1

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
)

func env() *experiments.Env {
	envOnce.Do(func() {
		benchEnv = experiments.NewEnv("traces")
		benchEnv.Scale = benchScale
	})
	return benchEnv
}

func logTables(b *testing.B, tables []*report.Table, err error) {
	b.Helper()
	if err != nil {
		b.Fatal(err)
	}
	for _, t := range tables {
		b.Log("\n" + t.String())
	}
}

func one(t *report.Table, err error) ([]*report.Table, error) {
	if err != nil {
		return nil, err
	}
	return []*report.Table{t}, nil
}

// lastPct extracts the numeric value of the last cell of the last row,
// e.g. "63.6%" → 63.6, used as the bench's reported metric.
func lastPct(tables []*report.Table) float64 {
	if len(tables) == 0 {
		return 0
	}
	t := tables[len(tables)-1]
	if len(t.Rows) == 0 {
		return 0
	}
	row := t.Rows[len(t.Rows)-1]
	cell := strings.TrimSpace(strings.TrimSuffix(row[len(row)-1], "%"))
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

// BenchmarkFig2HintDomains regenerates the hint-type inventory (Figure 2).
func BenchmarkFig2HintDomains(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig2()
		logTables(b, tables, err)
	}
}

// BenchmarkFig3HintPriorities regenerates the hint-set priority analysis of
// Figure 3 (priority vs frequency for every hint set in DB2_C60).
func BenchmarkFig3HintPriorities(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().Fig3())
		logTables(b, tables, err)
	}
}

// BenchmarkFig5TraceTable regenerates the trace summary (Figure 5).
func BenchmarkFig5TraceTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().Fig5())
		logTables(b, tables, err)
	}
}

// BenchmarkFig6DB2TPCC regenerates the DB2 TPC-C policy comparison
// (Figure 6): OPT, LRU, ARC, TQ, CLIC across server cache sizes.
func BenchmarkFig6DB2TPCC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig6()
		logTables(b, tables, err)
		b.ReportMetric(lastPct(tables), "CLIC-hit-%")
	}
}

// BenchmarkFig7DB2TPCH regenerates the DB2 TPC-H comparison (Figure 7).
func BenchmarkFig7DB2TPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig7()
		logTables(b, tables, err)
		b.ReportMetric(lastPct(tables), "CLIC-hit-%")
	}
}

// BenchmarkFig8MySQLTPCH regenerates the MySQL TPC-H comparison (Figure 8).
func BenchmarkFig8MySQLTPCH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig8()
		logTables(b, tables, err)
		b.ReportMetric(lastPct(tables), "CLIC-hit-%")
	}
}

// BenchmarkFig9TopK regenerates the top-k hint filtering experiment
// (Figure 9).
func BenchmarkFig9TopK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := env().Fig9()
		logTables(b, tables, err)
	}
}

// BenchmarkFig10Noise regenerates the noise-hint robustness experiment
// (Figure 10).
func BenchmarkFig10Noise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().Fig10())
		logTables(b, tables, err)
	}
}

// BenchmarkFig11MultiClient regenerates the multi-client experiment
// (Figure 11): shared vs partitioned server cache.
func BenchmarkFig11MultiClient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().Fig11())
		logTables(b, tables, err)
		b.ReportMetric(lastPct(tables), "overall-hit-%")
	}
}

// BenchmarkAblationDecay sweeps CLIC's decay parameter r (Equation 3).
func BenchmarkAblationDecay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().AblationR())
		logTables(b, tables, err)
	}
}

// BenchmarkAblationWindow sweeps CLIC's statistics window W (§3.2).
func BenchmarkAblationWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().AblationW())
		logTables(b, tables, err)
	}
}

// BenchmarkAblationOutqueue sweeps the outqueue size (§3.1).
func BenchmarkAblationOutqueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().AblationOutqueue())
		logTables(b, tables, err)
	}
}

// BenchmarkPolicyZoo compares all ten implemented policies on DB2_C300.
func BenchmarkPolicyZoo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().PolicyZoo("DB2_C300", experiments.MidCacheSize))
		logTables(b, tables, err)
	}
}

// BenchmarkExtensionGeneralize runs the §8 future-work extension: the
// Figure-10 noise experiment with hint-set generalization in front of CLIC.
func BenchmarkExtensionGeneralize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables, err := one(env().ExtensionGeneralize())
		logTables(b, tables, err)
	}
}

// benchSweep runs the paper's five-policy comparison grid on DB2_C300:
// serially via sim.Sweep when serial is set, otherwise through the
// internal/engine worker pool at GOMAXPROCS. The two produce identical
// results (see internal/engine's golden test); comparing their ns/op is the
// multi-core speedup of the parallel experiment engine.
func benchSweep(b *testing.B, serial bool) {
	e := env()
	t, err := e.Trace("DB2_C300")
	if err != nil {
		b.Fatal(err)
	}
	sizes, err := e.ServerSizes("DB2_C300")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.Config{Window: 10000} // scaled like the figure benches
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var hits float64
		if serial {
			for _, pol := range experiments.PaperPolicies {
				sweep := sim.Sweep(sim.Constructor(pol, t, cfg), t, sizes)
				hits = sweep[len(sweep)-1].HitRatio()
			}
		} else {
			grid, err := engine.Grid(experiments.PaperPolicies, sizes, t, cfg, engine.Options{})
			if err != nil {
				b.Fatal(err)
			}
			sweep := grid[experiments.PaperPolicies[len(experiments.PaperPolicies)-1]]
			hits = sweep[len(sweep)-1].HitRatio()
		}
		b.ReportMetric(100*hits, "CLIC-hit-%")
	}
}

// BenchmarkSweepSerial is the serial baseline for the engine speedup.
func BenchmarkSweepSerial(b *testing.B) { benchSweep(b, true) }

// BenchmarkSweepParallel is the same grid fanned across all cores.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, false) }

var (
	serveOnce  sync.Once
	serveTrace *trace.Trace
)

// serveBenchTrace interleaves the three DB2 TPC-C client traces (the §6.4
// multi-client scenario) at bench scale, once per test binary.
func serveBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	serveOnce.Do(func() {
		e := env()
		parts := make([]*trace.Trace, 0, 3)
		for _, name := range []string{"DB2_C60", "DB2_C300", "DB2_C540"} {
			t, err := e.Trace(name)
			if err != nil {
				b.Fatal(err)
			}
			parts = append(parts, t)
		}
		merged, err := trace.Interleave("THREE_CLIENTS", parts...)
		if err != nil {
			b.Fatal(err)
		}
		serveTrace = merged
	})
	return serveTrace
}

const serveBenchShards = 8

func serveBenchConfig() core.Config {
	return core.Config{TopK: 100, Window: 50000, Capacity: sim.ClicCapacity(18000)}
}

// reportServeMetrics attaches throughput and hit ratio to a serving bench.
func reportServeMetrics(b *testing.B, t *trace.Trace, res sim.Result) {
	b.ReportMetric(float64(t.Len())*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
	b.ReportMetric(100*res.HitRatio(), "hit-%")
}

// BenchmarkServeClients is the in-process serving baseline: one goroutine
// per client drives a shared sharded CLIC front through direct calls.
func BenchmarkServeClients(b *testing.B) {
	t := serveBenchTrace(b)
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		res = engine.ServeClients(core.NewSharded(serveBenchConfig(), serveBenchShards), t)
	}
	reportServeMetrics(b, t, res)
}

// BenchmarkServeLoopback is the same workload through the network stack: a
// TCP server on loopback, one connection per client, batched wire frames.
// Comparing against BenchmarkServeClients prices the protocol overhead.
func BenchmarkServeLoopback(b *testing.B) {
	t := serveBenchTrace(b)
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		srv := server.New(server.Config{Cache: serveBenchConfig(), Shards: serveBenchShards})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		r, err := netclient.Replay(srv.Addr().String(), t, netclient.ReplayOptions{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportServeMetrics(b, t, res)
}

// benchShardedReplay prices the statistics-learning mode on the serial
// replay path: the same sharded front and trace, differing only in where
// hint statistics are learned (per-shard partitioned vs shared global).
func benchShardedReplay(b *testing.B, mode core.StatsMode) {
	t := serveBenchTrace(b)
	cfg := serveBenchConfig()
	cfg.Stats = mode
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		res = sim.Run(core.NewSharded(cfg, serveBenchShards), t)
	}
	reportServeMetrics(b, t, res)
}

// BenchmarkShardedPartitioned is the per-shard-learning baseline.
func BenchmarkShardedPartitioned(b *testing.B) { benchShardedReplay(b, core.StatsPartitioned) }

// BenchmarkShardedGlobal is the same replay with the shared lock-striped
// learner; the delta against BenchmarkShardedPartitioned is the cost of
// cache-wide statistics (stripe locks + atomic table loads) without
// concurrency.
func BenchmarkShardedGlobal(b *testing.B) { benchShardedReplay(b, core.StatsGlobal) }

// BenchmarkServeClientsGlobal is BenchmarkServeClients with the shared
// global learner: concurrent client goroutines now contend for the learner
// stripes as well as the shard mutexes, pricing shared learning in the
// serving regime it was built for.
func BenchmarkServeClientsGlobal(b *testing.B) {
	t := serveBenchTrace(b)
	cfg := serveBenchConfig()
	cfg.Stats = core.StatsGlobal
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		res = engine.ServeClients(core.NewSharded(cfg, serveBenchShards), t)
	}
	reportServeMetrics(b, t, res)
}

// BenchmarkShardedSingleOwner replays the serveBench trace through the
// single-owner engine: one producer streaming DefaultAccessBatch-sized
// batches, shard owners running the cache lock-free. The pair against
// BenchmarkShardedPartitioned (same trace, same cache, mutex engine,
// per-request replay) prices the engine: batching amortizes the per-request
// mutex and atomics away, and on multi-core hardware the shard owners also
// run genuinely in parallel with the producer's routing pass.
func BenchmarkShardedSingleOwner(b *testing.B) {
	t := serveBenchTrace(b)
	cfg := serveBenchConfig()
	cfg.Engine = core.EngineOwner
	hits := make([]bool, core.DefaultAccessBatch)
	b.ResetTimer()
	var st core.Stats
	for i := 0; i < b.N; i++ {
		s := core.NewSharded(cfg, serveBenchShards)
		p := s.NewProducer()
		reqs := t.Reqs
		for off := 0; off < len(reqs); off += core.DefaultAccessBatch {
			end := off + core.DefaultAccessBatch
			if end > len(reqs) {
				end = len(reqs)
			}
			p.AccessBatch(reqs[off:end], hits)
		}
		p.Close()
		st = s.Stats()
		s.Close()
	}
	b.ReportMetric(float64(t.Len())*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
	b.ReportMetric(100*st.HitRatio(), "hit-%")
}

// BenchmarkShardedInstrumented is BenchmarkShardedSingleOwner with the full
// observability stack attached: a batch-latency histogram observation per
// AccessBatch and a cache timeline (the clicserve/clicsim column set)
// ticking a CSV row to a discard sink every 64 batches. The delta against
// BenchmarkShardedSingleOwner is the whole price of instrumentation on the
// hot path — it should be noise, and the alloc tests in internal/core pin
// it at zero allocations.
func BenchmarkShardedInstrumented(b *testing.B) {
	t := serveBenchTrace(b)
	cfg := serveBenchConfig()
	cfg.Engine = core.EngineOwner
	hits := make([]bool, core.DefaultAccessBatch)
	b.ResetTimer()
	var st core.Stats
	for i := 0; i < b.N; i++ {
		s := core.NewSharded(cfg, serveBenchShards)
		var lat metrics.Histogram
		tl := metrics.NewTimeline(io.Discard)
		engine.CacheTimeline(tl, s, &lat)
		p := s.NewProducer()
		reqs := t.Reqs
		batches := 0
		for off := 0; off < len(reqs); off += core.DefaultAccessBatch {
			end := off + core.DefaultAccessBatch
			if end > len(reqs) {
				end = len(reqs)
			}
			start := time.Now()
			p.AccessBatch(reqs[off:end], hits)
			lat.Observe(uint64(time.Since(start)))
			if batches++; batches%64 == 0 {
				tl.Tick("interval")
			}
		}
		p.Close()
		tl.Tick("final")
		st = s.Stats()
		s.Close()
	}
	b.ReportMetric(float64(t.Len())*float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
	b.ReportMetric(100*st.HitRatio(), "hit-%")
}

// BenchmarkServeClientsOwner is BenchmarkServeClients on the single-owner
// engine: one goroutine per client, each with its own producer handle
// batching into the shard owners.
func BenchmarkServeClientsOwner(b *testing.B) {
	t := serveBenchTrace(b)
	cfg := serveBenchConfig()
	cfg.Engine = core.EngineOwner
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		s := core.NewSharded(cfg, serveBenchShards)
		res = engine.ServeClients(s, t)
		s.Close()
	}
	reportServeMetrics(b, t, res)
}

// BenchmarkServeLoopbackOwner is BenchmarkServeLoopback with the server's
// front on the single-owner engine: the full wire path — decode into reused
// buffers, remap, frame fan-out to the shard owners, encode from reused
// buffers — with no steady-state allocation.
func BenchmarkServeLoopbackOwner(b *testing.B) {
	t := serveBenchTrace(b)
	cfg := serveBenchConfig()
	cfg.Engine = core.EngineOwner
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		srv := server.New(server.Config{Cache: cfg, Shards: serveBenchShards})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		r, err := netclient.Replay(srv.Addr().String(), t, netclient.ReplayOptions{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportServeMetrics(b, t, res)
}

// BenchmarkClusterDirectLoopback is the cluster suite's baseline: the
// whole multi-client stream into ONE loopback server via netclient — the
// same path as BenchmarkServeLoopback, recorded under the cluster suite's
// name so BENCH_cluster.json carries its own baseline.
func BenchmarkClusterDirectLoopback(b *testing.B) {
	t := serveBenchTrace(b)
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		srv := server.New(server.Config{Cache: serveBenchConfig(), Shards: serveBenchShards})
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		r, err := netclient.Replay(srv.Addr().String(), t, netclient.ReplayOptions{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
		if err := srv.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportServeMetrics(b, t, res)
}

// BenchmarkClusterRouterLoopback is the same stream through a 3-node
// merging cluster: per-client routers split every batch by consistent
// hash across three loopback servers sharing the baseline's total
// capacity and window, with window summaries exchanged mid-flight. The
// delta against BenchmarkClusterDirectLoopback prices the router fan-out
// and the merged-learning exchange.
func BenchmarkClusterRouterLoopback(b *testing.B) {
	t := serveBenchTrace(b)
	b.ResetTimer()
	var res sim.Result
	for i := 0; i < b.N; i++ {
		h, err := cluster.StartHarness(cluster.HarnessConfig{
			Nodes:   3,
			Cache:   serveBenchConfig(),
			Shards:  serveBenchShards,
			Merging: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		r, err := h.Replay(t, cluster.ReplayOptions{})
		if err != nil {
			b.Fatal(err)
		}
		res = r
		if err := h.Close(); err != nil {
			b.Fatal(err)
		}
	}
	reportServeMetrics(b, t, res)
}
