package engine

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace generates a small seeded TPC-C trace once per test binary.
var testTrace = func() *trace.Trace {
	p, err := workload.PresetByName("DB2_C60")
	if err != nil {
		panic(err)
	}
	p.Requests = 30000
	t, err := workload.Generate(p)
	if err != nil {
		panic(err)
	}
	return t
}()

var testSizes = []int{500, 1000, 2000, 4000}

// TestSweepMatchesSerial is the determinism golden test: the parallel
// sweep's []sim.Result must be byte-identical (under a canonical encoding)
// to the serial sim.Sweep output, for every policy and any worker count.
func TestSweepMatchesSerial(t *testing.T) {
	clicCfg := core.Config{Window: 5000}
	for _, pol := range sim.PolicyNames {
		mk := sim.Constructor(pol, testTrace, clicCfg)
		want, err := json.Marshal(sim.Sweep(mk, testTrace, testSizes))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 3, 16} {
			got, err := json.Marshal(Sweep(mk, testTrace, testSizes, Options{Workers: workers}))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s (workers=%d): parallel sweep differs from serial sim.Sweep\n got: %s\nwant: %s",
					pol, workers, got, want)
			}
		}
	}
}

// TestGrid checks grouping, ordering, and name validation.
func TestGrid(t *testing.T) {
	policies := []string{"LRU", "CLIC", "FIFO"}
	res, err := Grid(policies, testSizes, testTrace, core.Config{Window: 5000}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(policies) {
		t.Fatalf("got %d policies, want %d", len(res), len(policies))
	}
	for _, pol := range policies {
		sweep := res[pol]
		if len(sweep) != len(testSizes) {
			t.Fatalf("%s: got %d results, want %d", pol, len(sweep), len(testSizes))
		}
		for i, r := range sweep {
			want := testSizes[i]
			if pol == "CLIC" {
				want = sim.ClicCapacity(want) // CLIC pays its tracking overhead in pages
			}
			if r.CacheSize != want {
				t.Errorf("%s[%d]: CacheSize = %d, want %d (order not preserved)", pol, i, r.CacheSize, want)
			}
			if r.Requests != uint64(testTrace.Len()) {
				t.Errorf("%s[%d]: Requests = %d, want %d", pol, i, r.Requests, testTrace.Len())
			}
		}
	}
	if _, err := Grid([]string{"LRU", "NOPE"}, testSizes, testTrace, core.Config{}, Options{}); err == nil {
		t.Error("Grid accepted an unknown policy name")
	}
}

// TestRunProgress checks the progress callback: serialized, monotone done
// counts reaching the total exactly once each.
func TestRunProgress(t *testing.T) {
	jobs := make([]Job, 9)
	for i := range jobs {
		jobs[i] = Job{New: func() policy.Policy { return core.New(core.Config{Capacity: 100}) }, Trace: testTrace}
	}
	seen := make(map[int]bool)
	last := 0
	res := Run(jobs, Options{Workers: 4, Progress: func(done, total int, r sim.Result) {
		if total != len(jobs) {
			t.Errorf("total = %d, want %d", total, len(jobs))
		}
		if done != last+1 {
			t.Errorf("done jumped from %d to %d", last, done)
		}
		last = done
		if seen[done] {
			t.Errorf("done=%d reported twice", done)
		}
		seen[done] = true
		if r.Policy == "" {
			t.Error("progress result missing policy name")
		}
	}})
	if last != len(jobs) || len(res) != len(jobs) {
		t.Errorf("completed %d of %d jobs, %d results", last, len(jobs), len(res))
	}
}

// TestRunEmpty ensures a zero-job run is a no-op, not a hang.
func TestRunEmpty(t *testing.T) {
	if got := Run(nil, Options{}); len(got) != 0 {
		t.Errorf("Run(nil) returned %d results", len(got))
	}
}

// TestServeClients drives a sharded CLIC front with concurrent clients and
// checks the merged accounting: per-client read counts are exact (they
// depend only on the trace) and the totals are consistent.
func TestServeClients(t *testing.T) {
	a := testTrace.Truncate(10000)
	a.Name = "A"
	b := testTrace.Truncate(10000)
	b.Name = "B"
	merged, err := trace.Interleave("AB", a, b)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSharded(core.Config{Capacity: 2000, Window: 2000}, 4)
	res := ServeClients(s, merged)

	if res.Requests != uint64(merged.Len()) {
		t.Errorf("Requests = %d, want %d", res.Requests, merged.Len())
	}
	if len(res.PerClient) != 2 {
		t.Fatalf("PerClient has %d entries, want 2", len(res.PerClient))
	}
	// Both clients replay the same requests, so their read counts agree and
	// sum to the total.
	if res.PerClient[0].Reads != res.PerClient[1].Reads {
		t.Errorf("client read counts differ: %d vs %d", res.PerClient[0].Reads, res.PerClient[1].Reads)
	}
	if res.Reads != res.PerClient[0].Reads+res.PerClient[1].Reads {
		t.Errorf("Reads = %d, want sum of per-client %d", res.Reads, res.PerClient[0].Reads+res.PerClient[1].Reads)
	}
	if res.ReadHits != res.PerClient[0].ReadHits+res.PerClient[1].ReadHits {
		t.Errorf("ReadHits = %d, inconsistent with per-client sum", res.ReadHits)
	}
	if res.ReadHits == 0 {
		t.Error("no hits at all; cache is not being exercised")
	}
	if res.Policy != "CLIC/4" {
		t.Errorf("Policy = %q, want CLIC/4", res.Policy)
	}
}

// TestServeClientsMoreClientsThanShards drives a 2-shard front from 6
// clients, so several client goroutines contend for each shard mutex; under
// -race (the CI configuration) this exercises the locking in the regime the
// network server runs in. Per-client read counts must match a serial replay
// of each client's subsequence exactly.
func TestServeClientsMoreClientsThanShards(t *testing.T) {
	parts := make([]*trace.Trace, 6)
	for i := range parts {
		parts[i] = testTrace.Truncate(6000)
		parts[i].Name = string(rune('A' + i))
	}
	merged, err := trace.Interleave("SIX", parts...)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSharded(core.Config{Capacity: 3000, Window: 3000}, 2)
	res := ServeClients(s, merged)

	if len(res.PerClient) != 6 {
		t.Fatalf("PerClient has %d entries, want 6", len(res.PerClient))
	}
	var reads, hits uint64
	for c, st := range res.PerClient {
		wantReads := uint64(0)
		for _, r := range merged.Reqs {
			if int(r.Client) == c && r.Op == trace.Read {
				wantReads++
			}
		}
		if st.Reads != wantReads {
			t.Errorf("client %d Reads = %d, want %d", c, st.Reads, wantReads)
		}
		reads += st.Reads
		hits += st.ReadHits
	}
	if res.Reads != reads || res.ReadHits != hits {
		t.Errorf("totals (%d, %d) disagree with per-client sums (%d, %d)", res.Reads, res.ReadHits, reads, hits)
	}
	if res.ReadHits == 0 {
		t.Error("no hits at all; cache is not being exercised")
	}
	// The Stats snapshot must agree with the per-client accounting.
	st := s.Stats()
	if st.Reads != res.Reads || st.ReadHits != res.ReadHits {
		t.Errorf("Stats (%d reads, %d hits) disagree with result (%d, %d)", st.Reads, st.ReadHits, res.Reads, res.ReadHits)
	}
	if st.Requests != uint64(merged.Len()) {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, merged.Len())
	}
}

// TestPartitionedGoldenPreRefactor pins CLIC's hit counts on the seeded
// test trace to the values measured before the statistics machinery moved
// out of core.Cache into internal/clicstats: the Partitioned learner must
// reproduce the pre-refactor behavior bit for bit, for plain and sharded
// caches, in exact, top-k and decaying configurations.
func TestPartitionedGoldenPreRefactor(t *testing.T) {
	cases := []struct {
		name   string
		cfg    core.Config
		shards int // 0 = plain Cache
		hits   uint64
	}{
		{"plain/exact", core.Config{Capacity: 2970, Window: 5000}, 0, 3718},
		{"plain/topk", core.Config{Capacity: 2970, Window: 5000, TopK: 20}, 0, 3718},
		{"plain/decay", core.Config{Capacity: 2970, Window: 5000, R: 0.5}, 0, 3718},
		{"sharded2/exact", core.Config{Capacity: 2970, Window: 5000}, 2, 3715},
		{"sharded2/topk", core.Config{Capacity: 2970, Window: 5000, TopK: 20}, 2, 3715},
		{"sharded2/decay", core.Config{Capacity: 2970, Window: 5000, R: 0.5}, 2, 3704},
		{"sharded4/exact", core.Config{Capacity: 2970, Window: 5000}, 4, 3618},
		{"sharded4/topk", core.Config{Capacity: 2970, Window: 5000, TopK: 20}, 4, 3618},
		{"sharded4/decay", core.Config{Capacity: 2970, Window: 5000, R: 0.5}, 4, 3644},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p policy.Policy
			if tc.shards == 0 {
				p = core.New(tc.cfg)
			} else {
				p = core.NewSharded(tc.cfg, tc.shards)
			}
			res := sim.Run(p, testTrace)
			if res.Reads != 20973 {
				t.Fatalf("Reads = %d, want 20973 (trace generation changed?)", res.Reads)
			}
			if res.ReadHits != tc.hits {
				t.Errorf("ReadHits = %d, want pre-refactor golden %d", res.ReadHits, tc.hits)
			}
		})
	}
}

// TestServeClientsGlobalSingleClient: with one client, ServeClients is a
// sequential replay, so the global and partitioned 1-shard fronts must
// match the plain serial simulation exactly — the engine-path equivalence
// test for the learner modes.
func TestServeClientsGlobalSingleClient(t *testing.T) {
	tr := testTrace.Truncate(15000)
	cfg := core.Config{Capacity: 2000, Window: 2000}
	want := sim.Run(core.New(cfg), tr)
	for _, mode := range []core.StatsMode{core.StatsPartitioned, core.StatsGlobal} {
		mcfg := cfg
		mcfg.Stats = mode
		got := ServeClients(core.NewSharded(mcfg, 1), tr)
		if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
			t.Errorf("%v: ServeClients %d/%d hits/reads, serial %d/%d",
				mode, got.ReadHits, got.Reads, want.ReadHits, want.Reads)
		}
		if got.ReadHits == 0 {
			t.Errorf("%v: no hits; test is vacuous", mode)
		}
	}
}

// TestServeClientsGlobalMoreClientsThanShards drives a 2-shard front with
// the shared global learner from 6 clients: client goroutines contend for
// both the shard mutexes and the learner's stripe locks, and rotations by
// one shard must propagate to the others' victim heaps. Under -race (the
// CI configuration) this is the engine-path stress test for global
// learning.
func TestServeClientsGlobalMoreClientsThanShards(t *testing.T) {
	parts := make([]*trace.Trace, 6)
	for i := range parts {
		parts[i] = testTrace.Truncate(6000)
		parts[i].Name = string(rune('A' + i))
	}
	merged, err := trace.Interleave("SIXG", parts...)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSharded(core.Config{Capacity: 3000, Window: 3000, Stats: core.StatsGlobal}, 2)
	res := ServeClients(s, merged)

	if len(res.PerClient) != 6 {
		t.Fatalf("PerClient has %d entries, want 6", len(res.PerClient))
	}
	var reads, hits uint64
	for c, st := range res.PerClient {
		wantReads := uint64(0)
		for _, r := range merged.Reqs {
			if int(r.Client) == c && r.Op == trace.Read {
				wantReads++
			}
		}
		if st.Reads != wantReads {
			t.Errorf("client %d Reads = %d, want %d", c, st.Reads, wantReads)
		}
		reads += st.Reads
		hits += st.ReadHits
	}
	if res.Reads != reads || res.ReadHits != hits {
		t.Errorf("totals (%d, %d) disagree with per-client sums (%d, %d)", res.Reads, res.ReadHits, reads, hits)
	}
	if res.ReadHits == 0 {
		t.Error("no hits at all; cache is not being exercised")
	}
	st := s.Stats()
	if st.Reads != res.Reads || st.ReadHits != res.ReadHits {
		t.Errorf("Stats (%d reads, %d hits) disagree with result (%d, %d)", st.Reads, st.ReadHits, res.Reads, res.ReadHits)
	}
	if st.Learner != "global" {
		t.Errorf("Stats.Learner = %q, want global", st.Learner)
	}
	if want := merged.Len() / 3000; st.Windows != want {
		t.Errorf("Windows = %d, want exactly %d (shared learner rotates cache-wide)", st.Windows, want)
	}
}

// TestServeClientsOwnerSingleClient is the engine-layer equivalence golden
// test for the single-owner engine: with one client, ServeClients is a
// serial batch replay through one producer, which in partitioned-statistics
// mode is bit-identical to the mutex engine's per-request replay — same
// reads, same hits, same structural state.
func TestServeClientsOwnerSingleClient(t *testing.T) {
	cfg := core.Config{Capacity: 3000, Window: 5000}
	const shards = 4

	mutex := core.NewSharded(cfg, shards)
	want := ServeClients(mutex, testTrace)

	ocfg := cfg
	ocfg.Engine = core.EngineOwner
	owner := core.NewSharded(ocfg, shards)
	defer owner.Close()
	got := ServeClients(owner, testTrace)

	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("owner %d/%d hits/reads, mutex %d/%d", got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all; test is vacuous")
	}
	if owner.Len() != mutex.Len() || owner.OutqueueLen() != mutex.OutqueueLen() {
		t.Errorf("structural drift: Len %d/%d, Outqueue %d/%d",
			owner.Len(), mutex.Len(), owner.OutqueueLen(), mutex.OutqueueLen())
	}
	os, ms := owner.Stats(), mutex.Stats()
	ms.Engine = os.Engine // the one field allowed to differ
	if os != ms {
		t.Errorf("Stats drift:\nowner %+v\nmutex %+v", os, ms)
	}
}

// TestServeClientsOwnerMoreClientsThanShards drives a 2-shard owner-engine
// front from 6 concurrent producers — the engine-layer -race stress for
// the SPSC rings and doorbells. Per-client read counts are exact; hit
// counts depend on interleaving but the accounting must balance.
func TestServeClientsOwnerMoreClientsThanShards(t *testing.T) {
	parts := make([]*trace.Trace, 6)
	for i := range parts {
		parts[i] = testTrace.Truncate(6000)
		parts[i].Name = string(rune('A' + i))
	}
	merged, err := trace.Interleave("SIX", parts...)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSharded(core.Config{Capacity: 3000, Window: 3000, Engine: core.EngineOwner}, 2)
	defer s.Close()
	res := ServeClients(s, merged)

	var reads, hits uint64
	for c, st := range res.PerClient {
		wantReads := uint64(0)
		for _, r := range merged.Reqs {
			if int(r.Client) == c && r.Op == trace.Read {
				wantReads++
			}
		}
		if st.Reads != wantReads {
			t.Errorf("client %d Reads = %d, want %d", c, st.Reads, wantReads)
		}
		reads += st.Reads
		hits += st.ReadHits
	}
	if res.Reads != reads || res.ReadHits != hits {
		t.Errorf("totals (%d, %d) disagree with per-client sums (%d, %d)", res.Reads, res.ReadHits, reads, hits)
	}
	if res.ReadHits == 0 {
		t.Error("no hits at all; cache is not being exercised")
	}
	st := s.Stats()
	if st.Reads != res.Reads || st.ReadHits != res.ReadHits {
		t.Errorf("Stats (%d reads, %d hits) disagree with result (%d, %d)", st.Reads, st.ReadHits, res.Reads, res.ReadHits)
	}
	if st.Requests != uint64(merged.Len()) {
		t.Errorf("Stats.Requests = %d, want %d", st.Requests, merged.Len())
	}
	if st.Engine != "owner" {
		t.Errorf("Stats.Engine = %q, want owner", st.Engine)
	}
}
