package engine

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hint"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenTrace is a pinned single-client trace. One client means one
// producer stream, and a per-producer stream is processed in order by both
// engines, so every cache counter the timeline samples is deterministic.
func goldenTrace() *trace.Trace {
	rng := rand.New(rand.NewSource(42))
	tr := trace.New("golden", 8192)
	tr.Clients = []string{"c0"}
	hints := []hint.ID{
		tr.Dict.Intern(hint.Make("reqtype", "seq")),
		tr.Dict.Intern(hint.Make("reqtype", "rand")),
		tr.Dict.Intern(hint.Make("reqtype", "repl-write", "table", "stock")),
	}
	tr.Reqs = make([]trace.Request, 20000)
	for i := range tr.Reqs {
		r := &tr.Reqs[i]
		r.Hint = hints[rng.Intn(len(hints))]
		if rng.Intn(4) == 0 {
			r.Op = trace.Write
		}
		if rng.Intn(2) == 0 {
			r.Page = uint64(rng.Intn(300))
		} else {
			r.Page = uint64(300 + rng.Intn(6000))
		}
	}
	return tr
}

// TestTimelineGolden replays the pinned trace through the owner engine
// with a fully scripted pair of clocks and requires the resulting timeline
// CSV to be bit-identical to the checked-in golden file. This pins the CSV
// format, the column math, the request-count mark positions, and the
// determinism of the single-producer owner path, all at once. Regenerate
// with: go test ./internal/engine -run TimelineGolden -update
func TestTimelineGolden(t *testing.T) {
	tr := goldenTrace()
	s := core.NewSharded(core.Config{Capacity: 512, Window: 2000, TopK: 64, Engine: core.EngineOwner}, 4)
	defer s.Close()

	var buf bytes.Buffer
	var lat metrics.Histogram
	tl := metrics.NewTimeline(&buf)
	// Timeline clock: 100ms per row, scripted.
	rows := 0
	tl.SetClock(func() time.Duration { rows++; return time.Duration(rows) * 100 * time.Millisecond })
	CacheTimeline(tl, s, &lat)

	// Batch clock: 1ms per call; each batch observes exactly one step. The
	// single client runs batches sequentially, so the calls never race.
	step := 0
	m := &ServeMetrics{
		BatchLatency:  &lat,
		Clock:         func() time.Duration { step++; return time.Duration(step) * time.Millisecond },
		EveryRequests: 4096,
		OnMark: func(total uint64) {
			if err := tl.Tick("interval"); err != nil {
				t.Fatal(err)
			}
		},
	}
	res := ServeClientsMetrics(s, tr, m)
	if err := tl.Tick("final"); err != nil {
		t.Fatal(err)
	}
	if res.Reads == 0 || res.ReadHits == 0 {
		t.Fatalf("degenerate replay: %+v", res)
	}
	st := s.Stats()
	if st.Requests != uint64(len(tr.Reqs)) {
		t.Fatalf("front served %d requests, want %d", st.Requests, len(tr.Reqs))
	}

	golden := filepath.Join("testdata", "timeline.golden.csv")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("timeline CSV differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}
