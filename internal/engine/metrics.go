package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ServeMetrics instruments a ServeClientsMetrics run. Every field is
// optional; the zero value (and a nil *ServeMetrics) turns everything off.
// A ServeMetrics is used by pointer and may be shared by the run's client
// goroutines.
type ServeMetrics struct {
	// BatchLatency, when non-nil, receives one observation per AccessBatch
	// call with its service time in the clock's units.
	BatchLatency *metrics.Histogram
	// Clock times batches for BatchLatency. Nil selects wall time
	// (time.Since in nanoseconds); tests inject scripted clocks so latency
	// observations — and the timeline columns derived from them — are
	// deterministic. The clock must be safe for concurrent use when the
	// trace has several clients.
	Clock func() time.Duration
	// EveryRequests, when positive, invokes OnMark each time the cumulative
	// request count crosses a multiple of it — a logical, trace-position
	// clock for timeline rows, independent of wall time. Crossings are
	// detected after each batch, so marks land on batch boundaries.
	EveryRequests int
	// OnMark is called on EveryRequests crossings with the total requests
	// served so far. Calls are serialized across client goroutines.
	OnMark func(total uint64)

	served atomic.Uint64
	markMu sync.Mutex
}

// mark accounts one completed batch and fires OnMark on boundary
// crossings. The crossing test and callback run under a mutex so marks
// are serialized and none is lost when client goroutines race.
func (m *ServeMetrics) mark(batch int) {
	if m.EveryRequests <= 0 {
		return
	}
	m.markMu.Lock()
	before := m.served.Load()
	after := before + uint64(batch)
	m.served.Store(after)
	if m.OnMark != nil && before/uint64(m.EveryRequests) != after/uint64(m.EveryRequests) {
		m.OnMark(after)
	}
	m.markMu.Unlock()
}

// serveStreamMetrics is serveStream with the instrumentation taps applied
// around each batch.
func serveStreamMetrics(s *core.Sharded, reqs []trace.Request, st *sim.ClientStat, m *ServeMetrics) {
	prod := s.NewProducer()
	defer prod.Close()
	clock := m.Clock
	if clock == nil && m.BatchLatency != nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	hits := make([]bool, core.DefaultAccessBatch)
	for off := 0; off < len(reqs); off += core.DefaultAccessBatch {
		end := off + core.DefaultAccessBatch
		if end > len(reqs) {
			end = len(reqs)
		}
		batch := reqs[off:end]
		if m.BatchLatency != nil {
			t0 := clock()
			prod.AccessBatch(batch, hits)
			m.BatchLatency.Observe(uint64(clock() - t0))
		} else {
			prod.AccessBatch(batch, hits)
		}
		for i := range batch {
			if batch[i].Op == trace.Read {
				st.Reads++
				if hits[i] {
					st.ReadHits++
				}
			}
		}
		m.mark(len(batch))
	}
}

// CacheTimeline registers the standard cache columns on a timeline: the
// per-interval request count and rate, hit ratio, eviction and rotation
// deltas, resident pages and outqueue depth, and (when batchLatency is
// non-nil) p50/p99 of the interval's batch service times. One call gives
// clicsim and clicserve the same timeline schema.
func CacheTimeline(tl *metrics.Timeline, s *core.Sharded, batchLatency *metrics.Histogram) {
	tl.Delta("requests", func() float64 { return float64(s.Stats().Requests) })
	tl.Rate("req_per_s", func() float64 { return float64(s.Stats().Requests) })
	tl.RatioOfDeltas("hit_ratio",
		func() float64 { return float64(s.Stats().ReadHits) },
		func() float64 { return float64(s.Stats().Reads) })
	tl.Delta("evictions", func() float64 { return float64(s.Stats().Evictions) })
	tl.Delta("rotations", func() float64 { return float64(s.Windows()) })
	tl.Value("len", func() float64 { return float64(s.Len()) })
	tl.Value("outq", func() float64 { return float64(s.OutqueueLen()) })
	if batchLatency != nil {
		tl.Quantile("batch_p50_ns", batchLatency, 0.50)
		tl.Quantile("batch_p99_ns", batchLatency, 0.99)
	}
}
