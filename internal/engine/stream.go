package engine

import (
	"sync"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ServeSource drives one shared cache from any request source — a trace
// file, an in-memory trace, or a live workload generator — without ever
// materialising the stream: the in-process counterpart of
// netclient.ReplaySource, with the same dispatcher/worker shape, so a
// 100M-request serve needs memory for a few batches per client, not for
// the trace. The cache must be safe for concurrent use (core.Sharded is).
func ServeSource(p policy.Policy, src trace.Source, batchSize int) (sim.Result, error) {
	it, err := src.Iter()
	if err != nil {
		return sim.Result{}, err
	}
	defer it.Close()
	return ServeIterator(p, it, batchSize)
}

// ServeIterator is ServeSource over an already-open iterator. Clients are
// discovered as the iteration proceeds, each getting its own goroutine and
// (for Sharded fronts) its own producer handle, fed in batches of batchSize
// (0 selects core.DefaultAccessBatch) through recycled buffers — the
// steady-state dispatch path allocates nothing.
//
// Unlike ServeClients it cannot run policy.Preparer prefix passes (OPT,
// ARC-style oracles need the whole request slice); use the in-RAM path for
// those policies. Like ServeClients, per-client read accounting is exact
// while the aggregate hit count depends on scheduling.
func ServeIterator(p policy.Policy, it trace.Iterator, batchSize int) (sim.Result, error) {
	if batchSize <= 0 {
		batchSize = core.DefaultAccessBatch
	}
	sharded, _ := p.(*core.Sharded)

	type worker struct {
		ch      chan []trace.Request
		free    chan []trace.Request
		pending []trace.Request
		st      *sim.ClientStat
	}
	var (
		workers []*worker
		stats   []*sim.ClientStat
		wg      sync.WaitGroup
		total   uint64
	)
	spawn := func(name string) *worker {
		w := &worker{
			ch:   make(chan []trace.Request, 4),
			free: make(chan []trace.Request, 8),
			st:   &sim.ClientStat{Name: name},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var prod *core.Producer
			if sharded != nil {
				prod = sharded.NewProducer()
				defer prod.Close()
			}
			hits := make([]bool, batchSize)
			for reqs := range w.ch {
				if prod != nil {
					prod.AccessBatch(reqs, hits)
					for i := range reqs {
						if reqs[i].Op == trace.Read {
							w.st.Reads++
							if hits[i] {
								w.st.ReadHits++
							}
						}
					}
				} else {
					for _, r := range reqs {
						hit := p.Access(r)
						if r.Op == trace.Read {
							w.st.Reads++
							if hit {
								w.st.ReadHits++
							}
						}
					}
				}
				select {
				case w.free <- reqs[:0]:
				default:
				}
			}
		}()
		return w
	}

	for it.Scan() {
		r := it.Request()
		c := int(r.Client)
		for c >= len(workers) {
			names := it.Clients()
			name := ""
			if len(workers) < len(names) {
				name = names[len(workers)]
			}
			w := spawn(name)
			workers = append(workers, w)
			stats = append(stats, w.st)
		}
		w := workers[c]
		w.pending = append(w.pending, r)
		if len(w.pending) >= batchSize {
			w.ch <- w.pending
			select {
			case w.pending = <-w.free:
			default:
				w.pending = nil
			}
		}
		total++
	}
	for _, w := range workers {
		if len(w.pending) > 0 {
			w.ch <- w.pending
		}
		close(w.ch)
	}
	wg.Wait()
	if err := it.Err(); err != nil {
		return sim.Result{}, err
	}

	res := sim.Result{
		Trace:     it.Name(),
		Policy:    p.Name(),
		CacheSize: p.Capacity(),
		Requests:  total,
		PerClient: make([]sim.ClientStat, len(stats)),
	}
	for i, st := range stats {
		res.PerClient[i] = *st
		res.Reads += st.Reads
		res.ReadHits += st.ReadHits
	}
	return res, nil
}
