package engine

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestServeIteratorSingleClient: with one client the streaming serve is a
// serial batch replay, so it must match ServeClients on a fresh identical
// cache exactly — reads and hits.
func TestServeIteratorSingleClient(t *testing.T) {
	tr := testTrace.Truncate(15000)
	cfg := core.Config{Capacity: 2000, Window: 2000}
	want := ServeClients(core.NewSharded(cfg, 4), tr)

	it := tr.Iter()
	defer it.Close()
	got, err := ServeIterator(core.NewSharded(cfg, 4), it, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("streaming %d/%d hits/reads, in-RAM %d/%d",
			got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.ReadHits == 0 {
		t.Error("no hits; test is vacuous")
	}
	if got.Requests != uint64(tr.Len()) || got.Trace != tr.Name {
		t.Errorf("Requests=%d Trace=%q, want %d %q", got.Requests, got.Trace, tr.Len(), tr.Name)
	}
}

// TestServeIteratorPlainPolicySingleClient: the non-Sharded per-request
// path, serial with one client, must reproduce sim.Run bit-exactly.
func TestServeIteratorPlainPolicySingleClient(t *testing.T) {
	tr := testTrace.Truncate(15000)
	cfg := core.Config{Capacity: 2000, Window: 2000}
	want := sim.Run(core.New(cfg), tr)

	it := tr.Iter()
	defer it.Close()
	got, err := ServeIterator(core.New(cfg), it, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("streaming %d/%d hits/reads, sim.Run %d/%d",
			got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
}

// TestServeIteratorMultiClient checks the concurrent accounting against
// ServeClients over the same interleaved trace: per-client read counts are
// exact (they depend only on the trace), names line up, and totals balance.
func TestServeIteratorMultiClient(t *testing.T) {
	parts := make([]*trace.Trace, 6)
	for i := range parts {
		parts[i] = testTrace.Truncate(6000)
		parts[i].Name = string(rune('A' + i))
	}
	merged, err := trace.Interleave("SIX", parts...)
	if err != nil {
		t.Fatal(err)
	}
	want := ServeClients(core.NewSharded(core.Config{Capacity: 3000, Window: 3000}, 2), merged)

	it := merged.Iter()
	defer it.Close()
	got, err := ServeIterator(core.NewSharded(core.Config{Capacity: 3000, Window: 3000}, 2), it, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.PerClient) != len(want.PerClient) {
		t.Fatalf("PerClient has %d entries, want %d", len(got.PerClient), len(want.PerClient))
	}
	var reads, hits uint64
	for c, st := range got.PerClient {
		if st.Name != want.PerClient[c].Name {
			t.Errorf("client %d named %q, want %q", c, st.Name, want.PerClient[c].Name)
		}
		if st.Reads != want.PerClient[c].Reads {
			t.Errorf("client %d: %d reads, want %d", c, st.Reads, want.PerClient[c].Reads)
		}
		reads += st.Reads
		hits += st.ReadHits
	}
	if got.Reads != reads || got.ReadHits != hits {
		t.Errorf("totals %d/%d do not fold per-client %d/%d", got.Reads, got.ReadHits, reads, hits)
	}
	if got.Requests != uint64(merged.Len()) {
		t.Errorf("Requests = %d, want %d", got.Requests, merged.Len())
	}
	if got.ReadHits == 0 {
		t.Error("no hits; test is vacuous")
	}
}

// TestServeSourceGenerator drives the cache straight from a live workload
// generator — the trace never exists in RAM or on disk.
func TestServeSourceGenerator(t *testing.T) {
	spec, err := workload.ParseSpec("DB2_C60*3:18000")
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSharded(core.Config{Capacity: 2000, Window: 2000}, 4)
	res, err := ServeSource(s, spec.Source(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 18000 {
		t.Errorf("Requests = %d, want 18000", res.Requests)
	}
	if len(res.PerClient) != 3 {
		t.Fatalf("PerClient has %d entries, want 3", len(res.PerClient))
	}
	for c, st := range res.PerClient {
		if st.Name != spec.ClientNames()[c] {
			t.Errorf("client %d named %q, want %q", c, st.Name, spec.ClientNames()[c])
		}
		if st.Reads == 0 {
			t.Errorf("client %d issued no reads", c)
		}
	}
	if res.ReadHits == 0 {
		t.Error("no hits; test is vacuous")
	}
}
