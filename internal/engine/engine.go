// Package engine runs experiment grids in parallel. Every cell of the
// evaluation grid — one policy instance driven over one trace — is an
// independent, deterministic simulation, so the full policy × cache-size ×
// trace product splits perfectly across cores (parallel splitting of
// independent subproblems). The runner fans cells out over a worker pool
// and returns results in submission order, byte-identical to the serial
// path: parallelism changes only the wall clock, never the numbers.
//
// The package also hosts ServeClients, the concurrent counterpart of
// sim.Run for concurrency-safe caches (core.Sharded): one goroutine per
// client drives a single shared cache, modelling a storage server under
// simultaneous load rather than a round-robin replay.
package engine

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Job is one grid cell: a policy (built fresh by New, inside the worker)
// simulated over a trace. The trace is shared read-only across cells.
type Job struct {
	New   func() policy.Policy
	Trace *trace.Trace
}

// Options configure a parallel run.
type Options struct {
	// Workers is the pool size; 0 or negative selects GOMAXPROCS. One
	// worker reproduces the serial path exactly (no goroutines).
	Workers int
	// Progress, when non-nil, is called after each cell completes with the
	// number of cells done so far, the total, and the cell's result. Calls
	// are serialized but arrive in completion order, not submission order.
	Progress func(done, total int, r sim.Result)
}

func (o Options) workers(jobs int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > jobs {
		w = jobs
	}
	return w
}

// Run executes every job and returns the results indexed like jobs —
// deterministic, serial-identical ordering regardless of worker count.
func Run(jobs []Job, opt Options) []sim.Result {
	results := make([]sim.Result, len(jobs))
	workers := opt.workers(len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			results[i] = sim.Run(j.New(), j.Trace)
			if opt.Progress != nil {
				opt.Progress(i+1, len(jobs), results[i])
			}
		}
		return results
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // serializes Progress and the done counter
		done int
		idx  = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := sim.Run(jobs[i].New(), jobs[i].Trace)
				results[i] = r
				if opt.Progress != nil {
					mu.Lock()
					done++
					opt.Progress(done, len(jobs), r)
					mu.Unlock()
				}
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Sweep is the parallel drop-in for sim.Sweep: it runs the constructor at
// each cache size over the trace and returns results in size order.
func Sweep(mk policy.Constructor, t *trace.Trace, sizes []int, opt Options) []sim.Result {
	jobs := make([]Job, len(sizes))
	for i, size := range sizes {
		size := size
		jobs[i] = Job{New: func() policy.Policy { return mk(size) }, Trace: t}
	}
	return Run(jobs, opt)
}

// Grid fans the full policy × cache-size product over one trace and returns
// the per-policy sweeps keyed by policy name, each in size order. Unknown
// policy names are rejected up front, before any worker starts.
func Grid(policies []string, sizes []int, t *trace.Trace, clicCfg core.Config, opt Options) (map[string][]sim.Result, error) {
	jobs := make([]Job, 0, len(policies)*len(sizes))
	for _, name := range policies {
		if _, err := sim.NewPolicy(name, 1, t, clicCfg); err != nil {
			return nil, err
		}
		mk := sim.Constructor(name, t, clicCfg)
		for _, size := range sizes {
			size := size
			jobs = append(jobs, Job{New: func() policy.Policy { return mk(size) }, Trace: t})
		}
	}
	flat := Run(jobs, opt)
	out := make(map[string][]sim.Result, len(policies))
	for pi, name := range policies {
		out[name] = flat[pi*len(sizes) : (pi+1)*len(sizes)]
	}
	return out, nil
}

// ServeClients drives one shared cache with one goroutine per client of an
// interleaved trace (trace.Interleave tags each request with its client).
// The cache must be safe for concurrent use — core.Sharded is; plain CLIC
// and the baseline policies are not. The front's statistics-learning mode
// (core.Config.Stats: per-shard partitioned or shared global) and engine
// (core.Config.Engine: mutex shards or single-owner shards) ride in with
// the constructed cache. A Sharded front is driven through per-client
// producer handles in batches of core.DefaultAccessBatch — the same shape
// the network path uses — so the owner engine's frame fan-out is exercised
// identically in-process and over TCP; other policies take the per-request
// path. Per-client read accounting is exact; the aggregate hit count
// depends on the actual interleaving of the clients' requests, so unlike
// Run it is not deterministic across calls.
func ServeClients(p policy.Policy, t *trace.Trace) sim.Result {
	return ServeClientsMetrics(p, t, nil)
}

// ServeClientsMetrics is ServeClients with instrumentation taps: when m is
// non-nil, each Sharded AccessBatch is timed into m.BatchLatency and
// logical marks fire per m.EveryRequests (see ServeMetrics). Only Sharded
// fronts take the batch path, so only they are observed — the same scope
// the network server instruments. A nil m is exactly ServeClients.
func ServeClientsMetrics(p policy.Policy, t *trace.Trace, m *ServeMetrics) sim.Result {
	if prep, ok := p.(policy.Preparer); ok {
		prep.Prepare(t.Reqs)
	}
	sharded, _ := p.(*core.Sharded)
	res, _ := ServeStreams(t, func(_ int, reqs []trace.Request, st *sim.ClientStat) error {
		if sharded != nil {
			if m != nil {
				serveStreamMetrics(sharded, reqs, st, m)
			} else {
				serveStream(sharded, reqs, st)
			}
			return nil
		}
		for _, r := range reqs {
			hit := p.Access(r)
			if r.Op == trace.Read {
				st.Reads++
				if hit {
					st.ReadHits++
				}
			}
		}
		return nil
	})
	res.Policy = p.Name()
	res.CacheSize = p.Capacity()
	return res
}

// ServeStreams is the per-client fan-out shared by every concurrent replay
// path: it splits an interleaved trace back into per-client request
// streams (the same split internal/netclient and internal/cluster apply,
// so in-process, loopback and cluster replays drive caches with identical
// per-client subsequences), runs serve in one goroutine per client against
// that client's own ClientStat, and folds the per-client read accounting
// into one sim.Result. The caller labels the result (Policy, CacheSize)
// afterwards — which server answered, and with what capacity, is only
// known to the serve function. If any serve call fails, the first error is
// returned and the partial result discarded.
func ServeStreams(t *trace.Trace, serve func(c int, reqs []trace.Request, st *sim.ClientStat) error) (sim.Result, error) {
	streams := t.SplitClients()
	res := sim.Result{
		Trace:     t.Name,
		Requests:  uint64(len(t.Reqs)),
		PerClient: make([]sim.ClientStat, len(t.Clients)),
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for c := range streams {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &res.PerClient[c] // each goroutine owns its own ClientStat
			st.Name = t.Clients[c]
			if err := serve(c, streams[c], st); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return sim.Result{}, firstErr
	}
	for _, st := range res.PerClient {
		res.Reads += st.Reads
		res.ReadHits += st.ReadHits
	}
	return res, nil
}

// serveStream replays one client's stream through its own producer handle
// in wire-sized batches.
func serveStream(s *core.Sharded, reqs []trace.Request, st *sim.ClientStat) {
	prod := s.NewProducer()
	defer prod.Close()
	hits := make([]bool, core.DefaultAccessBatch)
	for off := 0; off < len(reqs); off += core.DefaultAccessBatch {
		end := off + core.DefaultAccessBatch
		if end > len(reqs) {
			end = len(reqs)
		}
		batch := reqs[off:end]
		prod.AccessBatch(batch, hits)
		for i := range batch {
			if batch[i].Op == trace.Read {
				st.Reads++
				if hits[i] {
					st.ReadHits++
				}
			}
		}
	}
}
