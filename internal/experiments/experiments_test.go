package experiments

import (
	"strings"
	"testing"
)

// testEnv returns a tiny-scale environment (shared trace cache across
// subtests via the memory map; no disk cache to keep tests hermetic).
func testEnv() *Env {
	e := NewEnv("")
	e.Scale = 0.01 // presets floor at 10K requests
	e.Window = 2000
	return e
}

func TestTraceGenerationAndCaching(t *testing.T) {
	e := testEnv()
	a, err := e.Trace("DB2_C60")
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Trace("DB2_C60")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Trace call should return the memoised trace")
	}
	if a.Len() < 10000 {
		t.Errorf("scaled trace too short: %d", a.Len())
	}
	if _, err := e.Trace("NOPE"); err == nil {
		t.Error("unknown trace should error")
	}
}

func TestDiskCache(t *testing.T) {
	dir := t.TempDir()
	e := NewEnv(dir)
	e.Scale = 0.01
	if _, err := e.Trace("MY_H98"); err != nil {
		t.Fatal(err)
	}
	// A fresh env must load from disk (observable only via correctness).
	e2 := NewEnv(dir)
	e2.Scale = 0.01
	tr, err := e2.Trace("MY_H98")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig2(t *testing.T) {
	tables, err := testEnv().Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig2 returned %d tables", len(tables))
	}
	if !strings.Contains(tables[0].String(), "reqtype") {
		t.Error("Fig2 table missing the reqtype hint domain")
	}
}

func TestFig3(t *testing.T) {
	tbl, err := testEnv().Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("Fig3 produced no hint sets with non-zero priority")
	}
	if got := tbl.Columns[4]; got != "Pr(H)" {
		t.Errorf("column 5 = %q", got)
	}
}

func TestFig5(t *testing.T) {
	tbl, err := testEnv().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(TraceNames) {
		t.Fatalf("Fig5 has %d rows, want %d", len(tbl.Rows), len(TraceNames))
	}
	for i, name := range TraceNames {
		if tbl.Rows[i][0] != name {
			t.Errorf("row %d is %q", i, tbl.Rows[i][0])
		}
	}
}

func TestFig6Shape(t *testing.T) {
	e := testEnv()
	tables, err := e.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Fig6 returned %d tables", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) != 5 {
			t.Errorf("%s: %d rows, want 5 cache sizes", tbl.Title, len(tbl.Rows))
		}
		if len(tbl.Columns) != len(PaperPolicies)+1 {
			t.Errorf("%s: %d columns", tbl.Title, len(tbl.Columns))
		}
	}
}

func TestFig11Shape(t *testing.T) {
	tbl, err := testEnv().Fig11()
	if err != nil {
		t.Fatal(err)
	}
	// Three clients plus the overall row.
	if len(tbl.Rows) != 4 {
		t.Fatalf("Fig11 rows = %d", len(tbl.Rows))
	}
	if tbl.Rows[3][0] != "overall" {
		t.Errorf("last row = %q", tbl.Rows[3][0])
	}
}

func TestFig9And10SmallScale(t *testing.T) {
	e := testEnv()
	t9, err := e.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(t9) != 2 {
		t.Fatalf("Fig9 tables = %d", len(t9))
	}
	if got := len(t9[0].Rows); got != len(Fig9Ks)+1 {
		t.Errorf("Fig9 rows = %d, want %d (k values + all)", got, len(Fig9Ks)+1)
	}
	t10, err := e.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(t10.Rows); got != len(Fig10Ts) {
		t.Errorf("Fig10 rows = %d", got)
	}
}

func TestAblationsAndZoo(t *testing.T) {
	e := testEnv()
	for name, fn := range map[string]func() (interface{ String() string }, error){
		"r": func() (interface{ String() string }, error) { return e.AblationR() },
		"w": func() (interface{ String() string }, error) { return e.AblationW() },
		"o": func() (interface{ String() string }, error) { return e.AblationOutqueue() },
	} {
		tbl, err := fn()
		if err != nil {
			t.Fatalf("ablation %s: %v", name, err)
		}
		if tbl.String() == "" {
			t.Errorf("ablation %s produced empty output", name)
		}
	}
	zoo, err := e.PolicyZoo("MY_H98", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(zoo.Rows) != 10 {
		t.Errorf("zoo rows = %d, want 10 policies", len(zoo.Rows))
	}
}

func TestAblationLearner(t *testing.T) {
	tbl, err := testEnv().AblationLearner()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 { // 4 shard counts × 2 cache sizes
		t.Fatalf("got %d rows, want 8", len(tbl.Rows))
	}
	// The 1-shard rows are the built-in equivalence check: with a single
	// shard both modes learn from the identical request stream over the
	// identical window, so their hit ratios must agree exactly.
	for _, row := range tbl.Rows {
		if row[0] != "1" {
			continue
		}
		if row[2] != row[3] {
			t.Errorf("1-shard row disagrees across modes: partitioned %s, global %s", row[2], row[3])
		}
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "partitioned_hits=") && strings.Contains(n, "global_hits=") {
			found = true
			if strings.Contains(n, "partitioned_hits=0 ") || strings.HasSuffix(n, "global_hits=0") {
				t.Errorf("smoke totals report zero hits: %q", n)
			}
		}
	}
	if !found {
		t.Error("smoke totals note missing")
	}
}

func TestPrefetch(t *testing.T) {
	e := testEnv()
	if err := e.Prefetch([]string{"DB2_C60", "MY_H98", "DB2_C60"}, 2); err != nil {
		t.Fatal(err)
	}
	pre, err := e.Trace("DB2_C60")
	if err != nil {
		t.Fatal(err)
	}
	// Trace must return the prefetched object, not regenerate.
	again, err := e.Trace("DB2_C60")
	if err != nil {
		t.Fatal(err)
	}
	if pre != again {
		t.Error("Trace after Prefetch did not return the memoised trace")
	}
	// Prefetched traces must be bit-identical to on-demand generation.
	fresh := testEnv()
	want, err := fresh.Trace("MY_H98")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Trace("MY_H98")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), want.Len())
	}
	for i := range want.Reqs {
		if got.Reqs[i] != want.Reqs[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	if err := e.Prefetch([]string{"NOPE"}, 2); err == nil {
		t.Error("unknown trace name should error")
	}
}
