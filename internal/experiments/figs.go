package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// PaperPolicies are the five policies of the paper's comparison (§6).
var PaperPolicies = []string{"OPT", "LRU", "ARC", "TQ", "CLIC"}

// Fig2 regenerates the hint-type inventory (Figure 2): the hint types and
// value-domain cardinalities observed in the DB2 TPC-C, DB2 TPC-H, and
// MySQL TPC-H traces.
func (e *Env) Fig2() ([]*report.Table, error) {
	var out []*report.Table
	for _, name := range Fig2TraceNames {
		t, err := e.Trace(name)
		if err != nil {
			return nil, err
		}
		tbl := report.NewTable(
			fmt.Sprintf("Figure 2 — hint types in the %s trace", name),
			"hint type", "domain cardinality", "values (sample)")
		domains := t.Dict.Domains()
		types := make([]string, 0, len(domains))
		for typ := range domains {
			types = append(types, typ)
		}
		sort.Strings(types)
		for _, typ := range types {
			vals := domains[typ]
			sample := ""
			for i, v := range vals {
				if i == 4 {
					sample += ", …"
					break
				}
				if i > 0 {
					sample += ", "
				}
				sample += v
			}
			tbl.AddRow(typ, report.Num(len(vals)), sample)
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Fig3 regenerates the hint-set priority scatter (Figure 3): for the
// DB2_C60 trace, each distinct hint set's whole-trace frequency N(H) and
// caching priority Pr(H). The analysis uses CLIC's own statistics machinery
// with a window longer than the trace, so the numbers are exactly the
// beneﬁt/cost estimates of Equations 1–2.
func (e *Env) Fig3() (*report.Table, error) {
	t, err := e.Trace(Fig3TraceName)
	if err != nil {
		return nil, err
	}
	c := core.New(core.Config{
		Capacity: sim.ClicCapacity(MidCacheSize),
		Window:   t.Len() + 1, // never rotate: whole-trace statistics
	})
	for _, r := range t.Reqs {
		c.Access(r)
	}
	stats := c.WindowStats()
	tbl := report.NewTable(
		"Figure 3 — hint set priorities for the DB2_C60 trace (all hint sets with non-zero priority)",
		"hint set", "N(H)", "Nr(H)", "D(H)", "Pr(H)")
	shown := 0
	for _, hs := range stats {
		if hs.Pr == 0 {
			continue
		}
		shown++
		tbl.AddRow(t.Dict.Key(hs.Hint), report.Num(hs.N), report.Num(hs.Nr),
			fmt.Sprintf("%.0f", hs.D), report.Sci(hs.Pr))
	}
	tbl.AddNote("%d of %d observed hint sets have non-zero priority", shown, len(stats))
	return tbl, nil
}

// Fig5 regenerates the trace summary table (Figure 5).
func (e *Env) Fig5() (*report.Table, error) {
	tbl := report.NewTable("Figure 5 — I/O request traces",
		"trace", "kind", "DB size (pages)", "client buffer (pages)",
		"requests", "reads", "writes", "distinct hint sets", "distinct pages")
	for _, name := range TraceNames {
		p, err := e.Preset(name)
		if err != nil {
			return nil, err
		}
		t, err := e.Trace(name)
		if err != nil {
			return nil, err
		}
		s := t.Stats()
		tbl.AddRow(name, string(p.Kind), report.Num(p.DBPages), report.Num(p.ClientBuffer),
			report.Num(s.Requests), report.Num(s.Reads), report.Num(s.Writes),
			report.Num(s.DistinctHints), report.Num(s.DistinctPages))
	}
	tbl.AddNote("sizes are the paper's divided by 10; ratios (client buffer / DB, server cache / DB) match the paper")
	return tbl, nil
}

// TraceNames lists the eight Figure-5 traces in paper order.
var TraceNames = []string{
	"DB2_C60", "DB2_C300", "DB2_C540",
	"DB2_H80", "DB2_H400", "DB2_H720",
	"MY_H65", "MY_H98",
}

// Trace dependencies of the experiment functions, declared once here and
// used both by the functions themselves and by cmd/experiments' parallel
// prefetch (Env.Prefetch) — a single source, so the prefetch list cannot
// drift from what the experiments actually replay.
var (
	// TPCCTraceNames/TPCHTraceNames/MySQLTraceNames are the per-workload
	// trace families (Figures 6/7/8; the TPC-C family also drives Figures
	// 10–11 and the §8 extension).
	TPCCTraceNames  = []string{"DB2_C60", "DB2_C300", "DB2_C540"}
	TPCHTraceNames  = []string{"DB2_H80", "DB2_H400", "DB2_H720"}
	MySQLTraceNames = []string{"MY_H65", "MY_H98"}
	// Fig2TraceNames is one trace per hint vocabulary (Figure 2).
	Fig2TraceNames = []string{"DB2_C60", "DB2_H80", "MY_H65"}
	// Fig3TraceName is the hint-priority analysis trace (Figure 3).
	Fig3TraceName = "DB2_C60"
	// AblationTraceName drives the r/W/outqueue ablations and the policy
	// zoo; LearnerTraceName drives the partitioned-vs-global ablation.
	AblationTraceName = "DB2_C300"
	LearnerTraceName  = "DB2_C60"
)

// hitRatioSweep produces one hit-ratio-vs-cache-size table for a trace.
func (e *Env) hitRatioSweep(figure, traceName string, policies []string) (*report.Table, error) {
	t, err := e.Trace(traceName)
	if err != nil {
		return nil, err
	}
	sizes, err := e.ServerSizes(traceName)
	if err != nil {
		return nil, err
	}
	cols := append([]string{"server cache (pages)"}, policies...)
	tbl := report.NewTable(fmt.Sprintf("%s — read hit ratio, %s trace", figure, traceName), cols...)
	// Fan the whole policy × size grid across the engine's worker pool; the
	// results are identical to per-policy serial sweeps.
	results, err := engine.Grid(policies, sizes, t, e.clicConfig(), e.opts())
	if err != nil {
		return nil, err
	}
	for i, size := range sizes {
		row := []string{report.Num(size)}
		for _, pol := range policies {
			row = append(row, report.Pct(results[pol][i].HitRatio()))
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// Fig6 regenerates the DB2 TPC-C comparison (Figure 6): read hit ratio as a
// function of server cache size for OPT, LRU, ARC, TQ and CLIC.
func (e *Env) Fig6() ([]*report.Table, error) {
	return e.sweepFamily("Figure 6", TPCCTraceNames)
}

// Fig7 regenerates the DB2 TPC-H comparison (Figure 7).
func (e *Env) Fig7() ([]*report.Table, error) {
	return e.sweepFamily("Figure 7", TPCHTraceNames)
}

// Fig8 regenerates the MySQL TPC-H comparison (Figure 8).
func (e *Env) Fig8() ([]*report.Table, error) {
	return e.sweepFamily("Figure 8", MySQLTraceNames)
}

func (e *Env) sweepFamily(figure string, names []string) ([]*report.Table, error) {
	var out []*report.Table
	for _, name := range names {
		tbl, err := e.hitRatioSweep(figure, name, PaperPolicies)
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// Fig9Ks is the top-k sweep of Figure 9.
var Fig9Ks = []int{1, 2, 5, 10, 20, 50, 100}

// Fig9 regenerates the top-k hint filtering experiment (Figure 9): CLIC's
// read hit ratio as a function of k, on the DB2 TPC-C and TPC-H traces with
// a mid-size (paper: 180K-page; scaled: 18K-page) server cache. The final
// row tracks all hint sets exactly (k = ∞).
func (e *Env) Fig9() ([]*report.Table, error) {
	var out []*report.Table
	for _, family := range [][]string{TPCCTraceNames, TPCHTraceNames} {
		cols := append([]string{"k"}, family...)
		tbl := report.NewTable(
			fmt.Sprintf("Figure 9 — top-k hint filtering, %d-page server cache", MidCacheSize), cols...)
		rows := make(map[int][]string, len(Fig9Ks)+1)
		for _, k := range Fig9Ks {
			rows[k] = []string{report.Num(k)}
		}
		rows[0] = []string{"all"}
		ks := append(append([]int{}, Fig9Ks...), 0)
		var jobs []engine.Job
		var jobKs []int
		for _, name := range family {
			t, err := e.Trace(name)
			if err != nil {
				return nil, err
			}
			for _, k := range ks {
				cfg := e.clicConfig()
				cfg.TopK = k
				cfg.Capacity = sim.ClicCapacity(MidCacheSize)
				jobs = append(jobs, engine.Job{New: clicJob(cfg), Trace: t})
				jobKs = append(jobKs, k)
			}
		}
		for i, res := range engine.Run(jobs, e.opts()) {
			rows[jobKs[i]] = append(rows[jobKs[i]], report.Pct(res.HitRatio()))
		}
		for _, k := range Fig9Ks {
			tbl.AddRow(rows[k]...)
		}
		tbl.AddRow(rows[0]...)
		out = append(out, tbl)
	}
	return out, nil
}

// Fig10Ts is the noise sweep of Figure 10.
var Fig10Ts = []int{0, 1, 2, 3}

// Fig10 regenerates the noise-hint experiment (Figure 10): T synthetic hint
// types (domain 10, Zipf z=1) are appended to every request of the DB2
// TPC-C traces; CLIC tracks k=100 hint sets in an 18K-page cache.
func (e *Env) Fig10() (*report.Table, error) {
	names := TPCCTraceNames
	cols := append([]string{"T (noise hint types)"}, names...)
	tbl := report.NewTable(
		fmt.Sprintf("Figure 10 — effect of noise hint types, k=100, %d-page server cache", MidCacheSize), cols...)
	rows := make([][]string, len(Fig10Ts))
	for i, T := range Fig10Ts {
		rows[i] = []string{report.Num(T)}
	}
	// One engine batch per base trace: the noisy copies duplicate the full
	// request array, so keeping only one trace's T-sweep alive at a time
	// bounds peak memory while the sweep itself still runs in parallel.
	for _, name := range names {
		base, err := e.Trace(name)
		if err != nil {
			return nil, err
		}
		jobs := make([]engine.Job, len(Fig10Ts))
		for i, T := range Fig10Ts {
			noisy, err := trace.WithNoise(base, trace.DefaultNoise(T, 7700+int64(T)))
			if err != nil {
				return nil, err
			}
			cfg := e.clicConfig()
			cfg.TopK = 100
			cfg.Capacity = sim.ClicCapacity(MidCacheSize)
			jobs[i] = engine.Job{New: clicJob(cfg), Trace: noisy}
		}
		for i, res := range engine.Run(jobs, e.opts()) {
			rows[i] = append(rows[i], report.Pct(res.HitRatio()))
		}
	}
	for _, row := range rows {
		tbl.AddRow(row...)
	}
	return tbl, nil
}

// clicJob adapts a CLIC configuration to an engine job constructor.
func clicJob(cfg core.Config) func() policy.Policy {
	return func() policy.Policy { return core.New(cfg) }
}

// Fig11 regenerates the multi-client experiment (Figure 11): the DB2 TPC-C
// traces interleaved round-robin share one 18K-page CLIC cache (k=100);
// the comparison gives each full-length trace a private 6K-page CLIC cache
// (an equal partition of the shared cache).
func (e *Env) Fig11() (*report.Table, error) {
	names := TPCCTraceNames
	traces := make([]*trace.Trace, len(names))
	for i, name := range names {
		t, err := e.Trace(name)
		if err != nil {
			return nil, err
		}
		traces[i] = t
	}
	merged, err := trace.Interleave("TPCC_3CLIENTS", traces...)
	if err != nil {
		return nil, err
	}
	cfg := e.clicConfig()
	cfg.TopK = 100
	cfg.Capacity = sim.ClicCapacity(MidCacheSize)
	partition := MidCacheSize / len(names)
	// The shared-cache run and the three private-cache runs are four
	// independent cells; fan them out together.
	jobs := []engine.Job{{New: clicJob(cfg), Trace: merged}}
	for _, t := range traces {
		pcfg := e.clicConfig()
		pcfg.TopK = 100
		pcfg.Capacity = sim.ClicCapacity(partition)
		jobs = append(jobs, engine.Job{New: clicJob(pcfg), Trace: t})
	}
	all := engine.Run(jobs, e.opts())
	shared, private := all[0], all[1:]

	tbl := report.NewTable(
		fmt.Sprintf("Figure 11 — three clients: %d-page shared cache vs 3 × %d-page private caches",
			MidCacheSize, partition),
		"trace", fmt.Sprintf("%d-page shared cache", MidCacheSize),
		fmt.Sprintf("%d-page private cache", partition))
	var privReads, privHits uint64
	for i, name := range names {
		tbl.AddRow(name, report.Pct(shared.PerClient[i].HitRatio()), report.Pct(private[i].HitRatio()))
		privReads += private[i].Reads
		privHits += private[i].ReadHits
	}
	overallPriv := 0.0
	if privReads > 0 {
		overallPriv = float64(privHits) / float64(privReads)
	}
	tbl.AddRow("overall", report.Pct(shared.HitRatio()), report.Pct(overallPriv))
	tbl.AddNote("shared-cache column: per-client hit ratios within the interleaved trace (truncated to the shortest input)")
	return tbl, nil
}
