package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestAblationCluster is the golden test of the distributed-CLIC ablation:
// the serial router replay is deterministic end to end (single driver,
// canonical summary-exchange order), so the aggregate hit counts of all
// three configurations are pinned exactly. A change to placement, the
// exchange, or the merged learner that moves any number shows up here.
func TestAblationCluster(t *testing.T) {
	tbl, err := testEnv().AblationCluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 { // small and large cache
		t.Fatalf("got %d rows, want 2", len(tbl.Rows))
	}
	const golden = "smoke totals: cluster_single_hits=5021 cluster_unmerged_hits=4972 cluster_merged_hits=5014"
	var totals string
	for _, n := range tbl.Notes {
		if strings.Contains(n, "smoke totals:") {
			totals = n
		}
	}
	if totals != golden {
		t.Errorf("golden totals drifted:\n  got  %q\n  want %q", totals, golden)
	}

	// The headline property: with the same total resources, merging holds
	// the 3-node cluster within a point of the single node and beats the
	// unmerged cluster.
	var unmergedGap, mergedGap float64
	found := false
	for _, n := range tbl.Notes {
		if _, err := fmt.Sscanf(n, "gaps vs single node: unmerged_gap_pts=%f merged_gap_pts=%f", &unmergedGap, &mergedGap); err == nil {
			found = true
		}
	}
	if !found {
		t.Fatal("gap note missing")
	}
	if mergedGap > 1.0 {
		t.Errorf("merged cluster %.2f points behind the single node, want within 1", mergedGap)
	}
	if mergedGap > unmergedGap {
		t.Errorf("merging made the cluster worse: merged gap %.2f, unmerged gap %.2f", mergedGap, unmergedGap)
	}
}
