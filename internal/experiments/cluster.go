package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ClusterNodes is the cluster size of the distributed-CLIC ablation.
const ClusterNodes = 3

// ClusterTraceName drives the cluster ablation: the same high-locality
// TPC-C workload as the learner ablation, so fragmenting the hint
// statistics shows up clearly.
var ClusterTraceName = LearnerTraceName

// AblationCluster measures what distributing CLIC across ClusterNodes
// cache nodes costs, and how much cross-node merged learning buys back.
// Three configurations replay the same trace with the same TOTAL
// resources (capacity, outqueue and statistics window all split across the
// nodes):
//
//   - single: one node — the baseline every distributed run is judged
//     against;
//   - cluster unmerged: consistent-hash placement over ClusterNodes nodes,
//     each learning hint priorities only from its own ~1/N slice of the
//     stream (partitioned statistics);
//   - cluster merged: the same placement, but nodes exchange window
//     summaries and fold them into their rotations (core.StatsMerged), so
//     each node's priorities approximate cluster-wide learning.
//
// Every replay goes through the real router over loopback TCP in the
// deterministic serial mode, so the numbers are golden-testable. The gap
// notes report aggregate hit-ratio differences versus the single node in
// percentage points: merging should hold the cluster within a point of
// the single node while unmerged learning falls further behind.
func (e *Env) AblationCluster() (*report.Table, error) {
	t, err := e.Trace(ClusterTraceName)
	if err != nil {
		return nil, err
	}
	sizes, err := e.ServerSizes(ClusterTraceName)
	if err != nil {
		return nil, err
	}
	// Ends of the sweep, like the learner ablation: the small cache
	// stresses victim selection, the large one admission.
	sizes = []int{sizes[0], sizes[len(sizes)-1]}

	tbl := report.NewTable(
		fmt.Sprintf("Ablation — single node vs %d-node cluster, %s", ClusterNodes, ClusterTraceName),
		"cache (pages)", "single hit ratio", "cluster unmerged", "cluster merged")

	type mode struct {
		nodes   int
		merging bool
	}
	modes := []mode{{1, false}, {ClusterNodes, false}, {ClusterNodes, true}}
	totals := make([]sim.Result, len(modes))
	for _, size := range sizes {
		row := []string{report.Num(size)}
		for mi, m := range modes {
			cfg := e.clicConfig()
			cfg.Capacity = sim.ClicCapacity(size)
			res, err := e.runCluster(t, cfg, m.nodes, m.merging)
			if err != nil {
				return nil, err
			}
			totals[mi].Reads += res.Reads
			totals[mi].ReadHits += res.ReadHits
			row = append(row, report.Pct(res.HitRatio()))
		}
		tbl.AddRow(row...)
	}
	tbl.AddNote("same total capacity/outqueue/window in every column, split across nodes by consistent-hash placement; serial replay through the router over loopback TCP")
	// Machine-greppable totals and gaps: the CI smoke run asserts the
	// merged cluster stays within a point of the single node.
	tbl.AddNote("smoke totals: cluster_single_hits=%d cluster_unmerged_hits=%d cluster_merged_hits=%d",
		totals[0].ReadHits, totals[1].ReadHits, totals[2].ReadHits)
	tbl.AddNote("gaps vs single node: unmerged_gap_pts=%.2f merged_gap_pts=%.2f",
		100*(totals[0].HitRatio()-totals[1].HitRatio()),
		100*(totals[0].HitRatio()-totals[2].HitRatio()))
	return tbl, nil
}

// runCluster boots an in-process cluster and replays the trace through it
// deterministically.
func (e *Env) runCluster(t *trace.Trace, cfg core.Config, nodes int, merging bool) (sim.Result, error) {
	h, err := cluster.StartHarness(cluster.HarnessConfig{
		Nodes:   nodes,
		Cache:   cfg,
		Merging: merging,
	})
	if err != nil {
		return sim.Result{}, err
	}
	defer h.Close()
	return h.ReplaySerial(t, cluster.ReplayOptions{})
}
