// Package experiments defines one regeneration function per table and
// figure in the paper's evaluation (§6). The cmd/experiments binary and the
// repository benchmarks both call into this package, so the figures printed
// by either are produced by identical code.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Env generates and caches workload traces for the experiment functions.
type Env struct {
	// Dir, when non-empty, persists generated traces as binary files so
	// repeated runs skip regeneration.
	Dir string
	// Scale multiplies every preset's request count; 1 (or 0) reproduces
	// the full scaled experiments, smaller values give quick runs for
	// benchmarks and tests.
	Scale float64
	// Window and R override CLIC's parameters when non-zero (paper: the
	// full-size W = 1e6 with r = 1; our scaled default is W = 1e5).
	Window int
	R      float64
	// Workers is the engine pool size for each experiment's grid of
	// independent simulations; 0 selects GOMAXPROCS, 1 forces the serial
	// path. Results are identical at any setting.
	Workers int
	// Progress, when non-nil, observes each completed grid cell (forwarded
	// to engine.Options.Progress).
	Progress func(done, total int, r sim.Result)

	traces map[string]*trace.Trace
}

// opts returns the engine options for this environment.
func (e *Env) opts() engine.Options {
	return engine.Options{Workers: e.Workers, Progress: e.Progress}
}

// NewEnv returns an experiment environment caching traces under dir
// ("" disables the disk cache).
func NewEnv(dir string) *Env {
	return &Env{Dir: dir, Scale: 1, traces: make(map[string]*trace.Trace)}
}

func (e *Env) scale() float64 {
	if e.Scale <= 0 {
		return 1
	}
	return e.Scale
}

// clicConfig returns the CLIC configuration template for comparison runs.
func (e *Env) clicConfig() core.Config {
	cfg := core.Config{Window: e.Window, R: e.R}
	if cfg.Window == 0 && e.scale() < 1 {
		// Keep several windows per trace even in quick runs.
		cfg.Window = int(float64(core.DefaultWindow) * e.scale())
		if cfg.Window < 1000 {
			cfg.Window = 1000
		}
	}
	return cfg
}

// Preset returns the named workload preset with the environment's scale
// applied to its request budget.
func (e *Env) Preset(name string) (workload.Preset, error) {
	p, err := workload.PresetByName(name)
	if err != nil {
		return p, err
	}
	if s := e.scale(); s != 1 {
		p.Requests = int(float64(p.Requests) * s)
		if p.Requests < 10000 {
			p.Requests = 10000
		}
	}
	return p, nil
}

// Prefetch generates every named trace that is not already in memory or
// on disk, fanning the generations across a worker pool (workers <= 0
// selects GOMAXPROCS). Trace generation is an inherently serial simulation
// per trace, so this cross-trace fan-out is what removes generation as the
// serial bottleneck of a multi-figure experiment run; the traces are
// bit-identical to on-demand Trace calls (workload.GenerateAll's equality
// guarantee). Duplicate and already-cached names are skipped.
func (e *Env) Prefetch(names []string, workers int) error {
	seen := make(map[string]bool, len(names))
	var missing []workload.Preset
	for _, name := range names {
		if seen[name] || e.traces[name] != nil {
			continue
		}
		seen[name] = true
		p, err := e.Preset(name)
		if err != nil {
			return err
		}
		if t, ok := e.loadCached(p); ok {
			e.traces[name] = t
			continue
		}
		missing = append(missing, p)
	}
	if len(missing) == 0 {
		return nil
	}
	traces, err := workload.GenerateAll(missing, workers)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for i, p := range missing {
		e.storeCached(p, traces[i])
		e.traces[p.Name] = traces[i]
	}
	return nil
}

// loadCached loads a preset's trace from the disk cache if it is present
// and matches the preset's request budget.
func (e *Env) loadCached(p workload.Preset) (*trace.Trace, bool) {
	if e.Dir == "" {
		return nil, false
	}
	t, err := trace.Load(e.cachePath(p))
	if err != nil || t.Len() != p.Requests {
		return nil, false
	}
	return t, true
}

// storeCached writes a generated trace to the disk cache. Failures are
// non-fatal: regeneration always works.
func (e *Env) storeCached(p workload.Preset, t *trace.Trace) {
	if e.Dir == "" {
		return
	}
	if err := os.MkdirAll(e.Dir, 0o755); err == nil {
		_ = trace.Save(e.cachePath(p), t)
	}
}

// Trace returns the named trace, generating (and disk-caching) on demand.
func (e *Env) Trace(name string) (*trace.Trace, error) {
	if t, ok := e.traces[name]; ok {
		return t, nil
	}
	p, err := e.Preset(name)
	if err != nil {
		return nil, err
	}
	if t, ok := e.loadCached(p); ok {
		e.traces[name] = t
		return t, nil
	}
	t, err := workload.Generate(p)
	if err != nil {
		return nil, fmt.Errorf("experiments: generating %s: %w", name, err)
	}
	e.storeCached(p, t)
	e.traces[name] = t
	return t, nil
}

func (e *Env) cachePath(p workload.Preset) string {
	return filepath.Join(e.Dir, fmt.Sprintf("%s-%d.trc", p.Name, p.Requests))
}

// ServerSizes returns the server-cache sweep for a trace, scaled like the
// request budget so quick runs keep cache-to-trace proportions sensible.
func (e *Env) ServerSizes(name string) ([]int, error) {
	p, err := workload.PresetByName(name)
	if err != nil {
		return nil, err
	}
	return p.ServerSizes, nil
}

// MidCacheSize returns the scaled equivalent of the paper's 180K-page
// server cache used by Figures 9–11 (18K pages at our 10× scale-down).
const MidCacheSize = 18000
