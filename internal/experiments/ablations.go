package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hintproj"
	"repro/internal/policy"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Ablation experiments beyond the paper's figures: they vary CLIC's own
// parameters (r, W, Noutq) and compare the full policy zoo, quantifying how
// much each mechanism contributes. Like the figures, each sweep fans its
// independent runs across the engine's worker pool.

// AblationR varies the exponential decay parameter r (Equation 3) on the
// DB2_C300 trace with a mid-size cache. The paper fixes r = 1; this table
// shows how much smoothing older windows helps or hurts.
func (e *Env) AblationR() (*report.Table, error) {
	t, err := e.Trace(AblationTraceName)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Ablation — decay parameter r, DB2_C300, %d-page cache", MidCacheSize),
		"r", "read hit ratio")
	rs := []float64{1.0, 0.75, 0.5, 0.25, 0.1}
	jobs := make([]engine.Job, len(rs))
	for i, r := range rs {
		cfg := e.clicConfig()
		cfg.R = r
		cfg.Capacity = sim.ClicCapacity(MidCacheSize)
		jobs[i] = engine.Job{New: clicJob(cfg), Trace: t}
	}
	for i, res := range engine.Run(jobs, e.opts()) {
		tbl.AddRow(fmt.Sprintf("%.2f", rs[i]), report.Pct(res.HitRatio()))
	}
	return tbl, nil
}

// AblationW varies the statistics window W (§3.2) on the DB2_C300 trace.
func (e *Env) AblationW() (*report.Table, error) {
	t, err := e.Trace(AblationTraceName)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Ablation — window size W, DB2_C300, %d-page cache", MidCacheSize),
		"W (requests)", "windows completed", "read hit ratio")
	ws := []int{12500, 25000, 50000, 100000, 200000, 400000}
	jobs := make([]engine.Job, len(ws))
	for i, w := range ws {
		cfg := e.clicConfig()
		cfg.Window = w
		cfg.Capacity = sim.ClicCapacity(MidCacheSize)
		jobs[i] = engine.Job{New: clicJob(cfg), Trace: t}
	}
	for i, res := range engine.Run(jobs, e.opts()) {
		// A window completes every W requests, so the count follows from
		// the trace length.
		tbl.AddRow(report.Num(ws[i]), report.Num(t.Len()/ws[i]), report.Pct(res.HitRatio()))
	}
	return tbl, nil
}

// AblationOutqueue varies the outqueue size (§3.1) as a multiple of the
// cache capacity; the paper uses 5×. NoOutqueue disables re-reference
// tracking for uncached pages entirely, showing why the outqueue exists.
func (e *Env) AblationOutqueue() (*report.Table, error) {
	t, err := e.Trace(AblationTraceName)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Ablation — outqueue size, DB2_C300, %d-page cache", MidCacheSize),
		"Noutq (per cache page)", "read hit ratio")
	mults := []int{-1, 1, 2, 5, 10}
	labels := make([]string, len(mults))
	jobs := make([]engine.Job, len(mults))
	for i, mult := range mults {
		cfg := e.clicConfig()
		cfg.Capacity = sim.ClicCapacity(MidCacheSize)
		labels[i] = report.Num(mult)
		if mult < 0 {
			cfg.Noutq = core.NoOutqueue
			labels[i] = "0 (disabled)"
		} else {
			cfg.Noutq = mult * cfg.Capacity
		}
		jobs[i] = engine.Job{New: clicJob(cfg), Trace: t}
	}
	for i, res := range engine.Run(jobs, e.opts()) {
		tbl.AddRow(labels[i], report.Pct(res.HitRatio()))
	}
	return tbl, nil
}

// AblationLearnerShards is the shard-count sweep of the learner ablation.
var AblationLearnerShards = []int{1, 2, 4, 8}

// AblationLearner evaluates the sharded front's statistics-learning modes
// (core.Config.Stats): fully-partitioned learning (each shard learns from
// its own ~1/N request substream over a W/N window) against the shared
// global learner (all shards feed one lock-striped learner over the full
// window W), across shard counts × cache sizes on the DB2_C60 trace (the
// workload with the most second-tier locality, so mode differences are
// visible even in scaled-down runs). At 1
// shard the modes learn identical priorities, so that row doubles as an
// equivalence check; at higher shard counts the gap measures what
// fragmenting CLIC's statistics costs — the ROADMAP's open sharded-tuning
// question as a table.
func (e *Env) AblationLearner() (*report.Table, error) {
	t, err := e.Trace(LearnerTraceName)
	if err != nil {
		return nil, err
	}
	sizes, err := e.ServerSizes(LearnerTraceName)
	if err != nil {
		return nil, err
	}
	// Ends of the sweep: the small cache stresses victim selection, the
	// large one admission.
	sizes = []int{sizes[0], sizes[len(sizes)-1]}
	modes := []core.StatsMode{core.StatsPartitioned, core.StatsGlobal}
	tbl := report.NewTable(
		"Ablation — partitioned vs global statistics learning, DB2_C60",
		"shards", "cache (pages)", "partitioned hit ratio", "global hit ratio")
	type cell struct {
		shards, size int
	}
	var jobs []engine.Job
	var cells []cell
	for _, mode := range modes {
		for _, shards := range AblationLearnerShards {
			for _, size := range sizes {
				cfg := e.clicConfig()
				cfg.Capacity = sim.ClicCapacity(size)
				cfg.Stats = mode
				shards := shards
				jobs = append(jobs, engine.Job{
					New:   func() policy.Policy { return core.NewSharded(cfg, shards) },
					Trace: t,
				})
				cells = append(cells, cell{shards: shards, size: size})
			}
		}
	}
	results := engine.Run(jobs, e.opts())
	half := len(jobs) / 2 // first half partitioned, second half global
	hitsByMode := make([]uint64, len(modes))
	for i := 0; i < half; i++ {
		part, glob := results[i], results[i+half]
		hitsByMode[0] += part.ReadHits
		hitsByMode[1] += glob.ReadHits
		tbl.AddRow(report.Num(cells[i].shards), report.Num(cells[i].size),
			report.Pct(part.HitRatio()), report.Pct(glob.HitRatio()))
	}
	tbl.AddNote("partitioned: per-shard W/N windows and top-k summaries; global: one shared lock-striped learner over the full W")
	// Machine-greppable totals: the CI smoke run asserts both are nonzero.
	tbl.AddNote("smoke totals: partitioned_hits=%d global_hits=%d", hitsByMode[0], hitsByMode[1])
	return tbl, nil
}

// PolicyZoo compares every implemented policy — the paper's five plus the
// related-work baselines — on one trace and cache size.
func (e *Env) PolicyZoo(traceName string, cacheSize int) (*report.Table, error) {
	t, err := e.Trace(traceName)
	if err != nil {
		return nil, err
	}
	tbl := report.NewTable(
		fmt.Sprintf("Policy zoo — %s trace, %d-page cache", traceName, cacheSize),
		"policy", "read hit ratio")
	results, err := engine.Grid(sim.PolicyNames, []int{cacheSize}, t, e.clicConfig(), e.opts())
	if err != nil {
		return nil, err
	}
	for _, name := range sim.PolicyNames {
		tbl.AddRow(name, report.Pct(results[name][0].HitRatio()))
	}
	return tbl, nil
}

// ExtensionGeneralize evaluates the paper's §8 future-work extension
// (implemented in internal/hintproj): hint-set generalization by selecting
// the informative hint types and projecting hint sets onto them. It reruns
// the Figure-10 noise experiment with generalization in front of CLIC.
func (e *Env) ExtensionGeneralize() (*report.Table, error) {
	names := TPCCTraceNames
	cols := append([]string{"T (noise hint types)"}, names...)
	tbl := report.NewTable(
		fmt.Sprintf("Extension (§8) — Figure 10 with hint generalization, k=100, %d-page cache", MidCacheSize), cols...)
	rows := make([][]string, len(Fig10Ts))
	for i, T := range Fig10Ts {
		rows[i] = []string{report.Num(T)}
	}
	// As in Fig10, batch per base trace so only one trace's projected
	// copies (full request-array duplicates) are alive at a time.
	for _, name := range names {
		base, err := e.Trace(name)
		if err != nil {
			return nil, err
		}
		jobs := make([]engine.Job, len(Fig10Ts))
		for i, T := range Fig10Ts {
			noisy, err := trace.WithNoise(base, trace.DefaultNoise(T, 7700+int64(T)))
			if err != nil {
				return nil, err
			}
			sample := noisy.Len() / 4
			projected, _ := hintproj.Generalize(noisy, MidCacheSize, sample, 5)
			cfg := e.clicConfig()
			cfg.TopK = 100
			cfg.Capacity = sim.ClicCapacity(MidCacheSize)
			jobs[i] = engine.Job{New: clicJob(cfg), Trace: projected}
		}
		for i, res := range engine.Run(jobs, e.opts()) {
			rows[i] = append(rows[i], report.Pct(res.HitRatio()))
		}
	}
	for _, row := range rows {
		tbl.AddRow(row...)
	}
	tbl.AddNote("compare against Figure 10: generalization selects the informative hint types from a 25%% sample and discards the synthetic noise types")
	return tbl, nil
}
