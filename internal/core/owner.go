package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// This file is the single-owner shard engine (EngineOwner): each shard's
// cache is owned exclusively by one goroutine, and producers feed it
// batches of requests through per-producer SPSC rings. The cache code runs
// with no lock and no per-request atomics; synchronization costs are paid
// once per frame (a sub-batch routed to one shard), not once per request.
//
// Wakeup protocol. A shard owner sleeps on its doorbell channel, which
// carries ring pointers. A producer pushes a frame into its ring (publishing
// it with a sequentially consistent tail store) and then rings the doorbell
// only when the pre-push tail equals the consumer's head — the ring was
// drained up to this frame, so the owner either is asleep or is about to
// observe emptiness and sleep. Sequential consistency of the tail store /
// head load pair rules out the classic missed wakeup: if the owner's final
// emptiness check preceded the push, the producer's head load sees the
// drained head and rings; if it followed, the owner saw the new tail and
// drains. Multiple doorbells for one ring are harmless (draining is
// idempotent).

// ownerRingSize is the frame capacity of one producer→shard ring. A
// synchronous producer has at most one frame in flight per shard, so the
// ring never fills in the AccessBatch path; the slack absorbs control
// frames and any future pipelined producers.
const ownerRingSize = 8

// DefaultAccessBatch is the request count per AccessBatch call used by
// drivers that do not choose their own batching. It matches the wire
// protocol's default frame size, so the network and in-process batch paths
// exercise identical sub-batch shapes.
const DefaultAccessBatch = 512

// frame is one sub-batch of requests routed to a single shard, plus the
// scatter information to write results back into the producer's batch.
// Frames are owned by their producer and reused batch after batch — the
// steady-state request path allocates nothing.
type frame struct {
	reqs []trace.Request // requests for this shard, in producer order
	idx  []int32         // position of each request in the producer's batch
	hits []bool          // producer's whole-batch results (scatter target)
	wg   *sync.WaitGroup // batch completion; Done once per frame

	// ctl, when non-nil, makes this a control frame: the owner runs fn with
	// exclusive access to its cache instead of processing requests.
	ctl func(c *Cache)
}

// spscRing is a single-producer single-consumer ring of frames. The slot
// array is plain memory; the atomic head/tail stores publish it (they are
// the synchronization edges the race detector and the memory model see).
type spscRing struct {
	slots [ownerRingSize]*frame
	head  atomic.Uint64 // next slot the consumer reads
	tail  atomic.Uint64 // next slot the producer writes
}

// push publishes one frame; it reports whether the ring had room and
// whether the doorbell must ring (the ring was drained up to this frame).
func (r *spscRing) push(f *frame) (ok, ring bool) {
	t := r.tail.Load()
	if t-r.head.Load() >= ownerRingSize {
		return false, false
	}
	r.slots[t%ownerRingSize] = f
	r.tail.Store(t + 1)
	return true, r.head.Load() == t
}

// pop takes the next frame, or nil when the ring is empty.
func (r *spscRing) pop() *frame {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil
	}
	f := r.slots[h%ownerRingSize]
	r.slots[h%ownerRingSize] = nil
	r.head.Store(h + 1)
	return f
}

// ownerLoop is one shard's owner goroutine: drain whichever producer rings
// ring the doorbell, until Close.
func (s *Sharded) ownerLoop(i int) {
	defer s.ownerWg.Done()
	sh := &s.shards[i]
	for {
		select {
		case r := <-sh.bell:
			for f := r.pop(); f != nil; f = r.pop() {
				s.processFrame(sh, f)
			}
		case <-s.quit:
			return
		}
	}
}

// processFrame runs one frame against the shard's cache: no lock, no
// per-request atomics — the snapshot counters are flushed once at the end.
func (s *Sharded) processFrame(sh *shardedShard, f *frame) {
	if f.ctl != nil {
		f.ctl(sh.c)
		f.wg.Done()
		return
	}
	var reads, readHits, writes uint64
	c := sh.c
	for j := range f.reqs {
		rq := &f.reqs[j]
		hit := c.Access(*rq)
		f.hits[f.idx[j]] = hit
		if rq.Op == trace.Read {
			reads++
			if hit {
				readHits++
			}
		} else {
			writes++
		}
	}
	sh.len.Store(int64(c.Len()))
	sh.outq.Store(int64(c.OutqueueLen()))
	sh.evictions.Store(c.Evictions())
	if s.global == nil {
		sh.windows.Store(int64(c.Windows()))
	}
	sh.reads.Add(reads)
	sh.readHits.Add(readHits)
	sh.writes.Add(writes)
	f.wg.Done()
}

// Producer is one client's handle onto a Sharded front: it routes request
// batches to the shards and gathers the per-request hit results. Handles
// are not safe for concurrent use — give each goroutine its own — but any
// number of handles may drive the same front concurrently.
//
// In owner mode the handle carries the per-shard SPSC rings and reusable
// frames; in mutex mode AccessBatch simply loops Access, so callers can be
// written against Producer regardless of the front's engine.
type Producer struct {
	s      *Sharded
	frames []*frame
	rings  []*spscRing
	wg     sync.WaitGroup

	// Streamed-batch state (Begin/Add/Commit): the scatter target and the
	// number of requests added so far.
	hits []bool
	n    int
}

// NewProducer returns a producer handle for this front. Producers are
// cheap enough to create per connection; Close is a no-op but keeps call
// sites honest about lifetime.
func (s *Sharded) NewProducer() *Producer {
	p := &Producer{s: s}
	if s.engine == EngineOwner {
		p.frames = make([]*frame, len(s.shards))
		p.rings = make([]*spscRing, len(s.shards))
		for i := range p.frames {
			p.frames[i] = &frame{wg: &p.wg}
			p.rings[i] = &spscRing{}
		}
	}
	return p
}

// Close releases the handle. The front itself is closed with Sharded.Close.
func (p *Producer) Close() {}

// post pushes a frame into the producer's ring for one shard, ringing the
// shard's doorbell per the wakeup protocol. The ring cannot be full in the
// synchronous AccessBatch path; if a future caller pipelines frames, the
// retry loop keeps the producer correct (the owner is draining).
func (p *Producer) post(sh int, f *frame) {
	r := p.rings[sh]
	for {
		ok, ring := r.push(f)
		if ok {
			if ring {
				p.s.shards[sh].bell <- r
			}
			return
		}
		// Ring full: the owner has frames to chew through; make sure it is
		// awake and yield.
		select {
		case p.s.shards[sh].bell <- r:
		default:
		}
		runtime.Gosched()
	}
}

// AccessBatch processes one batch of requests against the front and writes
// each request's hit/miss into hits (which must be at least len(reqs)
// long). Requests keep their relative order per shard; across shards they
// proceed concurrently, exactly like independent clients in mutex mode —
// and because a page's whole history lives on one shard, a single
// producer's results are bit-identical to a serial mutex-mode replay in
// partitioned-statistics mode.
func (p *Producer) AccessBatch(reqs []trace.Request, hits []bool) {
	if len(hits) < len(reqs) {
		panic("core: AccessBatch hits slice shorter than reqs")
	}
	if p.s.engine != EngineOwner {
		for i := range reqs {
			hits[i] = p.s.Access(reqs[i])
		}
		return
	}
	if len(p.frames) == 1 {
		// One shard: skip the routing pass, the whole batch is one frame.
		f := p.frames[0]
		f.reqs, f.hits = reqs, hits
		f.idx = appendSeq(f.idx[:0], len(reqs))
		p.wg.Add(1)
		p.post(0, f)
		p.wg.Wait()
		f.reqs, f.hits = nil, nil
		return
	}
	for i := range reqs {
		f := p.frames[p.s.ShardFor(reqs[i].Page)]
		f.reqs = append(f.reqs, reqs[i])
		f.idx = append(f.idx, int32(i))
	}
	posted := 0
	for _, f := range p.frames {
		if len(f.reqs) > 0 {
			f.hits = hits
			posted++
		}
	}
	p.wg.Add(posted)
	for sh, f := range p.frames {
		if len(f.reqs) > 0 {
			p.post(sh, f)
		}
	}
	p.wg.Wait()
	for _, f := range p.frames {
		f.reqs = f.reqs[:0]
		f.idx = f.idx[:0]
		f.hits = nil
	}
}

// Begin opens a streamed batch: requests fed one at a time with Add
// accumulate into the per-shard frames and run when Commit is called,
// each request's hit/miss landing in hits at its Add position. The
// streamed triple is AccessBatch for callers that produce requests
// incrementally — a wire decoder can route each request into its shard
// frame as it comes off the buffer, skipping the intermediate request
// slice entirely. hits must have room for every Add before Commit.
func (p *Producer) Begin(hits []bool) {
	p.hits = hits
	p.n = 0
}

// Add appends one request to the open streamed batch. In mutex mode the
// request runs immediately; in owner mode it is routed into its shard's
// frame and runs at Commit.
func (p *Producer) Add(r trace.Request) {
	if p.n >= len(p.hits) {
		panic("core: Add past the end of the Begin hits slice")
	}
	if p.s.engine != EngineOwner {
		p.hits[p.n] = p.s.Access(r)
		p.n++
		return
	}
	var f *frame
	if len(p.frames) == 1 {
		f = p.frames[0]
	} else {
		f = p.frames[p.s.ShardFor(r.Page)]
	}
	f.reqs = append(f.reqs, r)
	f.idx = append(f.idx, int32(p.n))
	p.n++
}

// Commit runs the open streamed batch and waits for every request's
// result to land in the Begin hits slice. It returns the number of
// requests the batch carried.
func (p *Producer) Commit() int {
	n := p.n
	if p.s.engine != EngineOwner {
		p.hits, p.n = nil, 0
		return n
	}
	posted := 0
	for _, f := range p.frames {
		if len(f.reqs) > 0 {
			f.hits = p.hits
			posted++
		}
	}
	p.wg.Add(posted)
	for sh, f := range p.frames {
		if len(f.reqs) > 0 {
			p.post(sh, f)
		}
	}
	p.wg.Wait()
	p.reset()
	return n
}

// Abort drops the open streamed batch without running it. (In mutex mode
// Add runs requests eagerly, so already-added requests have been applied;
// Abort is for tearing down a connection whose frame went bad mid-decode,
// where partial application is moot.)
func (p *Producer) Abort() {
	if p.s.engine == EngineOwner {
		p.reset()
		return
	}
	p.hits, p.n = nil, 0
}

// reset clears the streamed-batch and frame state after Commit or Abort.
func (p *Producer) reset() {
	for _, f := range p.frames {
		f.reqs = f.reqs[:0]
		f.idx = f.idx[:0]
		f.hits = nil
	}
	p.hits, p.n = nil, 0
}

// appendSeq appends 0..n-1 to dst.
func appendSeq(dst []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		dst = append(dst, int32(i))
	}
	return dst
}

// Close stops the shard owner goroutines of an owner-mode front. It must
// be called after all producers are idle; the caches and their statistics
// survive, so snapshots still read after Close. Mutex-mode fronts need no
// Close (it is a no-op), and Close is idempotent.
func (s *Sharded) Close() {
	if s.engine != EngineOwner || !s.closed.CompareAndSwap(false, true) {
		return
	}
	close(s.quit)
	s.ownerWg.Wait()
}

// fallback returns the front's internal producer used to serve the
// policy.Policy Access path and control ops in owner mode, serialized by
// fbMu (Access must stay safe for concurrent use in every mode).
func (s *Sharded) fallback() *Producer {
	s.fbOnce.Do(func() { s.fbProd = s.NewProducer() })
	return s.fbProd
}

// accessOwner is the single-request fallback in owner mode: a batch of one
// through the internal producer. It pays a frame round trip per request —
// drivers that care use Producer.AccessBatch.
func (s *Sharded) accessOwner(r trace.Request) bool {
	s.fbMu.Lock()
	p := s.fallback()
	s.fbReq[0] = r
	p.AccessBatch(s.fbReq[:1], s.fbHits[:1])
	hit := s.fbHits[0]
	s.fbMu.Unlock()
	return hit
}

// withCache runs fn with exclusive access to shard i's cache: under the
// shard lock in mutex mode, on the owner goroutine via a control frame in
// owner mode. Control-plane accessors (WindowStats) use it so they never
// race the request path.
func (s *Sharded) withCache(i int, fn func(c *Cache)) {
	sh := &s.shards[i]
	if s.engine != EngineOwner {
		sh.mu.Lock()
		fn(sh.c)
		sh.mu.Unlock()
		return
	}
	s.fbMu.Lock()
	p := s.fallback()
	f := p.frames[i]
	f.ctl = fn
	p.wg.Add(1)
	p.post(i, f)
	p.wg.Wait()
	f.ctl = nil
	s.fbMu.Unlock()
}
