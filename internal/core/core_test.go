package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hint"
	"repro/internal/trace"
)

// Hint IDs used by the tests; CLIC treats them as opaque.
const (
	hintA hint.ID = 0
	hintB hint.ID = 1
	hintC hint.ID = 2
)

func rd(p uint64, h hint.ID) trace.Request {
	return trace.Request{Page: p, Hint: h, Op: trace.Read}
}
func wr(p uint64, h hint.ID) trace.Request {
	return trace.Request{Page: p, Hint: h, Op: trace.Write}
}

func TestDefaults(t *testing.T) {
	c := New(Config{Capacity: 100})
	cfg := c.Config()
	if cfg.Noutq != 500 {
		t.Errorf("default Noutq = %d, want 5×capacity = 500", cfg.Noutq)
	}
	if cfg.Window != DefaultWindow {
		t.Errorf("default Window = %d", cfg.Window)
	}
	if cfg.R != 1 {
		t.Errorf("default R = %v", cfg.R)
	}
	if c.Name() != "CLIC" || c.Capacity() != 100 {
		t.Errorf("Name/Capacity = %q/%d", c.Name(), c.Capacity())
	}
	none := New(Config{Capacity: 100, Noutq: NoOutqueue})
	if none.Config().Noutq != 0 {
		t.Errorf("NoOutqueue gave Noutq = %d", none.Config().Noutq)
	}
}

// TestWindowStatsExact verifies N(H), Nr(H) and D(H) on a hand-computed
// sequence (§3.1): requests are tagged seq 0,1,2,…; a read re-reference
// credits the *previous* request's hint set at the distance between them.
func TestWindowStatsExact(t *testing.T) {
	c := New(Config{Capacity: 10, Window: 1000})
	c.Access(rd(1, hintA)) // seq 0: N(A)=1
	c.Access(rd(2, hintB)) // seq 1: N(B)=1
	c.Access(rd(1, hintA)) // seq 2: N(A)=2; re-ref credits A, dist 2
	c.Access(wr(2, hintA)) // seq 3: N(A)=3; write: no credit for B
	c.Access(rd(2, hintC)) // seq 4: N(C)=1; re-ref credits A (p2's latest hint), dist 1

	stats := c.WindowStats()
	byHint := map[hint.ID]HintStat{}
	for _, s := range stats {
		byHint[s.Hint] = s
	}
	a := byHint[hintA]
	if a.N != 3 || a.Nr != 2 {
		t.Errorf("A: N=%d Nr=%d, want 3, 2", a.N, a.Nr)
	}
	if math.Abs(a.D-1.5) > 1e-12 {
		t.Errorf("A: D=%v, want 1.5 (distances 2 and 1)", a.D)
	}
	// Pr = (Nr/N)/D = (2/3)/1.5 = 4/9.
	if math.Abs(a.Pr-4.0/9.0) > 1e-12 {
		t.Errorf("A: Pr=%v, want 4/9", a.Pr)
	}
	if b := byHint[hintB]; b.N != 1 || b.Nr != 0 || b.Pr != 0 {
		t.Errorf("B: %+v, want N=1 Nr=0 Pr=0", b)
	}
	if cs := byHint[hintC]; cs.N != 1 || cs.Nr != 0 {
		t.Errorf("C: %+v, want N=1 Nr=0", cs)
	}
}

// TestFigure4Admission walks the replacement policy of Figure 4 end to end:
// a training window establishes priorities Pr(C) > Pr(A) > Pr(B) = 0, then
// admission, victim selection (min priority, min seq) and the
// strictly-greater rule are checked request by request.
func TestFigure4Admission(t *testing.T) {
	c := New(Config{Capacity: 2, Window: 8, Noutq: 10})

	// Training window (seq 0–7).
	c.Access(rd(10, hintA)) // seq 0: cached (cache not full)
	c.Access(rd(11, hintA)) // seq 1: cached
	c.Access(rd(10, hintA)) // seq 2: hit; credit A dist 2
	c.Access(rd(11, hintA)) // seq 3: hit; credit A dist 2
	c.Access(rd(20, hintB)) // seq 4: full, all priorities 0 → bypass
	c.Access(rd(21, hintB)) // seq 5: bypass
	c.Access(rd(40, hintC)) // seq 6: bypass (outqueue records it)
	c.Access(rd(40, hintC)) // seq 7: bypass; outqueue re-ref credits C dist 1
	// Rotation: p̂(A) = (2/4)/2 = 0.25, p̂(B) = 0, p̂(C) = (1/2)/1 = 0.5.

	if c.Windows() != 1 {
		t.Fatalf("windows = %d, want 1", c.Windows())
	}
	pr := c.Priorities()
	if math.Abs(pr[hintA]-0.25) > 1e-12 || math.Abs(pr[hintC]-0.5) > 1e-12 {
		t.Fatalf("priorities after window: %v", pr)
	}

	// seq 8: C (0.5) beats the minimum cached priority (A, 0.25): admit,
	// evicting the minimum-seq page of the A group — page 10 (seq 2).
	if c.Access(rd(50, hintC)) {
		t.Fatal("seq 8 was a miss")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// seq 9: page 11 must still be cached (10 was the victim).
	if !c.Access(rd(11, hintC)) {
		t.Fatal("page 11 was evicted; victim selection chose the wrong page")
	}
	// seq 10: page 10 must be gone; with hint B (priority 0) it is not
	// readmitted over min priority 0.5 (11 and 50 are now both hint C).
	if c.Access(rd(10, hintB)) {
		t.Fatal("page 10 still cached after eviction")
	}
	if c.Len() != 2 {
		t.Fatalf("Len changed: %d", c.Len())
	}
	// seq 11: equal priority must NOT admit (Figure 4 line 12 is strict).
	if c.Access(rd(60, hintC)) {
		t.Fatal("seq 11 was a miss")
	}
	// 11 and 50 should still be cached: verify via hits.
	if !c.Access(rd(50, hintC)) {
		t.Fatal("equal-priority request displaced a cached page")
	}
}

// TestNoReplacementWithoutPriorities: with all priorities zero (before the
// first window completes), a full cache admits nothing new.
func TestNoReplacementWithoutPriorities(t *testing.T) {
	c := New(Config{Capacity: 2, Window: 1000})
	c.Access(rd(1, hintA))
	c.Access(rd(2, hintA))
	c.Access(rd(3, hintA)) // full, equal (zero) priority → bypass
	if !c.Access(rd(1, hintA)) || !c.Access(rd(2, hintA)) {
		t.Error("original pages were displaced")
	}
	if c.Access(rd(3, hintA)) {
		t.Error("page 3 was admitted despite equal priority")
	}
}

// TestRehintChangesPriority: the most recent request determines a cached
// page's priority (Figure 4 lines 23–25).
func TestRehintChangesPriority(t *testing.T) {
	c := New(Config{Capacity: 2, Window: 6, Noutq: 10})
	// Train: A re-references quickly (high priority), B never (zero).
	c.Access(rd(1, hintA))  // seq 0
	c.Access(rd(1, hintA))  // seq 1: credit A dist 1
	c.Access(rd(2, hintA))  // seq 2
	c.Access(rd(2, hintA))  // seq 3: credit A dist 1
	c.Access(rd(9, hintB))  // seq 4
	c.Access(rd(99, hintB)) // seq 5 → rotation: pr(A)=0.75... (Nr=2,N=4,D=1)
	pr := c.Priorities()
	if pr[hintA] <= 0 || pr[hintB] != 0 {
		t.Fatalf("training priorities: %v", pr)
	}
	// Cache holds pages 1 and 2 (both A). Re-request page 1 with hint B:
	// its priority drops to 0, making it the victim for an A request.
	c.Access(rd(1, hintB)) // seq 6: hit, rehint to B
	c.Access(rd(3, hintA)) // seq 7: admits, evicting page 1 (pr 0)
	if c.Access(rd(1, hintA)) {
		t.Error("page 1 survived despite being re-hinted to priority 0")
	}
	// Pages 2 and 3 are the residents now; page 2 was hit at seq 8 above?
	// No: seq 8 accessed page 1 (miss). Verify 2 and 3 are cached.
	if !c.Access(rd(3, hintA)) {
		t.Error("page 3 not cached after admission")
	}
}

func TestOutqueueBound(t *testing.T) {
	c := New(Config{Capacity: 0, Window: 1000, Noutq: 3})
	for p := uint64(1); p <= 10; p++ {
		c.Access(rd(p, hintA))
	}
	if c.OutqueueLen() != 3 {
		t.Errorf("OutqueueLen = %d, want 3", c.OutqueueLen())
	}
	// Oldest entries were evicted: a re-read of page 1 is not detected as a
	// re-reference, but page 10 (recent) is.
	c.Access(rd(1, hintB))  // not detected (page 1 aged out)
	c.Access(rd(10, hintC)) // detected, credits hintA
	stats := map[hint.ID]HintStat{}
	for _, s := range c.WindowStats() {
		stats[s.Hint] = s
	}
	if stats[hintA].Nr != 1 {
		t.Errorf("Nr(A) = %d, want 1 (only the recent page is tracked)", stats[hintA].Nr)
	}
}

func TestOutqueueDisabled(t *testing.T) {
	c := New(Config{Capacity: 0, Window: 1000, Noutq: NoOutqueue})
	c.Access(rd(1, hintA))
	c.Access(rd(1, hintA))
	if c.OutqueueLen() != 0 {
		t.Errorf("outqueue not disabled: %d", c.OutqueueLen())
	}
	for _, s := range c.WindowStats() {
		if s.Nr != 0 {
			t.Error("re-reference detected with outqueue disabled and page uncached")
		}
	}
}

// TestEWMA verifies Equation 3 with r = 0.5 across two windows.
func TestEWMA(t *testing.T) {
	c := New(Config{Capacity: 4, Window: 4, R: 0.5})
	// Window 1: A has p̂ = (1/2)/1 = 0.5.
	c.Access(rd(1, hintA))
	c.Access(rd(1, hintA))
	c.Access(rd(8, hintB))
	c.Access(rd(9, hintB))
	pr := c.Priorities()
	if math.Abs(pr[hintA]-0.25) > 1e-12 {
		t.Fatalf("after window 1: pr(A) = %v, want 0.5·0.5 = 0.25", pr[hintA])
	}
	// Window 2: A unseen → pr(A) = 0.5·0 + 0.5·0.25 = 0.125.
	for p := uint64(20); p < 24; p++ {
		c.Access(rd(p, hintB))
	}
	pr = c.Priorities()
	if math.Abs(pr[hintA]-0.125) > 1e-12 {
		t.Fatalf("after window 2: pr(A) = %v, want 0.125", pr[hintA])
	}
	if c.Windows() != 2 {
		t.Errorf("windows = %d", c.Windows())
	}
}

// TestRZeroDecaysEverything: with r = 1 (the paper's setting), priorities
// reflect only the last window.
func TestROneForgetsOldWindows(t *testing.T) {
	c := New(Config{Capacity: 4, Window: 4, R: 1})
	c.Access(rd(1, hintA))
	c.Access(rd(1, hintA))
	c.Access(rd(8, hintB))
	c.Access(rd(9, hintB))
	if c.Priorities()[hintA] == 0 {
		t.Fatal("pr(A) should be positive after window 1")
	}
	for p := uint64(20); p < 24; p++ {
		c.Access(rd(p, hintB))
	}
	if got := c.Priorities()[hintA]; got != 0 {
		t.Errorf("r=1: pr(A) = %v after a window without A, want 0", got)
	}
}

func TestTopKBoundsTracking(t *testing.T) {
	c := New(Config{Capacity: 8, Window: 10000, TopK: 2})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		// Hints 0 and 1 dominate; hints 2–9 are rare.
		h := hint.ID(rng.Intn(2))
		if rng.Intn(10) == 0 {
			h = hint.ID(2 + rng.Intn(8))
		}
		c.Access(rd(uint64(rng.Intn(50)), h))
	}
	if c.TrackedHintSets() > 2 {
		t.Errorf("TrackedHintSets = %d, want <= 2", c.TrackedHintSets())
	}
	stats := c.WindowStats()
	if len(stats) > 2 {
		t.Errorf("WindowStats returned %d entries", len(stats))
	}
	// The two frequent hints should be the tracked ones.
	for _, s := range stats {
		if s.Hint > 1 {
			t.Errorf("rare hint %d tracked in place of a frequent one", s.Hint)
		}
	}
}

func TestTopKUntrackedGetZeroPriority(t *testing.T) {
	c := New(Config{Capacity: 8, Window: 12, TopK: 2})
	// hintA and hintB are frequent with quick re-references; hintC appears
	// mid-window with a quick re-reference but is displaced from the k=2
	// summary by the time the window closes, so its priority must be zero
	// (§5: untracked hint sets get Pr = 0).
	c.Access(rd(1, hintA))
	c.Access(rd(1, hintA))
	c.Access(rd(2, hintB))
	c.Access(rd(2, hintB))
	c.Access(rd(5, hintC))
	c.Access(rd(5, hintC))
	c.Access(rd(3, hintA))
	c.Access(rd(3, hintA))
	c.Access(rd(4, hintB))
	c.Access(rd(4, hintB))
	c.Access(rd(6, hintA))
	c.Access(rd(6, hintA))
	pr := c.Priorities()
	if pr[hintA] <= 0 {
		t.Errorf("tracked hint A priority = %v, want > 0", pr[hintA])
	}
	if pr[hintC] != 0 {
		t.Errorf("untracked hint C priority = %v, want 0", pr[hintC])
	}
}

// TestInvariantsQuick property-tests CLIC's structural invariants under
// random request streams: cache and outqueue bounds, group bookkeeping,
// and heap/group consistency.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64, capRaw, topkRaw uint8) bool {
		capacity := int(capRaw % 12)
		topk := int(topkRaw % 4) // 0 = exact mode
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Capacity: capacity, Window: 50, TopK: topk, Noutq: 20})
		for i := 0; i < 1200; i++ {
			op := trace.Read
			if rng.Intn(3) == 0 {
				op = trace.Write
			}
			c.Access(trace.Request{
				Page: uint64(rng.Intn(40)),
				Hint: hint.ID(rng.Intn(6)),
				Op:   op,
			})
			if c.Len() > capacity {
				return false
			}
			if c.OutqueueLen() > 20 {
				return false
			}
			if !c.checkConsistency() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// checkConsistency validates the internal structures: every cached page is
// in exactly one group, group sizes add up, every non-empty group is in the
// heap exactly once, and heap indices are correct.
func (c *Cache) checkConsistency() bool {
	total := 0
	for h, g := range c.groups {
		if g.size <= 0 || g.hint != h {
			return false
		}
		n := 0
		var prevSeq uint64
		for e := g.head; e != nil; e = e.next {
			if e.grp != g {
				return false
			}
			if n > 0 && e.seq < prevSeq {
				return false // list must be seq-ordered
			}
			prevSeq = e.seq
			n++
		}
		if n != g.size {
			return false
		}
		total += n
	}
	if total != len(c.pages) {
		return false
	}
	if len(c.heap) != len(c.groups) {
		return false
	}
	for i, g := range c.heap {
		if g.heapIdx != i {
			return false
		}
	}
	// Outqueue map and list must agree.
	n := 0
	for e := c.out.head; e != nil; e = e.next {
		if c.out.pages[e.page] != e {
			return false
		}
		n++
	}
	return n == c.out.size
}

func TestZeroCapacity(t *testing.T) {
	c := New(Config{Capacity: 0, Window: 10})
	for i := 0; i < 50; i++ {
		if c.Access(rd(uint64(i%3), hintA)) {
			t.Fatal("zero-capacity cache hit")
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative capacity should panic")
		}
	}()
	New(Config{Capacity: -1})
}

func TestWriteHitsDoNotCount(t *testing.T) {
	c := New(Config{Capacity: 4, Window: 100})
	c.Access(rd(1, hintA))
	if c.Access(wr(1, hintA)) {
		t.Error("write returned hit")
	}
	if !c.Access(rd(1, hintA)) {
		t.Error("read after write should hit (page stays cached)")
	}
}

func BenchmarkAccessExact(b *testing.B) {
	benchmarkAccess(b, 0)
}

func BenchmarkAccessTopK(b *testing.B) {
	benchmarkAccess(b, 50)
}

func benchmarkAccess(b *testing.B, topk int) {
	rng := rand.New(rand.NewSource(1))
	reqs := make([]trace.Request, 1<<16)
	for i := range reqs {
		op := trace.Read
		if rng.Intn(3) == 0 {
			op = trace.Write
		}
		reqs[i] = trace.Request{
			Page: uint64(rng.Intn(8192)),
			Hint: hint.ID(rng.Intn(64)),
			Op:   op,
		}
	}
	c := New(Config{Capacity: 2048, Window: 10000, TopK: topk})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(reqs[i%len(reqs)])
	}
}
