package core

import "testing"

// TestAccessSteadyStateAllocs pins the zero-allocation contract of the
// request path: after the cache has filled its capacity, outqueue and
// statistics structures (all recycled through freelists), processing a
// request allocates nothing — including across window rotations and
// Space-Saving counter churn (TopK set).
func TestAccessSteadyStateAllocs(t *testing.T) {
	c := New(Config{Capacity: 512, Window: 2000, TopK: 64})
	reqs := shardedTrace(200000, 99)
	for _, r := range reqs {
		c.Access(r)
	}
	i := 0
	if avg := testing.AllocsPerRun(20000, func() {
		c.Access(reqs[i%len(reqs)])
		i++
	}); avg != 0 {
		t.Errorf("steady-state Access allocates %v allocs/op, want 0", avg)
	}
}

// TestAccessBatchSteadyStateAllocs is the same contract for the owner
// engine's batch path: a warm producer running DefaultAccessBatch-sized
// batches through the shard owners — routing pass, frame hand-off,
// doorbells, scatter — allocates nothing per batch.
func TestAccessBatchSteadyStateAllocs(t *testing.T) {
	s := NewSharded(Config{Capacity: 512, Window: 2000, TopK: 64, Engine: EngineOwner}, 4)
	defer s.Close()
	p := s.NewProducer()
	defer p.Close()
	reqs := shardedTrace(200000, 99)
	hits := make([]bool, DefaultAccessBatch)
	batch := func(off int) {
		end := off + DefaultAccessBatch
		if end > len(reqs) {
			end = len(reqs)
		}
		p.AccessBatch(reqs[off:end], hits)
	}
	for off := 0; off < len(reqs); off += DefaultAccessBatch {
		batch(off)
	}
	off := 0
	if avg := testing.AllocsPerRun(200, func() {
		batch(off)
		off = (off + DefaultAccessBatch) % (len(reqs) - DefaultAccessBatch)
	}); avg != 0 {
		t.Errorf("steady-state AccessBatch allocates %v allocs per batch, want 0", avg)
	}
}
