package core

import (
	"sync"
	"testing"

	"repro/internal/trace"
)

// ownerPair builds one owner-engine and one mutex-engine front with the
// same configuration.
func ownerPair(cfg Config, shards int) (owner, mutex *Sharded) {
	ocfg := cfg
	ocfg.Engine = EngineOwner
	return NewSharded(ocfg, shards), NewSharded(cfg, shards)
}

// TestOwnerMatchesMutexSerial is the engine-equivalence golden test: a
// single producer replaying the trace in batches through the owner engine
// must make bit-identical hit/miss decisions to a serial per-request replay
// through the mutex engine. One producer keeps each shard's request
// subsequence in trace order, and a page's whole history lives on one
// shard, so partitioned-statistics results are deterministic.
func TestOwnerMatchesMutexSerial(t *testing.T) {
	const shards = 4
	cfg := Config{Capacity: 64, Window: 500}
	s, m := ownerPair(cfg, shards)
	defer s.Close()

	reqs := shardedTrace(20000, 42)
	want := make([]bool, len(reqs))
	for i, r := range reqs {
		want[i] = m.Access(r)
	}

	p := s.NewProducer()
	defer p.Close()
	const batch = 512
	hits := make([]bool, batch)
	var gotHits, wantHits uint64
	for off := 0; off < len(reqs); off += batch {
		end := off + batch
		if end > len(reqs) {
			end = len(reqs)
		}
		p.AccessBatch(reqs[off:end], hits)
		for i := off; i < end; i++ {
			if hits[i-off] != want[i] {
				t.Fatalf("request %d (page %d): owner hit=%v, mutex hit=%v", i, reqs[i].Page, hits[i-off], want[i])
			}
			if reqs[i].Op == trace.Read {
				if hits[i-off] {
					gotHits++
				}
				if want[i] {
					wantHits++
				}
			}
		}
	}
	if gotHits == 0 || gotHits != wantHits {
		t.Fatalf("aggregate hits: owner %d, mutex %d", gotHits, wantHits)
	}
	if s.Len() != m.Len() || s.OutqueueLen() != m.OutqueueLen() || s.Windows() != m.Windows() {
		t.Errorf("structural drift: Len %d/%d, Outqueue %d/%d, Windows %d/%d",
			s.Len(), m.Len(), s.OutqueueLen(), m.OutqueueLen(), s.Windows(), m.Windows())
	}
	ss, ms := s.Stats(), m.Stats()
	ms.Engine = ss.Engine // the one field allowed to differ
	if ss != ms {
		t.Errorf("Stats drift:\nowner %+v\nmutex %+v", ss, ms)
	}
	if ss.Engine != "owner" || ms.Learner != "partitioned" {
		t.Errorf("modes reported as engine=%q learner=%q", ss.Engine, ms.Learner)
	}

	// The control-plane snapshot must agree too (and must not deadlock
	// against the owner goroutines).
	sw, mw := s.WindowStats(), m.WindowStats()
	if len(sw) != len(mw) {
		t.Fatalf("WindowStats lengths %d vs %d", len(sw), len(mw))
	}
	for i := range sw {
		if sw[i] != mw[i] {
			t.Errorf("WindowStats[%d]: %+v vs %+v", i, sw[i], mw[i])
		}
	}
}

// TestOwnerBatchSizeInvariance replays the same trace through one producer
// at several batch sizes; partitioned-statistics results must not depend on
// how the stream is chopped into frames.
func TestOwnerBatchSizeInvariance(t *testing.T) {
	cfg := Config{Capacity: 64, Window: 500, TopK: 8}
	reqs := shardedTrace(20000, 7)
	var base uint64
	for _, batch := range []int{1, 7, 64, 512, len(reqs)} {
		s := NewSharded(Config{Capacity: cfg.Capacity, Window: cfg.Window, TopK: cfg.TopK, Engine: EngineOwner}, 4)
		p := s.NewProducer()
		hits := make([]bool, batch)
		var total uint64
		for off := 0; off < len(reqs); off += batch {
			end := off + batch
			if end > len(reqs) {
				end = len(reqs)
			}
			p.AccessBatch(reqs[off:end], hits)
			for i := off; i < end; i++ {
				if hits[i-off] && reqs[i].Op == trace.Read {
					total++
				}
			}
		}
		p.Close()
		s.Close()
		if batch == 1 {
			base = total
			if base == 0 {
				t.Fatal("no hits at batch size 1; test is vacuous")
			}
			continue
		}
		if total != base {
			t.Errorf("batch %d: %d hits, batch 1 got %d", batch, total, base)
		}
	}
}

// TestOwnerAccessFallback drives an owner front through the policy.Policy
// per-request path and checks it against the mutex engine request by
// request: the internal fallback producer must preserve exact semantics.
func TestOwnerAccessFallback(t *testing.T) {
	s, m := ownerPair(Config{Capacity: 64, Window: 500}, 4)
	defer s.Close()
	var hits uint64
	for i, r := range shardedTrace(5000, 11) {
		got, want := s.Access(r), m.Access(r)
		if got != want {
			t.Fatalf("request %d: owner Access=%v, mutex Access=%v", i, got, want)
		}
		if got && r.Op == trace.Read {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no hits; test is vacuous")
	}
}

// TestOwnerConcurrentProducers hammers an owner front with more producers
// than shards — the -race stress for the SPSC rings, doorbells, and frame
// reuse. Aggregate accounting must stay exact even though the interleaving
// is nondeterministic.
func TestOwnerConcurrentProducers(t *testing.T) {
	const producers = 8
	cfg := Config{Capacity: 128, Window: 1000, Engine: EngineOwner}
	s := NewSharded(cfg, 2)
	defer s.Close()

	var wg sync.WaitGroup
	var reads, readHits, writes [producers]uint64
	for c := 0; c < producers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := s.NewProducer()
			defer p.Close()
			reqs := shardedTrace(5000, int64(100+c))
			hits := make([]bool, 96)
			for off := 0; off < len(reqs); off += 96 {
				end := off + 96
				if end > len(reqs) {
					end = len(reqs)
				}
				p.AccessBatch(reqs[off:end], hits)
				for i := off; i < end; i++ {
					if reqs[i].Op == trace.Read {
						reads[c]++
						if hits[i-off] {
							readHits[c]++
						}
					} else {
						writes[c]++
					}
				}
			}
		}(c)
	}
	wg.Wait()

	var wantReads, wantHits, wantWrites uint64
	for c := 0; c < producers; c++ {
		wantReads += reads[c]
		wantHits += readHits[c]
		wantWrites += writes[c]
	}
	st := s.Stats()
	if st.Reads != wantReads || st.Writes != wantWrites || st.Requests != uint64(producers*5000) {
		t.Errorf("Stats reads=%d writes=%d requests=%d, want %d/%d/%d",
			st.Reads, st.Writes, st.Requests, wantReads, wantWrites, producers*5000)
	}
	if st.ReadHits != wantHits {
		t.Errorf("Stats readHits=%d, client-side count %d", st.ReadHits, wantHits)
	}
	if wantHits == 0 {
		t.Error("no hits across all producers")
	}
	if s.Len() > s.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", s.Len(), s.Capacity())
	}
	if len(s.WindowStats()) == 0 {
		t.Error("WindowStats is empty under load")
	}
}

// TestOwnerGlobalConcurrent pairs the owner engine with the shared global
// learner: shard owners feed one lock-striped learner concurrently. The
// global window count stays exact (one rotation per W requests cache-wide).
func TestOwnerGlobalConcurrent(t *testing.T) {
	const producers = 6
	cfg := Config{Capacity: 128, Window: 1000, Stats: StatsGlobal, Engine: EngineOwner}
	s := NewSharded(cfg, 2)
	defer s.Close()

	var wg sync.WaitGroup
	var hits [producers]uint64
	for c := 0; c < producers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			p := s.NewProducer()
			defer p.Close()
			reqs := shardedTrace(5000, int64(200+c))
			out := make([]bool, 128)
			for off := 0; off < len(reqs); off += 128 {
				end := off + 128
				if end > len(reqs) {
					end = len(reqs)
				}
				p.AccessBatch(reqs[off:end], out)
				for i := off; i < end; i++ {
					if out[i-off] && reqs[i].Op == trace.Read {
						hits[c]++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	var total uint64
	for _, h := range hits {
		total += h
	}
	if total == 0 {
		t.Error("no hits across producers")
	}
	if want := producers * 5000 / 1000; s.Windows() != want {
		t.Errorf("Windows = %d, want exactly %d", s.Windows(), want)
	}
	if st := s.Stats(); st.Learner != "global" || st.Engine != "owner" {
		t.Errorf("Stats reports learner=%q engine=%q", st.Learner, st.Engine)
	}
}

// TestOwnerClose checks Close is idempotent, leaves snapshots readable, and
// that mutex-mode Close is a no-op.
func TestOwnerClose(t *testing.T) {
	s := NewSharded(Config{Capacity: 32, Window: 500, Engine: EngineOwner}, 3)
	p := s.NewProducer()
	reqs := shardedTrace(2000, 3)
	hits := make([]bool, len(reqs))
	p.AccessBatch(reqs, hits)
	p.Close()
	st := s.Stats()
	s.Close()
	s.Close() // idempotent
	if after := s.Stats(); after != st {
		t.Errorf("Stats changed across Close: %+v vs %+v", after, st)
	}
	if st.Requests != uint64(len(reqs)) {
		t.Errorf("Requests = %d, want %d", st.Requests, len(reqs))
	}
	NewSharded(Config{Capacity: 32}, 2).Close() // mutex mode: no-op
}

// TestEngineModeParse round-trips the flag spellings.
func TestEngineModeParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want EngineMode
	}{{"mutex", EngineMutex}, {"", EngineMutex}, {"owner", EngineOwner}, {"single-owner", EngineOwner}} {
		got, err := ParseEngineMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngineMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseEngineMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	if EngineMutex.String() != "mutex" || EngineOwner.String() != "owner" {
		t.Error("EngineMode.String spellings changed")
	}
}
