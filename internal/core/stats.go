package core

import (
	"container/heap"
	"sort"

	"repro/internal/hint"
	"repro/internal/spacesaving"
)

// ssAux is the auxiliary state the adapted Space-Saving algorithm keeps per
// tracked hint set (§5): read re-references and distance sum accumulated
// while the hint set was being tracked.
type ssAux struct {
	nr   uint64
	dsum float64
}

// hintSummary is the §5 adaptation of Space-Saving to hint-set statistics.
type hintSummary struct {
	sum *spacesaving.Summary[hint.ID, ssAux]
}

func newHintSummary(k int) *hintSummary {
	return &hintSummary{sum: spacesaving.New[hint.ID, ssAux](k)}
}

// countArrival records one request with hint set h in the current window.
func (c *Cache) countArrival(h hint.ID) {
	if c.topk != nil {
		c.topk.sum.Touch(h)
		return
	}
	st, ok := c.stats[h]
	if !ok {
		st = &winStats{}
		c.stats[h] = st
	}
	st.n++
}

// creditReref records that a request with hint set h was followed by a read
// re-reference at the given distance. In top-k mode the credit is dropped
// unless h is currently tracked, exactly as §5 prescribes.
func (c *Cache) creditReref(h hint.ID, dist uint64) {
	if c.topk != nil {
		if ctr, ok := c.topk.sum.Get(h); ok {
			ctr.Val.nr++
			ctr.Val.dsum += float64(dist)
		}
		return
	}
	st, ok := c.stats[h]
	if !ok {
		// The prior request that established the record may have arrived in
		// an earlier window; stats were cleared since. Start a fresh entry
		// so the re-reference still informs this window's priorities.
		st = &winStats{}
		c.stats[h] = st
	}
	st.nr++
	st.dsum += float64(dist)
}

// windowPriority computes the within-window priority estimate
// p̂r(H) = fhit(H)/D(H) = (nr/n)/(dsum/nr) = nr² / (n·dsum), Equation 2.
func windowPriority(n, nr uint64, dsum float64) float64 {
	if n == 0 || nr == 0 || dsum <= 0 {
		return 0
	}
	return float64(nr) * float64(nr) / (float64(n) * dsum)
}

// rotateWindow ends the current statistics window: it folds the window's
// estimates into the priorities with decay r (Equation 3), clears the
// statistics, and rebuilds the group heap under the new priorities.
func (c *Cache) rotateWindow() {
	r := c.cfg.R
	fresh := c.windowEstimates()

	// Decay priorities for hint sets not seen this window, then blend in
	// the fresh estimates. Entries that decay to (effectively) zero and
	// have no cached pages are pruned to bound the table.
	const eps = 1e-12
	for h, old := range c.pr {
		if _, seen := fresh[h]; seen {
			continue
		}
		nv := (1 - r) * old
		if nv < eps {
			if _, live := c.groups[h]; !live {
				delete(c.pr, h)
				continue
			}
			nv = 0
		}
		c.pr[h] = nv
	}
	for h, phat := range fresh {
		c.pr[h] = r*phat + (1-r)*c.pr[h]
	}

	// Clear window statistics (§3.2 / §5).
	if c.topk != nil {
		c.topk.sum.Reset()
	} else {
		c.stats = make(map[hint.ID]*winStats, len(c.stats))
	}

	// Rebuild the priority heap with the adjusted priorities (§4).
	for _, g := range c.groups {
		g.pr = c.pr[g.hint]
	}
	heap.Init(&c.heap)

	c.sinceRotate = 0
	c.windows++
}

// windowEstimates returns p̂r for every hint set with statistics in the
// current window.
func (c *Cache) windowEstimates() map[hint.ID]float64 {
	if c.topk != nil {
		out := make(map[hint.ID]float64, c.topk.sum.Len())
		for _, ctr := range c.topk.sum.Counters() {
			// §5: N(H) is the frequency estimate minus the error bound.
			n := ctr.Count - ctr.Err
			out[ctr.Key] = windowPriority(n, ctr.Val.nr, ctr.Val.dsum)
		}
		return out
	}
	out := make(map[hint.ID]float64, len(c.stats))
	for h, st := range c.stats {
		out[h] = windowPriority(st.n, st.nr, st.dsum)
	}
	return out
}

// HintStat is an analysis snapshot of one hint set's statistics, used to
// regenerate the paper's Figure 3 scatter plot.
type HintStat struct {
	Hint hint.ID
	Key  string // canonical hint-set key, filled by the caller's dictionary
	N    uint64
	Nr   uint64
	D    float64 // mean read re-reference distance (0 when Nr == 0)
	Pr   float64 // p̂r computed from this snapshot's statistics
}

// WindowStats returns the statistics accumulated so far in the current
// window, sorted by descending N. Running a whole trace with Window larger
// than the trace length makes this a whole-trace hint analysis (Figure 3).
func (c *Cache) WindowStats() []HintStat {
	var out []HintStat
	if c.topk != nil {
		for _, ctr := range c.topk.sum.Counters() {
			n := ctr.Count - ctr.Err
			hs := HintStat{Hint: ctr.Key, N: n, Nr: ctr.Val.nr}
			if ctr.Val.nr > 0 {
				hs.D = ctr.Val.dsum / float64(ctr.Val.nr)
			}
			hs.Pr = windowPriority(n, ctr.Val.nr, ctr.Val.dsum)
			out = append(out, hs)
		}
	} else {
		for h, st := range c.stats {
			hs := HintStat{Hint: h, N: st.n, Nr: st.nr}
			if st.nr > 0 {
				hs.D = st.dsum / float64(st.nr)
			}
			hs.Pr = windowPriority(st.n, st.nr, st.dsum)
			out = append(out, hs)
		}
	}
	sortHintStats(out)
	return out
}

// sortHintStats orders snapshots by descending N, ties broken by hint ID.
func sortHintStats(out []HintStat) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Hint < out[j].Hint
	})
}

// Priorities returns a copy of the priorities currently in effect.
func (c *Cache) Priorities() map[hint.ID]float64 {
	out := make(map[hint.ID]float64, len(c.pr))
	for h, p := range c.pr {
		out[h] = p
	}
	return out
}

// TrackedHintSets returns the number of hint sets with statistics in the
// current window (bounded by k in top-k mode).
func (c *Cache) TrackedHintSets() int {
	if c.topk != nil {
		return c.topk.sum.Len()
	}
	return len(c.stats)
}
