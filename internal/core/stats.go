package core

import (
	"repro/internal/clicstats"
	"repro/internal/hint"
)

// HintStat is an analysis snapshot of one hint set's statistics; it lives
// in internal/clicstats with the rest of the statistics machinery and is
// aliased here for the cache's callers (experiments, server, hintproj).
type HintStat = clicstats.HintStat

// Windows returns the number of completed statistics windows.
func (c *Cache) Windows() int { return c.learner.Windows() }

// WindowStats returns the statistics accumulated so far in the current
// window, sorted by descending N. Running a whole trace with Window larger
// than the trace length makes this a whole-trace hint analysis (Figure 3).
func (c *Cache) WindowStats() []HintStat { return c.learner.WindowStats() }

// Priorities returns a copy of the priorities currently in effect.
func (c *Cache) Priorities() map[hint.ID]float64 { return c.learner.Priorities() }

// TrackedHintSets returns the number of hint sets with statistics in the
// current window (bounded by k in top-k mode).
func (c *Cache) TrackedHintSets() int { return c.learner.TrackedHintSets() }
