package core

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// These tests pin the observability contract on top of the zero-allocation
// one: the request path stays allocation-free with metrics fully engaged —
// per-batch histogram observations, snapshot-counter reads, and timeline
// ticks sampling the front — exactly how the network server instruments it.

// TestAccessInstrumentedAllocs wraps the mutex-engine per-request path with
// a service-time histogram and a registry-backed counter.
func TestAccessInstrumentedAllocs(t *testing.T) {
	s := NewSharded(Config{Capacity: 512, Window: 2000, TopK: 64}, 4)
	reqs := shardedTrace(200000, 99)
	for _, r := range reqs {
		s.Access(r)
	}
	var lat metrics.Histogram
	var served metrics.Counter
	i := 0
	if avg := testing.AllocsPerRun(20000, func() {
		start := time.Now()
		s.Access(reqs[i%len(reqs)])
		lat.Observe(uint64(time.Since(start)))
		served.Inc()
		i++
	}); avg != 0 {
		t.Errorf("instrumented Access allocates %v allocs/op, want 0", avg)
	}
	if served.Value() == 0 || lat.Count() != served.Value() {
		t.Fatalf("instruments did not record: served=%d observed=%d", served.Value(), lat.Count())
	}
}

// TestAccessBatchInstrumentedAllocs is the owner-engine batch path under
// the server's full instrumentation: batch-latency histogram, stats
// snapshot, and a timeline tick per batch.
func TestAccessBatchInstrumentedAllocs(t *testing.T) {
	s := NewSharded(Config{Capacity: 512, Window: 2000, TopK: 64, Engine: EngineOwner}, 4)
	defer s.Close()
	p := s.NewProducer()
	defer p.Close()
	reqs := shardedTrace(200000, 99)
	hits := make([]bool, DefaultAccessBatch)

	var lat metrics.Histogram
	tl := metrics.NewTimeline(discardWriter{})
	tl.Delta("requests", func() float64 { return float64(s.Stats().Requests) })
	tl.RatioOfDeltas("hit_ratio",
		func() float64 { return float64(s.Stats().ReadHits) },
		func() float64 { return float64(s.Stats().Reads) })
	tl.Value("outq", func() float64 { return float64(s.OutqueueLen()) })
	tl.Quantile("batch_p99_ns", &lat, 0.99)
	clock := time.Duration(0)
	tl.SetClock(func() time.Duration { clock += time.Millisecond; return clock })

	batch := func(off int) {
		end := off + DefaultAccessBatch
		if end > len(reqs) {
			end = len(reqs)
		}
		start := time.Now()
		p.AccessBatch(reqs[off:end], hits)
		lat.Observe(uint64(time.Since(start)))
	}
	for off := 0; off < len(reqs); off += DefaultAccessBatch {
		batch(off)
	}
	if err := tl.Tick("interval"); err != nil {
		t.Fatal(err)
	}
	off := 0
	if avg := testing.AllocsPerRun(200, func() {
		batch(off)
		if err := tl.Tick("interval"); err != nil {
			t.Fatal(err)
		}
		off = (off + DefaultAccessBatch) % (len(reqs) - DefaultAccessBatch)
	}); avg != 0 {
		t.Errorf("instrumented AccessBatch allocates %v allocs per batch, want 0", avg)
	}
}

// TestShardedEvictions checks eviction accounting against first
// principles: a capacity-bounded cache fed more distinct pages than it can
// hold, with re-references so admits carry enough priority to displace
// victims, must report evictions, and the per-shard counts must sum to the
// front's total.
func TestShardedEvictions(t *testing.T) {
	for _, engine := range []EngineMode{EngineMutex, EngineOwner} {
		s := NewSharded(Config{Capacity: 128, Window: 500, TopK: 32, Engine: engine}, 4)
		reqs := shardedTrace(50000, 7)
		p := s.NewProducer()
		hits := make([]bool, len(reqs))
		p.AccessBatch(reqs, hits)
		st := s.Stats()
		if st.Evictions == 0 {
			t.Errorf("%v: no evictions recorded over %d requests at capacity %d", engine, len(reqs), s.Capacity())
		}
		var sum uint64
		for i := 0; i < s.Shards(); i++ {
			sum += s.ShardStats(i).Evictions
		}
		if sum != st.Evictions {
			t.Errorf("%v: shard evictions sum %d != front total %d", engine, sum, st.Evictions)
		}
		p.Close()
		s.Close()
	}
}

// TestShardStatsSum checks that the per-shard view tiles the front's
// aggregate exactly once the engine is quiescent.
func TestShardStatsSum(t *testing.T) {
	s := NewSharded(Config{Capacity: 256, Window: 1000, TopK: 32, Engine: EngineOwner}, 4)
	defer s.Close()
	p := s.NewProducer()
	defer p.Close()
	reqs := shardedTrace(20000, 3)
	hits := make([]bool, len(reqs))
	p.AccessBatch(reqs, hits)

	want := s.Stats()
	var got Stats
	for i := 0; i < s.Shards(); i++ {
		ss := s.ShardStats(i)
		got.Reads += ss.Reads
		got.ReadHits += ss.ReadHits
		got.Writes += ss.Writes
		got.Evictions += ss.Evictions
		got.Len += ss.Len
		got.OutqueueLen += ss.OutqueueLen
		got.Windows += ss.Windows
	}
	if got.Reads != want.Reads || got.ReadHits != want.ReadHits || got.Writes != want.Writes ||
		got.Evictions != want.Evictions || got.Len != want.Len ||
		got.OutqueueLen != want.OutqueueLen || got.Windows != want.Windows {
		t.Fatalf("shard stats do not tile the aggregate:\n  sum:   %+v\n  front: %+v", got, want)
	}
	if want.Reads+want.Writes != uint64(len(reqs)) {
		t.Fatalf("request count %d+%d != %d", want.Reads, want.Writes, len(reqs))
	}
}

// TestTrackedHintSets sanity-checks the observability read in both
// statistics modes. The count covers the current window only (it resets on
// rotation), so the request count deliberately lands mid-window.
func TestTrackedHintSets(t *testing.T) {
	for _, mode := range []StatsMode{StatsPartitioned, StatsGlobal} {
		s := NewSharded(Config{Capacity: 256, Window: 1000, TopK: 32, Stats: mode}, 4)
		reqs := shardedTrace(5500, 11)
		for _, r := range reqs {
			s.Access(r)
		}
		if n := s.TrackedHintSets(); n <= 0 {
			t.Errorf("%v: TrackedHintSets = %d, want > 0", mode, n)
		}
		s.Close()
	}
}

// discardWriter is a trivial sink for timeline rows in the alloc loops.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
