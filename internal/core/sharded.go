package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/clicstats"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Sharded is a concurrency-safe CLIC front: it hash-partitions the page
// space across N independent Caches, each guarded by its own mutex and
// carrying its own outqueue. Requests for different shards proceed in
// parallel, so multiple simulated clients can drive one server cache
// concurrently — the serving scenario the single Cache (which is not safe
// for concurrent use) cannot support.
//
// Partitioning preserves CLIC's placement semantics per shard: a page's
// whole history lands on one shard, so re-reference detection, outqueue
// records and victim selection for that page are exactly those of a plain
// Cache over the shard's request subsequence.
//
// Where the hint statistics are learned is Config.Stats:
//
//   - StatsPartitioned (default): each shard owns a private learner over a
//     scaled W/N window; it sees ~1/N of the requests and learns its own
//     priority table. Accessors merge the per-shard accounting back into
//     cache-wide totals.
//   - StatsGlobal: all shards feed and read one shared lock-striped
//     learner (clicstats.Global) over the full window W, so the priority
//     model is cache-wide and coherent while placement stays partitioned.
type Sharded struct {
	shards   []shardedShard
	capacity int
	mode     StatsMode
	engine   EngineMode
	// global is the shared learner in StatsGlobal and StatsMerged modes
	// (nil otherwise); merged is its cluster view in StatsMerged mode.
	global *clicstats.Global
	merged *clicstats.Merged

	// Owner-engine state (EngineOwner only): the owner goroutines' lifetime
	// and the internal fallback producer behind the per-request Access path.
	quit    chan struct{}
	ownerWg sync.WaitGroup
	closed  atomic.Bool
	fbMu    sync.Mutex
	fbOnce  sync.Once
	fbProd  *Producer
	fbReq   [1]trace.Request
	fbHits  [1]bool
}

// shardedShard pairs one Cache partition with its lock. Padding the mutex
// is unnecessary: the Cache maps behind it dominate cache-line traffic.
//
// The counters mirror the shard's accounting so that cross-shard snapshots
// (Stats, Len, OutqueueLen, Windows) are plain atomic loads instead of a
// sweep that takes every shard lock: the network server reads them on every
// response batch. They are written only while mu is held, so each counter
// is internally exact; a snapshot across counters is consistent up to
// in-flight requests on other shards.
type shardedShard struct {
	mu sync.Mutex
	c  *Cache

	// bell is the owner goroutine's doorbell in EngineOwner mode: producers
	// send their ring when it transitions empty→nonempty (see owner.go).
	bell chan *spscRing

	reads     atomic.Uint64
	readHits  atomic.Uint64
	writes    atomic.Uint64
	evictions atomic.Uint64
	len       atomic.Int64
	outq      atomic.Int64
	windows   atomic.Int64
}

var _ policy.Policy = (*Sharded)(nil)

// NewSharded returns a CLIC front with n shards. The configured capacity,
// outqueue and window are totals for the whole front: capacity and outqueue
// entries are split across shards (remainders go to the low shards). In
// partitioned-statistics mode each shard's window is W/n so the front as a
// whole rotates statistics about every W requests under a uniform request
// spread; in global mode the shared learner rotates exactly every W
// requests, cache-wide. n = 1 degenerates to a mutex-guarded plain Cache.
func NewSharded(cfg Config, n int) *Sharded {
	if n <= 0 {
		panic("core: NewSharded needs at least one shard")
	}
	if cfg.Capacity < 0 {
		panic("core: negative capacity")
	}
	full := cfg.withDefaults()
	s := &Sharded{shards: make([]shardedShard, n), capacity: full.Capacity, mode: full.Stats, engine: full.Engine}
	switch full.Stats {
	case StatsGlobal:
		s.global = clicstats.NewGlobal(full.learnerConfig())
	case StatsMerged:
		s.merged = clicstats.NewMerged(full.learnerConfig())
		s.global = s.merged.Global
	}
	window := full.Window
	if s.global == nil {
		window /= n
		if window < 1 {
			window = 1
		}
	}
	for i := range s.shards {
		sub := Config{
			Capacity: splitEven(full.Capacity, n, i),
			Window:   window,
			R:        full.R,
			TopK:     full.TopK,
			Stats:    full.Stats,
			Stripes:  full.Stripes,
		}
		// withDefaults has already resolved Noutq to an entry count; a zero
		// split must not re-trigger the 5×-capacity default, so disabled
		// shards get NoOutqueue explicitly.
		if q := splitEven(full.Noutq, n, i); q > 0 {
			sub.Noutq = q
		} else {
			sub.Noutq = NoOutqueue
		}
		sub = sub.withDefaults()
		if s.global != nil {
			s.shards[i].c = newCache(sub, s.global)
		} else {
			s.shards[i].c = newCache(sub, clicstats.NewPartitioned(sub.learnerConfig()))
		}
	}
	if s.engine == EngineOwner {
		s.quit = make(chan struct{})
		for i := range s.shards {
			s.shards[i].bell = make(chan *spscRing, 128)
			s.ownerWg.Add(1)
			go s.ownerLoop(i)
		}
	}
	return s
}

// splitEven distributes total across n buckets, giving the remainder to the
// lowest-indexed buckets.
func splitEven(total, n, i int) int {
	v := total / n
	if i < total%n {
		v++
	}
	return v
}

// ShardFor returns the shard index that owns a page. The mapping is a fixed
// hash of the page number, so a page's whole request history stays on one
// shard.
func (s *Sharded) ShardFor(page uint64) int {
	return int(mix64(page) % uint64(len(s.shards)))
}

// mix64 is the SplitMix64 finalizer, a cheap full-avalanche mixer: page
// numbers are sequential per table/region, so taking them mod N directly
// would stripe hot regions onto few shards.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Name implements policy.Policy. The name reflects sharding only, not the
// statistics mode, so results from either mode label comparably (the mode
// is reported via Stats/StatsMode).
func (s *Sharded) Name() string {
	if len(s.shards) == 1 {
		return "CLIC"
	}
	return fmt.Sprintf("CLIC/%d", len(s.shards))
}

// StatsMode returns the statistics-learning mode in effect.
func (s *Sharded) StatsMode() StatsMode { return s.mode }

// Merged returns the shared cluster-mode learner, or nil outside
// StatsMerged. The cluster layer uses it to wire summary publication and
// absorption (internal/cluster); everything else treats the front
// identically to global mode.
func (s *Sharded) Merged() *clicstats.Merged { return s.merged }

// EngineMode returns the concurrency architecture in effect.
func (s *Sharded) EngineMode() EngineMode { return s.engine }

// Access implements policy.Policy. It is safe for concurrent use: requests
// hitting different shards proceed in parallel, requests for the same shard
// serialize on its mutex. In global mode the shards additionally share the
// learner, whose hot path is lock-striped by hint set. In owner mode this
// path pays a frame round trip per request — batch drivers should use
// NewProducer/AccessBatch instead.
func (s *Sharded) Access(r trace.Request) bool {
	if s.engine == EngineOwner {
		return s.accessOwner(r)
	}
	sh := &s.shards[s.ShardFor(r.Page)]
	sh.mu.Lock()
	hit := sh.c.Access(r)
	sh.len.Store(int64(sh.c.Len()))
	sh.outq.Store(int64(sh.c.OutqueueLen()))
	sh.evictions.Store(sh.c.Evictions())
	if s.global == nil {
		sh.windows.Store(int64(sh.c.Windows()))
	}
	if r.Op == trace.Read {
		sh.reads.Add(1)
		if hit {
			sh.readHits.Add(1)
		}
	} else {
		sh.writes.Add(1)
	}
	sh.mu.Unlock()
	return hit
}

// Len implements policy.Policy, summing the shards' cached-page counts.
func (s *Sharded) Len() int {
	n := int64(0)
	for i := range s.shards {
		n += s.shards[i].len.Load()
	}
	return int(n)
}

// Capacity implements policy.Policy, returning the front's total capacity.
func (s *Sharded) Capacity() int { return s.capacity }

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Windows returns the number of completed statistics windows: summed
// across the per-shard learners in partitioned mode, the shared learner's
// count in global mode.
func (s *Sharded) Windows() int {
	if s.global != nil {
		return s.global.Windows()
	}
	n := int64(0)
	for i := range s.shards {
		n += s.shards[i].windows.Load()
	}
	return int(n)
}

// OutqueueLen returns the total number of outqueue entries across shards.
func (s *Sharded) OutqueueLen() int {
	n := int64(0)
	for i := range s.shards {
		n += s.shards[i].outq.Load()
	}
	return int(n)
}

// Stats is a point-in-time snapshot of a Sharded front's accounting.
type Stats struct {
	// Requests, Reads, ReadHits, ReadMisses and Writes count every Access
	// since construction; Requests = Reads + Writes and
	// Reads = ReadHits + ReadMisses.
	Requests   uint64
	Reads      uint64
	ReadHits   uint64
	ReadMisses uint64
	Writes     uint64
	// Evictions counts cached pages displaced by higher-priority admits.
	Evictions uint64
	// Len, OutqueueLen and Windows mirror the like-named methods.
	Len         int
	OutqueueLen int
	Windows     int
	// Shards and Capacity are the front's fixed configuration; Learner is
	// the statistics mode ("partitioned" or "global") and Engine the
	// concurrency architecture ("mutex" or "owner").
	Shards   int
	Capacity int
	Learner  string
	Engine   string
}

// HitRatio returns the snapshot's read hit ratio (0 when no reads yet).
func (st Stats) HitRatio() float64 {
	if st.Reads == 0 {
		return 0
	}
	return float64(st.ReadHits) / float64(st.Reads)
}

// Stats assembles a snapshot from the per-shard counters without taking any
// shard lock — a handful of atomic loads, cheap enough for a network server
// to call per response batch. Counters from shards with requests in flight
// may lag by those requests; each counter is individually exact.
func (s *Sharded) Stats() Stats {
	st := Stats{Shards: len(s.shards), Capacity: s.capacity, Learner: s.mode.String(), Engine: s.engine.String()}
	for i := range s.shards {
		sh := &s.shards[i]
		// Load readHits before reads: a concurrent Access bumps reads
		// first, so hits observed here can only lag the reads observed
		// next, keeping ReadHits <= Reads (and ReadMisses non-negative)
		// in every snapshot.
		st.ReadHits += sh.readHits.Load()
		st.Reads += sh.reads.Load()
		st.Writes += sh.writes.Load()
		st.Evictions += sh.evictions.Load()
		st.Len += int(sh.len.Load())
		st.OutqueueLen += int(sh.outq.Load())
		st.Windows += int(sh.windows.Load())
	}
	if s.global != nil {
		st.Windows = s.global.Windows()
	}
	st.Requests = st.Reads + st.Writes
	st.ReadMisses = st.Reads - st.ReadHits
	return st
}

// ShardStats is one shard's share of the front's accounting — the same
// counters Stats sums, kept per shard so observability surfaces (/stats,
// /metrics, timelines) can show load skew across the partition hash.
type ShardStats struct {
	Reads       uint64 `json:"reads"`
	ReadHits    uint64 `json:"read_hits"`
	Writes      uint64 `json:"writes"`
	Evictions   uint64 `json:"evictions"`
	Len         int    `json:"len"`
	OutqueueLen int    `json:"outqueue_len"`
	// Windows is the shard learner's completed-window count; in global
	// statistics mode rotations are cache-wide, so it reports 0 here and
	// Stats.Windows carries the shared count.
	Windows int `json:"windows"`
}

// ShardStats snapshots shard i's counters without taking its lock, with the
// same read-hits-before-reads ordering (and the same in-flight lag caveat)
// as Stats.
func (s *Sharded) ShardStats(i int) ShardStats {
	sh := &s.shards[i]
	var st ShardStats
	st.ReadHits = sh.readHits.Load()
	st.Reads = sh.reads.Load()
	st.Writes = sh.writes.Load()
	st.Evictions = sh.evictions.Load()
	st.Len = int(sh.len.Load())
	st.OutqueueLen = int(sh.outq.Load())
	if s.global == nil {
		st.Windows = int(sh.windows.Load())
	}
	return st
}

// TrackedHintSets returns the number of hint sets the statistics learner
// currently tracks: the shared learner's count in global mode, the sum of
// the per-shard learners' counts in partitioned mode (a hint set seen by
// several shards counts once per shard). Partitioned mode pays a control
// frame or lock per shard — an observability read, not a hot-path one.
func (s *Sharded) TrackedHintSets() int {
	if s.global != nil {
		return s.global.TrackedHintSets()
	}
	n := 0
	for i := range s.shards {
		s.withCache(i, func(c *Cache) { n += c.Learner().TrackedHintSets() })
	}
	return n
}

// WindowStats returns cache-wide per-hint-set statistics for the current
// window. In global mode this is one snapshot of the shared learner; in
// partitioned mode the per-shard learners' snapshots are merged: N and Nr
// sum across shards, D is the combined mean distance, and Pr is recomputed
// from the merged numbers (Equation 2). Either way the result is sorted
// like Cache.WindowStats.
func (s *Sharded) WindowStats() []HintStat {
	if s.global != nil {
		return s.global.WindowStats()
	}
	parts := make([][]HintStat, len(s.shards))
	for i := range s.shards {
		i := i
		s.withCache(i, func(c *Cache) { parts[i] = c.WindowStats() })
	}
	return clicstats.MergeHintStats(parts...)
}
