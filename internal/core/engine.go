package core

import "fmt"

// EngineMode selects the concurrency architecture of a Sharded front's
// request path.
type EngineMode int

const (
	// EngineMutex guards every shard with its own sync.Mutex: callers run
	// the cache code themselves under the shard lock. This is the historical
	// architecture and the default. Requests for different shards proceed in
	// parallel; requests for one shard serialize on its lock, and every
	// access pays the lock plus the per-shard atomic snapshot counters.
	EngineMutex EngineMode = iota
	// EngineOwner gives each shard a single goroutine that owns its cache
	// exclusively. Producers (one per client goroutine or connection) post
	// pooled request frames into per-producer SPSC rings and the shard
	// owners drain them, so the cache code itself runs with no lock and no
	// per-request atomics — synchronization happens once per frame, not once
	// per request. Sharded fronts in this mode must be Closed when done and
	// are driven through Producer handles (Access still works, via an
	// internal fallback producer, but pays a round trip per request).
	EngineOwner
)

// String returns the flag spelling of the mode.
func (m EngineMode) String() string {
	switch m {
	case EngineMutex:
		return "mutex"
	case EngineOwner:
		return "owner"
	default:
		return fmt.Sprintf("EngineMode(%d)", int(m))
	}
}

// ParseEngineMode parses the flag spelling of an engine mode.
func ParseEngineMode(s string) (EngineMode, error) {
	switch s {
	case "mutex", "":
		return EngineMutex, nil
	case "owner", "single-owner":
		return EngineOwner, nil
	default:
		return 0, fmt.Errorf("core: unknown engine mode %q (want mutex or owner)", s)
	}
}
