// Package core implements CLIC (CLient-Informed Caching), the paper's
// primary contribution: a generic, adaptive, hint-based replacement policy
// for second-tier storage-server caches.
//
// CLIC assigns each hint set H a caching priority
//
//	Pr(H) = fhit(H) / D(H),    fhit(H) = Nr(H) / N(H)     (Equations 1–2)
//
// where N(H) counts requests with hint set H, Nr(H) counts those requests
// that were followed by a read re-reference of the same page, and D(H) is
// the mean re-reference distance. Statistics are gathered per window of W
// requests and blended across windows with decay r (Equation 3). The cache
// itself plus a bounded outqueue of Noutq recently seen but uncached pages
// provide the "most recent request" records (seq, hint set) needed to
// detect read re-references (§3.1).
//
// Replacement follows Figure 4: a newly requested page is cached only if
// some cached page has strictly lower priority; the victim is the
// minimum-priority page, ties broken by minimum sequence number.
//
// The statistics machinery itself — window accounting, decay blending,
// the priority table, and the optional Space-Saving top-k bound (§5, set
// via Config.TopK) — lives in internal/clicstats behind the Learner
// interface; the cache detects re-references, feeds them to its learner,
// and re-keys its victim heap whenever the learner publishes a new
// priority table (tracked by the learner's epoch). Config.Stats selects
// how a sharded front learns: a private per-shard learner over a scaled
// window (StatsPartitioned, the default) or one shared lock-striped
// learner fed by all shards (StatsGlobal).
//
// Config.Engine selects how a Sharded front is driven. EngineMutex (the
// default) guards each shard with a sync.Mutex and serves any goroutine
// directly. EngineOwner gives each shard a dedicated owner goroutine —
// the only code that ever touches that shard's cache — fed by per-producer
// SPSC frame rings (see owner.go); callers obtain a Producer via
// Sharded.NewProducer and submit batches with AccessBatch. The engines
// are behaviorally bit-identical per producer stream; the owner engine
// trades the universal call-from-anywhere API for a lock-free request
// path. Both engines keep the steady-state request path allocation-free:
// page/outqueue entries, victim groups, Space-Saving counters and window
// statistics are all recycled through freelists.
package core

import (
	"container/heap"
	"fmt"

	"repro/internal/clicstats"
	"repro/internal/hint"
	"repro/internal/policy"
	"repro/internal/trace"
)

// StatsMode selects where a cache's hint statistics are learned.
type StatsMode int

const (
	// StatsPartitioned gives every cache (or every shard of a Sharded
	// front) its own private learner: statistics windows, top-k summaries
	// and priority tables are per shard, sized W/N. This is the fully
	// partitioned heuristic and the historical default.
	StatsPartitioned StatsMode = iota
	// StatsGlobal shares one concurrency-safe lock-striped learner across
	// all shards of a Sharded front: priorities are learned from the
	// cache-wide request stream over the full window W while page
	// placement stays hash-partitioned.
	StatsGlobal
	// StatsMerged is StatsGlobal extended for a cluster of cache nodes: the
	// shared learner additionally publishes each closed window's counters
	// for peers and folds peer summaries into its rotations
	// (clicstats.Merged), so priorities approximate the cluster-wide
	// request stream. Meaningful when wired to an exchanger
	// (internal/cluster); unwired it behaves exactly like StatsGlobal.
	StatsMerged
)

// String returns the flag spelling of the mode.
func (m StatsMode) String() string {
	switch m {
	case StatsPartitioned:
		return "partitioned"
	case StatsGlobal:
		return "global"
	case StatsMerged:
		return "merged"
	default:
		return fmt.Sprintf("StatsMode(%d)", int(m))
	}
}

// ParseStatsMode parses the flag spelling of a statistics mode.
func ParseStatsMode(s string) (StatsMode, error) {
	switch s {
	case "partitioned", "":
		return StatsPartitioned, nil
	case "global":
		return StatsGlobal, nil
	case "merged":
		return StatsMerged, nil
	default:
		return 0, fmt.Errorf("core: unknown stats mode %q (want partitioned, global or merged)", s)
	}
}

// Config parameterises a CLIC cache.
type Config struct {
	// Capacity is the cache size in pages.
	Capacity int
	// Noutq is the number of outqueue entries. Zero selects the paper's
	// setting of 5 entries per cache page (§6.1); NoOutqueue disables the
	// outqueue so re-references are detected only for cached pages.
	Noutq int
	// Window is W, the number of requests per statistics window. Zero
	// selects DefaultWindow.
	Window int
	// R is the exponential decay parameter r in (0, 1]; at 1 (the paper's
	// setting) priorities reflect only the most recent window. Zero selects
	// 1.
	R float64
	// TopK bounds hint-set tracking to the k most frequent hint sets using
	// the adapted Space-Saving algorithm (§5). Zero tracks all hint sets
	// exactly.
	TopK int
	// Stats selects partitioned (default) or global statistics learning;
	// see StatsMode. For a plain Cache the modes learn identical
	// priorities (global merely pays for concurrency-safety); the mode
	// matters for Sharded fronts.
	Stats StatsMode
	// Stripes is the lock-stripe count of a global learner; 0 selects
	// clicstats.DefaultStripes. Ignored in partitioned mode.
	Stripes int
	// LocalBias weights a merged learner's node-local window estimate over
	// the cluster-merged one, in [0, 1); see clicstats.Config.LocalBias.
	// Ignored outside StatsMerged.
	LocalBias float64
	// Engine selects the concurrency architecture of a Sharded front built
	// from this configuration: mutex-per-shard (default) or single-owner
	// shard goroutines fed by SPSC frame rings; see EngineMode. A plain
	// Cache ignores it.
	Engine EngineMode
}

// DefaultWindow is the statistics window used when Config.Window is zero.
// The paper uses W = 1e6 on traces of 3M–635M requests; our scaled traces
// are ~10× shorter, so the default window scales likewise.
const DefaultWindow = 100_000

// NoOutqueue, assigned to Config.Noutq, disables the outqueue entirely.
const NoOutqueue = -1

func (cfg Config) withDefaults() Config {
	if cfg.Noutq == 0 {
		cfg.Noutq = 5 * cfg.Capacity
	} else if cfg.Noutq < 0 {
		cfg.Noutq = 0
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.R == 0 {
		cfg.R = 1
	}
	return cfg
}

// learnerConfig maps a resolved cache configuration to its learner's.
func (cfg Config) learnerConfig() clicstats.Config {
	return clicstats.Config{Window: cfg.Window, R: cfg.R, TopK: cfg.TopK, Stripes: cfg.Stripes, LocalBias: cfg.LocalBias}
}

// Cache is a CLIC server cache. It is not safe for concurrent use (wrap it
// in Sharded for that), even when its learner is.
type Cache struct {
	cfg Config
	seq uint64

	// learner owns the hint statistics and the priority table; epoch is
	// the learner epoch the group heap's cached priorities were last
	// synced at.
	learner clicstats.Learner
	epoch   uint64

	// Cached pages, grouped per hint set.
	pages  map[uint64]*pageEntry
	groups map[hint.ID]*group
	heap   groupHeap

	// Outqueue of recently seen, uncached pages (§3.1). Its entry freelist
	// is shared with the cached-page entries: pages migrate between the two
	// structures on every admit/evict, so one pool serves both.
	out outqueue

	// freeGroups recycles empty hint-set groups; groups churn whenever a
	// hint set's last page leaves the cache.
	freeGroups []*group

	// evictions counts cached pages displaced by a higher-priority admit.
	// Plain (the cache is single-owner); Sharded mirrors it into an atomic.
	evictions uint64
}

var _ policy.Policy = (*Cache)(nil)

// New returns a CLIC cache for the given configuration, with a private
// learner built per Config.Stats.
func New(cfg Config) *Cache {
	if cfg.Capacity < 0 {
		panic("core: negative capacity")
	}
	cfg = cfg.withDefaults()
	var l clicstats.Learner
	switch cfg.Stats {
	case StatsGlobal:
		l = clicstats.NewGlobal(cfg.learnerConfig())
	case StatsMerged:
		l = clicstats.NewMerged(cfg.learnerConfig())
	default:
		l = clicstats.NewPartitioned(cfg.learnerConfig())
	}
	return newCache(cfg, l)
}

// newCache builds a cache around an externally owned learner (Sharded
// shares one learner across shards in global mode). cfg must already have
// defaults applied.
func newCache(cfg Config, l clicstats.Learner) *Cache {
	c := &Cache{
		cfg:     cfg,
		learner: l,
		pages:   make(map[uint64]*pageEntry, cfg.Capacity),
		groups:  make(map[hint.ID]*group),
	}
	c.out.init(cfg.Noutq)
	return c
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "CLIC" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.cfg.Capacity }

// Config returns the configuration in effect (with defaults applied).
func (c *Cache) Config() Config { return c.cfg }

// Learner exposes the cache's statistics learner.
func (c *Cache) Learner() clicstats.Learner { return c.learner }

// Evictions returns the number of cached pages evicted to admit a
// higher-priority page.
func (c *Cache) Evictions() uint64 { return c.evictions }

// Access implements policy.Policy, processing one request per Figure 4 and
// feeding the hint statistics of §3.1 to the learner.
func (c *Cache) Access(r trace.Request) bool {
	// A shared learner may have rotated since our last request; re-key the
	// victim heap before any placement decision reads priorities.
	c.syncPriorities()

	s := c.seq
	c.seq++

	// One lookup in each table serves both the statistics and the placement
	// decision below: e is the page's cached record, oe its outqueue record
	// (at most one of the two exists).
	e, cached := c.pages[r.Page]
	var oe *pageEntry
	if !cached {
		oe, _ = c.out.get(r.Page)
	}

	// Statistics: count the arrival, and detect a read re-reference using
	// the most-recent-request record held in the cache or the outqueue.
	c.learner.Arrive(r.Hint)
	if r.Op == trace.Read {
		if cached {
			c.learner.Reref(e.hint, s-e.seq)
		} else if oe != nil {
			c.learner.Reref(oe.hint, s-oe.seq)
		}
	}

	hit := false
	if cached {
		// Figure 4 lines 23–25: refresh the record; the most recent
		// request determines the page's priority from now on.
		hit = r.Op == trace.Read
		c.rehint(e, s, r.Hint)
	} else {
		c.admit(r.Page, s, r.Hint, oe)
	}

	if c.learner.EndRequest() {
		c.syncPriorities()
	}
	return hit
}

// syncPriorities re-keys the group heap against the learner's current
// priority table if the table changed since the last sync (§4: the heap is
// keyed by priority, so a rotation invalidates its order).
func (c *Cache) syncPriorities() {
	e := c.learner.Epoch()
	if e == c.epoch {
		return
	}
	c.epoch = e
	for _, g := range c.groups {
		g.pr = c.learner.Priority(g.hint)
	}
	heap.Init(&c.heap)
}

// admit handles a request for an uncached page (Figure 4 lines 1–22). oe is
// the page's outqueue record if it has one (already looked up by Access).
func (c *Cache) admit(page, s uint64, h hint.ID, oe *pageEntry) {
	if len(c.pages) < c.cfg.Capacity {
		c.insert(page, s, h, oe)
		return
	}
	if c.cfg.Capacity > 0 && len(c.heap) > 0 {
		top := c.heap[0]
		if c.priority(h) > top.pr {
			v := top.head // minimum seq within the minimum-priority group
			c.removeFromGroup(v)
			delete(c.pages, v.page)
			c.evictions++
			// The victim's record enters the outqueue before the new page's
			// stale record leaves (the order the original per-step code
			// implied): if the outqueue is full, the entry displaced can be
			// oe itself, in which case the incoming page no longer has a
			// record to drop.
			if c.out.putEntry(v) == oe {
				oe = nil
			}
			c.insert(page, s, h, oe)
			return
		}
	}
	// Do not cache: record the request in the outqueue (lines 19–22).
	if oe != nil {
		c.out.refresh(oe, s, h)
	} else {
		c.out.putNew(page, s, h)
	}
}

// insert caches a page with the given record. oe is the page's outqueue
// record if it still has one; the cache now holds the authoritative record,
// so the stale one is dropped.
func (c *Cache) insert(page, s uint64, h hint.ID, oe *pageEntry) {
	if c.cfg.Capacity == 0 {
		if oe != nil {
			c.out.refresh(oe, s, h)
		} else {
			c.out.putNew(page, s, h)
		}
		return
	}
	if oe != nil {
		c.out.dropEntry(oe)
	}
	e := c.out.takeFree(page, s, h)
	c.pages[page] = e
	c.appendToGroup(e, h)
}

// rehint updates a cached page's record after a new request for it.
func (c *Cache) rehint(e *pageEntry, s uint64, h hint.ID) {
	c.removeFromGroup(e)
	e.seq = s
	e.hint = h
	c.appendToGroup(e, h)
}

// priority returns Pr(H) in effect during the current window.
func (c *Cache) priority(h hint.ID) float64 { return c.learner.Priority(h) }
