// Package core implements CLIC (CLient-Informed Caching), the paper's
// primary contribution: a generic, adaptive, hint-based replacement policy
// for second-tier storage-server caches.
//
// CLIC assigns each hint set H a caching priority
//
//	Pr(H) = fhit(H) / D(H),    fhit(H) = Nr(H) / N(H)     (Equations 1–2)
//
// where N(H) counts requests with hint set H, Nr(H) counts those requests
// that were followed by a read re-reference of the same page, and D(H) is
// the mean re-reference distance. Statistics are gathered per window of W
// requests and blended across windows with decay r (Equation 3). The cache
// itself plus a bounded outqueue of Noutq recently seen but uncached pages
// provide the "most recent request" records (seq, hint set) needed to
// detect read re-references (§3.1).
//
// Replacement follows Figure 4: a newly requested page is cached only if
// some cached page has strictly lower priority; the victim is the
// minimum-priority page, ties broken by minimum sequence number.
//
// Hint-set tracking can optionally be bounded to the k most frequent hint
// sets with an adapted Space-Saving summary (§5) by setting Config.TopK.
package core

import (
	"repro/internal/hint"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Config parameterises a CLIC cache.
type Config struct {
	// Capacity is the cache size in pages.
	Capacity int
	// Noutq is the number of outqueue entries. Zero selects the paper's
	// setting of 5 entries per cache page (§6.1); NoOutqueue disables the
	// outqueue so re-references are detected only for cached pages.
	Noutq int
	// Window is W, the number of requests per statistics window. Zero
	// selects DefaultWindow.
	Window int
	// R is the exponential decay parameter r in (0, 1]; at 1 (the paper's
	// setting) priorities reflect only the most recent window. Zero selects
	// 1.
	R float64
	// TopK bounds hint-set tracking to the k most frequent hint sets using
	// the adapted Space-Saving algorithm (§5). Zero tracks all hint sets
	// exactly.
	TopK int
}

// DefaultWindow is the statistics window used when Config.Window is zero.
// The paper uses W = 1e6 on traces of 3M–635M requests; our scaled traces
// are ~10× shorter, so the default window scales likewise.
const DefaultWindow = 100_000

// NoOutqueue, assigned to Config.Noutq, disables the outqueue entirely.
const NoOutqueue = -1

func (cfg Config) withDefaults() Config {
	if cfg.Noutq == 0 {
		cfg.Noutq = 5 * cfg.Capacity
	} else if cfg.Noutq < 0 {
		cfg.Noutq = 0
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.R == 0 {
		cfg.R = 1
	}
	return cfg
}

// Cache is a CLIC server cache. It is not safe for concurrent use.
type Cache struct {
	cfg Config
	seq uint64

	// pr holds the priorities in effect during the current window,
	// computed at the last window boundary (Equation 3).
	pr map[hint.ID]float64

	// Exact per-window statistics (TopK == 0).
	stats map[hint.ID]*winStats
	// Bounded per-window statistics (TopK > 0).
	topk *hintSummary

	// Cached pages, grouped per hint set.
	pages  map[uint64]*pageEntry
	groups map[hint.ID]*group
	heap   groupHeap

	// Outqueue of recently seen, uncached pages (§3.1).
	out outqueue

	sinceRotate int
	windows     int
}

var _ policy.Policy = (*Cache)(nil)

// winStats are the per-window statistics for one hint set.
type winStats struct {
	n    uint64  // N(H): requests with this hint set this window
	nr   uint64  // Nr(H): read re-references credited to this hint set
	dsum float64 // sum of re-reference distances (D(H) = dsum/nr)
}

// New returns a CLIC cache for the given configuration.
func New(cfg Config) *Cache {
	if cfg.Capacity < 0 {
		panic("core: negative capacity")
	}
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:    cfg,
		pr:     make(map[hint.ID]float64),
		pages:  make(map[uint64]*pageEntry, cfg.Capacity),
		groups: make(map[hint.ID]*group),
	}
	if cfg.TopK > 0 {
		c.topk = newHintSummary(cfg.TopK)
	} else {
		c.stats = make(map[hint.ID]*winStats)
	}
	c.out.init(cfg.Noutq)
	return c
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "CLIC" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.cfg.Capacity }

// Config returns the configuration in effect (with defaults applied).
func (c *Cache) Config() Config { return c.cfg }

// Windows returns the number of completed statistics windows.
func (c *Cache) Windows() int { return c.windows }

// Access implements policy.Policy, processing one request per Figure 4 and
// updating the hint statistics of §3.1.
func (c *Cache) Access(r trace.Request) bool {
	s := c.seq
	c.seq++

	// Statistics: count the arrival, and detect a read re-reference using
	// the most-recent-request record held in the cache or the outqueue.
	c.countArrival(r.Hint)
	if r.Op == trace.Read {
		if e, ok := c.pages[r.Page]; ok {
			c.creditReref(e.hint, s-e.seq)
		} else if e, ok := c.out.get(r.Page); ok {
			c.creditReref(e.hint, s-e.seq)
		}
	}

	hit := false
	if e, ok := c.pages[r.Page]; ok {
		// Figure 4 lines 23–25: refresh the record; the most recent
		// request determines the page's priority from now on.
		hit = r.Op == trace.Read
		c.rehint(e, s, r.Hint)
	} else {
		c.admit(r.Page, s, r.Hint)
	}

	c.sinceRotate++
	if c.sinceRotate >= c.cfg.Window {
		c.rotateWindow()
	}
	return hit
}

// admit handles a request for an uncached page (Figure 4 lines 1–22).
func (c *Cache) admit(page, s uint64, h hint.ID) {
	if len(c.pages) < c.cfg.Capacity {
		c.insert(page, s, h)
		return
	}
	if c.cfg.Capacity > 0 && len(c.heap) > 0 {
		top := c.heap[0]
		if c.priority(h) > top.pr {
			v := top.head // minimum seq within the minimum-priority group
			c.removeFromGroup(v)
			delete(c.pages, v.page)
			c.out.put(v.page, v.seq, v.hint)
			c.insert(page, s, h)
			return
		}
	}
	// Do not cache: record the request in the outqueue (lines 19–22).
	c.out.put(page, s, h)
}

// insert caches a page with the given record.
func (c *Cache) insert(page, s uint64, h hint.ID) {
	if c.cfg.Capacity == 0 {
		c.out.put(page, s, h)
		return
	}
	// If the page was in the outqueue, its stale record must go: the cache
	// now holds the authoritative record.
	c.out.drop(page)
	e := &pageEntry{page: page, seq: s, hint: h}
	c.pages[page] = e
	c.appendToGroup(e, h)
}

// rehint updates a cached page's record after a new request for it.
func (c *Cache) rehint(e *pageEntry, s uint64, h hint.ID) {
	c.removeFromGroup(e)
	e.seq = s
	e.hint = h
	c.appendToGroup(e, h)
}

// priority returns Pr(H) in effect during the current window.
func (c *Cache) priority(h hint.ID) float64 { return c.pr[h] }
