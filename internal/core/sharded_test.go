package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hint"
	"repro/internal/trace"
)

// shardedTrace builds a seeded synthetic trace with enough distinct pages
// and hint sets to populate every shard.
func shardedTrace(n int, seed int64) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	d := hint.NewDict()
	hints := []hint.ID{
		d.Intern(hint.Make("reqtype", "seq")),
		d.Intern(hint.Make("reqtype", "rand")),
		d.Intern(hint.Make("reqtype", "repl-write", "table", "stock")),
	}
	reqs := make([]trace.Request, n)
	for i := range reqs {
		op := trace.Read
		if rng.Intn(4) == 0 {
			op = trace.Write
		}
		reqs[i] = trace.Request{
			// Zipf-ish reuse: half the requests revisit a small hot set.
			Page: uint64(rng.Intn(200)),
			Hint: hints[rng.Intn(len(hints))],
			Op:   op,
		}
		if rng.Intn(2) == 0 {
			reqs[i].Page = uint64(200 + rng.Intn(5000))
		}
	}
	return reqs
}

// TestShardedMatchesPartitionedCaches drives a Sharded front request by
// request and checks that every hit/miss decision — and therefore the
// aggregate hit count — matches plain Caches run over the per-shard request
// subsequences with identical configurations.
func TestShardedMatchesPartitionedCaches(t *testing.T) {
	const shards = 4
	cfg := Config{Capacity: 64, Window: 500, TopK: 0}
	s := NewSharded(cfg, shards)

	plain := make([]*Cache, shards)
	for i := range plain {
		plain[i] = New(s.shards[i].c.Config())
	}

	var wantHits, gotHits uint64
	for i, r := range shardedTrace(20000, 42) {
		got := s.Access(r)
		want := plain[s.ShardFor(r.Page)].Access(r)
		if got != want {
			t.Fatalf("request %d (page %d): Sharded hit=%v, partitioned cache hit=%v", i, r.Page, got, want)
		}
		if got && r.Op == trace.Read {
			gotHits++
		}
		if want && r.Op == trace.Read {
			wantHits++
		}
	}
	if gotHits != wantHits {
		t.Fatalf("aggregate hits: Sharded %d, partitioned %d", gotHits, wantHits)
	}
	if gotHits == 0 {
		t.Fatal("trace produced no hits; test is vacuous")
	}

	var plainLen, plainWindows int
	for _, c := range plain {
		plainLen += c.Len()
		plainWindows += c.Windows()
	}
	if s.Len() != plainLen {
		t.Errorf("Len: Sharded %d, partitioned sum %d", s.Len(), plainLen)
	}
	if s.Windows() != plainWindows {
		t.Errorf("Windows: Sharded %d, partitioned sum %d", s.Windows(), plainWindows)
	}
}

// TestShardedSplit checks the capacity/outqueue/window split accounting.
func TestShardedSplit(t *testing.T) {
	cfg := Config{Capacity: 10, Window: 9000}
	s := NewSharded(cfg, 3)
	if s.Capacity() != 10 {
		t.Errorf("Capacity = %d, want 10", s.Capacity())
	}
	var caps, outqs int
	for i := range s.shards {
		sub := s.shards[i].c.Config()
		caps += sub.Capacity
		outqs += sub.Noutq
		if sub.Window != 3000 {
			t.Errorf("shard %d window = %d, want 3000", i, sub.Window)
		}
	}
	if caps != 10 {
		t.Errorf("shard capacities sum to %d, want 10", caps)
	}
	if outqs != 50 { // default 5 entries per cache page, split like capacity
		t.Errorf("shard outqueues sum to %d, want 50", outqs)
	}
	if got := NewSharded(Config{Capacity: 4}, 1).Name(); got != "CLIC" {
		t.Errorf("1-shard Name = %q", got)
	}
	if got := NewSharded(Config{Capacity: 4}, 8).Name(); got != "CLIC/8" {
		t.Errorf("8-shard Name = %q", got)
	}
}

// TestShardedStableMapping checks that a page always lands on the same
// shard and that the mapping spreads a sequential page range.
func TestShardedStableMapping(t *testing.T) {
	s := NewSharded(Config{Capacity: 16}, 4)
	seen := make([]int, 4)
	for p := uint64(0); p < 4000; p++ {
		a, b := s.ShardFor(p), s.ShardFor(p)
		if a != b {
			t.Fatalf("page %d mapped to %d then %d", p, a, b)
		}
		seen[a]++
	}
	for i, n := range seen {
		if n < 500 { // uniform would be 1000 per shard
			t.Errorf("shard %d received only %d of 4000 sequential pages", i, n)
		}
	}
}

// TestShardedStats drives a front serially and checks the snapshot against
// independently tallied counts and the lock-taking accessors.
func TestShardedStats(t *testing.T) {
	s := NewSharded(Config{Capacity: 64, Window: 500}, 4)
	var reads, hits, writes uint64
	for _, r := range shardedTrace(20000, 7) {
		hit := s.Access(r)
		if r.Op == trace.Read {
			reads++
			if hit {
				hits++
			}
		} else {
			writes++
		}
	}
	st := s.Stats()
	if st.Reads != reads || st.ReadHits != hits || st.Writes != writes {
		t.Errorf("Stats = reads %d hits %d writes %d, want %d %d %d",
			st.Reads, st.ReadHits, st.Writes, reads, hits, writes)
	}
	if st.Requests != reads+writes {
		t.Errorf("Requests = %d, want %d", st.Requests, reads+writes)
	}
	if st.ReadMisses != reads-hits {
		t.Errorf("ReadMisses = %d, want %d", st.ReadMisses, reads-hits)
	}
	if st.Len != s.Len() || st.OutqueueLen != s.OutqueueLen() || st.Windows != s.Windows() {
		t.Errorf("Stats structural fields (%d, %d, %d) disagree with accessors (%d, %d, %d)",
			st.Len, st.OutqueueLen, st.Windows, s.Len(), s.OutqueueLen(), s.Windows())
	}
	if st.Shards != 4 || st.Capacity != 64 {
		t.Errorf("Shards/Capacity = %d/%d, want 4/64", st.Shards, st.Capacity)
	}
	if got := st.HitRatio(); got != float64(hits)/float64(reads) {
		t.Errorf("HitRatio = %v, want %v", got, float64(hits)/float64(reads))
	}

	// The per-shard sums must equal the per-shard caches' own accounting.
	var wantLen, wantOutq, wantWin int
	for i := range s.shards {
		wantLen += s.shards[i].c.Len()
		wantOutq += s.shards[i].c.OutqueueLen()
		wantWin += s.shards[i].c.Windows()
	}
	if st.Len != wantLen || st.OutqueueLen != wantOutq || st.Windows != wantWin {
		t.Errorf("Stats structural fields (%d, %d, %d) disagree with shard caches (%d, %d, %d)",
			st.Len, st.OutqueueLen, st.Windows, wantLen, wantOutq, wantWin)
	}
}

// TestShardedConcurrent hammers one front from several goroutines (the
// multi-client serving scenario); run under -race this exercises the
// per-shard locking. Totals are checked against a serial replay.
func TestShardedConcurrent(t *testing.T) {
	const clients = 8
	cfg := Config{Capacity: 128, Window: 1000}
	s := NewSharded(cfg, 4)

	var wg sync.WaitGroup
	hits := make([]uint64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, r := range shardedTrace(5000, int64(100+c)) {
				if s.Access(r) && r.Op == trace.Read {
					hits[c]++
				}
			}
		}(c)
	}
	wg.Wait()

	var total uint64
	for _, h := range hits {
		total += h
	}
	if total == 0 {
		t.Error("no hits across all clients")
	}
	if got := s.Len(); got > s.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", got, s.Capacity())
	}
	if s.Windows() == 0 {
		t.Error("no statistics windows completed")
	}
	if s.OutqueueLen() == 0 {
		t.Error("outqueue is empty after 40K requests")
	}
	if len(s.WindowStats()) == 0 {
		t.Error("merged WindowStats is empty")
	}
}

// TestStatsModeParse round-trips the flag spellings.
func TestStatsModeParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want StatsMode
	}{{"partitioned", StatsPartitioned}, {"", StatsPartitioned}, {"global", StatsGlobal}} {
		got, err := ParseStatsMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseStatsMode(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseStatsMode("bogus"); err == nil {
		t.Error("bogus mode accepted")
	}
	if StatsPartitioned.String() != "partitioned" || StatsGlobal.String() != "global" {
		t.Error("StatsMode.String spellings changed")
	}
}

// TestShardedGlobalSingleShardMatchesCache is the mode-equivalence test of
// the learner refactor: a 1-shard Sharded front with the global learner
// must match a plain Cache request by request — same window boundary, same
// exact statistics, same priorities, hence the same hit/miss decisions.
func TestShardedGlobalSingleShardMatchesCache(t *testing.T) {
	cfg := Config{Capacity: 64, Window: 500}
	gcfg := cfg
	gcfg.Stats = StatsGlobal
	s := NewSharded(gcfg, 1)
	plain := New(cfg)

	var hits uint64
	for i, r := range shardedTrace(20000, 42) {
		got := s.Access(r)
		want := plain.Access(r)
		if got != want {
			t.Fatalf("request %d (page %d): global 1-shard hit=%v, plain cache hit=%v", i, r.Page, got, want)
		}
		if got && r.Op == trace.Read {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("trace produced no hits; test is vacuous")
	}
	if s.Len() != plain.Len() || s.Windows() != plain.Windows() || s.OutqueueLen() != plain.OutqueueLen() {
		t.Errorf("structural drift: Len %d/%d, Windows %d/%d, Outqueue %d/%d",
			s.Len(), plain.Len(), s.Windows(), plain.Windows(), s.OutqueueLen(), plain.OutqueueLen())
	}
	if s.StatsMode() != StatsGlobal {
		t.Errorf("StatsMode = %v", s.StatsMode())
	}
	sw, pw := s.WindowStats(), plain.WindowStats()
	if len(sw) != len(pw) {
		t.Fatalf("WindowStats lengths %d vs %d", len(sw), len(pw))
	}
	for i := range sw {
		if sw[i] != pw[i] {
			t.Errorf("WindowStats[%d]: %+v vs %+v", i, sw[i], pw[i])
		}
	}
}

// TestShardedGlobalSharedLearning checks what the global mode is for: the
// shards share one priority model learned over the full window W.
func TestShardedGlobalSharedLearning(t *testing.T) {
	cfg := Config{Capacity: 64, Window: 500, Stats: StatsGlobal}
	s := NewSharded(cfg, 4)
	reqs := shardedTrace(20000, 7)
	for _, r := range reqs {
		s.Access(r)
	}
	// The shared learner rotates exactly every W requests, cache-wide —
	// not W/N per shard as in partitioned mode.
	if want := len(reqs) / 500; s.Windows() != want {
		t.Errorf("Windows = %d, want %d (one rotation per full window)", s.Windows(), want)
	}
	if st := s.Stats(); st.Windows != s.Windows() || st.Learner != "global" {
		t.Errorf("Stats reports windows=%d learner=%q", st.Windows, st.Learner)
	}
	// Every shard cache reads the same learner, so their priority tables
	// are identical (and non-trivial on this re-referencing trace).
	base := s.shards[0].c.Priorities()
	if len(base) == 0 {
		t.Fatal("no priorities learned")
	}
	for i := 1; i < len(s.shards); i++ {
		pr := s.shards[i].c.Priorities()
		if len(pr) != len(base) {
			t.Fatalf("shard %d table size %d, shard 0 %d", i, len(pr), len(base))
		}
		for h, v := range base {
			if pr[h] != v {
				t.Errorf("shard %d priority[%d] = %v, shard 0 %v", i, h, pr[h], v)
			}
		}
	}
	// Partitioned mode on the same trace keeps per-shard windows.
	p := NewSharded(Config{Capacity: 64, Window: 500}, 4)
	for _, r := range reqs {
		p.Access(r)
	}
	if p.Stats().Learner != "partitioned" {
		t.Errorf("partitioned front reports learner %q", p.Stats().Learner)
	}
	if p.Windows() == s.Windows() {
		t.Logf("note: per-shard and global window counts coincide (%d)", p.Windows())
	}
}

// TestShardedGlobalConcurrent hammers a global-learner front from more
// clients than shards; under -race this exercises the stripe locks, the
// table republishing, and the lazy per-shard heap re-keying together.
func TestShardedGlobalConcurrent(t *testing.T) {
	const clients = 8
	cfg := Config{Capacity: 128, Window: 1000, Stats: StatsGlobal}
	s := NewSharded(cfg, 2)

	var wg sync.WaitGroup
	hits := make([]uint64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, r := range shardedTrace(5000, int64(100+c)) {
				if s.Access(r) && r.Op == trace.Read {
					hits[c]++
				}
			}
		}(c)
	}
	wg.Wait()

	var total uint64
	for _, h := range hits {
		total += h
	}
	if total == 0 {
		t.Error("no hits across all clients")
	}
	if got := s.Len(); got > s.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", got, s.Capacity())
	}
	if want := clients * 5000 / 1000; s.Windows() != want {
		t.Errorf("Windows = %d, want exactly %d (global rotation per W requests)", s.Windows(), want)
	}
	st := s.Stats()
	if st.Requests != clients*5000 {
		t.Errorf("Requests = %d, want %d", st.Requests, clients*5000)
	}
	// The run length is a multiple of W, so the last request closed a
	// window and drained the current-window statistics; a little more
	// traffic must show up in a fresh window.
	for _, r := range shardedTrace(100, 1) {
		s.Access(r)
	}
	if len(s.WindowStats()) == 0 {
		t.Error("global WindowStats is empty after post-rotation traffic")
	}
}
