package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hint"
	"repro/internal/trace"
)

// shardedTrace builds a seeded synthetic trace with enough distinct pages
// and hint sets to populate every shard.
func shardedTrace(n int, seed int64) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	d := hint.NewDict()
	hints := []hint.ID{
		d.Intern(hint.Make("reqtype", "seq")),
		d.Intern(hint.Make("reqtype", "rand")),
		d.Intern(hint.Make("reqtype", "repl-write", "table", "stock")),
	}
	reqs := make([]trace.Request, n)
	for i := range reqs {
		op := trace.Read
		if rng.Intn(4) == 0 {
			op = trace.Write
		}
		reqs[i] = trace.Request{
			// Zipf-ish reuse: half the requests revisit a small hot set.
			Page: uint64(rng.Intn(200)),
			Hint: hints[rng.Intn(len(hints))],
			Op:   op,
		}
		if rng.Intn(2) == 0 {
			reqs[i].Page = uint64(200 + rng.Intn(5000))
		}
	}
	return reqs
}

// TestShardedMatchesPartitionedCaches drives a Sharded front request by
// request and checks that every hit/miss decision — and therefore the
// aggregate hit count — matches plain Caches run over the per-shard request
// subsequences with identical configurations.
func TestShardedMatchesPartitionedCaches(t *testing.T) {
	const shards = 4
	cfg := Config{Capacity: 64, Window: 500, TopK: 0}
	s := NewSharded(cfg, shards)

	plain := make([]*Cache, shards)
	for i := range plain {
		plain[i] = New(s.shards[i].c.Config())
	}

	var wantHits, gotHits uint64
	for i, r := range shardedTrace(20000, 42) {
		got := s.Access(r)
		want := plain[s.ShardFor(r.Page)].Access(r)
		if got != want {
			t.Fatalf("request %d (page %d): Sharded hit=%v, partitioned cache hit=%v", i, r.Page, got, want)
		}
		if got && r.Op == trace.Read {
			gotHits++
		}
		if want && r.Op == trace.Read {
			wantHits++
		}
	}
	if gotHits != wantHits {
		t.Fatalf("aggregate hits: Sharded %d, partitioned %d", gotHits, wantHits)
	}
	if gotHits == 0 {
		t.Fatal("trace produced no hits; test is vacuous")
	}

	var plainLen, plainWindows int
	for _, c := range plain {
		plainLen += c.Len()
		plainWindows += c.Windows()
	}
	if s.Len() != plainLen {
		t.Errorf("Len: Sharded %d, partitioned sum %d", s.Len(), plainLen)
	}
	if s.Windows() != plainWindows {
		t.Errorf("Windows: Sharded %d, partitioned sum %d", s.Windows(), plainWindows)
	}
}

// TestShardedSplit checks the capacity/outqueue/window split accounting.
func TestShardedSplit(t *testing.T) {
	cfg := Config{Capacity: 10, Window: 9000}
	s := NewSharded(cfg, 3)
	if s.Capacity() != 10 {
		t.Errorf("Capacity = %d, want 10", s.Capacity())
	}
	var caps, outqs int
	for i := range s.shards {
		sub := s.shards[i].c.Config()
		caps += sub.Capacity
		outqs += sub.Noutq
		if sub.Window != 3000 {
			t.Errorf("shard %d window = %d, want 3000", i, sub.Window)
		}
	}
	if caps != 10 {
		t.Errorf("shard capacities sum to %d, want 10", caps)
	}
	if outqs != 50 { // default 5 entries per cache page, split like capacity
		t.Errorf("shard outqueues sum to %d, want 50", outqs)
	}
	if got := NewSharded(Config{Capacity: 4}, 1).Name(); got != "CLIC" {
		t.Errorf("1-shard Name = %q", got)
	}
	if got := NewSharded(Config{Capacity: 4}, 8).Name(); got != "CLIC/8" {
		t.Errorf("8-shard Name = %q", got)
	}
}

// TestShardedStableMapping checks that a page always lands on the same
// shard and that the mapping spreads a sequential page range.
func TestShardedStableMapping(t *testing.T) {
	s := NewSharded(Config{Capacity: 16}, 4)
	seen := make([]int, 4)
	for p := uint64(0); p < 4000; p++ {
		a, b := s.ShardFor(p), s.ShardFor(p)
		if a != b {
			t.Fatalf("page %d mapped to %d then %d", p, a, b)
		}
		seen[a]++
	}
	for i, n := range seen {
		if n < 500 { // uniform would be 1000 per shard
			t.Errorf("shard %d received only %d of 4000 sequential pages", i, n)
		}
	}
}

// TestShardedStats drives a front serially and checks the snapshot against
// independently tallied counts and the lock-taking accessors.
func TestShardedStats(t *testing.T) {
	s := NewSharded(Config{Capacity: 64, Window: 500}, 4)
	var reads, hits, writes uint64
	for _, r := range shardedTrace(20000, 7) {
		hit := s.Access(r)
		if r.Op == trace.Read {
			reads++
			if hit {
				hits++
			}
		} else {
			writes++
		}
	}
	st := s.Stats()
	if st.Reads != reads || st.ReadHits != hits || st.Writes != writes {
		t.Errorf("Stats = reads %d hits %d writes %d, want %d %d %d",
			st.Reads, st.ReadHits, st.Writes, reads, hits, writes)
	}
	if st.Requests != reads+writes {
		t.Errorf("Requests = %d, want %d", st.Requests, reads+writes)
	}
	if st.ReadMisses != reads-hits {
		t.Errorf("ReadMisses = %d, want %d", st.ReadMisses, reads-hits)
	}
	if st.Len != s.Len() || st.OutqueueLen != s.OutqueueLen() || st.Windows != s.Windows() {
		t.Errorf("Stats structural fields (%d, %d, %d) disagree with accessors (%d, %d, %d)",
			st.Len, st.OutqueueLen, st.Windows, s.Len(), s.OutqueueLen(), s.Windows())
	}
	if st.Shards != 4 || st.Capacity != 64 {
		t.Errorf("Shards/Capacity = %d/%d, want 4/64", st.Shards, st.Capacity)
	}
	if got := st.HitRatio(); got != float64(hits)/float64(reads) {
		t.Errorf("HitRatio = %v, want %v", got, float64(hits)/float64(reads))
	}

	// The per-shard sums must equal the per-shard caches' own accounting.
	var wantLen, wantOutq, wantWin int
	for i := range s.shards {
		wantLen += s.shards[i].c.Len()
		wantOutq += s.shards[i].c.OutqueueLen()
		wantWin += s.shards[i].c.Windows()
	}
	if st.Len != wantLen || st.OutqueueLen != wantOutq || st.Windows != wantWin {
		t.Errorf("Stats structural fields (%d, %d, %d) disagree with shard caches (%d, %d, %d)",
			st.Len, st.OutqueueLen, st.Windows, wantLen, wantOutq, wantWin)
	}
}

// TestShardedConcurrent hammers one front from several goroutines (the
// multi-client serving scenario); run under -race this exercises the
// per-shard locking. Totals are checked against a serial replay.
func TestShardedConcurrent(t *testing.T) {
	const clients = 8
	cfg := Config{Capacity: 128, Window: 1000}
	s := NewSharded(cfg, 4)

	var wg sync.WaitGroup
	hits := make([]uint64, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for _, r := range shardedTrace(5000, int64(100+c)) {
				if s.Access(r) && r.Op == trace.Read {
					hits[c]++
				}
			}
		}(c)
	}
	wg.Wait()

	var total uint64
	for _, h := range hits {
		total += h
	}
	if total == 0 {
		t.Error("no hits across all clients")
	}
	if got := s.Len(); got > s.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", got, s.Capacity())
	}
	if s.Windows() == 0 {
		t.Error("no statistics windows completed")
	}
	if s.OutqueueLen() == 0 {
		t.Error("outqueue is empty after 40K requests")
	}
	if len(s.WindowStats()) == 0 {
		t.Error("merged WindowStats is empty")
	}
}
