package core

import (
	"container/heap"

	"repro/internal/hint"
)

// pageEntry records the most recent request for a page: its sequence number
// and hint set (§3.1). Entries live either in a hint-set group (cached
// pages) or in the outqueue (uncached pages), never both.
type pageEntry struct {
	page uint64
	seq  uint64
	hint hint.ID

	grp        *group // non-nil iff cached
	prev, next *pageEntry
}

// group collects all cached pages whose latest request carried the same
// hint set, in a doubly-linked list ordered by sequence number (appends are
// always the newest request, so order holds by construction). The group
// sits in the priority heap keyed by (pr, head.seq).
type group struct {
	hint    hint.ID
	pr      float64
	head    *pageEntry // minimum sequence number
	tail    *pageEntry
	size    int
	heapIdx int
}

// appendToGroup places a cached entry at the tail of its hint set's group,
// creating the group (and registering it in the heap) when needed. Groups
// come from the freelist when one is available.
func (c *Cache) appendToGroup(e *pageEntry, h hint.ID) {
	g, ok := c.groups[h]
	if !ok {
		if n := len(c.freeGroups); n > 0 {
			g = c.freeGroups[n-1]
			c.freeGroups = c.freeGroups[:n-1]
			*g = group{hint: h, pr: c.priority(h)}
		} else {
			g = &group{hint: h, pr: c.priority(h)}
		}
		c.groups[h] = g
	}
	e.grp = g
	e.prev = g.tail
	e.next = nil
	if g.tail != nil {
		g.tail.next = e
	}
	g.tail = e
	wasEmpty := g.head == nil
	if wasEmpty {
		g.head = e
	}
	g.size++
	if wasEmpty {
		heap.Push(&c.heap, g)
	}
	// Appends never change a non-empty group's head, so no Fix is needed.
}

// removeFromGroup unlinks a cached entry from its group, fixing the heap if
// the group's head (its key component) changed, and dropping empty groups.
func (c *Cache) removeFromGroup(e *pageEntry) {
	g := e.grp
	wasHead := g.head == e
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		g.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		g.tail = e.prev
	}
	e.prev, e.next, e.grp = nil, nil, nil
	g.size--
	if g.size == 0 {
		heap.Remove(&c.heap, g.heapIdx)
		delete(c.groups, g.hint)
		c.freeGroups = append(c.freeGroups, g)
		return
	}
	if wasHead {
		heap.Fix(&c.heap, g.heapIdx)
	}
}

// groupHeap is a min-heap of groups keyed by (priority, head sequence
// number): the top group holds the global victim page — the oldest page
// among those with the minimum priority (Figure 4 lines 7–11).
type groupHeap []*group

func (h groupHeap) Len() int { return len(h) }
func (h groupHeap) Less(i, j int) bool {
	if h[i].pr != h[j].pr {
		return h[i].pr < h[j].pr
	}
	return h[i].head.seq < h[j].head.seq
}
func (h groupHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *groupHeap) Push(x any) {
	g := x.(*group)
	g.heapIdx = len(*h)
	*h = append(*h, g)
}
func (h *groupHeap) Pop() any {
	old := *h
	n := len(old)
	g := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return g
}

// outqueue is the bounded FIFO of most-recent-request records for pages
// that are not cached (§3.1). When full, the least-recently inserted entry
// is evicted, deliberately biasing re-reference detection toward short
// re-reference distances — the ones that lead to high caching priority.
type outqueue struct {
	capacity   int
	pages      map[uint64]*pageEntry
	head, tail *pageEntry // head is the least-recently inserted
	size       int

	// free is the pageEntry freelist (linked through next), shared with the
	// cache's page table: entries cycle between cached, outqueued and free
	// on every admit/evict, so the steady state allocates none.
	free *pageEntry
}

func (q *outqueue) init(capacity int) {
	q.capacity = capacity
	q.pages = make(map[uint64]*pageEntry, capacity)
}

// get returns the record for a page if present.
func (q *outqueue) get(page uint64) (*pageEntry, bool) {
	e, ok := q.pages[page]
	return e, ok
}

// takeFree pops an entry off the freelist (or allocates one) initialized to
// the given record.
func (q *outqueue) takeFree(page, seq uint64, h hint.ID) *pageEntry {
	e := q.free
	if e == nil {
		return &pageEntry{page: page, seq: seq, hint: h}
	}
	q.free = e.next
	*e = pageEntry{page: page, seq: seq, hint: h}
	return e
}

// recycle returns an entry (no longer referenced by any map or list) to the
// freelist.
func (q *outqueue) recycle(e *pageEntry) {
	*e = pageEntry{next: q.free}
	q.free = e
}

// putNew records (seq, hint) for a page known to have no entry yet,
// matching §3.1's "an entry is placed in the outqueue" for every uncached
// request. When the queue is full the least-recently inserted entry is
// reused for the new page.
func (q *outqueue) putNew(page, seq uint64, h hint.ID) {
	if q.capacity <= 0 {
		return
	}
	if q.size >= q.capacity {
		old := q.head
		q.unlink(old)
		delete(q.pages, old.page)
		*old = pageEntry{page: page, seq: seq, hint: h}
		q.pages[page] = old
		q.append(old)
		return
	}
	e := q.takeFree(page, seq, h)
	q.pages[page] = e
	q.append(e)
	q.size++
}

// refresh updates an existing entry's record and moves it to the
// most-recently-inserted position.
func (q *outqueue) refresh(e *pageEntry, seq uint64, h hint.ID) {
	e.seq = seq
	e.hint = h
	q.unlink(e)
	q.append(e)
}

// putEntry moves a just-evicted cached entry (already unlinked from its
// group and the page table) into the outqueue, reusing the entry itself.
// It returns the entry displaced to make room, if any — the caller checks
// it against the incoming page's own outqueue record, which can be exactly
// the one displaced.
func (q *outqueue) putEntry(e *pageEntry) (displaced *pageEntry) {
	if q.capacity <= 0 {
		q.recycle(e)
		return nil
	}
	// e's page cannot already be present: a page has a cached record or an
	// outqueue record, never both.
	if q.size >= q.capacity {
		old := q.head
		q.unlink(old)
		delete(q.pages, old.page)
		q.size--
		displaced = old
		q.recycle(old)
	}
	q.pages[e.page] = e
	q.append(e)
	q.size++
	return displaced
}

// dropEntry removes an entry (used when its page becomes cached).
func (q *outqueue) dropEntry(e *pageEntry) {
	q.unlink(e)
	delete(q.pages, e.page)
	q.size--
	q.recycle(e)
}

func (q *outqueue) append(e *pageEntry) {
	e.prev = q.tail
	e.next = nil
	if q.tail != nil {
		q.tail.next = e
	}
	q.tail = e
	if q.head == nil {
		q.head = e
	}
}

func (q *outqueue) unlink(e *pageEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		q.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		q.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Len returns the number of outqueue entries (exported for tests via the
// cache wrapper below).
func (q *outqueue) len() int { return q.size }

// OutqueueLen returns the current number of outqueue entries.
func (c *Cache) OutqueueLen() int { return c.out.len() }
