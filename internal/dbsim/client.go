package dbsim

import (
	"fmt"
	"math/rand"

	"repro/internal/hint"
	"repro/internal/randx"
	"repro/internal/trace"
)

// Config parameterises a client.
type Config struct {
	// Style selects the hint vocabulary (DB2Style or MySQLStyle).
	Style HintStyle
	// PoolSizes gives the capacity (in pages) of each client buffer pool;
	// object Pool fields index into it.
	PoolSizes []int
	// Threads is the number of simulated server threads (MySQL thread
	// hint). Zero means 1.
	Threads int
	// CleanerThreshold is the dirty fraction of a pool that wakes the
	// asynchronous page cleaner. Zero selects 0.25.
	CleanerThreshold float64
	// CleanerBatch is how many dirty pages the cleaner writes per wake-up.
	// Zero selects 64.
	CleanerBatch int
	// CleanerPeriod is how many logical operations pass between cleaner
	// wake-ups. Zero selects 4. Because the cleaner is periodic rather than
	// continuous, update bursts can push dirty pages to the LRU tail before
	// it runs, forcing occasional synchronous writes — as in a real DBMS.
	CleanerPeriod int
	// CleanerGap is the number of coldest dirty pages the cleaner cannot
	// catch in time: they are left to be written synchronously on the
	// eviction path. This reproduces the paper's distinction between
	// asynchronous replacement writes and synchronous writes ("replacement
	// writes that are not performed by an asynchronous page cleaning
	// thread", Figure 2). Zero selects 4; NoCleanerGap disables it.
	CleanerGap int
	// CheckpointEvery issues recovery writes for all dirty pages every
	// this many logical operations. Zero selects 20000; negative disables.
	CheckpointEvery int
	// Seed drives the client's internal randomness (fix counts).
	Seed int64
}

// NoCleanerGap, assigned to Config.CleanerGap, makes the cleaner perfect:
// it can always clean the coldest dirty pages before they are evicted.
const NoCleanerGap = -1

func (cfg Config) withDefaults() Config {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	if cfg.CleanerThreshold == 0 {
		cfg.CleanerThreshold = 0.25
	}
	if cfg.CleanerBatch == 0 {
		cfg.CleanerBatch = 64
	}
	if cfg.CleanerPeriod == 0 {
		cfg.CleanerPeriod = 4
	}
	if cfg.CleanerGap == 0 {
		cfg.CleanerGap = 4
	} else if cfg.CleanerGap < 0 {
		cfg.CleanerGap = 0
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = 20000
	}
	return cfg
}

// hintKey caches interned hint IDs per (object, request type, thread, fix).
type hintKey struct {
	obj    int
	rt     ReqType
	thread int
	fix    int
}

// Client is a simulated first-tier database client: it owns buffer pools,
// runs the page cleaner and checkpointer, and appends every I/O that
// escapes its pools — with hints attached — to an output sink (an in-memory
// trace, a streaming trace writer, or a pipe to a live consumer).
type Client struct {
	db      *Database
	cfg     Config
	pools   []*bufPool
	out     trace.Sink
	dict    *hint.Dict
	hintIDs map[hintKey]hint.ID
	rng     *rand.Rand

	thread    int
	ops       int
	sinceCkpt int
	fill      map[int]int // per-object rows in the last page
}

// NewClient builds a client over db that appends its I/O to out.
func NewClient(db *Database, out trace.Sink, cfg Config) *Client {
	cfg = cfg.withDefaults()
	if cfg.Style == nil {
		panic("dbsim: Config.Style is required")
	}
	if len(cfg.PoolSizes) == 0 {
		panic("dbsim: Config.PoolSizes is required")
	}
	c := &Client{
		db:      db,
		cfg:     cfg,
		out:     out,
		dict:    out.HintDict(),
		hintIDs: make(map[hintKey]hint.ID),
		rng:     randx.New(cfg.Seed),
		fill:    make(map[int]int),
	}
	for i, size := range cfg.PoolSizes {
		c.pools = append(c.pools, newBufPool(i, size))
	}
	return c
}

// Emitted returns the number of requests absorbed by the output sink. For a
// Limit-wrapped sink this caps at the limit, which is exactly the loop
// condition generators want: stop once the budget is met.
func (c *Client) Emitted() int { return c.out.Len() }

// SetThread sets the issuing thread for subsequent requests (MySQL hint).
func (c *Client) SetThread(t int) { c.thread = t % c.cfg.Threads }

// Read performs a demand read of the object's logical page idx.
func (c *Client) Read(obj *Object, idx int) { c.access(obj, idx, ReadReq, false) }

// Update reads the object's logical page idx and marks it dirty.
func (c *Client) Update(obj *Object, idx int) { c.access(obj, idx, ReadReq, true) }

// Scan reads n sequential pages of obj starting at from; missing pages are
// brought in with prefetch reads. If update is set, every page is dirtied.
func (c *Client) Scan(obj *Object, from, n int, update bool) {
	for i := 0; i < n; i++ {
		idx := from + i
		if idx >= obj.Pages() {
			return
		}
		c.access(obj, idx, PrefetchReq, update)
	}
}

// Insert appends one row to obj, dirtying the object's last page and
// extending the object by a fresh page every rowsPerPage rows — the
// database-growth mechanism of the TPC-C workload (§6, Figure 5 note).
func (c *Client) Insert(obj *Object, rowsPerPage int) {
	if rowsPerPage <= 0 {
		rowsPerPage = 1
	}
	n := c.fill[obj.ID] + 1
	if n >= rowsPerPage {
		c.db.Extend(obj, 1)
		n = 0
	}
	c.fill[obj.ID] = n
	c.access(obj, obj.Pages()-1, ReadReq, true)
}

// access is the buffer-pool fetch path: a hit refreshes recency; a miss
// emits a server read (regular or prefetch), evicting the pool's LRU frame
// first — with a synchronous write if that frame is dirty.
func (c *Client) access(obj *Object, idx int, rt ReqType, dirty bool) {
	if obj.Pool < 0 || obj.Pool >= len(c.pools) {
		panic(fmt.Sprintf("dbsim: object %s assigned to unknown pool %d", obj.Name, obj.Pool))
	}
	pool := c.pools[obj.Pool]
	page := obj.Page(idx)
	f := pool.get(page)
	if f == nil {
		if v := pool.victim(); v != nil {
			if v.dirty {
				c.emit(v.obj, v.page, SyncWrite)
				pool.markClean(v)
			}
			pool.evict(v)
		}
		c.emit(obj, page, rt)
		f = pool.insert(page, obj)
	}
	if dirty {
		pool.markDirty(f)
	}
}

// Op marks the end of one logical operation (transaction step / query
// fragment): it wakes the page cleaner on pools with too many dirty pages
// and triggers checkpoints on schedule.
func (c *Client) Op() {
	c.ops++
	if c.ops%c.cfg.CleanerPeriod == 0 {
		for _, p := range c.pools {
			if float64(p.dirty) > c.cfg.CleanerThreshold*float64(p.capacity) {
				// The coldest CleanerGap dirty pages are already too close
				// to eviction for the asynchronous cleaner to catch; they
				// will leave via synchronous writes instead.
				list := p.dirtyFromLRU(c.cfg.CleanerBatch + c.cfg.CleanerGap)
				if len(list) > c.cfg.CleanerGap {
					for _, f := range list[c.cfg.CleanerGap:] {
						c.emit(f.obj, f.page, ReplWrite)
						p.markClean(f)
					}
				}
			}
		}
	}
	if c.cfg.CheckpointEvery > 0 {
		c.sinceCkpt++
		if c.sinceCkpt >= c.cfg.CheckpointEvery {
			c.sinceCkpt = 0
			c.Checkpoint()
		}
	}
}

// Checkpoint writes every dirty page in every pool as a recovery write.
// The pages stay in the client pools — exactly why recovery writes are poor
// server caching candidates (§1).
func (c *Client) Checkpoint() {
	for _, p := range c.pools {
		for _, f := range p.allDirty() {
			c.emit(f.obj, f.page, RecWrite)
			p.markClean(f)
		}
	}
}

// emit appends one server request with its hint set to the output sink.
// The hint is interned before the append, so even a request the sink drops
// (Limit cut) leaves its key in the dictionary — matching the historical
// generate-then-truncate behavior bit for bit.
func (c *Client) emit(obj *Object, page uint64, rt ReqType) {
	ctx := HintCtx{Thread: c.thread, FixCount: c.fixCount(obj)}
	key := hintKey{obj: obj.ID, rt: rt, thread: ctx.Thread, fix: ctx.FixCount}
	id, ok := c.hintIDs[key]
	if !ok {
		id = c.dict.Intern(c.cfg.Style.Hints(obj, rt, ctx))
		c.hintIDs[key] = id
	}
	op := trace.Read
	if rt.IsWrite() {
		op = trace.Write
	}
	c.out.AppendReq(trace.Request{Page: page, Hint: id, Op: op})
}

// fixCount models the MySQL fix-count hint: index pages are occasionally
// co-fixed by a second thread. DB2Style ignores the value.
func (c *Client) fixCount(obj *Object) int {
	if obj.TypeName == "index" && c.rng.Intn(10) == 0 {
		return 2
	}
	return 1
}

// PoolDirty returns the number of dirty pages in pool id (for tests).
func (c *Client) PoolDirty(id int) int { return c.pools[id].dirty }

// PoolLen returns the number of cached pages in pool id (for tests).
func (c *Client) PoolLen(id int) int { return c.pools[id].len() }
