package dbsim

// bufPage is one frame in a client buffer pool.
type bufPage struct {
	page       uint64
	obj        *Object
	dirty      bool
	prev, next *bufPage // LRU list links; head is MRU
}

// bufPool is a client-tier buffer cache with LRU replacement and dirty-page
// tracking. One bufPool per DB2 buffer pool; MySQL uses a single pool.
type bufPool struct {
	id       int
	capacity int
	frames   map[uint64]*bufPage
	head     *bufPage // MRU
	tail     *bufPage // LRU
	dirty    int
}

func newBufPool(id, capacity int) *bufPool {
	return &bufPool{id: id, capacity: capacity, frames: make(map[uint64]*bufPage, capacity)}
}

func (p *bufPool) len() int { return len(p.frames) }

// get returns the frame for a page, refreshing recency, or nil on a miss.
func (p *bufPool) get(page uint64) *bufPage {
	f, ok := p.frames[page]
	if !ok {
		return nil
	}
	p.moveToFront(f)
	return f
}

// victim returns the LRU frame that must be evicted before an insert, or
// nil if the pool has free space.
func (p *bufPool) victim() *bufPage {
	if len(p.frames) < p.capacity {
		return nil
	}
	return p.tail
}

// evict removes a frame from the pool.
func (p *bufPool) evict(f *bufPage) {
	if f.dirty {
		p.dirty--
	}
	p.remove(f)
	delete(p.frames, f.page)
}

// insert adds a page at the MRU position. The caller must have made room.
func (p *bufPool) insert(page uint64, obj *Object) *bufPage {
	f := &bufPage{page: page, obj: obj}
	p.frames[page] = f
	p.pushFront(f)
	return f
}

// markDirty flags a frame as modified.
func (p *bufPool) markDirty(f *bufPage) {
	if !f.dirty {
		f.dirty = true
		p.dirty++
	}
}

// markClean clears a frame's dirty flag (after its contents were written).
func (p *bufPool) markClean(f *bufPage) {
	if f.dirty {
		f.dirty = false
		p.dirty--
	}
}

// dirtyFromLRU returns up to max dirty frames starting from the LRU end, in
// LRU-to-MRU order. The page cleaner writes these: cleaning cold dirty
// pages first is exactly what produces replacement writes for pages about
// to be evicted from the client.
func (p *bufPool) dirtyFromLRU(max int) []*bufPage {
	var out []*bufPage
	for f := p.tail; f != nil && len(out) < max; f = f.prev {
		if f.dirty {
			out = append(out, f)
		}
	}
	return out
}

// allDirty returns every dirty frame in LRU-to-MRU order (checkpointing).
func (p *bufPool) allDirty() []*bufPage {
	return p.dirtyFromLRU(len(p.frames))
}

func (p *bufPool) pushFront(f *bufPage) {
	f.prev = nil
	f.next = p.head
	if p.head != nil {
		p.head.prev = f
	}
	p.head = f
	if p.tail == nil {
		p.tail = f
	}
}

func (p *bufPool) remove(f *bufPage) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		p.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		p.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (p *bufPool) moveToFront(f *bufPage) {
	if p.head == f {
		return
	}
	p.remove(f)
	p.pushFront(f)
}
