package dbsim

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func newTestClient(t *testing.T, style HintStyle, poolSize int) (*Client, *Database, *trace.Trace) {
	t.Helper()
	out := trace.New("test", 4096)
	db := NewDatabase(4096)
	c := NewClient(db, out, Config{
		Style:           style,
		PoolSizes:       []int{poolSize},
		CheckpointEvery: -1, // manual checkpoints only
		Seed:            1,
	})
	return c, db, out
}

func reqTypes(out *trace.Trace) map[string]int {
	counts := map[string]int{}
	for _, r := range out.Reqs {
		key := out.Dict.Key(r.Hint)
		for _, f := range strings.Split(key, "|") {
			if strings.HasPrefix(f, "reqtype=") {
				counts[strings.TrimPrefix(f, "reqtype=")]++
			}
		}
	}
	return counts
}

func TestDatabaseAllocation(t *testing.T) {
	db := NewDatabase(4096)
	a := db.NewObject("A", "table", 0, 0, 0, 10)
	b := db.NewObject("B", "index", 0, 0, 0, 5)
	if a.Pages() != 10 || b.Pages() != 5 {
		t.Fatalf("sizes: %d, %d", a.Pages(), b.Pages())
	}
	if db.TotalPages() != 15 {
		t.Fatalf("TotalPages = %d", db.TotalPages())
	}
	// Page spaces are disjoint and initially contiguous.
	seen := map[uint64]bool{}
	for i := 0; i < a.Pages(); i++ {
		seen[a.Page(i)] = true
	}
	for i := 0; i < b.Pages(); i++ {
		if seen[b.Page(i)] {
			t.Fatal("objects share pages")
		}
	}
	if a.Page(1) != a.Page(0)+1 {
		t.Error("initial allocation not contiguous")
	}
	db.Extend(a, 3)
	if a.Pages() != 13 || db.TotalPages() != 18 {
		t.Errorf("after Extend: %d pages, %d total", a.Pages(), db.TotalPages())
	}
	if db.Object("A") != a || db.Object("missing") != nil {
		t.Error("Object lookup broken")
	}
	if len(db.Objects()) != 2 {
		t.Error("Objects() wrong")
	}
}

func TestObjectPagePanics(t *testing.T) {
	db := NewDatabase(4096)
	a := db.NewObject("A", "table", 0, 0, 0, 3)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range Page should panic")
		}
	}()
	a.Page(3)
}

func TestClientHitsAreAbsorbed(t *testing.T) {
	c, db, out := newTestClient(t, DB2Style{}, 10)
	obj := db.NewObject("T", "table", 0, 0, 0, 5)
	c.Read(obj, 0)
	c.Read(obj, 0) // hit in client pool: no server I/O
	if out.Len() != 1 {
		t.Fatalf("emitted %d requests, want 1 (second read absorbed)", out.Len())
	}
	if out.Reqs[0].Op != trace.Read || out.Reqs[0].Page != obj.Page(0) {
		t.Errorf("emitted %+v", out.Reqs[0])
	}
}

func TestEvictionOfDirtyPageEmitsSyncWrite(t *testing.T) {
	c, db, out := newTestClient(t, DB2Style{}, 2)
	obj := db.NewObject("T", "table", 0, 0, 0, 5)
	c.Update(obj, 0) // dirty
	c.Read(obj, 1)
	c.Read(obj, 2) // evicts page 0 (dirty) → sync write
	counts := reqTypes(out)
	if counts["sync-write"] != 1 {
		t.Fatalf("sync-writes = %d, want 1 (types: %v)", counts["sync-write"], counts)
	}
	if counts["read"] != 3 {
		t.Errorf("reads = %d, want 3", counts["read"])
	}
	// The sync write must reference the victim's page.
	for _, r := range out.Reqs {
		if r.Op == trace.Write && r.Page != obj.Page(0) {
			t.Errorf("sync write to page %d, want %d", r.Page, obj.Page(0))
		}
	}
}

func TestCleanerEmitsReplacementWrites(t *testing.T) {
	out := trace.New("test", 4096)
	db := NewDatabase(4096)
	c := NewClient(db, out, Config{
		Style:            DB2Style{},
		PoolSizes:        []int{10},
		CleanerThreshold: 0.3,
		CleanerBatch:     4,
		CleanerPeriod:    1,
		CleanerGap:       NoCleanerGap,
		CheckpointEvery:  -1,
		Seed:             1,
	})
	obj := db.NewObject("T", "table", 0, 0, 0, 10)
	for i := 0; i < 5; i++ {
		c.Update(obj, i)
	}
	if c.PoolDirty(0) != 5 {
		t.Fatalf("dirty = %d", c.PoolDirty(0))
	}
	c.Op() // 5 > 0.3×10 → cleaner writes 4 (batch), LRU-first
	counts := reqTypes(out)
	if counts["repl-write"] != 4 {
		t.Fatalf("repl-writes = %d, want 4 (types: %v)", counts["repl-write"], counts)
	}
	if c.PoolDirty(0) != 1 {
		t.Errorf("dirty after cleaning = %d, want 1", c.PoolDirty(0))
	}
	// Cleaned pages stay cached.
	if c.PoolLen(0) != 5 {
		t.Errorf("pool len = %d, want 5", c.PoolLen(0))
	}
}

func TestCheckpointEmitsRecoveryWrites(t *testing.T) {
	c, db, out := newTestClient(t, DB2Style{}, 10)
	obj := db.NewObject("T", "table", 0, 0, 0, 10)
	c.Update(obj, 0)
	c.Update(obj, 1)
	c.Checkpoint()
	counts := reqTypes(out)
	if counts["rec-write"] != 2 {
		t.Fatalf("rec-writes = %d (types: %v)", counts["rec-write"], counts)
	}
	if c.PoolDirty(0) != 0 {
		t.Errorf("dirty after checkpoint = %d", c.PoolDirty(0))
	}
	// Checkpointed pages stay cached (this is what makes recovery writes
	// poor server caching candidates).
	if c.PoolLen(0) != 2 {
		t.Errorf("pool len = %d", c.PoolLen(0))
	}
}

func TestScanEmitsPrefetchReads(t *testing.T) {
	c, db, out := newTestClient(t, DB2Style{}, 20)
	obj := db.NewObject("T", "table", 0, 0, 0, 10)
	c.Scan(obj, 0, 10, false)
	counts := reqTypes(out)
	if counts["prefetch"] != 10 {
		t.Fatalf("prefetch reads = %d (types: %v)", counts["prefetch"], counts)
	}
	// Scanning past the end is clamped.
	c.Scan(obj, 8, 10, false)
	if out.Len() != 10 { // pages 8,9 were already pooled
		t.Errorf("emitted %d, want 10", out.Len())
	}
}

func TestInsertGrowsObject(t *testing.T) {
	c, db, _ := newTestClient(t, DB2Style{}, 10)
	obj := db.NewObject("T", "table", 0, 0, 0, 1)
	before := obj.Pages()
	for i := 0; i < 10; i++ {
		c.Insert(obj, 3) // a page fills after 3 rows
	}
	if obj.Pages() <= before {
		t.Error("Insert never extended the object")
	}
	// 10 rows at 3 rows/page ≈ 3 new pages.
	if got := obj.Pages() - before; got < 2 || got > 4 {
		t.Errorf("grew by %d pages, want ≈3", got)
	}
}

func TestDB2HintShape(t *testing.T) {
	c, db, out := newTestClient(t, DB2Style{}, 5)
	obj := db.NewObject("STOCK", "table", 0, 3, 0, 5)
	c.Read(obj, 0)
	set := out.Dict.Set(out.Reqs[0].Hint)
	if len(set) != 5 {
		t.Fatalf("DB2 hint set has %d fields, want 5: %v", len(set), set)
	}
	wantTypes := []string{"pool", "object", "objtype", "reqtype", "prio"}
	for i, f := range set {
		if f.Type != wantTypes[i] {
			t.Errorf("field %d is %q, want %q", i, f.Type, wantTypes[i])
		}
	}
	if v, _ := set.Value("objtype"); v != "table" {
		t.Errorf("objtype = %q", v)
	}
	if v, _ := set.Value("prio"); v != "3" {
		t.Errorf("prio = %q", v)
	}
	if v, _ := set.Value("reqtype"); v != "read" {
		t.Errorf("reqtype = %q", v)
	}
}

func TestMySQLHintShape(t *testing.T) {
	c, db, out := newTestClient(t, MySQLStyle{}, 5)
	obj := db.NewObject("LINEITEM", "table", 0, 1, 7, 5)
	c.Read(obj, 0)
	set := out.Dict.Set(out.Reqs[0].Hint)
	if len(set) != 4 {
		t.Fatalf("MySQL hint set has %d fields, want 4: %v", len(set), set)
	}
	wantTypes := []string{"thread", "reqtype", "file", "fix"}
	for i, f := range set {
		if f.Type != wantTypes[i] {
			t.Errorf("field %d is %q, want %q", i, f.Type, wantTypes[i])
		}
	}
	if v, _ := set.Value("file"); v != "f7" {
		t.Errorf("file = %q", v)
	}
}

func TestMySQLRequestTypeCollapse(t *testing.T) {
	// MySQL reports only 3 request types: prefetch → read, sync → repl.
	var s MySQLStyle
	obj := &Object{ID: 0, Name: "T", TypeName: "table", FileID: 0}
	cases := map[ReqType]string{
		ReadReq:     "read",
		PrefetchReq: "read",
		ReplWrite:   "repl-write",
		SyncWrite:   "repl-write",
		RecWrite:    "rec-write",
	}
	for rt, want := range cases {
		set := s.Hints(obj, rt, HintCtx{Thread: 1, FixCount: 1})
		if v, _ := set.Value("reqtype"); v != want {
			t.Errorf("MySQL reqtype for %v = %q, want %q", rt, v, want)
		}
	}
}

func TestReqTypeStrings(t *testing.T) {
	cases := map[ReqType]string{
		ReadReq:     "read",
		PrefetchReq: "prefetch",
		ReplWrite:   "repl-write",
		RecWrite:    "rec-write",
		SyncWrite:   "sync-write",
	}
	for rt, want := range cases {
		if rt.String() != want {
			t.Errorf("%v.String() = %q", rt, rt.String())
		}
	}
	if !ReplWrite.IsWrite() || !RecWrite.IsWrite() || !SyncWrite.IsWrite() {
		t.Error("write types misclassified")
	}
	if ReadReq.IsWrite() || PrefetchReq.IsWrite() {
		t.Error("read types misclassified")
	}
}

func TestPoolLRUOrder(t *testing.T) {
	c, db, out := newTestClient(t, DB2Style{}, 3)
	obj := db.NewObject("T", "table", 0, 0, 0, 10)
	c.Read(obj, 0)
	c.Read(obj, 1)
	c.Read(obj, 2)
	c.Read(obj, 0) // refresh 0; LRU is now 1
	c.Read(obj, 3) // evicts 1
	before := out.Len()
	c.Read(obj, 0) // still cached: no emission
	c.Read(obj, 2) // still cached
	if out.Len() != before {
		t.Error("pool evicted the wrong page (LRU order broken)")
	}
	c.Read(obj, 1) // must miss
	if out.Len() != before+1 {
		t.Error("page 1 should have been evicted")
	}
}

func TestConfigValidation(t *testing.T) {
	db := NewDatabase(4096)
	out := trace.New("t", 4096)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("missing style should panic")
			}
		}()
		NewClient(db, out, Config{PoolSizes: []int{1}})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("missing pools should panic")
			}
		}()
		NewClient(db, out, Config{Style: DB2Style{}})
	}()
	c := NewClient(db, out, Config{Style: DB2Style{}, PoolSizes: []int{1}})
	bad := db.NewObject("X", "table", 5, 0, 0, 1) // pool 5 does not exist
	defer func() {
		if recover() == nil {
			t.Error("unknown pool should panic")
		}
	}()
	c.Read(bad, 0)
}
