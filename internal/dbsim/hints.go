package dbsim

import (
	"strconv"

	"repro/internal/hint"
)

// ReqType is the I/O request type from the client's perspective. It maps to
// the paper's "request type" hint (Figure 2): reads are regular or prefetch
// reads; writes carry the write hints of Li et al. [11] — recovery writes
// (for durability; the page stays hot in the client cache), replacement
// writes (an asynchronous page cleaner pushing out an eviction candidate),
// and synchronous writes (replacement writes performed in the critical path
// because the victim had to leave immediately).
type ReqType uint8

const (
	// ReadReq is a regular (demand) read.
	ReadReq ReqType = iota
	// PrefetchReq is a prefetch read issued ahead of a scan.
	PrefetchReq
	// ReplWrite is an asynchronous replacement write by the page cleaner.
	ReplWrite
	// RecWrite is a recovery (checkpoint/durability) write.
	RecWrite
	// SyncWrite is a synchronous replacement write on the eviction path.
	SyncWrite
)

// String returns the hint value used in trace dictionaries.
func (rt ReqType) String() string {
	switch rt {
	case ReadReq:
		return "read"
	case PrefetchReq:
		return "prefetch"
	case ReplWrite:
		return "repl-write"
	case RecWrite:
		return "rec-write"
	case SyncWrite:
		return "sync-write"
	default:
		return "reqtype(" + strconv.Itoa(int(rt)) + ")"
	}
}

// IsWrite reports whether the request type is a write.
func (rt ReqType) IsWrite() bool { return rt >= ReplWrite }

// HintCtx carries per-request context some hint styles need.
type HintCtx struct {
	// Thread is the issuing server thread (MySQL "thread ID" hint).
	Thread int
	// FixCount is the number of client threads currently fixing the page
	// (MySQL "fix count" hint; domain {1, 2} in the paper's traces).
	FixCount int
}

// HintStyle builds the hint set a client attaches to an I/O request. The
// two implementations reproduce the DB2 and MySQL hint vocabularies of the
// paper's Figure 2.
type HintStyle interface {
	// Hints returns the hint set for a request on obj with type rt.
	Hints(obj *Object, rt ReqType, ctx HintCtx) hint.Set
	// Name identifies the style.
	Name() string
}

// DB2Style emits the five DB2 hint types of Figure 2: pool ID, object ID,
// object type ID, request type, and buffer priority.
type DB2Style struct{}

// Name implements HintStyle.
func (DB2Style) Name() string { return "db2" }

// Hints implements HintStyle.
func (DB2Style) Hints(obj *Object, rt ReqType, _ HintCtx) hint.Set {
	return hint.Set{
		{Type: "pool", Value: "p" + strconv.Itoa(obj.Pool)},
		{Type: "object", Value: "o" + strconv.Itoa(obj.ID)},
		{Type: "objtype", Value: obj.TypeName},
		{Type: "reqtype", Value: rt.String()},
		{Type: "prio", Value: strconv.Itoa(obj.Priority)},
	}
}

// MySQLStyle emits the four MySQL hint types of Figure 2: thread ID,
// request type (3 values — prefetch reads report as reads and synchronous
// writes as replacement writes, since MySQL does not distinguish them),
// file ID, and fix count.
type MySQLStyle struct{}

// Name implements HintStyle.
func (MySQLStyle) Name() string { return "mysql" }

// Hints implements HintStyle.
func (MySQLStyle) Hints(obj *Object, rt ReqType, ctx HintCtx) hint.Set {
	var rv string
	switch rt {
	case ReadReq, PrefetchReq:
		rv = "read"
	case ReplWrite, SyncWrite:
		rv = "repl-write"
	case RecWrite:
		rv = "rec-write"
	}
	fix := ctx.FixCount
	if fix < 1 {
		fix = 1
	}
	return hint.Set{
		{Type: "thread", Value: "t" + strconv.Itoa(ctx.Thread)},
		{Type: "reqtype", Value: rv},
		{Type: "file", Value: "f" + strconv.Itoa(obj.FileID)},
		{Type: "fix", Value: strconv.Itoa(fix)},
	}
}
