// Package dbsim simulates the *first tier* of the paper's architecture: a
// database client with its own buffer caches, sitting above the storage
// server. The paper instrumented DB2 and MySQL to emit hinted I/O traces
// (§6); we do not have those systems or their traces, so dbsim reproduces
// the mechanism that makes such traces what they are — a buffer pool that
// absorbs temporal locality, an asynchronous page cleaner that issues
// replacement writes at client-eviction time, synchronous writes when a
// dirty victim must leave immediately, periodic checkpoints that issue
// recovery writes while pages stay client-cached, and prefetching scans —
// and attaches the paper's exact hint vocabularies to every emitted
// request.
package dbsim

import "fmt"

// Object is a named database object (table, index, temp area, …) occupying
// a set of pages in the storage server's address space.
type Object struct {
	// ID is a dense object identifier (the DB2 "object ID" hint).
	ID int
	// Name is a human-readable name, e.g. "STOCK" or "LINEITEM_IDX".
	Name string
	// TypeName is the object type (the DB2 "object type ID" hint), e.g.
	// "table", "index", "temp".
	TypeName string
	// Pool is the buffer pool this object is assigned to (the DB2
	// "pool ID" hint).
	Pool int
	// Priority is the object's buffer priority in the client cache (the
	// DB2 "buffer priority" hint).
	Priority int
	// FileID groups a table with its indexes (the MySQL "file ID" hint).
	FileID int

	// pages holds the object's server page numbers in logical page order.
	pages []uint64
}

// Pages returns the object's current size in pages.
func (o *Object) Pages() int { return len(o.pages) }

// Page returns the server page number of the object's logical page idx.
func (o *Object) Page(idx int) uint64 {
	if idx < 0 || idx >= len(o.pages) {
		panic(fmt.Sprintf("dbsim: object %s: page index %d out of range [0,%d)", o.Name, idx, len(o.pages)))
	}
	return o.pages[idx]
}

// Database is the collection of objects and the server page allocator.
type Database struct {
	// PageSize is the block size in bytes (informational; DB2 traces used
	// 4KB pages, MySQL 16KB).
	PageSize int

	objects  []*Object
	nextPage uint64
}

// NewDatabase returns an empty database.
func NewDatabase(pageSize int) *Database {
	return &Database{PageSize: pageSize}
}

// NewObject allocates a new object with the given initial size in pages.
// Initial allocations are contiguous, so scans touch sequential server
// pages; later growth interleaves with other growing objects, as in a real
// system.
func (db *Database) NewObject(name, typeName string, pool, priority, fileID, pages int) *Object {
	o := &Object{
		ID:       len(db.objects),
		Name:     name,
		TypeName: typeName,
		Pool:     pool,
		Priority: priority,
		FileID:   fileID,
	}
	db.objects = append(db.objects, o)
	db.Extend(o, pages)
	return o
}

// Extend grows an object by n pages allocated from the global page space.
func (db *Database) Extend(o *Object, n int) {
	for i := 0; i < n; i++ {
		o.pages = append(o.pages, db.nextPage)
		db.nextPage++
	}
}

// Objects returns all objects in creation order.
func (db *Database) Objects() []*Object { return db.objects }

// Object returns the object with the given name, or nil.
func (db *Database) Object(name string) *Object {
	for _, o := range db.objects {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// TotalPages returns the number of allocated pages across all objects.
func (db *Database) TotalPages() int { return int(db.nextPage) }
