package spacesaving

import (
	"math/rand"
	"sync"
	"testing"
)

func stripedHash(k int) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x
}

func TestStripedBasics(t *testing.T) {
	s := NewStriped[int, int](10, 3, stripedHash)
	if s.K() != 10 || s.Stripes() != 3 {
		t.Fatalf("K=%d Stripes=%d", s.K(), s.Stripes())
	}
	// Stripe budgets must sum to k.
	total := 0
	for i := range s.stripes {
		total += s.stripes[i].sum.K()
	}
	if total != 10 {
		t.Errorf("stripe budgets sum to %d, want 10", total)
	}
	for i := 0; i < 5; i++ {
		s.Touch(1)
		s.Touch(2)
	}
	s.Touch(2)
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	cs := s.Counters()
	if len(cs) != 2 || cs[0].Key != 2 || cs[0].Count != 6 || cs[1].Key != 1 || cs[1].Count != 5 {
		t.Errorf("Counters = %+v", cs)
	}
	if !s.Update(1, func(c *Counter[int, int]) { c.Val = 7 }) {
		t.Error("Update missed a tracked key")
	}
	if s.Update(99, func(c *Counter[int, int]) {}) {
		t.Error("Update hit an untracked key")
	}
	got := s.Counters()
	for _, c := range got {
		if c.Key == 1 && c.Val != 7 {
			t.Errorf("Val not updated: %+v", c)
		}
	}
	// Counters are detached copies.
	got[0].Count = 999
	if s.Counters()[0].Count == 999 {
		t.Error("Counters returned a live reference")
	}
	drained := s.Drain()
	if len(drained) != 2 || s.Len() != 0 {
		t.Errorf("Drain returned %d entries, Len now %d", len(drained), s.Len())
	}
	s.Touch(5)
	if s.Len() != 1 {
		t.Errorf("summary unusable after Drain: Len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Error("Reset did not clear")
	}
}

// TestStripedFindsFrequent drives a skewed stream and checks that the
// striped summary keeps the frequent keys, like a plain Summary would.
func TestStripedFindsFrequent(t *testing.T) {
	s := NewStriped[int, struct{}](16, 4, stripedHash)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		// Keys 0–3 take ~80% of the stream; 4–200 share the rest.
		k := rng.Intn(4)
		if rng.Intn(5) == 0 {
			k = 4 + rng.Intn(197)
		}
		s.Touch(k)
	}
	top := map[int]bool{}
	for i, c := range s.Counters() {
		if i == 8 {
			break
		}
		top[c.Key] = true
	}
	for k := 0; k < 4; k++ {
		if !top[k] {
			t.Errorf("frequent key %d missing from the top counters", k)
		}
	}
}

func TestStripedClampsStripes(t *testing.T) {
	s := NewStriped[int, struct{}](2, 8, stripedHash)
	if s.Stripes() != 2 {
		t.Errorf("Stripes = %d, want clamped to k = 2", s.Stripes())
	}
	for _, bad := range []func(){
		func() { NewStriped[int, struct{}](0, 1, stripedHash) },
		func() { NewStriped[int, struct{}](1, 0, stripedHash) },
		func() { NewStriped[int, struct{}](1, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad NewStriped arguments should panic")
				}
			}()
			bad()
		}()
	}
}

// TestStripedConcurrent exercises the stripe locks under -race: concurrent
// Touch/Update/Drain from many goroutines, then an exact count check on a
// quiet summary (every key below per-stripe capacity, so counts are exact).
func TestStripedConcurrent(t *testing.T) {
	const (
		workers = 8
		keys    = 12
		perW    = 5000
	)
	s := NewStriped[int, int](64, 4, stripedHash)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				k := (w + i) % keys
				s.Touch(k)
				s.Update(k, func(c *Counter[int, int]) { c.Val++ })
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		// Snapshot readers racing the writers.
		for {
			select {
			case <-done:
				return
			default:
				s.Counters()
				s.Len()
			}
		}
	}()
	wg.Wait()
	close(done)
	var total uint64
	for _, c := range s.Counters() {
		if c.Err != 0 {
			t.Errorf("key %d has error bound %d; capacity was never exceeded", c.Key, c.Err)
		}
		total += c.Count
	}
	if total != workers*perW {
		t.Errorf("total count = %d, want %d", total, workers*perW)
	}
}
