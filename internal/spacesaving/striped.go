package spacesaving

import (
	"sort"
	"sync"
)

// Striped is a concurrency-safe Space-Saving wrapper: the key space is
// partitioned across S stripes by a caller-supplied hash, each stripe a
// mutex-guarded Summary with a 1/S share of the counter budget. Keys from
// different stripes are touched in parallel; keys in the same stripe
// serialize on its lock.
//
// Striping approximates a single Summary of capacity k: each stripe
// performs exact Space-Saving over the keys hashed to it, so a globally
// frequent key is tracked as long as it is frequent within its stripe. The
// error bound (Counter.Err) is per stripe, not global — with a roughly
// uniform key spread the guarantees match a Summary of capacity k over a
// 1/S substream, which is how CLIC's global top-k learner uses it.
type Striped[K comparable, V any] struct {
	k       int
	hash    func(K) uint64
	stripes []stripedStripe[K, V]
}

type stripedStripe[K comparable, V any] struct {
	mu  sync.Mutex
	sum *Summary[K, V]
}

// NewStriped returns a striped summary with a total budget of k counters
// split across the given number of stripes (each stripe gets at least one).
// hash assigns keys to stripes; it must be deterministic. Panics if
// k <= 0, stripes <= 0, or hash is nil.
func NewStriped[K comparable, V any](k, stripes int, hash func(K) uint64) *Striped[K, V] {
	if k <= 0 {
		panic("spacesaving: k must be positive")
	}
	if stripes <= 0 {
		panic("spacesaving: stripes must be positive")
	}
	if hash == nil {
		panic("spacesaving: hash must not be nil")
	}
	if stripes > k {
		stripes = k
	}
	s := &Striped[K, V]{k: k, hash: hash, stripes: make([]stripedStripe[K, V], stripes)}
	for i := range s.stripes {
		per := k / stripes
		if i < k%stripes {
			per++
		}
		s.stripes[i].sum = New[K, V](per)
	}
	return s
}

// K returns the total counter budget.
func (s *Striped[K, V]) K() int { return s.k }

// Stripes returns the stripe count.
func (s *Striped[K, V]) Stripes() int { return len(s.stripes) }

func (s *Striped[K, V]) stripe(key K) *stripedStripe[K, V] {
	return &s.stripes[s.hash(key)%uint64(len(s.stripes))]
}

// Touch records one occurrence of key in its stripe.
func (s *Striped[K, V]) Touch(key K) {
	st := s.stripe(key)
	st.mu.Lock()
	st.sum.Touch(key)
	st.mu.Unlock()
}

// Update calls fn on key's counter — with the stripe lock held, so fn may
// mutate Counter.Val — and reports whether the key was tracked. fn must not
// call back into the Striped summary.
func (s *Striped[K, V]) Update(key K, fn func(*Counter[K, V])) bool {
	st := s.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	c, ok := st.sum.Get(key)
	if ok {
		fn(c)
	}
	return ok
}

// Len returns the number of keys currently tracked across all stripes.
func (s *Striped[K, V]) Len() int {
	n := 0
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		n += st.sum.Len()
		st.mu.Unlock()
	}
	return n
}

// Counters returns value copies of every tracked counter, merged across
// stripes in descending count order. The copies are detached: mutating them
// does not affect the summary.
func (s *Striped[K, V]) Counters() []Counter[K, V] {
	return s.collect(false)
}

// Drain returns value copies of every tracked counter and resets all
// stripes — the window-rotation primitive. Each stripe is drained
// atomically under its lock; concurrent Touch calls land either in the
// drained window or the fresh one, never both.
func (s *Striped[K, V]) Drain() []Counter[K, V] {
	return s.collect(true)
}

// Reset discards all counters and statistics.
func (s *Striped[K, V]) Reset() {
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		st.sum.Reset()
		st.mu.Unlock()
	}
}

func (s *Striped[K, V]) collect(reset bool) []Counter[K, V] {
	var out []Counter[K, V]
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for _, c := range st.sum.Counters() {
			cp := *c
			cp.bucket, cp.prev, cp.next = nil, nil, nil
			out = append(out, cp)
		}
		if reset {
			st.sum.Reset()
		}
		st.mu.Unlock()
	}
	// Stripes are individually ordered; restore the global descending-count
	// order of Summary.Counters.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}
