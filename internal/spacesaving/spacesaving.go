// Package spacesaving implements the Space-Saving frequent-item algorithm of
// Metwally, Agrawal and El Abbadi (ICDT '05) with the stream-summary data
// structure, giving O(1) updates.
//
// CLIC uses Space-Saving to bound the space needed to track hint-set
// statistics (paper §5): given a budget of k counters, the summary tracks at
// most k keys at once, replacing the key with the minimum count when a new
// key arrives and the summary is full. Each counter carries an
// application-defined auxiliary value V that is reset whenever the counter
// is recycled for a new key — CLIC stores its Nr and re-reference-distance
// accumulators there, so those statistics only cover the span during which
// the hint set was tracked, exactly as §5 prescribes.
package spacesaving

// Counter tracks one key. Count is the (over-)estimate of the key's
// frequency; Err bounds the over-estimation, so Count-Err is a guaranteed
// lower bound on the true frequency (the paper uses Count-Err as N(H)).
type Counter[K comparable, V any] struct {
	Key   K
	Count uint64
	Err   uint64
	// Val is application state attached to the tracked key. It is zeroed
	// whenever this counter is reassigned to a new key.
	Val V

	bucket     *bucket[K, V]
	prev, next *Counter[K, V] // siblings within the same bucket
}

// Guaranteed reports whether the key is guaranteed to have true frequency
// equal to Count (no over-estimation possible).
func (c *Counter[K, V]) Guaranteed() bool { return c.Err == 0 }

// bucket groups all counters that share the same count, and lives in a
// doubly-linked list of buckets in strictly ascending count order.
type bucket[K comparable, V any] struct {
	count      uint64
	head       *Counter[K, V] // any counter in this bucket
	prev, next *bucket[K, V]
}

// Summary is a Space-Saving stream summary with capacity for k counters.
// The zero value is not usable; call New. Not safe for concurrent use.
type Summary[K comparable, V any] struct {
	k        int
	counters map[K]*Counter[K, V]
	min      *bucket[K, V] // bucket list head (minimum count); nil when empty
	observed uint64        // total number of Touch calls since last Reset

	// Free lists. Buckets are created and pruned on almost every increment
	// (counts are dense, so a counter usually moves into a bucket of its
	// own) and the whole structure is torn down every window Reset;
	// recycling both keeps the steady-state Touch path allocation-free.
	freeBuckets  *bucket[K, V]
	freeCounters *Counter[K, V]
}

// New returns a summary that tracks at most k keys. It panics if k <= 0.
func New[K comparable, V any](k int) *Summary[K, V] {
	if k <= 0 {
		panic("spacesaving: k must be positive")
	}
	return &Summary[K, V]{k: k, counters: make(map[K]*Counter[K, V], k)}
}

// K returns the counter capacity.
func (s *Summary[K, V]) K() int { return s.k }

// Len returns the number of keys currently tracked.
func (s *Summary[K, V]) Len() int { return len(s.counters) }

// Observed returns the number of Touch calls since construction or Reset.
func (s *Summary[K, V]) Observed() uint64 { return s.observed }

// Touch records one occurrence of key. It returns the counter now tracking
// the key and, when tracking it required evicting another key, that key and
// replaced=true. The returned counter's Val has been zeroed if the counter
// was newly assigned (fresh or recycled).
func (s *Summary[K, V]) Touch(key K) (c *Counter[K, V], replacedKey K, replaced bool) {
	s.observed++
	if c, ok := s.counters[key]; ok {
		s.increment(c)
		return c, replacedKey, false
	}
	if len(s.counters) < s.k {
		c := s.newCounter(key)
		s.counters[key] = c
		s.insertWithCount(c, 0)
		s.increment(c)
		return c, replacedKey, false
	}
	// Full: recycle a counter from the minimum bucket.
	c = s.min.head
	replacedKey = c.Key
	replaced = true
	delete(s.counters, c.Key)
	c.Key = key
	c.Err = c.count()
	var zero V
	c.Val = zero
	s.counters[key] = c
	s.increment(c)
	return c, replacedKey, replaced
}

// Get returns the counter for key if it is currently tracked.
func (s *Summary[K, V]) Get(key K) (*Counter[K, V], bool) {
	c, ok := s.counters[key]
	return c, ok
}

// Range calls fn for every tracked counter, in bucket order (ascending
// count, unspecified within a bucket). Unlike Counters it allocates
// nothing; fn must not mutate the summary.
func (s *Summary[K, V]) Range(fn func(c *Counter[K, V])) {
	for b := s.min; b != nil; b = b.next {
		for c := b.head; c != nil; c = c.next {
			fn(c)
		}
	}
}

// Counters returns all tracked counters in descending count order.
func (s *Summary[K, V]) Counters() []*Counter[K, V] {
	out := make([]*Counter[K, V], 0, len(s.counters))
	// Find the maximum bucket by walking from min; bucket count is small in
	// the worst case equal to number of distinct counts <= k.
	var last *bucket[K, V]
	for b := s.min; b != nil; b = b.next {
		last = b
	}
	for b := last; b != nil; b = b.prev {
		for c := b.head; c != nil; c = c.next {
			out = append(out, c)
		}
	}
	return out
}

// Reset discards all counters and statistics, returning the summary to its
// freshly-constructed state. CLIC resets the summary at every request-window
// boundary (paper §5). Counters and buckets are recycled onto the free
// lists, so a steady state of repeated windows allocates nothing.
func (s *Summary[K, V]) Reset() {
	for b := s.min; b != nil; {
		for c := b.head; c != nil; {
			next := c.next
			s.recycleCounter(c)
			c = next
		}
		next := b.next
		s.recycleBucket(b)
		b = next
	}
	clear(s.counters)
	s.min = nil
	s.observed = 0
}

// newCounter takes a counter from the free list (or allocates one) and
// initializes it for key.
func (s *Summary[K, V]) newCounter(key K) *Counter[K, V] {
	c := s.freeCounters
	if c == nil {
		return &Counter[K, V]{Key: key}
	}
	s.freeCounters = c.next
	var zero V
	*c = Counter[K, V]{Key: key, Val: zero}
	return c
}

func (s *Summary[K, V]) recycleCounter(c *Counter[K, V]) {
	c.bucket, c.prev = nil, nil
	c.next = s.freeCounters
	s.freeCounters = c
}

// newBucket takes a bucket from the free list (or allocates one).
func (s *Summary[K, V]) newBucket(count uint64, prev, next *bucket[K, V]) *bucket[K, V] {
	b := s.freeBuckets
	if b == nil {
		return &bucket[K, V]{count: count, prev: prev, next: next}
	}
	s.freeBuckets = b.next
	*b = bucket[K, V]{count: count, prev: prev, next: next}
	return b
}

func (s *Summary[K, V]) recycleBucket(b *bucket[K, V]) {
	b.head, b.prev = nil, nil
	b.next = s.freeBuckets
	s.freeBuckets = b
}

func (c *Counter[K, V]) count() uint64 {
	if c.bucket == nil {
		return 0
	}
	return c.bucket.count
}

// increment moves c from its bucket to the bucket with count+1, creating
// and pruning buckets as needed. All operations are O(1).
func (s *Summary[K, V]) increment(c *Counter[K, V]) {
	old := c.bucket
	newCount := old.count + 1
	// Find or create the destination bucket, which if it exists is old.next.
	dst := old.next
	if dst == nil || dst.count != newCount {
		nb := s.newBucket(newCount, old, old.next)
		if old.next != nil {
			old.next.prev = nb
		}
		old.next = nb
		dst = nb
	}
	s.detach(c)
	s.attach(c, dst)
	c.Count = newCount
	if old.head == nil {
		s.removeBucket(old)
		s.recycleBucket(old)
	}
}

// insertWithCount places a fresh counter into the bucket for the given
// count (creating the bucket at the front if needed). Used only with
// count 0 for new counters; increment immediately moves them to 1.
func (s *Summary[K, V]) insertWithCount(c *Counter[K, V], count uint64) {
	b := s.min
	if b == nil || b.count != count {
		nb := s.newBucket(count, nil, s.min)
		if s.min != nil {
			s.min.prev = nb
		}
		s.min = nb
		b = nb
	}
	s.attach(c, b)
	c.Count = count
}

func (s *Summary[K, V]) attach(c *Counter[K, V], b *bucket[K, V]) {
	c.bucket = b
	c.prev = nil
	c.next = b.head
	if b.head != nil {
		b.head.prev = c
	}
	b.head = c
}

func (s *Summary[K, V]) detach(c *Counter[K, V]) {
	b := c.bucket
	if c.prev != nil {
		c.prev.next = c.next
	} else {
		b.head = c.next
	}
	if c.next != nil {
		c.next.prev = c.prev
	}
	c.prev, c.next, c.bucket = nil, nil, nil
}

func (s *Summary[K, V]) removeBucket(b *bucket[K, V]) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.min = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}
