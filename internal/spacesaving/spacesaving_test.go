package spacesaving

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestExactWhenUnderCapacity(t *testing.T) {
	s := New[string, int](10)
	stream := []string{"a", "b", "a", "c", "a", "b"}
	for _, k := range stream {
		s.Touch(k)
	}
	want := map[string]uint64{"a": 3, "b": 2, "c": 1}
	if s.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(want))
	}
	for k, n := range want {
		c, ok := s.Get(k)
		if !ok {
			t.Fatalf("key %q not tracked", k)
		}
		if c.Count != n || c.Err != 0 || !c.Guaranteed() {
			t.Errorf("key %q: count=%d err=%d, want count=%d err=0", k, c.Count, c.Err, n)
		}
	}
}

func TestEvictsMinimumOnOverflow(t *testing.T) {
	s := New[string, int](2)
	s.Touch("a")
	s.Touch("a")
	s.Touch("b")
	c, replacedKey, replaced := s.Touch("c")
	if !replaced || replacedKey != "b" {
		t.Fatalf("expected b (the minimum) to be replaced, got %q (replaced=%v)", replacedKey, replaced)
	}
	// c inherits b's count as error: count = min+1 = 2, err = 1.
	if c.Count != 2 || c.Err != 1 {
		t.Errorf("recycled counter: count=%d err=%d, want 2,1", c.Count, c.Err)
	}
	if c.Guaranteed() {
		t.Error("recycled counter must not be guaranteed")
	}
}

func TestValResetOnRecycle(t *testing.T) {
	s := New[string, int](1)
	c, _, _ := s.Touch("a")
	c.Val = 99
	c2, old, replaced := s.Touch("b")
	if !replaced || old != "a" {
		t.Fatalf("expected a replaced, got %q", old)
	}
	if c2.Val != 0 {
		t.Errorf("Val not reset on recycle: %d", c2.Val)
	}
}

func TestCountersDescending(t *testing.T) {
	s := New[int, struct{}](10)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			s.Touch(i)
		}
	}
	cs := s.Counters()
	if len(cs) != 5 {
		t.Fatalf("Counters returned %d entries", len(cs))
	}
	for i := 1; i < len(cs); i++ {
		if cs[i].Count > cs[i-1].Count {
			t.Fatalf("Counters not descending: %d after %d", cs[i].Count, cs[i-1].Count)
		}
	}
	if cs[0].Key != 4 || cs[0].Count != 5 {
		t.Errorf("top counter = %v/%d, want key 4 count 5", cs[0].Key, cs[0].Count)
	}
}

func TestReset(t *testing.T) {
	s := New[string, int](4)
	s.Touch("a")
	s.Touch("b")
	s.Reset()
	if s.Len() != 0 || s.Observed() != 0 {
		t.Fatalf("Reset left Len=%d Observed=%d", s.Len(), s.Observed())
	}
	c, _, _ := s.Touch("a")
	if c.Count != 1 || c.Err != 0 {
		t.Errorf("post-reset counter: count=%d err=%d", c.Count, c.Err)
	}
}

func TestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) should panic")
		}
	}()
	New[int, int](0)
}

// TestSpaceSavingGuarantees property-tests the algorithm's published
// guarantees against exact counts on random skewed streams:
//
//  1. count overestimates: true ≤ Count, and Count - Err ≤ true
//  2. any key with true frequency > N/k is tracked
//  3. at most k keys are tracked
func TestSpaceSavingGuarantees(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		k := int(kRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		s := New[int, struct{}](k)
		truth := make(map[int]uint64)
		n := 500 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Skewed stream over up to 60 keys.
			key := int(float64(60) * rng.Float64() * rng.Float64())
			truth[key]++
			s.Touch(key)
		}
		if s.Len() > k {
			return false
		}
		for _, c := range s.Counters() {
			if truth[c.Key] > c.Count {
				return false // Count must overestimate
			}
			if c.Count-c.Err > truth[c.Key] {
				return false // Count-Err must underestimate
			}
		}
		threshold := uint64(n / k)
		for key, cnt := range truth {
			if cnt > threshold {
				if _, ok := s.Get(key); !ok {
					return false // frequent item guarantee
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKRecall checks that on a heavily skewed stream the summary's top
// counters correspond to the actual most frequent keys.
func TestTopKRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := New[int, struct{}](20)
	truth := make(map[int]int)
	for i := 0; i < 100000; i++ {
		// Zipf-ish: key i with weight ~ 1/(i+1).
		key := int(rng.ExpFloat64() * 3)
		if key > 200 {
			key = 200
		}
		truth[key]++
		s.Touch(key)
	}
	type kv struct{ k, n int }
	var exact []kv
	for k, n := range truth {
		exact = append(exact, kv{k, n})
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i].n > exact[j].n })
	// The true top 10 should all be tracked.
	for _, e := range exact[:10] {
		if _, ok := s.Get(e.k); !ok {
			t.Errorf("true top-10 key %d (count %d) not tracked", e.k, e.n)
		}
	}
}

func TestObserved(t *testing.T) {
	s := New[int, struct{}](3)
	for i := 0; i < 25; i++ {
		s.Touch(i % 7)
	}
	if s.Observed() != 25 {
		t.Errorf("Observed = %d, want 25", s.Observed())
	}
}

func BenchmarkTouch(b *testing.B) {
	s := New[int, struct{}](100)
	rng := rand.New(rand.NewSource(1))
	keys := make([]int, 4096)
	for i := range keys {
		keys[i] = int(float64(1000) * rng.Float64() * rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Touch(keys[i%len(keys)])
	}
}
