package hintproj

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/hint"
	"repro/internal/sim"
	"repro/internal/trace"
)

// signalTrace builds a trace where the "kind" hint type perfectly predicts
// caching value (kind=hot pages re-read quickly, kind=cold never) and the
// "junk" hint type is uniform noise.
func signalTrace(seed int64, n int) *trace.Trace {
	t := trace.New("signal", 4096)
	rng := rand.New(rand.NewSource(seed))
	ids := make(map[string]hint.ID)
	get := func(kind, junk string) hint.ID {
		key := kind + "/" + junk
		if id, ok := ids[key]; ok {
			return id
		}
		id := t.Dict.Intern(hint.Make("kind", kind, "junk", junk))
		ids[key] = id
		return id
	}
	coldPage := uint64(10_000)
	for t.Len() < n {
		junk := string(rune('a' + rng.Intn(8)))
		if rng.Intn(2) == 0 {
			p := uint64(rng.Intn(64))
			t.Append(p, trace.Write, get("hot", junk))
			t.Append(p, trace.Read, get("hot", junk))
		} else {
			t.Append(coldPage, trace.Write, get("cold", junk))
			coldPage++
		}
	}
	return t
}

func TestAnalyzeScoresSignalAboveNoise(t *testing.T) {
	tr := signalTrace(1, 40000)
	a := Analyze(tr, 128, 0)
	if len(a.Scores) != 2 {
		t.Fatalf("scores for %d types, want 2", len(a.Scores))
	}
	if a.Scores[0].Type != "kind" {
		t.Fatalf("top type = %q, want kind (scores: %+v)", a.Scores[0].Type, a.Scores)
	}
	if a.Scores[0].Score <= a.Scores[1].Score {
		t.Errorf("signal score %v not above noise score %v", a.Scores[0].Score, a.Scores[1].Score)
	}
	// Field stats must include both kind values with hot >> cold priority.
	var hot, cold FieldStat
	for _, f := range a.Fields {
		switch f.Field {
		case hint.Field{Type: "kind", Value: "hot"}:
			hot = f
		case hint.Field{Type: "kind", Value: "cold"}:
			cold = f
		}
	}
	if hot.Pr <= cold.Pr {
		t.Errorf("hot Pr %v <= cold Pr %v", hot.Pr, cold.Pr)
	}
}

func TestSelectTypes(t *testing.T) {
	a := Analysis{Scores: []TypeScore{
		{Type: "x", Score: 3},
		{Type: "y", Score: 1},
		{Type: "z", Score: 0},
	}}
	if got := a.SelectTypes(5); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("SelectTypes(5) = %v", got)
	}
	if got := a.SelectTypes(1); len(got) != 1 || got[0] != "x" {
		t.Errorf("SelectTypes(1) = %v", got)
	}
}

func TestProjectCollapsesHintSpace(t *testing.T) {
	tr := signalTrace(2, 20000)
	before := tr.Stats().DistinctHints
	proj := Project(tr, []string{"kind"})
	after := proj.Stats().DistinctHints
	if after >= before {
		t.Fatalf("projection did not shrink hint space: %d -> %d", before, after)
	}
	if after != 2 {
		t.Errorf("projected hint sets = %d, want 2 (hot/cold)", after)
	}
	// Pages, ops, clients unchanged.
	for i := range tr.Reqs {
		if tr.Reqs[i].Page != proj.Reqs[i].Page || tr.Reqs[i].Op != proj.Reqs[i].Op {
			t.Fatal("projection altered the request stream")
		}
	}
	// Original untouched.
	if tr.Stats().DistinctHints != before {
		t.Error("Project mutated its input")
	}
}

func TestGeneralizeRestoresNoiseRobustness(t *testing.T) {
	// This is the §8 claim, tested end to end: dilute a trace with noise
	// hint types, then show that generalization recovers (almost all of)
	// the clean-trace hit ratio under a small top-k budget.
	base := signalTrace(3, 60000)
	noisy, err := trace.WithNoise(base, trace.DefaultNoise(3, 7))
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *trace.Trace) float64 {
		cfg := core.Config{Capacity: sim.ClicCapacity(128), Window: 10000, TopK: 4}
		return sim.Run(core.New(cfg), tr).HitRatio()
	}
	clean := run(base)
	diluted := run(noisy)
	generalized, types := Generalize(noisy, 128, 20000, 2)
	recovered := run(generalized)

	if clean <= 0.5 {
		t.Fatalf("degenerate baseline: %v", clean)
	}
	if len(types) == 0 || types[0] != "kind" {
		t.Fatalf("generalization selected %v, want kind first", types)
	}
	if recovered < clean*0.9 {
		t.Errorf("generalized hit ratio %.3f did not recover the clean %.3f (diluted: %.3f)",
			recovered, clean, diluted)
	}
}

func TestGeneralizeNoSignal(t *testing.T) {
	// A trace whose hints carry no information: Generalize must fall back
	// to the original trace rather than collapsing the hint space.
	tr := trace.New("flat", 4096)
	h := tr.Dict.Intern(hint.Make("only", "value"))
	for p := uint64(0); p < 1000; p++ {
		tr.Append(p, trace.Write, h) // never re-read: all priorities zero
	}
	out, types := Generalize(tr, 16, 0, 3)
	if out != tr || types != nil {
		t.Errorf("expected passthrough, got types %v", types)
	}
}

// TestProjectStreamMatchesProject pins the streaming projection to the
// in-RAM one: same requests, same dictionary, same IDs.
func TestProjectStreamMatchesProject(t *testing.T) {
	tr := signalTrace(3, 20000)
	types := []string{"kind"}
	want := Project(tr, types)
	got := trace.New(want.Name, tr.PageSize)
	got.Clients = append([]string(nil), tr.Clients...)
	it := tr.Iter()
	defer it.Close()
	if err := ProjectStream(it, got, types); err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || got.Dict.Len() != want.Dict.Len() {
		t.Fatalf("len %d/%d, dict %d/%d", got.Len(), want.Len(), got.Dict.Len(), want.Dict.Len())
	}
	for i := range want.Reqs {
		if got.Reqs[i] != want.Reqs[i] {
			t.Fatalf("request %d: %+v vs %+v", i, got.Reqs[i], want.Reqs[i])
		}
	}
	for id := 0; id < want.Dict.Len(); id++ {
		if got.Dict.Key(hint.ID(id)) != want.Dict.Key(hint.ID(id)) {
			t.Fatalf("hint %d: %q vs %q", id, got.Dict.Key(hint.ID(id)), want.Dict.Key(hint.ID(id)))
		}
	}
}
