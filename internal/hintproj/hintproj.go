// Package hintproj implements the hint-set generalization the paper leaves
// as future work (§8): "grouping related hint sets together into a common
// class" so that CLIC keeps working when clients supply many low-value
// hint types (the §6.3 dilution problem).
//
// The approach is a one-level decision-tree analysis over hint *types*:
//
//  1. Run a sampling pass that gathers CLIC's own per-hint-set statistics
//     (N, Nr, D) over a prefix of the request stream.
//  2. For every (type=value) pair, aggregate the statistics of the hint
//     sets carrying it, and compute the pair's standalone priority.
//  3. Score each hint type by the N-weighted variance of priority across
//     its values: a type whose values all predict the same priority (a
//     noise type) scores ~0; a type that separates good from bad caching
//     candidates (e.g. "reqtype") scores high.
//  4. Keep the top-scoring types and project every hint set onto them,
//     collapsing the hint-set space from the product of all domains to
//     the product of the informative ones.
//
// The projected trace is then served by an unmodified CLIC cache, so the
// extension composes with the frequency-based top-k mechanism exactly as
// §8 anticipates.
package hintproj

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/hint"
	"repro/internal/trace"
)

// FieldStat aggregates hint statistics for a single (type, value) pair.
type FieldStat struct {
	Field hint.Field
	N     uint64
	Nr    uint64
	Dsum  float64
	Pr    float64 // standalone priority of the pair
}

// TypeScore is the informativeness score of one hint type.
type TypeScore struct {
	Type  string
	Score float64 // N-weighted variance of Pr across the type's values
}

// Analysis is the result of a sampling pass.
type Analysis struct {
	Fields []FieldStat
	Scores []TypeScore // descending
}

// Analyze runs a CLIC statistics pass over the first sampleLen requests of
// the trace (capacity pages, outqueue at the usual 5×) and scores every
// hint type. sampleLen <= 0 samples the whole trace.
func Analyze(t *trace.Trace, capacity, sampleLen int) Analysis {
	if sampleLen <= 0 || sampleLen > t.Len() {
		sampleLen = t.Len()
	}
	c := core.New(core.Config{Capacity: capacity, Window: sampleLen + 1})
	for _, r := range t.Reqs[:sampleLen] {
		c.Access(r)
	}

	// Aggregate per (type, value) over the full hint-set statistics.
	type agg struct {
		n    uint64
		nr   uint64
		dsum float64
	}
	fields := make(map[hint.Field]*agg)
	for _, hs := range c.WindowStats() {
		set := t.Dict.Set(hs.Hint)
		for _, f := range set {
			a, ok := fields[f]
			if !ok {
				a = &agg{}
				fields[f] = a
			}
			a.n += hs.N
			a.nr += hs.Nr
			a.dsum += hs.D * float64(hs.Nr)
		}
	}

	var out Analysis
	byType := make(map[string][]FieldStat)
	for f, a := range fields {
		fs := FieldStat{Field: f, N: a.n, Nr: a.nr, Dsum: a.dsum}
		fs.Pr = priority(a.n, a.nr, a.dsum)
		out.Fields = append(out.Fields, fs)
		byType[f.Type] = append(byType[f.Type], fs)
	}
	sort.Slice(out.Fields, func(i, j int) bool {
		if out.Fields[i].Field.Type != out.Fields[j].Field.Type {
			return out.Fields[i].Field.Type < out.Fields[j].Field.Type
		}
		return out.Fields[i].Field.Value < out.Fields[j].Field.Value
	})

	for typ, stats := range byType {
		out.Scores = append(out.Scores, TypeScore{Type: typ, Score: variance(stats)})
	}
	sort.Slice(out.Scores, func(i, j int) bool {
		if out.Scores[i].Score != out.Scores[j].Score {
			return out.Scores[i].Score > out.Scores[j].Score
		}
		return out.Scores[i].Type < out.Scores[j].Type
	})
	return out
}

func priority(n, nr uint64, dsum float64) float64 {
	if n == 0 || nr == 0 || dsum <= 0 {
		return 0
	}
	return float64(nr) * float64(nr) / (float64(n) * dsum)
}

// variance returns the N-weighted variance of standalone priorities across
// one hint type's values.
func variance(stats []FieldStat) float64 {
	var totalN uint64
	mean := 0.0
	for _, s := range stats {
		totalN += s.N
		mean += float64(s.N) * s.Pr
	}
	if totalN == 0 {
		return 0
	}
	mean /= float64(totalN)
	v := 0.0
	for _, s := range stats {
		d := s.Pr - mean
		v += float64(s.N) * d * d
	}
	return v / float64(totalN)
}

// SelectTypes returns the up-to-maxTypes highest-scoring hint types with a
// strictly positive score.
func (a Analysis) SelectTypes(maxTypes int) []string {
	var out []string
	for _, s := range a.Scores {
		if len(out) >= maxTypes || s.Score <= 0 {
			break
		}
		out = append(out, s.Type)
	}
	return out
}

// Project rewrites the trace so every hint set keeps only the given types
// (in their original field order). Hint sets that collapse to the same
// projection share one interned ID, shrinking the hint-set space the
// server must track. The input trace is not modified.
//
// The remap table is built serially (it is dictionary-sized); the
// request-stream rewrite, which dominates on long traces, fans out across
// GOMAXPROCS. Chunking cannot change the output — the rewrite is a pure
// per-request table lookup — so Project stays deterministic.
func Project(t *trace.Trace, types []string) *trace.Trace {
	keep := make(map[string]bool, len(types))
	for _, typ := range types {
		keep[typ] = true
	}
	out := trace.New(t.Name+"+proj", t.PageSize)
	out.Clients = append([]string(nil), t.Clients...)
	out.Reqs = make([]trace.Request, len(t.Reqs))

	remap := make([]hint.ID, t.Dict.Len())
	for id, key := range t.Dict.Keys() {
		set, err := hint.Parse(key)
		if err != nil {
			// Dictionary keys are canonical by construction; a parse error
			// means corruption, and projecting to the empty set is the
			// safest degradation.
			remap[id] = out.Dict.Intern(nil)
			continue
		}
		proj := make(hint.Set, 0, len(types))
		for _, f := range set {
			if keep[f.Type] {
				proj = append(proj, f)
			}
		}
		remap[id] = out.Dict.Intern(proj)
	}

	workers := runtime.GOMAXPROCS(0)
	chunk := (len(t.Reqs) + workers - 1) / workers
	if chunk < 1 {
		return out
	}
	var wg sync.WaitGroup
	for lo := 0; lo < len(t.Reqs); lo += chunk {
		hi := lo + chunk
		if hi > len(t.Reqs) {
			hi = len(t.Reqs)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				r := t.Reqs[i]
				r.Hint = remap[r.Hint]
				out.Reqs[i] = r
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// ProjectStream is the streaming form of Project: it pipes requests from it
// into sink, keeping only the given hint types in every hint set, in
// bounded memory at any trace length. Projected sets are interned in input
// dictionary ID order as the input dictionary becomes visible — the same
// order Project's upfront remap uses — so the output requests and
// dictionary are identical to Project over the same input.
func ProjectStream(it trace.Iterator, sink trace.Sink, types []string) error {
	keep := make(map[string]bool, len(types))
	for _, typ := range types {
		keep[typ] = true
	}
	inDict, outDict := it.HintDict(), sink.HintDict()
	var remap []hint.ID
	sync := func() {
		for id := len(remap); id < inDict.Len(); id++ {
			set, err := hint.Parse(inDict.Key(hint.ID(id)))
			if err != nil {
				// Same degradation as Project: corrupt key → empty projection.
				remap = append(remap, outDict.Intern(nil))
				continue
			}
			proj := make(hint.Set, 0, len(types))
			for _, f := range set {
				if keep[f.Type] {
					proj = append(proj, f)
				}
			}
			remap = append(remap, outDict.Intern(proj))
		}
	}
	for it.Scan() {
		sync()
		r := it.Request()
		r.Hint = remap[r.Hint]
		sink.AppendReq(r)
	}
	sync() // trailing dict growth (v2 dict sections after the last block)
	if err := it.Err(); err != nil {
		return err
	}
	return trace.Err(sink)
}

// Generalize is the end-to-end helper: analyze a sample of the trace,
// select the maxTypes most informative hint types, and return the
// projected trace together with the chosen types.
func Generalize(t *trace.Trace, capacity, sampleLen, maxTypes int) (*trace.Trace, []string) {
	analysis := Analyze(t, capacity, sampleLen)
	types := analysis.SelectTypes(maxTypes)
	if len(types) == 0 {
		// Nothing informative found (e.g. a hint-free trace): keep the
		// original hint space rather than collapsing everything to one set.
		return t, nil
	}
	return Project(t, types), types
}
