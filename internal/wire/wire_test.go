package wire

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestHelloRoundTrip covers Hello and HelloAck encode/decode.
func TestHelloRoundTrip(t *testing.T) {
	cases := []Hello{
		{Version: Version, Client: "DB2_C60", Keys: []string{"", "reqtype=seq", "reqtype=rand|table=stock"}},
		{Version: 7, Client: "", Keys: nil},
		{Version: 0, Client: "a client with spaces", Keys: []string{""}},
	}
	for _, h := range cases {
		got, err := DecodeHello(AppendHello(nil, h))
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got.Version != h.Version || got.Client != h.Client || !reflect.DeepEqual(got.Keys, append([]string{}, h.Keys...)) {
			t.Errorf("round trip: got %+v, want %+v", got, h)
		}
	}
	acks := []HelloAck{{}, {Version: Version, Shards: 8, Capacity: 18000}}
	for _, a := range acks {
		got, err := DecodeHelloAck(AppendHelloAck(nil, a))
		if err != nil {
			t.Fatalf("%+v: %v", a, err)
		}
		if got != a {
			t.Errorf("round trip: got %+v, want %+v", got, a)
		}
	}
}

// TestInternRoundTrip covers the mid-stream hint announcement frame.
func TestInternRoundTrip(t *testing.T) {
	for _, keys := range [][]string{nil, {"a=b"}, {"", "x=y|z=w", "q=1"}} {
		got, err := DecodeIntern(AppendIntern(nil, keys))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(keys) {
			t.Fatalf("got %d keys, want %d", len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Errorf("key %d = %q, want %q", i, got[i], keys[i])
			}
		}
	}
}

// TestBatchRoundTrip is the table-driven encode/decode check for request
// batches, including descending pages (negative deltas) and extreme values.
func TestBatchRoundTrip(t *testing.T) {
	cases := [][]trace.Request{
		nil,
		{{Page: 0, Hint: 0, Op: trace.Read}},
		{
			{Page: 100, Hint: 1, Op: trace.Read},
			{Page: 101, Hint: 1, Op: trace.Read},
			{Page: 5, Hint: 2, Op: trace.Write},
			{Page: math.MaxUint64, Hint: math.MaxUint32, Op: trace.Read},
			{Page: 0, Hint: 0, Op: trace.Write},
		},
	}
	for _, reqs := range cases {
		got, err := DecodeBatch(AppendBatch(nil, reqs), nil)
		if err != nil {
			t.Fatalf("%+v: %v", reqs, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("got %d requests, want %d", len(got), len(reqs))
		}
		for i, r := range reqs {
			r.Client = 0 // client travels out of band
			if got[i] != r {
				t.Errorf("request %d = %+v, want %+v", i, got[i], r)
			}
		}
	}
}

// TestBatchReuse checks that DecodeBatch reuses a caller-provided buffer.
func TestBatchReuse(t *testing.T) {
	reqs := []trace.Request{{Page: 3}, {Page: 9, Op: trace.Write}}
	buf := make([]trace.Request, 0, 16)
	got, err := DecodeBatch(AppendBatch(nil, reqs), buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[:1][0] {
		t.Error("DecodeBatch did not reuse the provided buffer")
	}
}

// TestResultsRoundTrip covers hit bitmaps at every length mod 8.
func TestResultsRoundTrip(t *testing.T) {
	for n := 0; n <= 17; n++ {
		hits := make([]bool, n)
		for i := range hits {
			hits[i] = i%3 == 0
		}
		in := Results{Hits: hits, OutqueueDepth: n * 1000}
		got, err := DecodeResults(AppendResults(nil, in), Results{})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.OutqueueDepth != in.OutqueueDepth {
			t.Errorf("n=%d: depth %d, want %d", n, got.OutqueueDepth, in.OutqueueDepth)
		}
		if len(got.Hits) != n {
			t.Fatalf("n=%d: got %d hits", n, len(got.Hits))
		}
		for i := range hits {
			if got.Hits[i] != hits[i] {
				t.Errorf("n=%d: hit %d = %v, want %v", n, i, got.Hits[i], hits[i])
			}
		}
	}
}

// TestSummaryRoundTrip covers the cluster summary-exchange frame,
// including NaN/Inf distance sums (NaN compared by bit pattern).
func TestSummaryRoundTrip(t *testing.T) {
	cases := []Summary{
		{},
		{Node: "node0", Round: 1, Entries: []SummaryEntry{{Key: "reqtype=seq", N: 10, Nr: 3, Dsum: 123.5}}},
		{Node: "a node", Round: math.MaxUint64, Entries: []SummaryEntry{
			{Key: "", N: math.MaxUint64, Nr: 0, Dsum: 0},
			{Key: "x=y|z=w", N: 1, Nr: 1, Dsum: math.Inf(1)},
			{Key: "q=1", N: 2, Nr: 2, Dsum: math.NaN()},
		}},
	}
	for _, s := range cases {
		got, err := DecodeSummary(AppendSummary(nil, s))
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if got.Node != s.Node || got.Round != s.Round || len(got.Entries) != len(s.Entries) {
			t.Fatalf("round trip: got %+v, want %+v", got, s)
		}
		for i, e := range s.Entries {
			g := got.Entries[i]
			if g.Key != e.Key || g.N != e.N || g.Nr != e.Nr ||
				math.Float64bits(g.Dsum) != math.Float64bits(e.Dsum) {
				t.Errorf("entry %d = %+v, want %+v", i, g, e)
			}
		}
	}
}

// TestSummaryRejectsGarbage checks truncation, impossible entry counts,
// and trailing bytes fail cleanly.
func TestSummaryRejectsGarbage(t *testing.T) {
	s := AppendSummary(nil, Summary{Node: "n", Round: 2, Entries: []SummaryEntry{{Key: "a=b", N: 1, Nr: 1, Dsum: 4}}})
	for cut := 1; cut < len(s); cut++ {
		if _, err := DecodeSummary(s[:cut]); err == nil {
			t.Errorf("DecodeSummary accepted a frame truncated at %d", cut)
		}
	}
	if _, err := DecodeSummary(append(s[:len(s):len(s)], 0)); err == nil {
		t.Error("DecodeSummary accepted trailing bytes")
	}
	huge := []byte{TypeSummary, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := DecodeSummary(huge); err == nil {
		t.Error("DecodeSummary accepted an impossible entry count")
	}
}

// TestNegotiate pins the version-negotiation rules for both handshake
// directions.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		peer    int
		want    int
		wantErr bool
	}{
		{peer: Version, want: Version},
		{peer: MinVersion, want: MinVersion},
		{peer: Version + 5, want: Version},
		{peer: MinVersion - 1, wantErr: true},
		{peer: 0, wantErr: true},
		{peer: -3, wantErr: true},
	}
	for _, c := range cases {
		got, err := Negotiate(c.peer)
		if c.wantErr != (err != nil) {
			t.Errorf("Negotiate(%d): err = %v, wantErr %v", c.peer, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("Negotiate(%d) = %d, want %d", c.peer, got, c.want)
		}
	}
	if MinVersion >= SummaryVersion {
		t.Error("MinVersion must predate SummaryVersion for the mixed-version rejection path to exist")
	}
}

// TestErrorRoundTrip covers the error frame.
func TestErrorRoundTrip(t *testing.T) {
	msg, err := DecodeError(AppendError(nil, "bad hint index"))
	if err != nil {
		t.Fatal(err)
	}
	if msg != "bad hint index" {
		t.Errorf("got %q", msg)
	}
}

// TestFrameIO round-trips several frames through one buffered stream.
func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	payloads := [][]byte{
		AppendHello(nil, Hello{Version: Version, Client: "c"}),
		AppendBatch(nil, []trace.Request{{Page: 1}, {Page: 2}}),
		AppendResults(nil, Results{Hits: []bool{true, false}, OutqueueDepth: 42}),
	}
	for _, p := range payloads {
		if err := WriteFrame(w, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	var scratch []byte
	for i, want := range payloads {
		got, err := ReadFrame(r, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got % x, want % x", i, got, want)
		}
		scratch = got
	}
	if _, err := ReadFrame(r, scratch); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

// TestDecodeRejectsGarbage ensures decoders fail cleanly on wrong types,
// truncation, and trailing bytes instead of panicking or over-allocating.
func TestDecodeRejectsGarbage(t *testing.T) {
	hello := AppendHello(nil, Hello{Version: 1, Client: "x", Keys: []string{"a=b"}})
	batch := AppendBatch(nil, []trace.Request{{Page: 9}})
	if _, err := DecodeBatch(hello, nil); err == nil {
		t.Error("DecodeBatch accepted a Hello frame")
	}
	if _, err := DecodeHello(batch); err == nil {
		t.Error("DecodeHello accepted a Batch frame")
	}
	if _, err := DecodeHello(nil); err == nil {
		t.Error("DecodeHello accepted an empty payload")
	}
	for cut := 1; cut < len(hello); cut++ {
		if _, err := DecodeHello(hello[:cut]); err == nil {
			t.Errorf("DecodeHello accepted a frame truncated at %d", cut)
		}
	}
	if _, err := DecodeHello(append(hello[:len(hello):len(hello)], 0)); err == nil {
		t.Error("DecodeHello accepted trailing bytes")
	}
	// A batch header claiming far more requests than the frame could hold
	// must fail fast rather than allocate.
	huge := []byte{TypeBatch, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := DecodeBatch(huge, nil); err == nil {
		t.Error("DecodeBatch accepted an impossible request count")
	}
}

// FuzzDecodeBatch throws arbitrary bytes at the batch decoder and, when a
// payload decodes, re-encodes the result to check the codec closes.
func FuzzDecodeBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBatch(nil, []trace.Request{{Page: 1, Hint: 2}, {Page: 100, Op: trace.Write}}))
	f.Add([]byte{TypeBatch, 3, 0, 2, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		reqs, err := DecodeBatch(p, nil)
		if err != nil {
			return
		}
		out, err := DecodeBatch(AppendBatch(nil, reqs), nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(out) != len(reqs) {
			t.Fatalf("re-decode changed length: %d -> %d", len(reqs), len(out))
		}
		for i := range reqs {
			if out[i] != reqs[i] {
				t.Fatalf("request %d changed: %+v -> %+v", i, reqs[i], out[i])
			}
		}
	})
}

// FuzzDecodeHello does the same for the handshake frame.
func FuzzDecodeHello(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendHello(nil, Hello{Version: 1, Client: "c", Keys: []string{"a=b", ""}}))
	f.Fuzz(func(t *testing.T, p []byte) {
		h, err := DecodeHello(p)
		if err != nil {
			return
		}
		got, err := DecodeHello(AppendHello(nil, h))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got.Version != h.Version || got.Client != h.Client || len(got.Keys) != len(h.Keys) {
			t.Fatalf("round trip changed: %+v -> %+v", h, got)
		}
	})
}

// FuzzDecodeSummary does the same for the cluster summary frame.
func FuzzDecodeSummary(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendSummary(nil, Summary{Node: "n0", Round: 7, Entries: []SummaryEntry{
		{Key: "a=b", N: 5, Nr: 2, Dsum: 31.25},
		{Key: "", N: 1, Nr: 0, Dsum: 0},
	}}))
	f.Fuzz(func(t *testing.T, p []byte) {
		s, err := DecodeSummary(p)
		if err != nil {
			return
		}
		got, err := DecodeSummary(AppendSummary(nil, s))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got.Node != s.Node || got.Round != s.Round || len(got.Entries) != len(s.Entries) {
			t.Fatalf("round trip changed: %+v -> %+v", s, got)
		}
		for i := range s.Entries {
			a, b := s.Entries[i], got.Entries[i]
			if a.Key != b.Key || a.N != b.N || a.Nr != b.Nr ||
				math.Float64bits(a.Dsum) != math.Float64bits(b.Dsum) {
				t.Fatalf("entry %d changed: %+v -> %+v", i, a, b)
			}
		}
	})
}

// FuzzDecodeResults covers the bitmap decoder.
func FuzzDecodeResults(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendResults(nil, Results{Hits: []bool{true, false, true}, OutqueueDepth: 9}))
	f.Fuzz(func(t *testing.T, p []byte) {
		r, err := DecodeResults(p, Results{})
		if err != nil {
			return
		}
		got, err := DecodeResults(AppendResults(nil, r), Results{})
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got.OutqueueDepth != r.OutqueueDepth || len(got.Hits) != len(r.Hits) {
			t.Fatalf("round trip changed: %+v -> %+v", r, got)
		}
	})
}

// TestHelloAckWindow pins the conditional Window encoding: a v3 ack
// carries its pipeline window, a v2 ack omits the field entirely so old
// decoders keep working byte for byte.
func TestHelloAckWindow(t *testing.T) {
	v3 := HelloAck{Version: Version, Shards: 8, Capacity: 18000, Window: 32}
	got, err := DecodeHelloAck(AppendHelloAck(nil, v3))
	if err != nil {
		t.Fatal(err)
	}
	if got != v3 {
		t.Errorf("v3 round trip: got %+v, want %+v", got, v3)
	}
	v2 := HelloAck{Version: PipelineVersion - 1, Shards: 8, Capacity: 18000, Window: 32}
	p2 := AppendHelloAck(nil, v2)
	got2, err := DecodeHelloAck(p2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Window != 0 {
		t.Errorf("v2 ack carried a window (%d); the field is v3-only", got2.Window)
	}
	if len(p2) >= len(AppendHelloAck(nil, v3)) {
		t.Error("v2 ack is not shorter than the v3 ack — Window leaked into old frames")
	}
}

// TestBatchSeqRoundTrip covers the sequence-tagged batch frame, both via
// the slice decoder and the streaming decoder.
func TestBatchSeqRoundTrip(t *testing.T) {
	reqs := []trace.Request{
		{Page: 100, Hint: 1, Op: trace.Read},
		{Page: 5, Hint: 2, Op: trace.Write},
		{Page: math.MaxUint64, Hint: math.MaxUint32, Op: trace.Read},
	}
	for _, seq := range []uint64{0, 1, 511, math.MaxUint64} {
		p := AppendBatchSeq(nil, seq, reqs)
		gotSeq, got, err := DecodeBatchSeq(p, nil)
		if err != nil {
			t.Fatalf("seq=%d: %v", seq, err)
		}
		if gotSeq != seq || len(got) != len(reqs) {
			t.Fatalf("seq=%d: got seq=%d n=%d", seq, gotSeq, len(got))
		}
		for i, r := range reqs {
			r.Client = 0
			if got[i] != r {
				t.Errorf("request %d = %+v, want %+v", i, got[i], r)
			}
		}
		// Streaming decoder sees the same frame.
		var streamed []trace.Request
		sSeq, tagged, err := DecodeBatchStream(p,
			func(n int) error { streamed = make([]trace.Request, 0, n); return nil },
			func(i int, r trace.Request) error { streamed = append(streamed, r); return nil })
		if err != nil || !tagged || sSeq != seq {
			t.Fatalf("stream seq=%d: seq=%d tagged=%v err=%v", seq, sSeq, tagged, err)
		}
		if !reflect.DeepEqual(streamed, got) {
			t.Errorf("stream decoded %+v, want %+v", streamed, got)
		}
	}
}

// TestDecodeBatchStreamUntagged checks the streaming decoder accepts a
// plain v2 Batch frame and reports it untagged, and rejects non-batch
// frames.
func TestDecodeBatchStreamUntagged(t *testing.T) {
	reqs := []trace.Request{{Page: 7}, {Page: 8, Op: trace.Write}}
	var n int
	seq, tagged, err := DecodeBatchStream(AppendBatch(nil, reqs),
		func(c int) error { n = c; return nil },
		func(int, trace.Request) error { return nil })
	if err != nil || tagged || seq != 0 || n != len(reqs) {
		t.Fatalf("untagged: seq=%d tagged=%v n=%d err=%v", seq, tagged, n, err)
	}
	if _, _, err := DecodeBatchStream(AppendResults(nil, Results{}), nil, nil); err == nil {
		t.Error("DecodeBatchStream accepted a Results frame")
	}
}

// TestDecodeBatchStreamCallbackError checks callback errors abort the
// decode and come back unwrapped.
func TestDecodeBatchStreamCallbackError(t *testing.T) {
	p := AppendBatchSeq(nil, 3, []trace.Request{{Page: 1}, {Page: 2}})
	sentinel := io.ErrUnexpectedEOF
	if _, _, err := DecodeBatchStream(p, func(int) error { return sentinel }, nil); err != sentinel {
		t.Errorf("begin error: got %v, want sentinel", err)
	}
	calls := 0
	_, _, err := DecodeBatchStream(p,
		func(int) error { return nil },
		func(int, trace.Request) error { calls++; return sentinel })
	if err != sentinel || calls != 1 {
		t.Errorf("emit error: got %v after %d calls, want sentinel after 1", err, calls)
	}
}

// TestBatchSeqRejectsGarbage checks truncation and trailing bytes fail
// cleanly for both sequence-tagged frames, through both decoders.
func TestBatchSeqRejectsGarbage(t *testing.T) {
	b := AppendBatchSeq(nil, 9, []trace.Request{{Page: 3, Hint: 1}, {Page: 1, Op: trace.Write}})
	for cut := 1; cut < len(b); cut++ {
		if _, _, err := DecodeBatchSeq(b[:cut], nil); err == nil {
			t.Errorf("DecodeBatchSeq accepted a frame truncated at %d", cut)
		}
		if _, _, err := DecodeBatchStream(b[:cut], func(int) error { return nil },
			func(int, trace.Request) error { return nil }); err == nil {
			t.Errorf("DecodeBatchStream accepted a frame truncated at %d", cut)
		}
	}
	if _, _, err := DecodeBatchSeq(append(b[:len(b):len(b)], 0), nil); err == nil {
		t.Error("DecodeBatchSeq accepted trailing bytes")
	}
	r := AppendResultsSeq(nil, 9, Results{Hits: []bool{true, false, true}, OutqueueDepth: 4})
	for cut := 1; cut < len(r); cut++ {
		if _, _, err := DecodeResultsSeq(r[:cut], Results{}); err == nil {
			t.Errorf("DecodeResultsSeq accepted a frame truncated at %d", cut)
		}
	}
	if _, _, err := DecodeResultsSeq(append(r[:len(r):len(r)], 0), Results{}); err == nil {
		t.Error("DecodeResultsSeq accepted trailing bytes")
	}
	if _, _, err := DecodeResultsSeq(AppendResults(nil, Results{}), Results{}); err == nil {
		t.Error("DecodeResultsSeq accepted an untagged Results frame")
	}
	if _, _, err := DecodeBatchSeq(AppendBatch(nil, nil), nil); err == nil {
		t.Error("DecodeBatchSeq accepted an untagged Batch frame")
	}
}

// FuzzDecodeBatchSeq extends the batch fuzz target to the sequence-tagged
// frame header.
func FuzzDecodeBatchSeq(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendBatchSeq(nil, 5, []trace.Request{{Page: 1, Hint: 2}, {Page: 100, Op: trace.Write}}))
	f.Add([]byte{TypeBatchSeq, 7, 3, 0, 2, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		seq, reqs, err := DecodeBatchSeq(p, nil)
		if err != nil {
			return
		}
		seq2, out, err := DecodeBatchSeq(AppendBatchSeq(nil, seq, reqs), nil)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if seq2 != seq || len(out) != len(reqs) {
			t.Fatalf("round trip changed: seq %d->%d, n %d->%d", seq, seq2, len(reqs), len(out))
		}
		for i := range reqs {
			if out[i] != reqs[i] {
				t.Fatalf("request %d changed: %+v -> %+v", i, reqs[i], out[i])
			}
		}
	})
}

// FuzzDecodeResultsSeq does the same for sequence-tagged results.
func FuzzDecodeResultsSeq(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendResultsSeq(nil, 12, Results{Hits: []bool{true, false, true}, OutqueueDepth: 9}))
	f.Fuzz(func(t *testing.T, p []byte) {
		seq, r, err := DecodeResultsSeq(p, Results{})
		if err != nil {
			return
		}
		seq2, got, err := DecodeResultsSeq(AppendResultsSeq(nil, seq, r), Results{})
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if seq2 != seq || got.OutqueueDepth != r.OutqueueDepth || len(got.Hits) != len(r.Hits) {
			t.Fatalf("round trip changed: %+v -> %+v", r, got)
		}
	})
}
