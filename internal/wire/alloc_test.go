package wire

import (
	"bufio"
	"bytes"
	"testing"

	"repro/internal/hint"
	"repro/internal/trace"
)

// TestRoundTripAllocs pins the zero-allocation contract of the wire hot
// path: once the reusable buffers have grown to the batch size, encoding a
// batch, framing it, reading the frame back and decoding it — and the same
// for the results direction — allocates nothing.
func TestRoundTripAllocs(t *testing.T) {
	reqs := make([]trace.Request, DefaultBatch)
	for i := range reqs {
		op := trace.Read
		if i%7 == 0 {
			op = trace.Write
		}
		reqs[i] = trace.Request{Page: uint64(i * 13), Hint: hint.ID(i % 32), Op: op}
	}
	hits := make([]bool, DefaultBatch)
	for i := range hits {
		hits[i] = i%3 == 0
	}

	var (
		enc     []byte
		payload []byte
		dec     []trace.Request
		res     Results
		buf     bytes.Buffer
	)
	bw := bufio.NewWriterSize(&buf, 1<<16)
	br := bufio.NewReaderSize(&buf, 1<<16)
	roundTrip := func() {
		enc = AppendBatch(enc[:0], reqs)
		buf.Reset()
		bw.Reset(&buf)
		if err := WriteFrame(bw, enc); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		br.Reset(&buf)
		p, err := ReadFrame(br, payload)
		if err != nil {
			t.Fatal(err)
		}
		payload = p
		d, err := DecodeBatch(p, dec)
		if err != nil {
			t.Fatal(err)
		}
		dec = d
		if len(dec) != len(reqs) {
			t.Fatalf("decoded %d requests, want %d", len(dec), len(reqs))
		}

		enc = AppendResults(enc[:0], Results{Hits: hits, OutqueueDepth: 42})
		buf.Reset()
		bw.Reset(&buf)
		if err := WriteFrame(bw, enc); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		br.Reset(&buf)
		p, err = ReadFrame(br, payload)
		if err != nil {
			t.Fatal(err)
		}
		payload = p
		r, err := DecodeResults(p, res)
		if err != nil {
			t.Fatal(err)
		}
		res = r
		if len(res.Hits) != len(hits) {
			t.Fatalf("decoded %d hits, want %d", len(res.Hits), len(hits))
		}
	}
	roundTrip() // warm-up: grow enc/payload/dec/res to steady-state capacity
	if avg := testing.AllocsPerRun(200, roundTrip); avg != 0 {
		t.Errorf("wire round trip allocates %v allocs per batch in steady state, want 0", avg)
	}
}

// TestSeqRoundTripAllocs pins the same zero-allocation contract for the
// pipelined v3 frames: sequence-tagged encode, streaming decode straight
// into a preallocated slice, and the tagged results direction.
func TestSeqRoundTripAllocs(t *testing.T) {
	reqs := make([]trace.Request, DefaultBatch)
	for i := range reqs {
		op := trace.Read
		if i%7 == 0 {
			op = trace.Write
		}
		reqs[i] = trace.Request{Page: uint64(i * 13), Hint: hint.ID(i % 32), Op: op}
	}
	hits := make([]bool, DefaultBatch)

	var (
		enc     []byte
		payload []byte
		res     Results
		seq     uint64
		buf     bytes.Buffer
	)
	dec := make([]trace.Request, DefaultBatch)
	bw := bufio.NewWriterSize(&buf, 1<<16)
	br := bufio.NewReaderSize(&buf, 1<<16)
	// Hoisted callbacks: method-value captures here would allocate per call.
	begin := func(n int) error { dec = dec[:n]; return nil }
	emit := func(i int, r trace.Request) error { dec[i] = r; return nil }
	roundTrip := func() {
		seq++
		enc = AppendBatchSeq(enc[:0], seq, reqs)
		buf.Reset()
		bw.Reset(&buf)
		if err := WriteFrame(bw, enc); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		br.Reset(&buf)
		p, err := ReadFrame(br, payload)
		if err != nil {
			t.Fatal(err)
		}
		payload = p
		gotSeq, tagged, err := DecodeBatchStream(p, begin, emit)
		if err != nil || !tagged || gotSeq != seq {
			t.Fatalf("stream decode: seq=%d tagged=%v err=%v", gotSeq, tagged, err)
		}

		enc = AppendResultsSeq(enc[:0], seq, Results{Hits: hits, OutqueueDepth: 42})
		gotSeq, r, err := DecodeResultsSeq(enc, res)
		if err != nil || gotSeq != seq {
			t.Fatalf("results decode: seq=%d err=%v", gotSeq, err)
		}
		res = r
	}
	roundTrip()
	if avg := testing.AllocsPerRun(200, roundTrip); avg != 0 {
		t.Errorf("seq wire round trip allocates %v allocs per batch in steady state, want 0", avg)
	}
}
