// Package wire defines the length-prefixed binary protocol spoken between
// the network cache server (internal/server) and its clients
// (internal/netclient). The codec is shared by both sides so the two can
// never drift apart.
//
// Every frame is a uvarint payload length followed by the payload; the
// payload's first byte is the frame type. Bodies (all integers are varints
// unless noted; strings are uvarint length + bytes):
//
//	Hello    (client→server)  version, client name, hint key count, keys
//	HelloAck (server→client)  version, shard count, capacity
//	Intern   (client→server)  hint key count, keys — appended to the
//	                          connection's hint table, so clients may
//	                          announce hint sets discovered mid-stream
//	Batch    (client→server)  request count, then per request:
//	                            flags byte (bit0 = write),
//	                            page delta (zig-zag varint vs the previous
//	                            page in the batch, starting from 0),
//	                            hint ID (index into the hint table built
//	                            by Hello/Intern, in announcement order)
//	Results  (server→client)  result count, outqueue depth, then a hit
//	                          bitmap of ceil(count/8) bytes (LSB first)
//	Error    (server→client)  message — sent before the server closes a
//	                          misbehaving connection
//	Summary  (node→node)      origin node name, merge round, entry count,
//	                          then per entry: canonical hint.Set key,
//	                          window counters N and Nr (uvarints) and the
//	                          distance sum D as 8 fixed little-endian
//	                          bytes (IEEE 754 bits) — one node's rotated
//	                          hint-statistics window, the exchange
//	                          currency of cluster-wide merged learning
//	                          (internal/cluster)
//	BatchSeq (client→server)  sequence number (uvarint), then the Batch
//	                          body — a Batch tagged so several may be in
//	                          flight on one connection (v3+)
//	ResultsSeq (server→client) sequence number (uvarint), then the Results
//	                          body — answers the BatchSeq with the same
//	                          sequence number (v3+)
//
// The client ID is implicit: one connection is one client. Page numbers are
// delta-encoded within each batch because clients issue runs of sequential
// pages (scans, prefetch), exactly as in the binary trace file format. The
// outqueue depth in Results is the server's CLIC outqueue fill level — a
// hint back to clients about how much uncached-page history the server is
// retaining.
//
// # Version negotiation
//
// Hello and HelloAck carry a protocol version. The server answers a Hello
// with min(client version, Version) provided the client is at least
// MinVersion, and the client accepts the ack under the same rule
// (Negotiate implements both directions); otherwise the connection is
// refused with an Error frame. Each side then sends only frames the
// negotiated version defines. Summary frames exist from SummaryVersion on:
// a peer that negotiated an older version rejects them with a clean Error
// instead of desyncing the stream, which is what lets mixed-version
// clusters upgrade one node at a time. Hint-set keys travel as canonical
// strings in Summary frames because hint IDs are per-node interning
// orders and mean nothing across processes.
//
// # Pipelining (v2 → v3)
//
// Version 3 adds sequence-tagged batches. A v2 connection runs in
// lock-step — one Batch, one Results, full round trip before the next —
// so loopback throughput is bounded by per-batch RTT. From
// PipelineVersion on, a client may instead send BatchSeq frames, each
// tagged with a monotonically increasing sequence number, and keep up to
// the server's advertised window (HelloAck.Window, v3+) of batches in
// flight. The server answers every BatchSeq with a ResultsSeq carrying
// the same sequence number, always in ascending sequence order (TCP
// preserves it; a client seeing an unexpected sequence number must treat
// the connection as broken). Plain Batch/Results frames remain valid on
// a v3 connection, so a lock-step client needs no changes, and a v3
// client talking to a v2 server falls back to lock-step after
// negotiation caps the version.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/hint"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Metrics counts traffic through the frame codec, process-wide: frames and
// on-the-wire bytes (length prefix included) in each direction. The
// counters are plain atomics bumped inline in Read/WriteFrame — no
// registration or configuration needed, and no allocation on the frame
// path. RegisterMetrics exposes them on a registry.
var Metrics struct {
	FramesEncoded metrics.Counter
	BytesEncoded  metrics.Counter
	FramesDecoded metrics.Counter
	BytesDecoded  metrics.Counter
}

// RegisterMetrics registers the codec counters on r under the
// clic_wire_* names.
func RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("clic_wire_frames_total", "Frames through the codec by direction.",
		func() float64 { return float64(Metrics.FramesEncoded.Value()) }, "dir", "encoded")
	r.CounterFunc("clic_wire_frames_total", "Frames through the codec by direction.",
		func() float64 { return float64(Metrics.FramesDecoded.Value()) }, "dir", "decoded")
	r.CounterFunc("clic_wire_bytes_total", "Wire bytes (payload plus length prefix) by direction.",
		func() float64 { return float64(Metrics.BytesEncoded.Value()) }, "dir", "encoded")
	r.CounterFunc("clic_wire_bytes_total", "Wire bytes (payload plus length prefix) by direction.",
		func() float64 { return float64(Metrics.BytesDecoded.Value()) }, "dir", "decoded")
}

// uvarintLen returns the encoded size of n as a uvarint.
func uvarintLen(n uint64) uint64 {
	l := uint64(1)
	for n >= 0x80 {
		n >>= 7
		l++
	}
	return l
}

// Version is the newest protocol version this codec speaks, offered in
// Hello and capped in HelloAck. Version 2 added Summary frames; version 3
// added sequence-tagged pipelined batches (BatchSeq/ResultsSeq).
const Version = 3

// MinVersion is the oldest peer version still accepted; anything older is
// refused at the handshake.
const MinVersion = 1

// SummaryVersion is the first protocol version that defines Summary
// frames. Connections negotiated below it must reject TypeSummary cleanly.
const SummaryVersion = 2

// PipelineVersion is the first protocol version that defines
// BatchSeq/ResultsSeq frames and the HelloAck Window field. Connections
// negotiated below it run in lock-step and must reject TypeBatchSeq
// cleanly.
const PipelineVersion = 3

// Negotiate returns the protocol version to speak with a peer that
// announced peerVersion: the newer side caps itself at the older side's
// version, and peers older than MinVersion are refused. Both handshake
// directions use it — the server on Hello.Version, the client on
// HelloAck.Version.
func Negotiate(peerVersion int) (int, error) {
	if peerVersion < MinVersion {
		return 0, fmt.Errorf("wire: peer speaks protocol version %d, need at least %d", peerVersion, MinVersion)
	}
	if peerVersion > Version {
		return Version, nil
	}
	return peerVersion, nil
}

// MaxFrame bounds a frame's payload size; both sides reject larger frames
// rather than allocating unbounded memory on malformed or hostile input.
const MaxFrame = 1 << 24

// DefaultBatch is the request count per Batch frame used by clients that do
// not choose their own batching.
const DefaultBatch = 512

// Frame types (the first payload byte).
const (
	TypeHello      byte = 1
	TypeHelloAck   byte = 2
	TypeIntern     byte = 3
	TypeBatch      byte = 4
	TypeResults    byte = 5
	TypeError      byte = 6
	TypeSummary    byte = 7
	TypeBatchSeq   byte = 8
	TypeResultsSeq byte = 9
)

// Hello opens a connection: the client names itself and announces the hint
// sets (canonical hint.Set keys) it will reference by index.
type Hello struct {
	Version int
	Client  string
	Keys    []string
}

// HelloAck is the server's response to Hello.
type HelloAck struct {
	Version  int
	Shards   int
	Capacity int
	// Window is the largest number of batches the server lets one
	// connection keep in flight (v3+; zero when negotiated below
	// PipelineVersion).
	Window int
}

// Summary carries one node's rotated hint-statistics window: the raw
// counters behind its top-k tracked hint sets, keyed by canonical hint.Set
// key so peers can intern them into their own dictionaries. Peers fold the
// counters into their next window rotation (clicstats.Merged), which is
// how a cluster keeps one CLIC model without sharing memory.
type Summary struct {
	// Node names the origin so receivers can attribute merge traffic.
	Node string
	// Round is the origin's rotation count when the window closed.
	Round   uint64
	Entries []SummaryEntry
}

// SummaryEntry is one hint set's window counters: N arrivals, Nr
// re-references, and the summed re-reference distance Dsum (the raw inputs
// of CLIC's Pr(H) estimate, pre-division so receivers can keep summing).
type SummaryEntry struct {
	Key  string
	N    uint64
	Nr   uint64
	Dsum float64
}

// Results carries the per-request outcomes of one Batch.
type Results struct {
	// Hits holds one hit/miss flag per request, in batch order.
	Hits []bool
	// OutqueueDepth is the server's CLIC outqueue fill level after the
	// batch (see core.Stats.OutqueueLen).
	OutqueueDepth int
}

// WriteFrame writes one length-prefixed frame. The caller flushes.
func WriteFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame payload %d exceeds limit %d", len(payload), MaxFrame)
	}
	// The length prefix goes out byte by byte: WriteByte keeps the varint
	// on the stack, where a scratch slice handed to Write would escape and
	// cost an allocation per frame.
	n := uint64(len(payload))
	for n >= 0x80 {
		if err := w.WriteByte(byte(n) | 0x80); err != nil {
			return err
		}
		n >>= 7
	}
	if err := w.WriteByte(byte(n)); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	Metrics.FramesEncoded.Inc()
	Metrics.BytesEncoded.Add(uvarintLen(uint64(len(payload))) + uint64(len(payload)))
	return nil
}

// ReadFrame reads one frame's payload, reusing buf when it is large enough.
// io.EOF is returned unwrapped when the stream ends cleanly between frames.
func ReadFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: reading frame length: %w", err)
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame payload %d exceeds limit %d", n, MaxFrame)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	Metrics.FramesDecoded.Inc()
	Metrics.BytesDecoded.Add(uvarintLen(n) + n)
	return buf, nil
}

// PayloadType returns the frame type of a payload.
func PayloadType(p []byte) (byte, error) {
	if len(p) == 0 {
		return 0, fmt.Errorf("wire: empty frame")
	}
	return p[0], nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decoder consumes varint-encoded fields from a payload.
type decoder struct {
	p   []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.p[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.p[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated varint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.p) {
		return 0, fmt.Errorf("wire: truncated frame at offset %d", d.off)
	}
	b := d.p[d.off]
	d.off++
	return b, nil
}

func (d *decoder) float64() (float64, error) {
	if len(d.p)-d.off < 8 {
		return 0, fmt.Errorf("wire: truncated float64 at offset %d", d.off)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.p[d.off:]))
	d.off += 8
	return v, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(d.p)-d.off) < n {
		return "", fmt.Errorf("wire: string of %d bytes overruns frame", n)
	}
	s := string(d.p[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *decoder) strings() ([]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	// Each string costs at least its length byte; bound the allocation by
	// what the frame could possibly hold.
	if n > uint64(len(d.p)-d.off) {
		return nil, fmt.Errorf("wire: %d strings overrun frame", n)
	}
	out := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func (d *decoder) done() error {
	if d.off != len(d.p) {
		return fmt.Errorf("wire: %d trailing bytes after frame body", len(d.p)-d.off)
	}
	return nil
}

func expect(p []byte, t byte) (decoder, error) {
	got, err := PayloadType(p)
	if err != nil {
		return decoder{}, err
	}
	if got != t {
		return decoder{}, fmt.Errorf("wire: frame type %d, want %d", got, t)
	}
	// Returned by value so the per-frame decoder lives on the caller's
	// stack: decoding must not allocate.
	return decoder{p: p, off: 1}, nil
}

// AppendHello encodes a Hello payload.
func AppendHello(dst []byte, h Hello) []byte {
	dst = append(dst, TypeHello)
	dst = binary.AppendUvarint(dst, uint64(h.Version))
	dst = appendString(dst, h.Client)
	dst = binary.AppendUvarint(dst, uint64(len(h.Keys)))
	for _, k := range h.Keys {
		dst = appendString(dst, k)
	}
	return dst
}

// DecodeHello decodes a Hello payload.
func DecodeHello(p []byte) (Hello, error) {
	d, err := expect(p, TypeHello)
	if err != nil {
		return Hello{}, err
	}
	var h Hello
	v, err := d.uvarint()
	if err != nil {
		return Hello{}, err
	}
	h.Version = int(v)
	if h.Client, err = d.string(); err != nil {
		return Hello{}, err
	}
	if h.Keys, err = d.strings(); err != nil {
		return Hello{}, err
	}
	return h, d.done()
}

// AppendHelloAck encodes a HelloAck payload. The Window field exists only
// from PipelineVersion on, so it is encoded exactly when a.Version says
// the negotiated protocol defines it.
func AppendHelloAck(dst []byte, a HelloAck) []byte {
	dst = append(dst, TypeHelloAck)
	dst = binary.AppendUvarint(dst, uint64(a.Version))
	dst = binary.AppendUvarint(dst, uint64(a.Shards))
	dst = binary.AppendUvarint(dst, uint64(a.Capacity))
	if a.Version >= PipelineVersion {
		dst = binary.AppendUvarint(dst, uint64(a.Window))
	}
	return dst
}

// DecodeHelloAck decodes a HelloAck payload.
func DecodeHelloAck(p []byte) (HelloAck, error) {
	d, err := expect(p, TypeHelloAck)
	if err != nil {
		return HelloAck{}, err
	}
	var a HelloAck
	for _, f := range []*int{&a.Version, &a.Shards, &a.Capacity} {
		v, err := d.uvarint()
		if err != nil {
			return HelloAck{}, err
		}
		*f = int(v)
	}
	if a.Version >= PipelineVersion {
		v, err := d.uvarint()
		if err != nil {
			return HelloAck{}, err
		}
		a.Window = int(v)
	}
	return a, d.done()
}

// AppendIntern encodes an Intern payload announcing additional hint keys.
func AppendIntern(dst []byte, keys []string) []byte {
	dst = append(dst, TypeIntern)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
	}
	return dst
}

// DecodeIntern decodes an Intern payload.
func DecodeIntern(p []byte) ([]string, error) {
	d, err := expect(p, TypeIntern)
	if err != nil {
		return nil, err
	}
	keys, err := d.strings()
	if err != nil {
		return nil, err
	}
	return keys, d.done()
}

// appendBatchBody encodes the shared Batch/BatchSeq body: request count,
// then per request the flags byte, delta-encoded page and hint ID.
func appendBatchBody(dst []byte, reqs []trace.Request) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(reqs)))
	prev := uint64(0)
	for _, r := range reqs {
		flags := byte(0)
		if r.Op == trace.Write {
			flags |= 1
		}
		dst = append(dst, flags)
		dst = binary.AppendVarint(dst, int64(r.Page)-int64(prev))
		prev = r.Page
		dst = binary.AppendUvarint(dst, uint64(r.Hint))
	}
	return dst
}

// AppendBatch encodes a Batch payload. Request Client fields are ignored:
// the connection identifies the client.
func AppendBatch(dst []byte, reqs []trace.Request) []byte {
	dst = append(dst, TypeBatch)
	return appendBatchBody(dst, reqs)
}

// AppendBatchSeq encodes a sequence-tagged BatchSeq payload (v3+).
func AppendBatchSeq(dst []byte, seq uint64, reqs []trace.Request) []byte {
	dst = append(dst, TypeBatchSeq)
	dst = binary.AppendUvarint(dst, seq)
	return appendBatchBody(dst, reqs)
}

// decodeBatchRequest decodes one request record of a batch body, carrying
// the running page value in *prev.
func (d *decoder) batchRequest(prev *int64) (trace.Request, error) {
	flags, err := d.byte()
	if err != nil {
		return trace.Request{}, err
	}
	delta, err := d.varint()
	if err != nil {
		return trace.Request{}, err
	}
	*prev += delta
	h, err := d.uvarint()
	if err != nil {
		return trace.Request{}, err
	}
	if h > uint64(^hint.ID(0)) {
		return trace.Request{}, fmt.Errorf("wire: hint ID %d overflows", h)
	}
	op := trace.Read
	if flags&1 != 0 {
		op = trace.Write
	}
	return trace.Request{Page: uint64(*prev), Hint: hint.ID(h), Op: op}, nil
}

// batchCount decodes and bounds-checks a batch body's request count.
func (d *decoder) batchCount() (uint64, error) {
	n, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	// A record is at least 3 bytes (flags + delta + hint).
	if n > uint64(len(d.p))/3+1 {
		return 0, fmt.Errorf("wire: batch of %d requests overruns frame", n)
	}
	return n, nil
}

// decodeBatchBody decodes the shared Batch/BatchSeq body into dst.
func (d *decoder) decodeBatchBody(dst []trace.Request) ([]trace.Request, error) {
	n, err := d.batchCount()
	if err != nil {
		return nil, err
	}
	if uint64(cap(dst)) < n {
		dst = make([]trace.Request, n)
	}
	dst = dst[:n]
	prev := int64(0)
	for i := range dst {
		r, err := d.batchRequest(&prev)
		if err != nil {
			return nil, err
		}
		dst[i] = r
	}
	return dst, d.done()
}

// DecodeBatch decodes a Batch payload into dst (reused when large enough).
// Decoded requests carry Client 0; the receiver attributes them to the
// connection's client.
func DecodeBatch(p []byte, dst []trace.Request) ([]trace.Request, error) {
	d, err := expect(p, TypeBatch)
	if err != nil {
		return nil, err
	}
	return d.decodeBatchBody(dst)
}

// DecodeBatchSeq decodes a BatchSeq payload into dst, returning the frame's
// sequence number alongside the requests.
func DecodeBatchSeq(p []byte, dst []trace.Request) (uint64, []trace.Request, error) {
	d, err := expect(p, TypeBatchSeq)
	if err != nil {
		return 0, nil, err
	}
	seq, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	reqs, err := d.decodeBatchBody(dst)
	return seq, reqs, err
}

// DecodeBatchStream decodes a Batch or BatchSeq payload without
// materialising a request slice: begin is called once with the request
// count, then emit once per decoded request, in batch order. Either
// callback may stop the decode by returning an error (propagated
// unwrapped). tagged reports whether the frame carried a sequence number
// (BatchSeq); seq is zero for plain Batch frames. This is the zero-copy
// server path — requests stream straight from the wire buffer into the
// owner-shard producer frames.
func DecodeBatchStream(p []byte, begin func(n int) error, emit func(i int, r trace.Request) error) (seq uint64, tagged bool, err error) {
	t, err := PayloadType(p)
	if err != nil {
		return 0, false, err
	}
	d := decoder{p: p, off: 1}
	switch t {
	case TypeBatch:
	case TypeBatchSeq:
		tagged = true
		if seq, err = d.uvarint(); err != nil {
			return 0, true, err
		}
	default:
		return 0, false, fmt.Errorf("wire: frame type %d, want %d or %d", t, TypeBatch, TypeBatchSeq)
	}
	n, err := d.batchCount()
	if err != nil {
		return seq, tagged, err
	}
	if err := begin(int(n)); err != nil {
		return seq, tagged, err
	}
	prev := int64(0)
	for i := 0; i < int(n); i++ {
		r, err := d.batchRequest(&prev)
		if err != nil {
			return seq, tagged, err
		}
		if err := emit(i, r); err != nil {
			return seq, tagged, err
		}
	}
	return seq, tagged, d.done()
}

// appendResultsBody encodes the shared Results/ResultsSeq body: count,
// outqueue depth, then the LSB-first hit bitmap.
func appendResultsBody(dst []byte, r Results) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r.Hits)))
	dst = binary.AppendUvarint(dst, uint64(r.OutqueueDepth))
	var cur byte
	for i, hit := range r.Hits {
		if hit {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, cur)
			cur = 0
		}
	}
	if len(r.Hits)%8 != 0 {
		dst = append(dst, cur)
	}
	return dst
}

// AppendResults encodes a Results payload.
func AppendResults(dst []byte, r Results) []byte {
	dst = append(dst, TypeResults)
	return appendResultsBody(dst, r)
}

// AppendResultsSeq encodes a sequence-tagged ResultsSeq payload (v3+),
// answering the BatchSeq frame with the same sequence number.
func AppendResultsSeq(dst []byte, seq uint64, r Results) []byte {
	dst = append(dst, TypeResultsSeq)
	dst = binary.AppendUvarint(dst, seq)
	return appendResultsBody(dst, r)
}

// decodeResultsBody decodes the shared Results/ResultsSeq body, reusing
// dst.Hits when large enough.
func (d *decoder) decodeResultsBody(dst Results) (Results, error) {
	n, err := d.uvarint()
	if err != nil {
		return Results{}, err
	}
	depth, err := d.uvarint()
	if err != nil {
		return Results{}, err
	}
	words := (n + 7) / 8
	if uint64(len(d.p)-d.off) != words {
		return Results{}, fmt.Errorf("wire: results bitmap has %d bytes, want %d", len(d.p)-d.off, words)
	}
	if uint64(cap(dst.Hits)) < n {
		dst.Hits = make([]bool, n)
	}
	dst.Hits = dst.Hits[:n]
	for i := range dst.Hits {
		dst.Hits[i] = d.p[d.off+i/8]&(1<<(i%8)) != 0
	}
	dst.OutqueueDepth = int(depth)
	return dst, nil
}

// DecodeResults decodes a Results payload, reusing dst.Hits when large
// enough.
func DecodeResults(p []byte, dst Results) (Results, error) {
	d, err := expect(p, TypeResults)
	if err != nil {
		return Results{}, err
	}
	return d.decodeResultsBody(dst)
}

// DecodeResultsSeq decodes a ResultsSeq payload, returning the frame's
// sequence number alongside the results.
func DecodeResultsSeq(p []byte, dst Results) (uint64, Results, error) {
	d, err := expect(p, TypeResultsSeq)
	if err != nil {
		return 0, Results{}, err
	}
	seq, err := d.uvarint()
	if err != nil {
		return 0, Results{}, err
	}
	res, err := d.decodeResultsBody(dst)
	return seq, res, err
}

// AppendSummary encodes a Summary payload.
func AppendSummary(dst []byte, s Summary) []byte {
	dst = append(dst, TypeSummary)
	dst = appendString(dst, s.Node)
	dst = binary.AppendUvarint(dst, s.Round)
	dst = binary.AppendUvarint(dst, uint64(len(s.Entries)))
	for _, e := range s.Entries {
		dst = appendString(dst, e.Key)
		dst = binary.AppendUvarint(dst, e.N)
		dst = binary.AppendUvarint(dst, e.Nr)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.Dsum))
	}
	return dst
}

// DecodeSummary decodes a Summary payload.
func DecodeSummary(p []byte) (Summary, error) {
	d, err := expect(p, TypeSummary)
	if err != nil {
		return Summary{}, err
	}
	var s Summary
	if s.Node, err = d.string(); err != nil {
		return Summary{}, err
	}
	if s.Round, err = d.uvarint(); err != nil {
		return Summary{}, err
	}
	n, err := d.uvarint()
	if err != nil {
		return Summary{}, err
	}
	// An entry is at least 11 bytes (key length + N + Nr + fixed Dsum).
	if n > uint64(len(p)-d.off)/11+1 {
		return Summary{}, fmt.Errorf("wire: summary of %d entries overruns frame", n)
	}
	s.Entries = make([]SummaryEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e SummaryEntry
		if e.Key, err = d.string(); err != nil {
			return Summary{}, err
		}
		if e.N, err = d.uvarint(); err != nil {
			return Summary{}, err
		}
		if e.Nr, err = d.uvarint(); err != nil {
			return Summary{}, err
		}
		if e.Dsum, err = d.float64(); err != nil {
			return Summary{}, err
		}
		s.Entries = append(s.Entries, e)
	}
	return s, d.done()
}

// AppendError encodes an Error payload.
func AppendError(dst []byte, msg string) []byte {
	dst = append(dst, TypeError)
	return appendString(dst, msg)
}

// DecodeError decodes an Error payload.
func DecodeError(p []byte) (string, error) {
	d, err := expect(p, TypeError)
	if err != nil {
		return "", err
	}
	msg, err := d.string()
	if err != nil {
		return "", err
	}
	return msg, d.done()
}
