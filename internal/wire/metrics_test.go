package wire

import (
	"bufio"
	"bytes"
	"testing"
)

func TestUvarintLen(t *testing.T) {
	cases := []struct {
		n    uint64
		want uint64
	}{
		{0, 1}, {0x7f, 1}, {0x80, 2}, {0x3fff, 2}, {0x4000, 3}, {1 << 24, 4},
	}
	for _, c := range cases {
		if got := uvarintLen(c.n); got != c.want {
			t.Errorf("uvarintLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestFrameMetrics checks the codec counters account every frame and every
// on-the-wire byte, prefix included.
func TestFrameMetrics(t *testing.T) {
	encF0, encB0 := Metrics.FramesEncoded.Value(), Metrics.BytesEncoded.Value()
	decF0, decB0 := Metrics.FramesDecoded.Value(), Metrics.BytesDecoded.Value()

	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	payloads := [][]byte{
		make([]byte, 1),   // 1-byte prefix
		make([]byte, 200), // 2-byte prefix
	}
	wireBytes := uint64(0)
	for _, p := range payloads {
		if err := WriteFrame(w, p); err != nil {
			t.Fatal(err)
		}
		wireBytes += uvarintLen(uint64(len(p))) + uint64(len(p))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if uint64(buf.Len()) != wireBytes {
		t.Fatalf("encoded %d bytes on the wire, accounting says %d", buf.Len(), wireBytes)
	}
	r := bufio.NewReader(&buf)
	var scratch []byte
	for range payloads {
		p, err := ReadFrame(r, scratch)
		if err != nil {
			t.Fatal(err)
		}
		scratch = p
	}

	if got := Metrics.FramesEncoded.Value() - encF0; got != 2 {
		t.Errorf("FramesEncoded delta = %d, want 2", got)
	}
	if got := Metrics.BytesEncoded.Value() - encB0; got != wireBytes {
		t.Errorf("BytesEncoded delta = %d, want %d", got, wireBytes)
	}
	if got := Metrics.FramesDecoded.Value() - decF0; got != 2 {
		t.Errorf("FramesDecoded delta = %d, want 2", got)
	}
	if got := Metrics.BytesDecoded.Value() - decB0; got != wireBytes {
		t.Errorf("BytesDecoded delta = %d, want %d", got, wireBytes)
	}
}
