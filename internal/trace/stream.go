package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/hint"
)

// Scanner iterates the requests of a trace file one at a time, without ever
// materialising the request slice: memory stays constant no matter how long
// the trace is, which is what paper-scale traces (hundreds of millions of
// requests) and the network replay path need. All three trace formats are
// supported (binary v1, streaming binary v2, text); the format is sniffed
// from the leading bytes.
//
// For binary v1 the header (name, page size, clients, hint dictionary,
// request count) is decoded eagerly by NewScanner, so Dict and Clients are
// complete before the first Scan. For v2 the client list is complete up
// front but the dictionary grows as dict sections are scanned (always
// before the requests that reference them); the request count is only known
// from the trailer, after the last Scan. For the text format the dictionary
// and client list grow as records are scanned, mirroring ReadText.
//
// Scanning v2 performs zero steady-state allocations: each block payload is
// slurped into one reused buffer and records decode from it in place.
type Scanner struct {
	closer io.Closer // non-nil when the Scanner owns the underlying file
	br     *bufio.Reader
	binary bool
	v2     bool

	name     string
	pageSize int
	clients  []string
	dict     *hint.Dict

	// Binary decoding state.
	total     uint64 // declared request count (v1: header, v2: trailer)
	remaining uint64
	prevPage  int64

	// v2 decoding state.
	payload  []byte // reused request-block payload buffer
	ppos     int    // decode offset into payload
	blockRem uint64 // records left in the current block
	seen     uint64 // records decoded so far
	crc      uint32 // running CRC over block payloads
	finished bool   // trailer seen and verified

	// Text decoding state.
	headerDone bool
	lineNo     int

	cur Request
	err error
}

// Open returns a Scanner over the trace file at path. Closing the Scanner
// closes the file.
func Open(path string) (*Scanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewScanner(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// NewScanner returns a Scanner over a trace stream in either the binary or
// the text format (sniffed from the first bytes; binary starts with the
// magic string).
func NewScanner(r io.Reader) (*Scanner, error) {
	s := &Scanner{br: bufio.NewReaderSize(r, 1<<20), dict: hint.NewDict()}
	head, err := s.br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: sniffing format: %w", err)
	}
	switch string(head) {
	case binaryMagic:
		s.binary = true
		if err := s.readBinaryHeader(); err != nil {
			return nil, err
		}
		return s, nil
	case binaryMagicV2:
		s.binary = true
		s.v2 = true
		if err := s.readBinaryHeaderV2(); err != nil {
			return nil, err
		}
		return s, nil
	}
	// Text traces default like ReadText and refine from header lines.
	s.name = "trace"
	s.pageSize = 4096
	return s, nil
}

func (s *Scanner) readBinaryHeader() error {
	if _, err := s.br.Discard(len(binaryMagic)); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(s.br)
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(s.br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	var err error
	if s.name, err = readString(); err != nil {
		return fmt.Errorf("trace: reading name: %w", err)
	}
	pageSize, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading page size: %w", err)
	}
	s.pageSize = int(pageSize)
	nClients, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading client count: %w", err)
	}
	s.clients = make([]string, nClients)
	for i := range s.clients {
		if s.clients[i], err = readString(); err != nil {
			return fmt.Errorf("trace: reading client %d: %w", i, err)
		}
	}
	nKeys, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading dict size: %w", err)
	}
	for i := uint64(0); i < nKeys; i++ {
		k, err := readString()
		if err != nil {
			return fmt.Errorf("trace: reading hint key %d: %w", i, err)
		}
		if got := s.dict.InternKey(k); got != hint.ID(i) {
			return fmt.Errorf("trace: duplicate hint key %q in dictionary", k)
		}
	}
	if s.total, err = binary.ReadUvarint(s.br); err != nil {
		return fmt.Errorf("trace: reading request count: %w", err)
	}
	s.remaining = s.total
	return nil
}

func (s *Scanner) readString() (string, error) {
	n, err := binary.ReadUvarint(s.br)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(s.br, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func (s *Scanner) readBinaryHeaderV2() error {
	if _, err := s.br.Discard(len(binaryMagicV2)); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	var err error
	if s.name, err = s.readString(); err != nil {
		return fmt.Errorf("trace: reading name: %w", err)
	}
	pageSize, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading page size: %w", err)
	}
	s.pageSize = int(pageSize)
	nClients, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading client count: %w", err)
	}
	s.clients = make([]string, nClients)
	for i := range s.clients {
		if s.clients[i], err = s.readString(); err != nil {
			return fmt.Errorf("trace: reading client %d: %w", i, err)
		}
	}
	return nil
}

// Scan advances to the next request, returning false at end of trace or on
// error (distinguish with Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	if s.v2 {
		return s.scanBinaryV2()
	}
	if s.binary {
		return s.scanBinary()
	}
	return s.scanText()
}

// scanBinaryV2 decodes the next request of a v2 stream. Dict sections are
// absorbed transparently; block payloads are read whole into one reused
// buffer and decoded in place, so steady-state scanning allocates nothing.
func (s *Scanner) scanBinaryV2() bool {
	for s.blockRem == 0 {
		if s.finished {
			return false
		}
		if !s.nextSectionV2() {
			return false
		}
	}
	flags := s.payload[s.ppos]
	client := s.payload[s.ppos+1]
	s.ppos += 2
	delta, n := binary.Varint(s.payload[s.ppos:])
	if n <= 0 {
		s.err = fmt.Errorf("trace: request %d: bad page delta", s.seen)
		return false
	}
	s.ppos += n
	s.prevPage += delta
	h, n := binary.Uvarint(s.payload[s.ppos:])
	if n <= 0 {
		s.err = fmt.Errorf("trace: request %d: bad hint ID", s.seen)
		return false
	}
	s.ppos += n
	if h >= uint64(s.dict.Len()) {
		s.err = fmt.Errorf("trace: request %d references hint %d outside dictionary (len %d)", s.seen, h, s.dict.Len())
		return false
	}
	if int(client) >= len(s.clients) {
		s.err = fmt.Errorf("trace: request %d references client %d outside Clients (len %d)", s.seen, client, len(s.clients))
		return false
	}
	op := Read
	if flags&1 != 0 {
		op = Write
	}
	s.cur = Request{Page: uint64(s.prevPage), Hint: hint.ID(h), Op: op, Client: client}
	s.blockRem--
	s.seen++
	return true
}

// nextSectionV2 advances past the next v2 section. It returns true when a
// request block was loaded (s.blockRem > 0) or a dict section was absorbed
// (caller loops); false at the trailer or on error.
func (s *Scanner) nextSectionV2() bool {
	tag, err := s.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			s.err = errTruncatedV2
		} else {
			s.err = fmt.Errorf("trace: reading section tag: %w", err)
		}
		return false
	}
	switch tag {
	case v2TagDict:
		count, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: reading dict section size: %w", err)
			return false
		}
		for i := uint64(0); i < count; i++ {
			k, err := s.readString()
			if err != nil {
				s.err = fmt.Errorf("trace: reading dict key: %w", err)
				return false
			}
			want := hint.ID(s.dict.Len())
			if got := s.dict.InternKey(k); got != want {
				s.err = fmt.Errorf("trace: duplicate hint key %q in dict section", k)
				return false
			}
		}
		return true
	case v2TagBlock:
		count, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: reading block request count: %w", err)
			return false
		}
		size, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: reading block payload size: %w", err)
			return false
		}
		if size > 1<<30 {
			s.err = fmt.Errorf("trace: block payload size %d implausible", size)
			return false
		}
		if uint64(cap(s.payload)) < size {
			s.payload = make([]byte, size)
		}
		s.payload = s.payload[:size]
		if _, err := io.ReadFull(s.br, s.payload); err != nil {
			s.err = fmt.Errorf("trace: reading block payload: %w", err)
			return false
		}
		s.crc = crc32.Update(s.crc, crc32.IEEETable, s.payload)
		s.ppos = 0
		s.blockRem = count
		return true
	case v2TagTrailer:
		total, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: reading trailer request count: %w", err)
			return false
		}
		dictLen, err := binary.ReadUvarint(s.br)
		if err != nil {
			s.err = fmt.Errorf("trace: reading trailer dict length: %w", err)
			return false
		}
		var crcb [4]byte
		if _, err := io.ReadFull(s.br, crcb[:]); err != nil {
			s.err = fmt.Errorf("trace: reading trailer checksum: %w", err)
			return false
		}
		if total != s.seen {
			s.err = fmt.Errorf("trace: trailer declares %d requests, stream carried %d", total, s.seen)
			return false
		}
		if dictLen != uint64(s.dict.Len()) {
			s.err = fmt.Errorf("trace: trailer declares %d dict entries, stream carried %d", dictLen, s.dict.Len())
			return false
		}
		if want := binary.BigEndian.Uint32(crcb[:]); want != s.crc {
			s.err = fmt.Errorf("trace: payload checksum mismatch: trailer %08x, computed %08x", want, s.crc)
			return false
		}
		if _, err := s.br.ReadByte(); err != io.EOF {
			s.err = fmt.Errorf("trace: trailing data after v2 trailer")
			return false
		}
		s.total = total
		s.finished = true
		return false
	default:
		s.err = fmt.Errorf("trace: unknown v2 section tag 0x%02x at request %d", tag, s.seen)
		return false
	}
}

func (s *Scanner) scanBinary() bool {
	if s.remaining == 0 {
		return false
	}
	i := s.total - s.remaining
	flags, err := s.br.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d flags: %w", i, err)
		return false
	}
	client, err := s.br.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d client: %w", i, err)
		return false
	}
	delta, err := binary.ReadVarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d page: %w", i, err)
		return false
	}
	s.prevPage += delta
	h, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d hint: %w", i, err)
		return false
	}
	if h >= uint64(s.dict.Len()) {
		s.err = fmt.Errorf("trace: request %d references hint %d outside dictionary (len %d)", i, h, s.dict.Len())
		return false
	}
	if int(client) >= len(s.clients) {
		s.err = fmt.Errorf("trace: request %d references client %d outside Clients (len %d)", i, client, len(s.clients))
		return false
	}
	op := Read
	if flags&1 != 0 {
		op = Write
	}
	s.cur = Request{Page: uint64(s.prevPage), Hint: hint.ID(h), Op: op, Client: client}
	s.remaining--
	return true
}

func (s *Scanner) scanText() bool {
	for {
		line, err := s.br.ReadString('\n')
		if err == io.EOF && line == "" {
			return false
		}
		if err != nil && err != io.EOF {
			s.err = err
			return false
		}
		s.lineNo++
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			s.textHeaderLine(line)
			continue
		}
		s.headerDone = true
		fields := strings.SplitN(line, " ", 4)
		if len(fields) < 3 {
			s.err = fmt.Errorf("trace: line %d: malformed record %q", s.lineNo, line)
			return false
		}
		var op Op
		switch fields[0] {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			s.err = fmt.Errorf("trace: line %d: bad op %q", s.lineNo, fields[0])
			return false
		}
		page, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			s.err = fmt.Errorf("trace: line %d: bad page: %w", s.lineNo, err)
			return false
		}
		client, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			s.err = fmt.Errorf("trace: line %d: bad client: %w", s.lineNo, err)
			return false
		}
		key := ""
		if len(fields) == 4 {
			key = fields[3]
		}
		for int(client) >= len(s.clients) {
			s.clients = append(s.clients, fmt.Sprintf("client%d", len(s.clients)))
		}
		s.cur = Request{
			Page:   page,
			Hint:   s.dict.InternKey(key),
			Op:     op,
			Client: uint8(client),
		}
		return true
	}
}

func (s *Scanner) textHeaderLine(line string) {
	if s.headerDone {
		return // comments after the first record are ignored, as in ReadText
	}
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	switch {
	case len(fields) >= 2 && fields[0] == "trace":
		s.name = fields[1]
		if len(fields) >= 4 && fields[2] == "pagesize" {
			if ps, err := strconv.Atoi(fields[3]); err == nil {
				s.pageSize = ps
			}
		}
	case len(fields) >= 2 && fields[0] == "clients":
		s.clients = strings.Split(fields[1], ",")
	}
}

// Request returns the request produced by the last successful Scan.
func (s *Scanner) Request() Request { return s.cur }

// Err returns the first error encountered (nil at a clean end of trace).
func (s *Scanner) Err() error { return s.err }

// Name returns the trace name from the header.
func (s *Scanner) Name() string { return s.name }

// PageSize returns the block size in bytes from the header.
func (s *Scanner) PageSize() int { return s.pageSize }

// Clients returns the client names known so far. For binary traces the list
// is complete before the first Scan; for text traces it may grow as records
// referencing new clients are scanned. The returned slice is a copy.
func (s *Scanner) Clients() []string {
	out := make([]string, len(s.clients))
	copy(out, s.clients)
	return out
}

// Dict returns the scanner's hint dictionary. For binary v1 traces it is
// complete before the first Scan; for v2 and text traces it grows as the
// stream is scanned (always ahead of the requests that reference it). The
// caller must not use it concurrently with Scan.
func (s *Scanner) Dict() *hint.Dict { return s.dict }

// HintDict returns the scanner's hint dictionary (Iterator).
func (s *Scanner) HintDict() *hint.Dict { return s.dict }

// Count returns the trace's declared request count when the format has
// recorded one at the current position: v1 knows it from the header, v2
// only once the trailer has been scanned, text never.
func (s *Scanner) Count() (n int, ok bool) {
	if s.binary && (!s.v2 || s.finished) {
		return int(s.total), true
	}
	return 0, false
}

// Close releases the underlying file when the Scanner was built by Open; it
// is a no-op for NewScanner.
func (s *Scanner) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}
