package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/hint"
)

// Scanner iterates the requests of a trace file one at a time, without ever
// materialising the request slice: memory stays constant no matter how long
// the trace is, which is what paper-scale traces (hundreds of millions of
// requests) and the network replay path need. Both trace formats are
// supported; the format is sniffed from the leading bytes.
//
// For the binary format the header (name, page size, clients, hint
// dictionary, request count) is decoded eagerly by NewScanner, so Dict and
// Clients are complete before the first Scan. For the text format the
// dictionary and client list grow as records are scanned, mirroring
// ReadText.
type Scanner struct {
	closer io.Closer // non-nil when the Scanner owns the underlying file
	br     *bufio.Reader
	binary bool

	name     string
	pageSize int
	clients  []string
	dict     *hint.Dict

	// Binary decoding state.
	total     uint64 // declared request count
	remaining uint64
	prevPage  int64

	// Text decoding state.
	headerDone bool
	lineNo     int

	cur Request
	err error
}

// Open returns a Scanner over the trace file at path. Closing the Scanner
// closes the file.
func Open(path string) (*Scanner, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := NewScanner(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// NewScanner returns a Scanner over a trace stream in either the binary or
// the text format (sniffed from the first bytes; binary starts with the
// magic string).
func NewScanner(r io.Reader) (*Scanner, error) {
	s := &Scanner{br: bufio.NewReaderSize(r, 1<<20), dict: hint.NewDict()}
	head, err := s.br.Peek(len(binaryMagic))
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("trace: sniffing format: %w", err)
	}
	if string(head) == binaryMagic {
		s.binary = true
		if err := s.readBinaryHeader(); err != nil {
			return nil, err
		}
		return s, nil
	}
	// Text traces default like ReadText and refine from header lines.
	s.name = "trace"
	s.pageSize = 4096
	return s, nil
}

func (s *Scanner) readBinaryHeader() error {
	if _, err := s.br.Discard(len(binaryMagic)); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(s.br)
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(s.br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	var err error
	if s.name, err = readString(); err != nil {
		return fmt.Errorf("trace: reading name: %w", err)
	}
	pageSize, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading page size: %w", err)
	}
	s.pageSize = int(pageSize)
	nClients, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading client count: %w", err)
	}
	s.clients = make([]string, nClients)
	for i := range s.clients {
		if s.clients[i], err = readString(); err != nil {
			return fmt.Errorf("trace: reading client %d: %w", i, err)
		}
	}
	nKeys, err := binary.ReadUvarint(s.br)
	if err != nil {
		return fmt.Errorf("trace: reading dict size: %w", err)
	}
	for i := uint64(0); i < nKeys; i++ {
		k, err := readString()
		if err != nil {
			return fmt.Errorf("trace: reading hint key %d: %w", i, err)
		}
		if got := s.dict.InternKey(k); got != hint.ID(i) {
			return fmt.Errorf("trace: duplicate hint key %q in dictionary", k)
		}
	}
	if s.total, err = binary.ReadUvarint(s.br); err != nil {
		return fmt.Errorf("trace: reading request count: %w", err)
	}
	s.remaining = s.total
	return nil
}

// Scan advances to the next request, returning false at end of trace or on
// error (distinguish with Err).
func (s *Scanner) Scan() bool {
	if s.err != nil {
		return false
	}
	if s.binary {
		return s.scanBinary()
	}
	return s.scanText()
}

func (s *Scanner) scanBinary() bool {
	if s.remaining == 0 {
		return false
	}
	i := s.total - s.remaining
	flags, err := s.br.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d flags: %w", i, err)
		return false
	}
	client, err := s.br.ReadByte()
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d client: %w", i, err)
		return false
	}
	delta, err := binary.ReadVarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d page: %w", i, err)
		return false
	}
	s.prevPage += delta
	h, err := binary.ReadUvarint(s.br)
	if err != nil {
		s.err = fmt.Errorf("trace: reading request %d hint: %w", i, err)
		return false
	}
	if h >= uint64(s.dict.Len()) {
		s.err = fmt.Errorf("trace: request %d references hint %d outside dictionary (len %d)", i, h, s.dict.Len())
		return false
	}
	if int(client) >= len(s.clients) {
		s.err = fmt.Errorf("trace: request %d references client %d outside Clients (len %d)", i, client, len(s.clients))
		return false
	}
	op := Read
	if flags&1 != 0 {
		op = Write
	}
	s.cur = Request{Page: uint64(s.prevPage), Hint: hint.ID(h), Op: op, Client: client}
	s.remaining--
	return true
}

func (s *Scanner) scanText() bool {
	for {
		line, err := s.br.ReadString('\n')
		if err == io.EOF && line == "" {
			return false
		}
		if err != nil && err != io.EOF {
			s.err = err
			return false
		}
		s.lineNo++
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			s.textHeaderLine(line)
			continue
		}
		s.headerDone = true
		fields := strings.SplitN(line, " ", 4)
		if len(fields) < 3 {
			s.err = fmt.Errorf("trace: line %d: malformed record %q", s.lineNo, line)
			return false
		}
		var op Op
		switch fields[0] {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			s.err = fmt.Errorf("trace: line %d: bad op %q", s.lineNo, fields[0])
			return false
		}
		page, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			s.err = fmt.Errorf("trace: line %d: bad page: %w", s.lineNo, err)
			return false
		}
		client, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			s.err = fmt.Errorf("trace: line %d: bad client: %w", s.lineNo, err)
			return false
		}
		key := ""
		if len(fields) == 4 {
			key = fields[3]
		}
		for int(client) >= len(s.clients) {
			s.clients = append(s.clients, fmt.Sprintf("client%d", len(s.clients)))
		}
		s.cur = Request{
			Page:   page,
			Hint:   s.dict.InternKey(key),
			Op:     op,
			Client: uint8(client),
		}
		return true
	}
}

func (s *Scanner) textHeaderLine(line string) {
	if s.headerDone {
		return // comments after the first record are ignored, as in ReadText
	}
	fields := strings.Fields(strings.TrimPrefix(line, "#"))
	switch {
	case len(fields) >= 2 && fields[0] == "trace":
		s.name = fields[1]
		if len(fields) >= 4 && fields[2] == "pagesize" {
			if ps, err := strconv.Atoi(fields[3]); err == nil {
				s.pageSize = ps
			}
		}
	case len(fields) >= 2 && fields[0] == "clients":
		s.clients = strings.Split(fields[1], ",")
	}
}

// Request returns the request produced by the last successful Scan.
func (s *Scanner) Request() Request { return s.cur }

// Err returns the first error encountered (nil at a clean end of trace).
func (s *Scanner) Err() error { return s.err }

// Name returns the trace name from the header.
func (s *Scanner) Name() string { return s.name }

// PageSize returns the block size in bytes from the header.
func (s *Scanner) PageSize() int { return s.pageSize }

// Clients returns the client names known so far. For binary traces the list
// is complete before the first Scan; for text traces it may grow as records
// referencing new clients are scanned. The returned slice is a copy.
func (s *Scanner) Clients() []string {
	out := make([]string, len(s.clients))
	copy(out, s.clients)
	return out
}

// Dict returns the scanner's hint dictionary. For binary traces it is
// complete before the first Scan; for text traces it grows as records
// intern new hint sets. The caller must not use it concurrently with Scan.
func (s *Scanner) Dict() *hint.Dict { return s.dict }

// Count returns the trace's declared request count when the format records
// one (binary), with ok=false otherwise (text).
func (s *Scanner) Count() (n int, ok bool) {
	if s.binary {
		return int(s.total), true
	}
	return 0, false
}

// Close releases the underlying file when the Scanner was built by Open; it
// is a no-op for NewScanner.
func (s *Scanner) Close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}
