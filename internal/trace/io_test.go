package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hint"
)

func tracesEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	if a.Name != b.Name || a.PageSize != b.PageSize {
		t.Fatalf("header mismatch: %q/%d vs %q/%d", a.Name, a.PageSize, b.Name, b.PageSize)
	}
	if len(a.Clients) != len(b.Clients) {
		t.Fatalf("clients mismatch: %v vs %v", a.Clients, b.Clients)
	}
	for i := range a.Clients {
		if a.Clients[i] != b.Clients[i] {
			t.Fatalf("client %d mismatch", i)
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("length mismatch: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Reqs {
		ra, rb := a.Reqs[i], b.Reqs[i]
		if ra.Page != rb.Page || ra.Op != rb.Op || ra.Client != rb.Client {
			t.Fatalf("request %d differs: %+v vs %+v", i, ra, rb)
		}
		if a.Dict.Key(ra.Hint) != b.Dict.Key(rb.Hint) {
			t.Fatalf("request %d hint differs: %q vs %q", i,
				a.Dict.Key(ra.Hint), b.Dict.Key(rb.Hint))
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildTrace("DB2_C60", 2000, 42)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
}

// TestBinaryRoundTripQuick property-tests the binary codec over random
// traces, including multi-client ones and large page numbers.
func TestBinaryRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New("q", 1<<uint(rng.Intn(16)))
		tr.Clients = []string{"a", "b", "c"}
		nh := 1 + rng.Intn(5)
		for i := 0; i < nh; i++ {
			tr.Dict.InternKey(hint.Make("h", string(rune('a'+i))).Key())
		}
		n := rng.Intn(500)
		for i := 0; i < n; i++ {
			tr.Reqs = append(tr.Reqs, Request{
				Page:   rng.Uint64() >> uint(rng.Intn(40)),
				Hint:   hint.ID(rng.Intn(nh)),
				Op:     Op(rng.Intn(2)),
				Client: uint8(rng.Intn(3)),
			})
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != tr.Len() {
			return false
		}
		for i := range tr.Reqs {
			if got.Reqs[i] != tr.Reqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________"),
	}
	for _, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("ReadBinary(%q) should fail", c)
		}
	}
	// Truncated valid stream.
	tr := buildTrace("t", 100, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(cut)); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := buildTrace("TXT", 500, 9)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
}

func TestTextFormatReadable(t *testing.T) {
	tr := New("mini", 4096)
	tr.Append(7, Read, tr.Dict.Intern(hint.Make("reqtype", "read")))
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# trace mini pagesize 4096") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "R 7 0 reqtype=read") {
		t.Errorf("missing record: %q", out)
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, bad := range []string{
		"X 1 0 a=1\n",       // bad op
		"R notanum 0 a=1\n", // bad page
		"R 1 banana a=1\n",  // bad client
		"R\n",               // too few fields
	} {
		if _, err := ReadText(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadText(%q) should fail", bad)
		}
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.trc")
	tr := buildTrace("SL", 1000, 4)
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
	if _, err := Load(filepath.Join(dir, "missing.trc")); err == nil {
		t.Error("loading a missing file should fail")
	}
}
