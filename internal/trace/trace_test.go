package trace

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hint"
	"repro/internal/randx"
)

// buildTrace makes a small deterministic trace for tests.
func buildTrace(name string, n int, seed int64) *Trace {
	t := New(name, 4096)
	rng := rand.New(rand.NewSource(seed))
	ids := []hint.ID{
		t.Dict.Intern(hint.Make("reqtype", "read")),
		t.Dict.Intern(hint.Make("reqtype", "repl-write")),
		t.Dict.Intern(hint.Make("reqtype", "rec-write")),
	}
	for i := 0; i < n; i++ {
		op := Read
		h := ids[0]
		if rng.Intn(3) == 0 {
			op = Write
			h = ids[1+rng.Intn(2)]
		}
		t.Append(uint64(rng.Intn(50)), op, h)
	}
	return t
}

func TestOpString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op.String basic values wrong")
	}
	if Op(9).String() != "op(9)" {
		t.Errorf("unknown op: %q", Op(9).String())
	}
}

func TestStats(t *testing.T) {
	tr := New("t", 4096)
	h := tr.Dict.Intern(hint.Make("a", "1"))
	h2 := tr.Dict.Intern(hint.Make("a", "2"))
	tr.Append(1, Read, h)
	tr.Append(2, Write, h2)
	tr.Append(1, Read, h)
	s := tr.Stats()
	if s.Requests != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Errorf("Stats counts = %+v", s)
	}
	if s.DistinctPages != 2 || s.DistinctHints != 2 {
		t.Errorf("Stats distinct = %+v", s)
	}
}

func TestValidate(t *testing.T) {
	tr := buildTrace("ok", 100, 1)
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := buildTrace("bad", 10, 1)
	bad.Reqs[3].Hint = 999
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range hint not caught")
	}
	bad2 := buildTrace("bad2", 10, 1)
	bad2.Reqs[0].Client = 7
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range client not caught")
	}
	bad3 := buildTrace("bad3", 1, 1)
	bad3.Dict = nil
	if err := bad3.Validate(); err == nil {
		t.Error("nil dict not caught")
	}
}

func TestTruncate(t *testing.T) {
	tr := buildTrace("t", 100, 1)
	short := tr.Truncate(10)
	if short.Len() != 10 {
		t.Errorf("Truncate(10).Len = %d", short.Len())
	}
	if tr.Len() != 100 {
		t.Error("Truncate mutated original")
	}
	over := tr.Truncate(1000)
	if over.Len() != 100 {
		t.Errorf("Truncate beyond length: %d", over.Len())
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := New("A", 4096)
	b := New("B", 4096)
	ha := a.Dict.Intern(hint.Make("x", "1"))
	hb := b.Dict.Intern(hint.Make("x", "1"))
	for i := 0; i < 5; i++ {
		a.Append(uint64(i), Read, ha)
	}
	for i := 0; i < 3; i++ {
		b.Append(uint64(i), Write, hb)
	}
	m, err := Interleave("M", a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Truncated to the shortest (3) × 2 clients.
	if m.Len() != 6 {
		t.Fatalf("interleaved length = %d, want 6", m.Len())
	}
	for i, r := range m.Reqs {
		wantClient := uint8(i % 2)
		if r.Client != wantClient {
			t.Errorf("request %d from client %d, want %d", i, r.Client, wantClient)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveNamespacesHints(t *testing.T) {
	a := New("A", 4096)
	b := New("B", 4096)
	// Identical hint vocabularies must remain distinct after interleaving.
	a.Append(0, Read, a.Dict.Intern(hint.Make("reqtype", "read")))
	b.Append(0, Read, b.Dict.Intern(hint.Make("reqtype", "read")))
	m, err := Interleave("M", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Dict.Len() != 2 {
		t.Fatalf("namespaced dict has %d entries, want 2", m.Dict.Len())
	}
	k0 := m.Dict.Key(m.Reqs[0].Hint)
	k1 := m.Dict.Key(m.Reqs[1].Hint)
	if k0 == k1 {
		t.Errorf("hints from different clients collide: %q", k0)
	}
	if k0 != "A/reqtype=read" || k1 != "B/reqtype=read" {
		t.Errorf("unexpected namespacing: %q, %q", k0, k1)
	}
}

func TestInterleaveDisjointPages(t *testing.T) {
	a := buildTrace("A", 200, 1)
	b := buildTrace("B", 200, 2)
	m, err := Interleave("M", a, b)
	if err != nil {
		t.Fatal(err)
	}
	pagesByClient := map[uint8]map[uint64]bool{0: {}, 1: {}}
	for _, r := range m.Reqs {
		pagesByClient[r.Client][r.Page] = true
	}
	for p := range pagesByClient[0] {
		if pagesByClient[1][p] {
			t.Fatalf("page %d shared between clients", p)
		}
	}
}

func TestInterleaveErrors(t *testing.T) {
	if _, err := Interleave("x"); err == nil {
		t.Error("zero inputs should error")
	}
}

func TestWithNoiseZeroTypes(t *testing.T) {
	base := buildTrace("base", 300, 3)
	out, err := WithNoise(base, DefaultNoise(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != base.Len() {
		t.Fatalf("length changed: %d", out.Len())
	}
	for i := range out.Reqs {
		if out.Dict.Key(out.Reqs[i].Hint) != base.Dict.Key(base.Reqs[i].Hint) {
			t.Fatal("T=0 noise must preserve hint keys")
		}
	}
	// The output must own its dictionary.
	out.Dict.InternKey("zz=1")
	if _, ok := base.Dict.Lookup(hint.Make("zz", "1")); ok {
		t.Error("output dictionary aliases the input's")
	}
}

func TestWithNoiseExtendsHintSets(t *testing.T) {
	base := buildTrace("base", 500, 3)
	baseHints := base.Stats().DistinctHints
	out, err := WithNoise(base, DefaultNoise(2, 7))
	if err != nil {
		t.Fatal(err)
	}
	s := out.Stats()
	if s.DistinctHints <= baseHints {
		t.Errorf("noise did not increase distinct hint sets: %d -> %d", baseHints, s.DistinctHints)
	}
	for i, r := range out.Reqs {
		set := out.Dict.Set(r.Hint)
		if _, ok := set.Value("noise0"); !ok {
			t.Fatalf("request %d missing noise0 hint: %v", i, set)
		}
		if _, ok := set.Value("noise1"); !ok {
			t.Fatalf("request %d missing noise1 hint: %v", i, set)
		}
		// Page, op, client must be untouched.
		if r.Page != base.Reqs[i].Page || r.Op != base.Reqs[i].Op {
			t.Fatal("noise injection altered the request stream")
		}
	}
}

// serialWithNoise is the straightforward one-pass rewrite WithNoise used to
// be; the parallel implementation must reproduce it bit for bit.
func serialWithNoise(t *Trace, cfg NoiseConfig) *Trace {
	out := New(fmt.Sprintf("%s+noise%d", t.Name, cfg.Types), t.PageSize)
	out.Clients = append([]string(nil), t.Clients...)
	out.Reqs = make([]Request, len(t.Reqs))
	rng := randx.New(cfg.Seed)
	zipf := randx.NewZipf(rng, cfg.Domain, cfg.ZipfS)
	baseSets := make([]hint.Set, t.Dict.Len())
	for id, key := range t.Dict.Keys() {
		s, err := hint.Parse(key)
		if err != nil {
			panic(err)
		}
		baseSets[id] = s
	}
	names := make([]string, cfg.Types)
	for j := range names {
		names[j] = fmt.Sprintf("noise%d", j)
	}
	vals := make([]string, cfg.Types)
	for i, r := range t.Reqs {
		for j := 0; j < cfg.Types; j++ {
			vals[j] = fmt.Sprintf("v%d", zipf.Next())
		}
		s := baseSets[r.Hint]
		ext := make(hint.Set, 0, len(s)+cfg.Types)
		ext = append(ext, s...)
		for j := 0; j < cfg.Types; j++ {
			ext = append(ext, hint.Field{Type: names[j], Value: vals[j]})
		}
		r.Hint = out.Dict.Intern(ext)
		out.Reqs[i] = r
	}
	return out
}

// TestWithNoiseMatchesSerial checks the parallel rewrite against the serial
// reference on a trace long enough to span several chunks, so the
// chunk-local dictionaries and the ordered merge are actually exercised.
func TestWithNoiseMatchesSerial(t *testing.T) {
	n := 3*noiseChunk + 1234
	if testing.Short() {
		n = noiseChunk + 77
	}
	base := buildTrace("big", n, 5)
	cfg := NoiseConfig{Types: 2, Domain: 6, ZipfS: 1, Seed: 99}
	got, err := WithNoise(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := serialWithNoise(base, cfg)
	if got.Len() != want.Len() {
		t.Fatalf("length %d, want %d", got.Len(), want.Len())
	}
	for i := range got.Reqs {
		if got.Reqs[i] != want.Reqs[i] {
			t.Fatalf("request %d = %+v, want %+v", i, got.Reqs[i], want.Reqs[i])
		}
	}
	gk, wk := got.Dict.Keys(), want.Dict.Keys()
	if len(gk) != len(wk) {
		t.Fatalf("dictionary has %d keys, want %d", len(gk), len(wk))
	}
	for i := range gk {
		if gk[i] != wk[i] {
			t.Fatalf("dictionary key %d = %q, want %q (ID assignment order diverged)", i, gk[i], wk[i])
		}
	}
}

func TestWithNoiseDeterministic(t *testing.T) {
	base := buildTrace("base", 400, 3)
	a, err := WithNoise(base, DefaultNoise(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := WithNoise(base, DefaultNoise(3, 11))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Reqs {
		if a.Dict.Key(a.Reqs[i].Hint) != b.Dict.Key(b.Reqs[i].Hint) {
			t.Fatal("same seed must give identical noise")
		}
	}
	c, err := WithNoise(base, DefaultNoise(3, 12))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Reqs {
		if a.Dict.Key(a.Reqs[i].Hint) != c.Dict.Key(c.Reqs[i].Hint) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical noise")
	}
}

func TestWithNoiseBadConfig(t *testing.T) {
	base := buildTrace("base", 10, 3)
	if _, err := WithNoise(base, NoiseConfig{Types: -1, Domain: 10}); err == nil {
		t.Error("negative Types should error")
	}
	if _, err := WithNoise(base, NoiseConfig{Types: 1, Domain: 0}); err == nil {
		t.Error("zero Domain should error")
	}
}

// TestNoiseDilutionQuick property-tests that T noise types over domain D
// never produce more than baseHints * D^T distinct hint sets.
func TestNoiseDilutionQuick(t *testing.T) {
	f := func(seed int64, tRaw uint8) bool {
		T := int(tRaw % 3)
		base := buildTrace("b", 200, seed)
		out, err := WithNoise(base, NoiseConfig{Types: T, Domain: 4, ZipfS: 1, Seed: seed})
		if err != nil {
			return false
		}
		bound := base.Stats().DistinctHints
		for i := 0; i < T; i++ {
			bound *= 4
		}
		return out.Stats().DistinctHints <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAppendAndClients(t *testing.T) {
	tr := New("solo", 512)
	if len(tr.Clients) != 1 || tr.Clients[0] != "solo" {
		t.Errorf("Clients = %v", tr.Clients)
	}
	h := tr.Dict.Intern(hint.Make("k", "v"))
	tr.Append(42, Write, h)
	if tr.Len() != 1 || tr.Reqs[0].Page != 42 || tr.Reqs[0].Op != Write {
		t.Errorf("Append stored %+v", tr.Reqs[0])
	}
}

func TestInterleaveTooManyClients(t *testing.T) {
	traces := make([]*Trace, 257)
	for i := range traces {
		traces[i] = buildTrace(fmt.Sprintf("t%d", i), 1, int64(i))
	}
	if _, err := Interleave("m", traces...); err == nil {
		t.Error("more than 256 clients should error")
	}
}
