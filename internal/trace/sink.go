package trace

import (
	"repro/internal/hint"
)

// Sink is the streaming destination for request generation: anything that
// can intern hint sets and absorb requests one at a time. An in-memory
// *Trace is a Sink (the classic path); the format-v2 *Writer is a Sink that
// encodes straight to disk in bounded memory; a *PipeWriter is a Sink that
// feeds a concurrent consumer. Generators (internal/dbsim, internal/
// workload) write only through this interface, so the same simulation code
// produces in-RAM traces, trace files, and live request streams.
//
// Sinks are not safe for concurrent use: one goroutine generates, the sink
// absorbs. Errors on encoding sinks are sticky and surface from the sink's
// Err/Close methods; Err(Sink) checks for them generically.
type Sink interface {
	// HintDict returns the dictionary the sink interns hint sets into.
	// Requests appended to the sink reference IDs of this dictionary.
	HintDict() *hint.Dict
	// AppendReq absorbs one request. The request's Hint must already be
	// interned in HintDict().
	AppendReq(r Request)
	// Len returns the number of requests absorbed so far.
	Len() int
}

// HintDict returns the trace's hint dictionary (Sink).
func (t *Trace) HintDict() *hint.Dict { return t.Dict }

// AppendReq appends one request verbatim (Sink). Unlike Append it preserves
// the request's Client tag, which multi-client merges rely on.
func (t *Trace) AppendReq(r Request) { t.Reqs = append(t.Reqs, r) }

// Err returns the sink's sticky error when it has one (encoding sinks: the
// v2 Writer, the pipe) and nil otherwise (an in-memory Trace cannot fail).
func Err(s Sink) error {
	if e, ok := s.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Limit wraps a sink so it silently drops every request beyond max; Len
// reports the accepted count. Generators run whole transactions and may
// overshoot their request budget by a few records — Limit gives them an
// exact cut identical to generating in RAM and truncating.
func Limit(s Sink, max int) Sink { return &limitSink{s: s, max: max} }

type limitSink struct {
	s   Sink
	max int
	n   int
}

func (l *limitSink) HintDict() *hint.Dict { return l.s.HintDict() }

func (l *limitSink) Len() int { return l.n }

func (l *limitSink) AppendReq(r Request) {
	if l.n >= l.max {
		return
	}
	l.s.AppendReq(r)
	l.n++
}

// Iterator is the streaming counterpart of a []Request: the minimal
// interface every request source implements — disk scans (*Scanner),
// in-memory traces (Trace.Iter), and live generators (*PipeReader). The
// replay paths (engine.ServeSource, netclient.ReplaySource,
// cluster.ReplaySource) consume Iterators so they never need the full
// trace in RAM.
//
// The hint dictionary and client list may grow as the iteration proceeds
// (text traces, generated streams); by the time Scan has returned a
// request, the dictionary entry and client slot it references exist.
type Iterator interface {
	// Scan advances to the next request, false at end of stream or error.
	Scan() bool
	// Request returns the request produced by the last successful Scan.
	Request() Request
	// Err returns the first error encountered (nil at a clean end).
	Err() error
	// Name returns the trace name.
	Name() string
	// PageSize returns the block size in bytes.
	PageSize() int
	// Clients returns the client names known so far (a copy).
	Clients() []string
	// HintDict returns the dictionary request Hint fields reference.
	HintDict() *hint.Dict
	// Close releases the source (files, generator goroutines).
	Close() error
}

// Source describes where a request stream comes from — a trace file, an
// in-memory trace, or a generator spec — without opening it. Replay paths
// take a Source so callers choose between "replay this file" and "replay
// this generated workload" with one argument, and the stream is (re)opened
// only when the replay actually runs.
type Source interface {
	// Label names the source for reports ("traces/DB2_C60.trc",
	// "DB2_C60*4").
	Label() string
	// Iter opens the stream. The caller must Close the iterator.
	Iter() (Iterator, error)
}

// FileSource is a Source reading a trace file (any format) from a path.
type FileSource string

// Label implements Source.
func (p FileSource) Label() string { return string(p) }

// Iter implements Source by opening the file with a sniffing Scanner.
func (p FileSource) Iter() (Iterator, error) { return Open(string(p)) }

// Iter returns an Iterator over the in-memory trace. It exists so code
// written against the streaming interfaces also serves in-RAM traces (and
// so streamed and in-RAM replays are directly comparable).
func (t *Trace) Iter() Iterator { return &memIter{t: t, pos: -1} }

// Source makes an in-memory trace usable where a Source is expected.
func (t *Trace) Source() Source { return memSource{t} }

type memSource struct{ t *Trace }

func (s memSource) Label() string           { return s.t.Name }
func (s memSource) Iter() (Iterator, error) { return s.t.Iter(), nil }

type memIter struct {
	t   *Trace
	pos int
}

func (it *memIter) Scan() bool {
	if it.pos+1 >= len(it.t.Reqs) {
		return false
	}
	it.pos++
	return true
}

func (it *memIter) Request() Request     { return it.t.Reqs[it.pos] }
func (it *memIter) Err() error           { return nil }
func (it *memIter) Name() string         { return it.t.Name }
func (it *memIter) PageSize() int        { return it.t.PageSize }
func (it *memIter) HintDict() *hint.Dict { return it.t.Dict }
func (it *memIter) Close() error         { return nil }

func (it *memIter) Clients() []string {
	out := make([]string, len(it.t.Clients))
	copy(out, it.t.Clients)
	return out
}

// DefaultPipeChunk is the request count per pipe hand-off.
const DefaultPipeChunk = 8192

// pipeChunk is one hand-off unit: a run of requests plus the hint keys the
// producer interned since the previous chunk (in ID order), so the consumer
// can mirror the producer's dictionary without sharing it across
// goroutines.
type pipeChunk struct {
	reqs    []Request
	newKeys []string
}

// NewPipe connects a generating Sink to a consuming Iterator through a
// bounded channel: the producer goroutine appends requests, the consumer
// scans them, and at most a few chunks are in flight — memory stays
// bounded no matter how long the stream runs. The producer must call
// Close (or CloseWithError) when done; the consumer's Close cancels the
// producer, whose subsequent appends are dropped.
//
// The reader re-interns the producer's newly seen hint keys in the order
// they were assigned, so hint IDs are identical on both sides.
func NewPipe(name string, pageSize int, clients []string, chunk int) (*PipeWriter, *PipeReader) {
	if chunk <= 0 {
		chunk = DefaultPipeChunk
	}
	ch := make(chan pipeChunk, 2)
	free := make(chan []Request, 4)
	done := make(chan struct{})
	errc := make(chan error, 1)
	w := &PipeWriter{
		dict:  hint.NewDict(),
		ch:    ch,
		free:  free,
		done:  done,
		errc:  errc,
		chunk: chunk,
		buf:   make([]Request, 0, chunk),
	}
	r := &PipeReader{
		name:     name,
		pageSize: pageSize,
		clients:  append([]string(nil), clients...),
		dict:     hint.NewDict(),
		ch:       ch,
		free:     free,
		done:     done,
		errc:     errc,
	}
	return w, r
}

// PipeWriter is the producer half of NewPipe. It implements Sink.
type PipeWriter struct {
	dict     *hint.Dict
	ch       chan pipeChunk
	free     chan []Request
	done     chan struct{}
	errc     chan error
	chunk    int
	buf      []Request
	sentKeys int
	n        int
	closed   bool
	canceled bool
}

// HintDict implements Sink.
func (w *PipeWriter) HintDict() *hint.Dict { return w.dict }

// Len implements Sink.
func (w *PipeWriter) Len() int { return w.n }

// AppendReq implements Sink. Once the reader has closed, appends are
// silently dropped so producers can finish their current transaction and
// notice the cancellation at Close.
func (w *PipeWriter) AppendReq(r Request) {
	if w.closed || w.canceled {
		return
	}
	w.buf = append(w.buf, r)
	w.n++
	if len(w.buf) >= w.chunk {
		w.flush()
	}
}

func (w *PipeWriter) flush() {
	if len(w.buf) == 0 {
		return
	}
	var newKeys []string
	if n := w.dict.Len(); n > w.sentKeys {
		newKeys = make([]string, 0, n-w.sentKeys)
		for id := w.sentKeys; id < n; id++ {
			newKeys = append(newKeys, w.dict.Key(hint.ID(id)))
		}
		w.sentKeys = n
	}
	select {
	case w.ch <- pipeChunk{reqs: w.buf, newKeys: newKeys}:
	case <-w.done:
		w.canceled = true
		return
	}
	select {
	case buf := <-w.free:
		w.buf = buf[:0]
	default:
		w.buf = make([]Request, 0, w.chunk)
	}
}

// Canceled reports whether the reader closed the pipe before the producer
// finished.
func (w *PipeWriter) Canceled() bool { return w.canceled }

// Close flushes the pending chunk and marks the stream complete.
func (w *PipeWriter) Close() error { return w.CloseWithError(nil) }

// CloseWithError completes the stream with an error the reader will report
// from Err after consuming everything sent so far.
func (w *PipeWriter) CloseWithError(err error) error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.flush()
	if err != nil {
		w.errc <- err
	}
	close(w.ch)
	return nil
}

// PipeReader is the consumer half of NewPipe. It implements Iterator.
type PipeReader struct {
	name     string
	pageSize int
	clients  []string
	dict     *hint.Dict
	ch       chan pipeChunk
	free     chan []Request
	done     chan struct{}
	errc     chan error
	cur      []Request
	pos      int
	err      error
	eof      bool
	closed   bool
}

// Scan implements Iterator.
func (r *PipeReader) Scan() bool {
	if r.err != nil || r.eof {
		return false
	}
	r.pos++
	for r.pos >= len(r.cur) {
		if r.cur != nil {
			select {
			case r.free <- r.cur[:0]:
			default:
			}
			r.cur = nil
		}
		c, ok := <-r.ch
		if !ok {
			r.eof = true
			select {
			case err := <-r.errc:
				r.err = err
			default:
			}
			return false
		}
		for _, k := range c.newKeys {
			r.dict.InternKey(k)
		}
		r.cur = c.reqs
		r.pos = 0
	}
	return true
}

// Request implements Iterator.
func (r *PipeReader) Request() Request { return r.cur[r.pos] }

// Err implements Iterator.
func (r *PipeReader) Err() error { return r.err }

// Name implements Iterator.
func (r *PipeReader) Name() string { return r.name }

// PageSize implements Iterator.
func (r *PipeReader) PageSize() int { return r.pageSize }

// HintDict implements Iterator.
func (r *PipeReader) HintDict() *hint.Dict { return r.dict }

// Clients implements Iterator.
func (r *PipeReader) Clients() []string {
	out := make([]string, len(r.clients))
	copy(out, r.clients)
	return out
}

// Close implements Iterator: it cancels the producer and drains the
// channel so the producer never blocks on a dead consumer.
func (r *PipeReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	close(r.done)
	go func() {
		for range r.ch {
		}
	}()
	return nil
}

// Collect drains an iterator into an in-memory trace — the bridge from the
// streaming world back to code that wants a *Trace. The iterator's
// dictionary is cloned once at the end, so IDs match the stream's.
func Collect(it Iterator) (*Trace, error) {
	var reqs []Request
	for it.Scan() {
		reqs = append(reqs, it.Request())
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	// Metadata is read after the drain: text headers and v2 dict sections
	// only materialise as the stream is scanned.
	t := New(it.Name(), it.PageSize())
	t.Reqs = reqs
	t.Dict = it.HintDict().Clone()
	if cs := it.Clients(); len(cs) > 0 {
		t.Clients = cs
	}
	return t, t.Validate()
}
