package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/hint"
)

// Binary trace format v2 — the streaming format. Unlike v1, nothing in the
// header depends on the whole trace (no request count, no complete
// dictionary), so a generator can write requests as it produces them and a
// scanner can read them back with bounded memory at both ends.
//
//	magic      "CLICTRC2" (8 bytes)
//	nameLen, name
//	pageSize
//	clientCount, then each client name (len, bytes)
//	then a sequence of sections, each introduced by a tag byte:
//
//	0x01 dict      count, then count hint keys (len, bytes) — the keys
//	               interned since the previous dict section, in ID order.
//	               Every request block only references IDs announced by
//	               dict sections before it.
//	0x02 requests  reqCount, payloadLen, then payloadLen bytes holding
//	               reqCount records of: flags byte (bit0 = write), client
//	               byte, page delta (zig-zag varint vs previous page,
//	               chained across blocks), hint ID varint.
//	0xFF trailer   total request count, dictionary length, CRC-32 (IEEE,
//	               4 big-endian bytes) over all request-block payload
//	               bytes. Nothing may follow the trailer.
//
// All integers are varint-encoded unless noted. Block framing is what buys
// the parallelism: payloads are self-contained byte runs, so a Writer can
// encode blocks on several cores and emit them in order, and a Scanner can
// slurp one payload at a time into a reused buffer and decode it without
// allocating. The trailer makes truncation detectable: a v2 stream without
// a valid trailer is corrupt by definition (tracegen -verify checks this).

const (
	binaryMagicV2 = "CLICTRC2"

	v2TagDict    = 0x01
	v2TagBlock   = 0x02
	v2TagTrailer = 0xFF
)

// DefaultBlockSize is the Writer's request count per block. 64K requests
// encode to a few hundred KiB, large enough to amortise framing and keep
// encoder workers busy, small enough that a handful of in-flight blocks is
// negligible memory.
const DefaultBlockSize = 1 << 16

// WriterOptions tune a v2 Writer.
type WriterOptions struct {
	// BlockSize is the request count per block; 0 selects DefaultBlockSize.
	BlockSize int
	// Workers is the number of parallel block encoders; 0 selects
	// GOMAXPROCS, 1 encodes inline on the appending goroutine. The output
	// bytes are identical at any worker count: blocks are encoded in
	// parallel but written in order.
	Workers int
}

func (o WriterOptions) blockSize() int {
	if o.BlockSize <= 0 {
		return DefaultBlockSize
	}
	return o.BlockSize
}

func (o WriterOptions) workers() int {
	if o.Workers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// Writer encodes a request stream in format v2. It implements Sink, so
// generators write straight to disk: memory is bounded by the block size
// times the blocks in flight, independent of how many requests pass
// through. Not safe for concurrent use; one goroutine appends.
//
// Appends never fail directly — encoding errors are sticky and surface
// from Err and Close. Close writes the trailer; a Writer that is not
// Closed leaves a stream without a trailer, which scanners reject.
type Writer struct {
	bw     *bufio.Writer
	closer io.Closer

	dict     *hint.Dict
	opts     WriterOptions
	block    []Request
	prevPage uint64 // last page of the previous flushed block
	dictSent int
	total    uint64
	crc      uint32
	bytes    uint64
	err      error
	closed   bool

	// Parallel encoding state (nil when Workers <= 1).
	jobs  chan *encJob
	order chan *encJob
	wdone chan struct{}
	encWG sync.WaitGroup
	freeB chan []Request // recycled block buffers
	freeP chan []byte    // recycled payload buffers
}

// encJob is one block travelling dispatcher -> encoder -> writer.
type encJob struct {
	reqs    []Request
	prev    uint64
	newKeys []string
	out     chan []byte
}

// NewWriter starts a v2 stream on w with the given header. The client list
// must be complete up front (generators know their clients); the hint
// dictionary streams incrementally. If w is also an io.Closer it is NOT
// closed by Writer.Close — use Create for a writer that owns its file.
func NewWriter(w io.Writer, name string, pageSize int, clients []string, opts WriterOptions) *Writer {
	wr := &Writer{
		bw:   bufio.NewWriterSize(w, 1<<20),
		dict: hint.NewDict(),
		opts: opts,
	}
	if len(clients) == 0 {
		clients = []string{name}
	}
	wr.bw.WriteString(binaryMagicV2)
	wr.writeString(name)
	writeUvarint(wr.bw, uint64(pageSize))
	writeUvarint(wr.bw, uint64(len(clients)))
	for _, c := range clients {
		wr.writeString(c)
	}
	wr.block = make([]Request, 0, opts.blockSize())
	if opts.workers() > 1 {
		wr.startParallel(opts.workers())
	}
	return wr
}

// Create opens path and starts a v2 stream on it; Close closes the file.
func Create(path, name string, pageSize int, clients []string, opts WriterOptions) (*Writer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := NewWriter(f, name, pageSize, clients, opts)
	w.closer = f
	return w, nil
}

func (w *Writer) writeString(s string) {
	writeUvarint(w.bw, uint64(len(s)))
	w.bw.WriteString(s)
}

// HintDict implements Sink.
func (w *Writer) HintDict() *hint.Dict { return w.dict }

// Len implements Sink.
func (w *Writer) Len() int { return int(w.total) }

// Err returns the sticky encoding error, if any.
func (w *Writer) Err() error { return w.err }

// AppendReq implements Sink.
func (w *Writer) AppendReq(r Request) {
	if w.err != nil || w.closed {
		return
	}
	w.block = append(w.block, r)
	w.total++
	if len(w.block) >= w.opts.blockSize() {
		w.flushBlock()
	}
}

// newKeys returns the dictionary keys interned since the last flush.
func (w *Writer) newKeys() []string {
	n := w.dict.Len()
	if n == w.dictSent {
		return nil
	}
	keys := make([]string, 0, n-w.dictSent)
	for id := w.dictSent; id < n; id++ {
		keys = append(keys, w.dict.Key(hint.ID(id)))
	}
	w.dictSent = n
	return keys
}

func (w *Writer) flushBlock() {
	if len(w.block) == 0 {
		return
	}
	keys := w.newKeys()
	prev := w.prevPage
	w.prevPage = w.block[len(w.block)-1].Page

	if w.jobs == nil {
		payload := encodeBlock(nil, w.block, prev)
		w.writeEncoded(keys, len(w.block), payload)
		w.block = w.block[:0]
		return
	}
	job := &encJob{reqs: w.block, prev: prev, newKeys: keys, out: make(chan []byte, 1)}
	w.jobs <- job
	w.order <- job
	select {
	case b := <-w.freeB:
		w.block = b[:0]
	default:
		w.block = make([]Request, 0, w.opts.blockSize())
	}
}

// writeEncoded emits a dict section (when keys arrived) followed by one
// request block, updating the payload checksum. Serial-path and parallel
// writer goroutine both land here, so bytes are identical either way.
func (w *Writer) writeEncoded(keys []string, reqCount int, payload []byte) {
	if w.err != nil {
		return
	}
	if len(keys) > 0 {
		w.bw.WriteByte(v2TagDict)
		writeUvarint(w.bw, uint64(len(keys)))
		for _, k := range keys {
			w.writeString(k)
		}
	}
	w.bw.WriteByte(v2TagBlock)
	writeUvarint(w.bw, uint64(reqCount))
	writeUvarint(w.bw, uint64(len(payload)))
	if _, err := w.bw.Write(payload); err != nil {
		w.err = err
		return
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, payload)
	w.bytes += uint64(len(payload))
}

// encodeBlock appends the records of reqs to dst (reset to length 0),
// delta-chaining pages from prev.
func encodeBlock(dst []byte, reqs []Request, prev uint64) []byte {
	dst = dst[:0]
	var tmp [binary.MaxVarintLen64]byte
	for _, r := range reqs {
		flags := byte(0)
		if r.Op == Write {
			flags |= 1
		}
		dst = append(dst, flags, r.Client)
		n := binary.PutVarint(tmp[:], int64(r.Page)-int64(prev))
		dst = append(dst, tmp[:n]...)
		prev = r.Page
		n = binary.PutUvarint(tmp[:], uint64(r.Hint))
		dst = append(dst, tmp[:n]...)
	}
	return dst
}

func (w *Writer) startParallel(workers int) {
	w.jobs = make(chan *encJob, workers)
	w.order = make(chan *encJob, workers*2)
	w.wdone = make(chan struct{})
	w.freeB = make(chan []Request, workers*2)
	w.freeP = make(chan []byte, workers*2)
	for i := 0; i < workers; i++ {
		w.encWG.Add(1)
		go func() {
			defer w.encWG.Done()
			for job := range w.jobs {
				var buf []byte
				select {
				case buf = <-w.freeP:
				default:
				}
				job.out <- encodeBlock(buf, job.reqs, job.prev)
			}
		}()
	}
	go func() {
		defer close(w.wdone)
		for job := range w.order {
			payload := <-job.out
			w.writeEncoded(job.newKeys, len(job.reqs), payload)
			select {
			case w.freeB <- job.reqs[:0]:
			default:
			}
			select {
			case w.freeP <- payload[:0]:
			default:
			}
		}
	}()
}

// Flush drains in-flight blocks and the buffered writer. The stream stays
// open for more appends; partial blocks are flushed as smaller blocks.
func (w *Writer) Flush() error {
	w.flushBlock()
	if w.jobs != nil {
		// Stop and restart the pipeline so everything queued lands.
		close(w.jobs)
		w.encWG.Wait()
		close(w.order)
		<-w.wdone
		w.startParallel(w.opts.workers())
	}
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	return w.err
}

// Bytes returns the request-payload bytes emitted so far (excluding
// headers and dict sections) — the writer's throughput denominator.
func (w *Writer) Bytes() uint64 { return w.bytes }

// Close flushes everything, writes the trailer, and (for Create-built
// writers) closes the file. It reports the first error of the stream's
// lifetime; a nil return means the trace on disk is complete and
// checksummed.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	w.flushBlock()
	if w.jobs != nil {
		close(w.jobs)
		w.encWG.Wait()
		close(w.order)
		<-w.wdone
		w.jobs = nil
	}
	if keys := w.newKeys(); len(keys) > 0 && w.err == nil {
		// Keys interned after the last request block still belong to the
		// dictionary (truncated generations intern trailing hints).
		w.bw.WriteByte(v2TagDict)
		writeUvarint(w.bw, uint64(len(keys)))
		for _, k := range keys {
			w.writeString(k)
		}
	}
	if w.err == nil {
		w.bw.WriteByte(v2TagTrailer)
		writeUvarint(w.bw, w.total)
		writeUvarint(w.bw, uint64(w.dict.Len()))
		var crc [4]byte
		binary.BigEndian.PutUint32(crc[:], w.crc)
		w.bw.Write(crc[:])
		w.err = w.bw.Flush()
	}
	if w.closer != nil {
		if cerr := w.closer.Close(); w.err == nil {
			w.err = cerr
		}
		w.closer = nil
	}
	return w.err
}

// WriteBinaryV2 serialises an in-memory trace in format v2 (the streaming
// counterpart of WriteBinary).
func WriteBinaryV2(w io.Writer, t *Trace) error {
	wr := NewWriter(w, t.Name, t.PageSize, t.Clients, WriterOptions{Workers: 1})
	// Pre-intern the dictionary in ID order so the file carries exactly the
	// trace's dictionary (including keys no surviving request references).
	for _, k := range t.Dict.Keys() {
		wr.dict.InternKey(k)
	}
	for _, r := range t.Reqs {
		wr.AppendReq(r)
	}
	return wr.Close()
}

// SaveV2 writes the trace to path in binary format v2.
func SaveV2(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinaryV2(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ensure interface satisfaction.
var _ Sink = (*Writer)(nil)
var _ Sink = (*Trace)(nil)
var _ Sink = (*PipeWriter)(nil)
var _ Iterator = (*PipeReader)(nil)
var _ Iterator = (*memIter)(nil)
var _ Iterator = (*Scanner)(nil)

// errTruncatedV2 labels a v2 stream that ended without a trailer.
var errTruncatedV2 = fmt.Errorf("trace: v2 stream truncated (no trailer)")
