package trace

import (
	"fmt"

	"repro/internal/hint"
	"repro/internal/randx"
)

// NoiseConfig parameterises synthetic useless-hint injection (paper §6.3).
type NoiseConfig struct {
	// Types is T, the number of synthetic hint types to append to every
	// request's hint set.
	Types int
	// Domain is D, the number of possible values per synthetic type
	// (paper: D = 10).
	Domain int
	// ZipfS is the skew of the value distribution (paper: z = 1).
	ZipfS float64
	// Seed drives the injection deterministically.
	Seed int64
}

// DefaultNoise returns the paper's §6.3 configuration for a given T.
func DefaultNoise(t int, seed int64) NoiseConfig {
	return NoiseConfig{Types: t, Domain: 10, ZipfS: 1, Seed: seed}
}

// WithNoise returns a new trace in which every request's hint set has been
// extended with cfg.Types synthetic hint types. Each injected value is drawn
// independently from a Zipf(cfg.ZipfS) distribution over cfg.Domain values,
// as in §6.3; the injected hints therefore carry no information useful to
// the server cache. The input trace is not modified.
func WithNoise(t *Trace, cfg NoiseConfig) (*Trace, error) {
	if cfg.Types < 0 || cfg.Domain <= 0 {
		return nil, fmt.Errorf("trace: invalid noise config %+v", cfg)
	}
	out := New(fmt.Sprintf("%s+noise%d", t.Name, cfg.Types), t.PageSize)
	out.Clients = append([]string(nil), t.Clients...)
	out.Reqs = make([]Request, len(t.Reqs))
	if cfg.Types == 0 {
		// Still re-intern so the output owns an independent dictionary.
		remap := make([]hint.ID, t.Dict.Len())
		for id, key := range t.Dict.Keys() {
			remap[id] = out.Dict.InternKey(key)
		}
		for i, r := range t.Reqs {
			r.Hint = remap[r.Hint]
			out.Reqs[i] = r
		}
		return out, nil
	}

	rng := randx.New(cfg.Seed)
	zipf := randx.NewZipf(rng, cfg.Domain, cfg.ZipfS)
	baseSets := make([]hint.Set, t.Dict.Len())
	for id, key := range t.Dict.Keys() {
		s, err := hint.Parse(key)
		if err != nil {
			return nil, fmt.Errorf("trace: noise injection on %q: %w", t.Name, err)
		}
		baseSets[id] = s
	}
	names := make([]string, cfg.Types)
	for j := range names {
		names[j] = fmt.Sprintf("noise%d", j)
	}
	vals := make([]string, cfg.Types)
	for i, r := range t.Reqs {
		for j := 0; j < cfg.Types; j++ {
			vals[j] = fmt.Sprintf("v%d", zipf.Next())
		}
		s := baseSets[r.Hint]
		ext := make(hint.Set, 0, len(s)+cfg.Types)
		ext = append(ext, s...)
		for j := 0; j < cfg.Types; j++ {
			ext = append(ext, hint.Field{Type: names[j], Value: vals[j]})
		}
		r.Hint = out.Dict.Intern(ext)
		out.Reqs[i] = r
	}
	return out, nil
}
