package trace

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/hint"
	"repro/internal/randx"
)

// NoiseConfig parameterises synthetic useless-hint injection (paper §6.3).
type NoiseConfig struct {
	// Types is T, the number of synthetic hint types to append to every
	// request's hint set.
	Types int
	// Domain is D, the number of possible values per synthetic type
	// (paper: D = 10).
	Domain int
	// ZipfS is the skew of the value distribution (paper: z = 1).
	ZipfS float64
	// Seed drives the injection deterministically.
	Seed int64
}

// DefaultNoise returns the paper's §6.3 configuration for a given T.
func DefaultNoise(t int, seed int64) NoiseConfig {
	return NoiseConfig{Types: t, Domain: 10, ZipfS: 1, Seed: seed}
}

// noiseChunk is the fixed request count per parallel work unit. Fixing it
// (instead of dividing by GOMAXPROCS) keeps the output independent of the
// machine: chunk boundaries, and therefore hint-set first-occurrence order,
// never move.
const noiseChunk = 1 << 16

// WithNoise returns a new trace in which every request's hint set has been
// extended with cfg.Types synthetic hint types. Each injected value is drawn
// independently from a Zipf(cfg.ZipfS) distribution over cfg.Domain values,
// as in §6.3; the injected hints therefore carry no information useful to
// the server cache. The input trace is not modified.
//
// The request rewrite fans out across GOMAXPROCS (it was the serial
// bottleneck of cmd/experiments' noise figures): the dispatcher makes the
// Zipf draws serially, one fixed-size chunk at a time, workers extend each
// chunk's hint sets into chunk-local dictionaries in parallel, and a
// serial merge re-interns the chunk dictionaries in order. Extra memory is
// bounded by the chunks in flight (workers × chunk × Types draws), and the
// output — request sequence, dictionary keys and IDs — is bit-identical to
// the serial rewrite at any core count.
func WithNoise(t *Trace, cfg NoiseConfig) (*Trace, error) {
	if cfg.Types < 0 || cfg.Domain <= 0 {
		return nil, fmt.Errorf("trace: invalid noise config %+v", cfg)
	}
	out := New(fmt.Sprintf("%s+noise%d", t.Name, cfg.Types), t.PageSize)
	out.Clients = append([]string(nil), t.Clients...)
	out.Reqs = make([]Request, len(t.Reqs))
	if cfg.Types == 0 {
		// Still re-intern so the output owns an independent dictionary.
		remap := make([]hint.ID, t.Dict.Len())
		for id, key := range t.Dict.Keys() {
			remap[id] = out.Dict.InternKey(key)
		}
		for i, r := range t.Reqs {
			r.Hint = remap[r.Hint]
			out.Reqs[i] = r
		}
		return out, nil
	}

	// Serial prologue: decode the base hint sets and precompute the
	// synthetic field strings.
	rng := randx.New(cfg.Seed)
	zipf := randx.NewZipf(rng, cfg.Domain, cfg.ZipfS)
	baseSets := make([]hint.Set, t.Dict.Len())
	for id, key := range t.Dict.Keys() {
		s, err := hint.Parse(key)
		if err != nil {
			return nil, fmt.Errorf("trace: noise injection on %q: %w", t.Name, err)
		}
		baseSets[id] = s
	}
	names := make([]string, cfg.Types)
	for j := range names {
		names[j] = fmt.Sprintf("noise%d", j)
	}
	valStrs := make([]string, cfg.Domain)
	for v := range valStrs {
		valStrs[v] = fmt.Sprintf("v%d", v)
	}

	// Parallel rewrite: the dispatcher draws each chunk's Zipf values in
	// request order (randomness stays serial, memory stays bounded by the
	// chunks in flight), and each worker extends its chunk's hint sets
	// into a chunk-local dictionary, storing local IDs in out.Reqs.
	type chunkWork struct {
		ci    int
		draws []int32 // (hi-lo)*Types values, in request-major order
	}
	nChunks := (len(t.Reqs) + noiseChunk - 1) / noiseChunk
	locals := make([]*hint.Dict, nChunks)
	var wg sync.WaitGroup
	ch := make(chan chunkWork)
	workers := runtime.GOMAXPROCS(0)
	if workers > nChunks {
		workers = nChunks
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for work := range ch {
				local := hint.NewDict()
				lo, hi := work.ci*noiseChunk, (work.ci+1)*noiseChunk
				if hi > len(t.Reqs) {
					hi = len(t.Reqs)
				}
				for i := lo; i < hi; i++ {
					r := t.Reqs[i]
					s := baseSets[r.Hint]
					ext := make(hint.Set, 0, len(s)+cfg.Types)
					ext = append(ext, s...)
					for j := 0; j < cfg.Types; j++ {
						ext = append(ext, hint.Field{Type: names[j], Value: valStrs[work.draws[(i-lo)*cfg.Types+j]]})
					}
					r.Hint = local.Intern(ext)
					out.Reqs[i] = r
				}
				locals[work.ci] = local
			}
		}()
	}
	for ci := 0; ci < nChunks; ci++ {
		lo, hi := ci*noiseChunk, (ci+1)*noiseChunk
		if hi > len(t.Reqs) {
			hi = len(t.Reqs)
		}
		draws := make([]int32, (hi-lo)*cfg.Types)
		for i := range draws {
			draws[i] = int32(zipf.Next())
		}
		ch <- chunkWork{ci: ci, draws: draws}
	}
	close(ch)
	wg.Wait()

	// Serial merge: interning each chunk's keys in chunk order assigns the
	// output dictionary IDs in global first-occurrence order — the order
	// the serial loop would have produced.
	for ci, local := range locals {
		remap := make([]hint.ID, local.Len())
		for id, key := range local.Keys() {
			remap[id] = out.Dict.InternKey(key)
		}
		lo, hi := ci*noiseChunk, (ci+1)*noiseChunk
		if hi > len(t.Reqs) {
			hi = len(t.Reqs)
		}
		for i := lo; i < hi; i++ {
			out.Reqs[i].Hint = remap[out.Reqs[i].Hint]
		}
	}
	return out, nil
}

// StreamNoise is the streaming form of WithNoise: it pipes requests from it
// into sink, extending every hint set with cfg.Types synthetic types, and
// never holds the trace in memory — scanner→transform→writer runs in
// bounded space at any trace length. The output requests and dictionary are
// identical to WithNoise over the same input: synthetic values are drawn in
// request order from the same generator, and extended hint sets are
// interned in first-occurrence order, exactly like the chunked merge.
//
// With cfg.Types == 0 every input dictionary key is re-interned in ID order
// as it becomes visible, again matching WithNoise.
func StreamNoise(it Iterator, sink Sink, cfg NoiseConfig) error {
	if cfg.Types < 0 || cfg.Domain <= 0 {
		return fmt.Errorf("trace: invalid noise config %+v", cfg)
	}
	inDict, outDict := it.HintDict(), sink.HintDict()

	if cfg.Types == 0 {
		var remap []hint.ID
		sync := func() {
			for id := len(remap); id < inDict.Len(); id++ {
				remap = append(remap, outDict.InternKey(inDict.Key(hint.ID(id))))
			}
		}
		for it.Scan() {
			sync()
			r := it.Request()
			r.Hint = remap[r.Hint]
			sink.AppendReq(r)
		}
		sync() // trailing dict growth (v2 dict sections after the last block)
		if err := it.Err(); err != nil {
			return err
		}
		return Err(sink)
	}

	rng := randx.New(cfg.Seed)
	zipf := randx.NewZipf(rng, cfg.Domain, cfg.ZipfS)
	names := make([]string, cfg.Types)
	for j := range names {
		names[j] = fmt.Sprintf("noise%d", j)
	}
	valStrs := make([]string, cfg.Domain)
	for v := range valStrs {
		valStrs[v] = fmt.Sprintf("v%d", v)
	}

	var baseSets []hint.Set
	ext := make(hint.Set, 0, 8+cfg.Types)
	for it.Scan() {
		for id := len(baseSets); id < inDict.Len(); id++ {
			s, err := hint.Parse(inDict.Key(hint.ID(id)))
			if err != nil {
				return fmt.Errorf("trace: noise injection on %q: %w", it.Name(), err)
			}
			baseSets = append(baseSets, s)
		}
		r := it.Request()
		ext = append(ext[:0], baseSets[r.Hint]...)
		for j := 0; j < cfg.Types; j++ {
			ext = append(ext, hint.Field{Type: names[j], Value: valStrs[zipf.Next()]})
		}
		r.Hint = outDict.Intern(ext)
		sink.AppendReq(r)
	}
	if err := it.Err(); err != nil {
		return err
	}
	return Err(sink)
}
