package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/hint"
)

// Binary trace format (all integers varint-encoded unless noted):
//
//	magic      "CLICTRC1" (8 bytes)
//	nameLen, name
//	pageSize
//	clientCount, then each client name (len, bytes)
//	dictLen, then each hint key (len, bytes) in ID order
//	reqCount
//	reqCount records of: flags byte (bit0 = write), client byte,
//	                     page delta (zig-zag varint vs previous page),
//	                     hint ID varint
//
// Page numbers are delta-encoded because workload generators emit runs of
// sequential pages (scans, prefetch), which compresses well.

const binaryMagic = "CLICTRC1"

// WriteBinary serialises the trace.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	writeString := func(s string) {
		writeUvarint(bw, uint64(len(s)))
		bw.WriteString(s)
	}
	writeString(t.Name)
	writeUvarint(bw, uint64(t.PageSize))
	writeUvarint(bw, uint64(len(t.Clients)))
	for _, c := range t.Clients {
		writeString(c)
	}
	keys := t.Dict.Keys()
	writeUvarint(bw, uint64(len(keys)))
	for _, k := range keys {
		writeString(k)
	}
	writeUvarint(bw, uint64(len(t.Reqs)))
	prev := uint64(0)
	for _, r := range t.Reqs {
		flags := byte(0)
		if r.Op == Write {
			flags |= 1
		}
		bw.WriteByte(flags)
		bw.WriteByte(r.Client)
		writeVarint(bw, int64(r.Page)-int64(prev))
		prev = r.Page
		writeUvarint(bw, uint64(r.Hint))
	}
	return bw.Flush()
}

// ReadBinary deserialises a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	name, err := readString()
	if err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	pageSize, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading page size: %w", err)
	}
	t := New(name, int(pageSize))
	nClients, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading client count: %w", err)
	}
	t.Clients = make([]string, nClients)
	for i := range t.Clients {
		if t.Clients[i], err = readString(); err != nil {
			return nil, fmt.Errorf("trace: reading client %d: %w", i, err)
		}
	}
	nKeys, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading dict size: %w", err)
	}
	t.Dict = hint.NewDict()
	for i := uint64(0); i < nKeys; i++ {
		k, err := readString()
		if err != nil {
			return nil, fmt.Errorf("trace: reading hint key %d: %w", i, err)
		}
		if got := t.Dict.InternKey(k); got != hint.ID(i) {
			return nil, fmt.Errorf("trace: duplicate hint key %q in dictionary", k)
		}
	}
	nReqs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading request count: %w", err)
	}
	t.Reqs = make([]Request, nReqs)
	prev := int64(0)
	for i := range t.Reqs {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading request %d flags: %w", i, err)
		}
		client, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: reading request %d client: %w", i, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading request %d page: %w", i, err)
		}
		prev += delta
		h, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading request %d hint: %w", i, err)
		}
		op := Read
		if flags&1 != 0 {
			op = Write
		}
		t.Reqs[i] = Request{Page: uint64(prev), Hint: hint.ID(h), Op: op, Client: client}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteText serialises the trace in a human-readable line format:
// one "op page client hintkey" record per line, preceded by header lines.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# trace %s pagesize %d\n", t.Name, t.PageSize)
	fmt.Fprintf(bw, "# clients %s\n", strings.Join(t.Clients, ","))
	for _, r := range t.Reqs {
		op := "R"
		if r.Op == Write {
			op = "W"
		}
		fmt.Fprintf(bw, "%s %d %d %s\n", op, r.Page, r.Client, t.Dict.Key(r.Hint))
	}
	return bw.Flush()
}

// ReadText parses the format emitted by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	t := New("trace", 4096)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			switch {
			case len(fields) >= 2 && fields[0] == "trace":
				t.Name = fields[1]
				if len(fields) >= 4 && fields[2] == "pagesize" {
					if ps, err := strconv.Atoi(fields[3]); err == nil {
						t.PageSize = ps
					}
				}
			case len(fields) >= 2 && fields[0] == "clients":
				t.Clients = strings.Split(fields[1], ",")
			}
			continue
		}
		fields := strings.SplitN(line, " ", 4)
		if len(fields) < 3 {
			return nil, fmt.Errorf("trace: line %d: malformed record %q", lineNo, line)
		}
		var op Op
		switch fields[0] {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[0])
		}
		page, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad page: %w", lineNo, err)
		}
		client, err := strconv.ParseUint(fields[2], 10, 8)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad client: %w", lineNo, err)
		}
		key := ""
		if len(fields) == 4 {
			key = fields[3]
		}
		t.Reqs = append(t.Reqs, Request{
			Page:   page,
			Hint:   t.Dict.InternKey(key),
			Op:     op,
			Client: uint8(client),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for int(maxClient(t.Reqs))+1 > len(t.Clients) {
		t.Clients = append(t.Clients, fmt.Sprintf("client%d", len(t.Clients)))
	}
	return t, t.Validate()
}

func maxClient(reqs []Request) uint8 {
	var m uint8
	for _, r := range reqs {
		if r.Client > m {
			m = r.Client
		}
	}
	return m
}

// Save writes the trace to path in binary format.
func Save(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from path in any format (binary v1, binary v2, text),
// sniffed from the leading bytes.
func Load(path string) (*Trace, error) {
	s, err := Open(path)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return Collect(s)
}

func writeUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}
