package trace

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/hint"
)

// TestV2RoundTrip checks WriteBinaryV2 → Scanner reproduces the trace
// exactly, including the dictionary and multi-client tags.
func TestV2RoundTrip(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
	if n, ok := sc.Count(); !ok || n != tr.Len() {
		t.Fatalf("Count after trailer = %d,%v, want %d,true", n, ok, tr.Len())
	}
}

// TestV2CrossRead writes the same trace in v1, v2, and text and checks that
// Load reads all three identically.
func TestV2CrossRead(t *testing.T) {
	tr := buildTrace("CROSS", 3000, 7)
	dir := t.TempDir()
	p1 := filepath.Join(dir, "v1.trc")
	p2 := filepath.Join(dir, "v2.trc")
	if err := Save(p1, tr); err != nil {
		t.Fatal(err)
	}
	if err := SaveV2(p2, tr); err != nil {
		t.Fatal(err)
	}
	got1, err := Load(p1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := Load(p2)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got1)
	tracesEqual(t, tr, got2)
}

// TestV2SerialParallelIdentical pins the central writer property: the bytes
// on disk do not depend on the encoder worker count.
func TestV2SerialParallelIdentical(t *testing.T) {
	tr := buildTrace("PAR", 20000, 11)
	encode := func(workers int) []byte {
		var buf bytes.Buffer
		// Small blocks so the parallel path sees many in-flight jobs.
		w := NewWriter(&buf, tr.Name, tr.PageSize, tr.Clients, WriterOptions{BlockSize: 512, Workers: workers})
		for _, k := range tr.Dict.Keys() {
			w.HintDict().InternKey(k)
		}
		for _, r := range tr.Reqs {
			w.AppendReq(r)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := encode(1)
	for _, workers := range []int{2, 4, 8} {
		if par := encode(workers); !bytes.Equal(serial, par) {
			t.Fatalf("workers=%d produced different bytes (%d vs %d)", workers, len(par), len(serial))
		}
	}
}

// TestV2IncrementalDict checks that hint keys interned between appends are
// carried by dict sections, including keys interned after the last request.
func TestV2IncrementalDict(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "inc", 4096, []string{"c"}, WriterOptions{BlockSize: 2, Workers: 1})
	for i := 0; i < 5; i++ {
		id := w.HintDict().InternKey(hint.Make("step", string(rune('a'+i))).Key())
		w.AppendReq(Request{Page: uint64(i), Hint: id})
	}
	// A key the generator interned for a request that was then cut off.
	w.HintDict().InternKey(hint.Make("step", "late").Key())
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Fatalf("got %d requests, want 5", got.Len())
	}
	if got.Dict.Len() != 6 {
		t.Fatalf("dict carried %d keys, want 6 (incl. post-block key)", got.Dict.Len())
	}
	if _, ok := got.Dict.Lookup(hint.Make("step", "late")); !ok {
		t.Fatal("post-block dict key lost")
	}
}

// TestV2EmptyTrace checks a stream with zero requests still round-trips.
func TestV2EmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "empty", 4096, []string{"c"}, WriterOptions{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Name != "empty" {
		t.Fatalf("unexpected trace %q len %d", got.Name, got.Len())
	}
}

// TestV2Truncated checks every proper prefix of a v2 stream is rejected —
// the trailer makes truncation always detectable.
func TestV2Truncated(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := len(full) - 1; cut > len(binaryMagicV2); cut -= 7 {
		sc, err := NewScanner(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // truncated inside the header: also fine
		}
		for sc.Scan() {
		}
		if sc.Err() == nil {
			t.Fatalf("truncation at %d/%d not detected", cut, len(full))
		}
	}
}

// TestV2CorruptPayload flips one payload byte and requires the checksum to
// catch it (when the damage doesn't already break varint decoding).
func TestV2CorruptPayload(t *testing.T) {
	tr := buildTrace("CRC", 500, 3)
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)/2] ^= 0x40
	sc, err := NewScanner(bytes.NewReader(corrupt))
	if err != nil {
		return // corrupted the header: rejected even earlier
	}
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Fatal("corrupted payload byte not detected")
	}
}

// TestV2TrailingGarbage checks that bytes after the trailer are rejected.
func TestV2TrailingGarbage(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0x00)
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	}
	if sc.Err() == nil || !strings.Contains(sc.Err().Error(), "trailing data") {
		t.Fatalf("trailing garbage not detected: %v", sc.Err())
	}
}

// TestV2ScanSteadyStateAllocs pins the zero-allocation property of v2
// scanning: after warm-up (dict interned, payload buffer sized), scanning
// the remainder of the stream must not allocate.
func TestV2ScanSteadyStateAllocs(t *testing.T) {
	tr := buildTrace("ALLOC", 200000, 9)
	var buf bytes.Buffer
	w := NewWriter(&buf, tr.Name, tr.PageSize, tr.Clients, WriterOptions{BlockSize: 4096, Workers: 1})
	for _, k := range tr.Dict.Keys() {
		w.HintDict().InternKey(k)
	}
	for _, r := range tr.Reqs {
		w.AppendReq(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: first block load sizes the payload buffer.
	for i := 0; i < 5000 && sc.Scan(); i++ {
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	n := 0
	for sc.Scan() {
		n++
	}
	runtime.ReadMemStats(&m1)
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n < 100000 {
		t.Fatalf("steady-state phase scanned only %d requests", n)
	}
	if allocs := m1.Mallocs - m0.Mallocs; allocs > 10 {
		t.Fatalf("steady-state scan of %d requests allocated %d times", n, allocs)
	}
}

// TestPipeRoundTrip streams a trace through NewPipe on a producer goroutine
// and checks the consumer sees identical requests and dictionary.
func TestPipeRoundTrip(t *testing.T) {
	tr := buildTrace("PIPE", 30000, 5)
	pw, pr := NewPipe(tr.Name, tr.PageSize, tr.Clients, 256)
	go func() {
		for _, k := range tr.Dict.Keys() {
			pw.HintDict().InternKey(k)
		}
		for _, r := range tr.Reqs {
			pw.AppendReq(r)
		}
		pw.Close()
	}()
	got, err := Collect(pr)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
}

// TestPipeCancel checks that closing the reader lets the producer finish
// without blocking, flagging the cancellation.
func TestPipeCancel(t *testing.T) {
	pw, pr := NewPipe("cancel", 4096, []string{"c"}, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100000; i++ {
			pw.AppendReq(Request{Page: uint64(i)})
		}
		pw.Close()
	}()
	if !pr.Scan() {
		t.Fatal("expected at least one request")
	}
	pr.Close()
	<-done
	if !pw.Canceled() {
		t.Fatal("producer did not observe cancellation")
	}
}

// TestLimitSink checks the exact-cut property Limit provides.
func TestLimitSink(t *testing.T) {
	var tr Trace
	tr.Dict = hint.NewDict()
	s := Limit(&tr, 3)
	for i := 0; i < 10; i++ {
		s.AppendReq(Request{Page: uint64(i)})
	}
	if s.Len() != 3 || len(tr.Reqs) != 3 {
		t.Fatalf("limit leaked: sink len %d, trace len %d", s.Len(), len(tr.Reqs))
	}
	if tr.Reqs[2].Page != 2 {
		t.Fatalf("wrong requests kept: %+v", tr.Reqs)
	}
}

// TestMemIter checks Trace.Iter matches the slice.
func TestMemIter(t *testing.T) {
	tr := streamTestTrace()
	it := tr.Iter()
	defer it.Close()
	got, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, tr, got)
}
