package trace

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/hint"
)

// streamTestTrace builds a small multi-client trace with several hint sets
// and page deltas in both directions.
func streamTestTrace() *Trace {
	t := New("stream", 8192)
	t.Clients = []string{"alpha", "beta"}
	h1 := t.Dict.Intern(hint.Make("reqtype", "seq"))
	h2 := t.Dict.Intern(hint.Make("reqtype", "rand", "table", "stock"))
	h0 := t.Dict.Intern(nil)
	pages := []uint64{10, 11, 12, 5, 900, 11, 3, 900}
	hints := []hint.ID{h1, h1, h2, h0, h2, h1, h0, h2}
	for i, p := range pages {
		op := Read
		if i%3 == 2 {
			op = Write
		}
		t.Reqs = append(t.Reqs, Request{Page: p, Hint: hints[i], Op: op, Client: uint8(i % 2)})
	}
	return t
}

// collect drains a scanner into a slice.
func collect(t *testing.T, sc *Scanner) []Request {
	t.Helper()
	var out []Request
	for sc.Scan() {
		out = append(out, sc.Request())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScannerBinary checks that streaming a binary trace yields exactly the
// requests, header, and dictionary of the batch reader.
func TestScannerBinary(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name() != tr.Name || sc.PageSize() != tr.PageSize {
		t.Errorf("header = %q/%d, want %q/%d", sc.Name(), sc.PageSize(), tr.Name, tr.PageSize)
	}
	if n, ok := sc.Count(); !ok || n != tr.Len() {
		t.Errorf("Count = %d,%v, want %d,true", n, ok, tr.Len())
	}
	if got, want := sc.Clients(), tr.Clients; len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Clients = %v, want %v", got, want)
	}
	got := collect(t, sc)
	if len(got) != tr.Len() {
		t.Fatalf("scanned %d requests, want %d", len(got), tr.Len())
	}
	for i, r := range got {
		if r != tr.Reqs[i] {
			t.Errorf("request %d = %+v, want %+v", i, r, tr.Reqs[i])
		}
	}
	for id, key := range tr.Dict.Keys() {
		if sc.Dict().Key(hint.ID(id)) != key {
			t.Errorf("dict[%d] = %q, want %q", id, sc.Dict().Key(hint.ID(id)), key)
		}
	}
}

// TestScannerText checks text streaming against ReadText on the same bytes.
func TestScannerText(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want, err := ReadText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, sc)
	if len(got) != want.Len() {
		t.Fatalf("scanned %d requests, want %d", len(got), want.Len())
	}
	for i, r := range got {
		if r != want.Reqs[i] {
			t.Errorf("request %d = %+v, want %+v", i, r, want.Reqs[i])
		}
	}
	if sc.Name() != want.Name || sc.PageSize() != want.PageSize {
		t.Errorf("header = %q/%d, want %q/%d", sc.Name(), sc.PageSize(), want.Name, want.PageSize)
	}
	if got, want := sc.Clients(), want.Clients; len(got) != len(want) {
		t.Errorf("Clients = %v, want %v", got, want)
	}
	if sc.Dict().Len() != want.Dict.Len() {
		t.Errorf("dict has %d keys, want %d", sc.Dict().Len(), want.Dict.Len())
	}
}

// TestScannerOpen round-trips through a file and exercises Close.
func TestScannerOpen(t *testing.T) {
	tr := streamTestTrace()
	path := filepath.Join(t.TempDir(), "s.trc")
	if err := Save(path, tr); err != nil {
		t.Fatal(err)
	}
	sc, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, sc); len(got) != tr.Len() {
		t.Errorf("scanned %d requests, want %d", len(got), tr.Len())
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestScannerTruncatedBinary ensures a cut-off stream surfaces an error
// rather than a silent short read.
func TestScannerTruncatedBinary(t *testing.T) {
	tr := streamTestTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(buf.Bytes()[:buf.Len()-3]))
	if err != nil {
		t.Fatal(err)
	}
	for sc.Scan() {
	}
	if sc.Err() == nil {
		t.Error("truncated stream scanned cleanly")
	}
}

// TestSplitClients checks the per-client partition helper.
func TestSplitClients(t *testing.T) {
	tr := streamTestTrace()
	streams := tr.SplitClients()
	if len(streams) != 2 {
		t.Fatalf("got %d streams, want 2", len(streams))
	}
	total := 0
	for c, reqs := range streams {
		total += len(reqs)
		for i, r := range reqs {
			if int(r.Client) != c {
				t.Errorf("stream %d request %d has client %d", c, i, r.Client)
			}
		}
	}
	if total != tr.Len() {
		t.Errorf("streams cover %d requests, want %d", total, tr.Len())
	}
}
