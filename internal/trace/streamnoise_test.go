package trace

import (
	"bytes"
	"testing"

	"repro/internal/hint"
)

// TestStreamNoiseMatchesWithNoise pins the streaming transform to the
// in-RAM one: scanner→StreamNoise→trace must equal WithNoise, for zero and
// nonzero noise types, including when the input arrives via the streaming
// v2 format (incremental dictionary).
func TestStreamNoiseMatchesWithNoise(t *testing.T) {
	tr := buildTrace("NOISE", 60000, 21)
	for _, types := range []int{0, 2, 5} {
		cfg := DefaultNoise(types, 77)
		want, err := WithNoise(tr, cfg)
		if err != nil {
			t.Fatal(err)
		}

		// From an in-memory iterator.
		got := New(want.Name, tr.PageSize)
		got.Clients = append([]string(nil), tr.Clients...)
		it := tr.Iter()
		if err := StreamNoise(it, got, cfg); err != nil {
			t.Fatal(err)
		}
		it.Close()
		tracesEqual(t, want, got)

		// From a v2 stream (dictionary arrives in sections).
		var buf bytes.Buffer
		if err := WriteBinaryV2(&buf, tr); err != nil {
			t.Fatal(err)
		}
		sc, err := NewScanner(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		got2 := New(want.Name, tr.PageSize)
		got2.Clients = append([]string(nil), tr.Clients...)
		if err := StreamNoise(sc, got2, cfg); err != nil {
			t.Fatal(err)
		}
		tracesEqual(t, want, got2)

		// Dictionary IDs must match exactly, not just keys.
		for i, r := range want.Reqs {
			if got.Reqs[i].Hint != r.Hint || got2.Reqs[i].Hint != r.Hint {
				t.Fatalf("types=%d request %d: hint IDs diverge", types, i)
			}
		}
	}
}

// TestStreamNoiseThroughWriter checks the full scanner→noise→v2-writer pipe
// round-trips to the WithNoise reference.
func TestStreamNoiseThroughWriter(t *testing.T) {
	tr := buildTrace("PIPE_NOISE", 30000, 4)
	cfg := DefaultNoise(3, 9)
	want, err := WithNoise(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var v2in, v2out bytes.Buffer
	if err := WriteBinaryV2(&v2in, tr); err != nil {
		t.Fatal(err)
	}
	sc, err := NewScanner(bytes.NewReader(v2in.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(&v2out, want.Name, tr.PageSize, tr.Clients, WriterOptions{BlockSize: 2048})
	if err := StreamNoise(sc, w, cfg); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sc2, err := NewScanner(bytes.NewReader(v2out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(sc2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() || got.Dict.Len() != want.Dict.Len() {
		t.Fatalf("len %d/%d, dict %d/%d", got.Len(), want.Len(), got.Dict.Len(), want.Dict.Len())
	}
	for i := range want.Reqs {
		if got.Reqs[i] != want.Reqs[i] {
			t.Fatalf("request %d: %+v vs %+v", i, got.Reqs[i], want.Reqs[i])
		}
	}
	for id := 0; id < want.Dict.Len(); id++ {
		if got.Dict.Key(hint.ID(id)) != want.Dict.Key(hint.ID(id)) {
			t.Fatalf("hint %d: %q vs %q", id, got.Dict.Key(hint.ID(id)), want.Dict.Key(hint.ID(id)))
		}
	}
}
