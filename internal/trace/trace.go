// Package trace defines the block I/O request traces exchanged between the
// workload generators and the cache simulator, mirroring the paper's
// trace-driven methodology (§6): a trace is a sequence of (page, read/write,
// hint set) records plus the hint dictionary that interns the hint sets.
//
// The package also provides the two trace transformations the evaluation
// needs: round-robin interleaving of multiple client traces (§6.4) and
// synthetic noise-hint injection (§6.3).
//
// Traces exist in three serialised forms. Binary v1 ("CLICTRC1", io.go) is
// the classic whole-trace format: a complete header (dictionary, request
// count) followed by delta-encoded records — it requires the full trace in
// RAM to write. Binary v2 ("CLICTRC2", v2.go) is the streaming format:
// block-framed records with incremental dictionary sections and a
// count/checksum trailer, writable and scannable in bounded memory at
// paper scale (hundreds of millions of requests). The text format
// (WriteText) is for humans. Scanner sniffs and reads all three; Load
// collects any of them into an in-memory Trace. The Sink/Iterator/Source
// interfaces (sink.go) let generators and replay paths pipe requests
// through any of these without materialising a []Request.
package trace

import (
	"fmt"

	"repro/internal/hint"
)

// Op is the request operation.
type Op uint8

const (
	// Read is a block read request.
	Read Op = iota
	// Write is a block write request.
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is one block I/O request as seen by the storage server. The
// request's sequence number is implicit: it is the request's index in the
// trace (the server tags requests with sequence numbers on arrival, §3).
type Request struct {
	// Page is the requested block number in the server's address space.
	Page uint64
	// Hint is the interned hint set attached by the client.
	Hint hint.ID
	// Op is Read or Write.
	Op Op
	// Client identifies the issuing client in interleaved traces (0 for
	// single-client traces).
	Client uint8
}

// Trace is an in-memory I/O request trace.
type Trace struct {
	// Name identifies the trace (e.g. "DB2_C60").
	Name string
	// PageSize is the block size in bytes (informational).
	PageSize int
	// Dict interns all hint sets referenced by Reqs.
	Dict *hint.Dict
	// Reqs is the request sequence.
	Reqs []Request
	// Clients names each client ID used in Reqs; len(Clients) >= 1.
	Clients []string
}

// New returns an empty trace with a fresh dictionary and a single client.
func New(name string, pageSize int) *Trace {
	return &Trace{
		Name:     name,
		PageSize: pageSize,
		Dict:     hint.NewDict(),
		Clients:  []string{name},
	}
}

// Append adds a request issued by client 0.
func (t *Trace) Append(page uint64, op Op, h hint.ID) {
	t.Reqs = append(t.Reqs, Request{Page: page, Hint: h, Op: op})
}

// Len returns the number of requests.
func (t *Trace) Len() int { return len(t.Reqs) }

// Stats summarises a trace, providing the columns of the paper's Figure 5.
type Stats struct {
	Name          string
	Requests      int
	Reads         int
	Writes        int
	DistinctPages int
	DistinctHints int
	Clients       int
}

// Stats scans the trace and returns its summary.
func (t *Trace) Stats() Stats {
	pages := make(map[uint64]struct{})
	hints := make(map[hint.ID]struct{})
	s := Stats{Name: t.Name, Requests: len(t.Reqs), Clients: len(t.Clients)}
	for _, r := range t.Reqs {
		pages[r.Page] = struct{}{}
		hints[r.Hint] = struct{}{}
		if r.Op == Read {
			s.Reads++
		} else {
			s.Writes++
		}
	}
	s.DistinctPages = len(pages)
	s.DistinctHints = len(hints)
	return s
}

// Validate checks internal consistency: every referenced hint ID must be
// interned in Dict and every client ID must be named in Clients.
func (t *Trace) Validate() error {
	if t.Dict == nil {
		return fmt.Errorf("trace %q: nil dictionary", t.Name)
	}
	n := uint32(t.Dict.Len())
	for i, r := range t.Reqs {
		if r.Hint >= n {
			return fmt.Errorf("trace %q: request %d references hint %d outside dictionary (len %d)", t.Name, i, r.Hint, n)
		}
		if int(r.Client) >= len(t.Clients) {
			return fmt.Errorf("trace %q: request %d references client %d outside Clients (len %d)", t.Name, i, r.Client, len(t.Clients))
		}
	}
	return nil
}

// Interleave merges traces round-robin, one request from each in turn,
// truncating all inputs to the length of the shortest so no trace is biased
// by its length, exactly as the multi-client experiment prescribes (§6.4).
// Hint types from each input are namespaced by the input's name so that the
// same hint type from two clients remains distinct (§2). Page spaces are
// disjoint: each client's pages are remapped into a private region.
func Interleave(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: Interleave needs at least one input")
	}
	if len(traces) > 256 {
		return nil, fmt.Errorf("trace: Interleave supports at most 256 clients, got %d", len(traces))
	}
	shortest := traces[0].Len()
	for _, t := range traces[1:] {
		if t.Len() < shortest {
			shortest = t.Len()
		}
	}
	out := New(name, traces[0].PageSize)
	out.Clients = out.Clients[:0]
	out.Reqs = make([]Request, 0, shortest*len(traces))

	// Per-input hint remap table and page-space offset.
	remaps := make([][]hint.ID, len(traces))
	var pageBase uint64
	bases := make([]uint64, len(traces))
	for i, t := range traces {
		out.Clients = append(out.Clients, t.Name)
		remaps[i] = make([]hint.ID, t.Dict.Len())
		for id, key := range t.Dict.Keys() {
			set, err := hint.Parse(key)
			if err != nil {
				return nil, fmt.Errorf("trace: interleaving %q: %w", t.Name, err)
			}
			remaps[i][id] = out.Dict.Intern(set.Namespace(t.Name))
		}
		bases[i] = pageBase
		maxPage := uint64(0)
		for _, r := range t.Reqs {
			if r.Page > maxPage {
				maxPage = r.Page
			}
		}
		pageBase += maxPage + 1
	}
	for pos := 0; pos < shortest; pos++ {
		for i, t := range traces {
			r := t.Reqs[pos]
			out.Reqs = append(out.Reqs, Request{
				Page:   bases[i] + r.Page,
				Hint:   remaps[i][r.Hint],
				Op:     r.Op,
				Client: uint8(i),
			})
		}
	}
	return out, nil
}

// SplitClients partitions the request sequence into per-client streams,
// indexed by client ID and preserving each client's request order. It is
// the inverse of Interleave's merging and is what concurrent serving
// (engine.ServeClients, the network replay client) feeds its per-client
// goroutines.
func (t *Trace) SplitClients() [][]Request {
	streams := make([][]Request, len(t.Clients))
	for _, r := range t.Reqs {
		streams[r.Client] = append(streams[r.Client], r)
	}
	return streams
}

// Truncate returns a shallow copy of the trace limited to the first n
// requests (or the whole trace if n exceeds its length).
func (t *Trace) Truncate(n int) *Trace {
	if n > len(t.Reqs) {
		n = len(t.Reqs)
	}
	c := *t
	c.Reqs = t.Reqs[:n]
	return &c
}
