package metrics

import (
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

// TestWritePrometheus pins the exposition format: sorted series, one
// HELP/TYPE header per name, label rendering, histogram buckets.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("clic_requests_total", "Requests served.", "shard", "0")
	c.Add(5)
	c2 := r.Counter("clic_requests_total", "Requests served.", "shard", "1")
	c2.Add(7)
	g := r.Gauge("clic_cache_pages", "Pages resident.")
	g.Set(123)
	h := r.Histogram("clic_batch_ns", "Batch service time.")
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)
	r.GaugeFunc("clic_alpha", "Sorted first.", func() float64 { return 1.5 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP clic_alpha Sorted first.
# TYPE clic_alpha gauge
clic_alpha 1.5
# HELP clic_batch_ns Batch service time.
# TYPE clic_batch_ns histogram
clic_batch_ns_bucket{le="3"} 2
clic_batch_ns_bucket{le="111"} 3
clic_batch_ns_bucket{le="+Inf"} 3
clic_batch_ns_sum 106
clic_batch_ns_count 3
# HELP clic_cache_pages Pages resident.
# TYPE clic_cache_pages gauge
clic_cache_pages 123
# HELP clic_requests_total Requests served.
# TYPE clic_requests_total counter
clic_requests_total{shard="0"} 5
clic_requests_total{shard="1"} 7
`
	if got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRenderLabelsEscaping(t *testing.T) {
	got := renderLabels([]string{"path", `a\b"c` + "\n"})
	want := `{path="a\\b\"c\n"}`
	if got != want {
		t.Fatalf("renderLabels = %q, want %q", got, want)
	}
	if renderLabels(nil) != "" {
		t.Fatalf("renderLabels(nil) should be empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("odd label count should panic")
		}
	}()
	renderLabels([]string{"only-key"})
}

func TestMergeLabels(t *testing.T) {
	if got := mergeLabels("", "le", "+Inf"); got != `{le="+Inf"}` {
		t.Fatalf("mergeLabels empty = %q", got)
	}
	if got := mergeLabels(`{shard="3"}`, "le", "8"); got != `{shard="3",le="8"}` {
		t.Fatalf("mergeLabels nonempty = %q", got)
	}
}

// TestNilRegistry: instrumented packages register unconditionally; a nil
// registry must absorb everything without panicking.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	c.Inc()
	r.Gauge("y", "").Set(1)
	r.Histogram("z", "").Observe(1)
	r.CounterFunc("f", "", func() float64 { return 0 })
	r.GaugeFunc("g", "", func() float64 { return 0 })
	r.RegisterHistogram("h", "", &Histogram{})
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatValue(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{5, "5"},
		{1.5, "1.5"},
		{1e21, "1e+21"},
		{0.8571428571428571, "0.8571428571428571"},
	}
	for _, c := range cases {
		if got := formatValue(c.v); got != c.want {
			t.Errorf("formatValue(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
