package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; all methods are safe for concurrent use and never allocate.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use and never allocate.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// kind is a series' Prometheus metric type.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series: a metric name, an optional label
// set, and either a scalar read function or a histogram.
type series struct {
	name   string
	help   string
	labels string // pre-rendered {k="v",...}, or ""
	kind   kind
	read   func() float64 // counter/gauge
	hist   *Histogram     // histogram
}

// Registry holds named series and renders them in the Prometheus text
// exposition format. Registration is cheap but takes a lock; do it at
// setup time, not on the request path. A nil *Registry ignores
// registrations, so instrumented packages need no "metrics off" branches.
type Registry struct {
	mu     sync.Mutex
	series []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// renderLabels turns alternating key, value strings into a Prometheus
// label block, escaping values per the text format.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: labels must be alternating key, value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) add(s *series) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.series = append(r.series, s)
	r.mu.Unlock()
}

// Counter creates, registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.CounterFunc(name, help, func() float64 { return float64(c.Value()) }, labels...)
	return c
}

// Gauge creates, registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.GaugeFunc(name, help, func() float64 { return float64(g.Value()) }, labels...)
	return g
}

// Histogram creates, registers and returns a histogram series.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	h := &Histogram{}
	r.RegisterHistogram(name, help, h, labels...)
	return h
}

// CounterFunc registers a counter series read from fn at exposition time —
// the way existing atomic accounting (core.Sharded.Stats, wire.Metrics) is
// exposed without double-counting on the hot path.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.add(&series{name: name, help: help, labels: renderLabels(labels), kind: kindCounter, read: fn})
}

// GaugeFunc registers a gauge series read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.add(&series{name: name, help: help, labels: renderLabels(labels), kind: kindGauge, read: fn})
}

// RegisterHistogram registers an externally owned histogram (package-level
// instruments like netclient's RTT histogram).
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...string) {
	r.add(&series{name: name, help: help, labels: renderLabels(labels), kind: kindHistogram, hist: h})
}

// formatValue renders a sample value like Prometheus clients do: integral
// floats print without a decimal point.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): series sorted by name then label set,
// one HELP/TYPE header per metric name, histograms as cumulative le
// buckets plus _sum and _count. Empty histogram buckets are omitted (the
// cumulative counts stay correct); a histogram's _count and +Inf bucket
// come from the same snapshot so the exposition is self-consistent even
// under concurrent Observe calls.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ss := make([]*series, len(r.series))
	copy(ss, r.series)
	r.mu.Unlock()
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].name != ss[j].name {
			return ss[i].name < ss[j].name
		}
		return ss[i].labels < ss[j].labels
	})
	var b strings.Builder
	prev := ""
	for _, s := range ss {
		if s.name != prev {
			prev = s.name
			if s.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", s.name, s.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", s.name, s.kind)
		}
		if s.kind != kindHistogram {
			fmt.Fprintf(&b, "%s%s %s\n", s.name, s.labels, formatValue(s.read()))
			continue
		}
		var snap HistSnapshot
		s.hist.Snapshot(&snap)
		cum := uint64(0)
		for i, n := range snap.Counts {
			if n == 0 {
				continue
			}
			cum += n
			_, hi := BucketBounds(i)
			fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, mergeLabels(s.labels, "le", formatValue(float64(hi))), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", s.name, mergeLabels(s.labels, "le", "+Inf"), cum)
		fmt.Fprintf(&b, "%s_sum%s %d\n", s.name, s.labels, snap.Sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", s.name, s.labels, cum)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// mergeLabels appends one extra label to a pre-rendered label block.
func mergeLabels(labels, k, v string) string {
	extra := k + `="` + v + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}
