// Package metrics is the repository's allocation-free instrumentation
// core: atomic counters and gauges, log-bucketed histograms, a registry
// that exposes every registered series in the Prometheus text format, and
// a timeline recorder that samples registered series into CSV rows.
//
// The hot-path types are built to be touched from the owner-engine request
// path without giving back any of the zero-allocation work: Counter.Add,
// Gauge.Set and Histogram.Observe are single atomic operations into fixed
// storage — no locks, no maps, no allocation, safe for any number of
// concurrent writers. The zero value of each instrument is ready to use,
// so packages may hold instruments in plain vars and register them into a
// Registry lazily.
//
// Histograms bucket values (nanoseconds, bytes — the unit is the
// caller's) logarithmically with four sub-buckets per power of two, so
// every bucket's relative width is at most 25% and a quantile estimate is
// within ~12% of the true sample quantile. Snapshots subtract, which is
// how the timeline reports per-interval quantiles from cumulative
// histograms.
//
// The Registry renders a hand-rolled Prometheus text exposition
// (counters, gauges, histograms with cumulative le buckets) — enough for
// a Prometheus scrape or a curl, with no dependency on a client library.
// The Timeline appends one CSV row per tick: point-in-time values, deltas
// since the previous row, rates per second, delta ratios, and
// per-interval histogram quantiles. Ticks can be driven by a wall-clock
// goroutine (Start, which also snapshots on observed window rotations) or
// explicitly (Tick), and the clock is injectable so tests pin rows — and
// whole timeline files — bit-identically.
package metrics
