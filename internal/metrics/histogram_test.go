package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"
)

// TestBucketBoundaries pins the bucket layout with an explicit table and
// then verifies the two mappings are exact inverses over the whole range.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
		lo, hi uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{2, 2, 2, 2},
		{3, 3, 3, 3},
		{4, 4, 4, 4},
		{5, 5, 5, 5},
		{6, 6, 6, 6},
		{7, 7, 7, 7},
		{8, 8, 8, 9},
		{9, 8, 8, 9},
		{10, 9, 10, 11},
		{12, 10, 12, 13},
		{14, 11, 14, 15},
		{16, 12, 16, 19},
		{31, 15, 28, 31},
		{32, 16, 32, 39},
		{1000, 35, 896, 1023},
		{1024, 36, 1024, 1279},
		{1 << 20, 76, 1 << 20, 1<<20 + (1<<18 - 1)},
		{math.MaxUint64, NumBuckets - 1, 7 << 61, math.MaxUint64},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BucketBounds(%d) = [%d, %d], want [%d, %d]", c.bucket, lo, hi, c.lo, c.hi)
		}
	}
	// Exhaustively: every bucket's bounds map back to that bucket, buckets
	// tile the uint64 range with no gaps, and width stays within 25%.
	next := uint64(0)
	for i := 0; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != next {
			t.Fatalf("bucket %d starts at %d, want %d (gap or overlap)", i, lo, next)
		}
		if bucketIndex(lo) != i || bucketIndex(hi) != i {
			t.Fatalf("bucket %d bounds [%d, %d] do not map back to bucket %d", i, lo, hi, bucketIndex(lo))
		}
		if lo > 0 && float64(hi-lo) > 0.25*float64(lo) {
			t.Fatalf("bucket %d [%d, %d] wider than 25%% of lo", i, lo, hi)
		}
		next = hi + 1
		if hi == math.MaxUint64 {
			if i != NumBuckets-1 {
				t.Fatalf("bucket %d already covers MaxUint64", i)
			}
			next = 0
		}
	}
}

// TestQuantileAgainstSort compares histogram quantiles against the exact
// quantiles of the sorted sample set; with ≤25% bucket width they must
// agree within ~12.5% relative error.
func TestQuantileAgainstSort(t *testing.T) {
	// Deterministic skewed workload: xorshift values squashed to span
	// several orders of magnitude, like batch latencies do.
	var h Histogram
	state := uint64(0x9e3779b97f4a7c15)
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v := state % 1_000_000
		v = v * v / 1_000_000 // skew toward small values
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.01, 0.10, 0.50, 0.90, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		exact := float64(samples[idx])
		got := h.Quantile(q)
		relErr := math.Abs(got-exact) / math.Max(exact, 1)
		if relErr > 0.125 {
			t.Errorf("q=%g: histogram %.1f vs exact %.1f (rel err %.3f)", q, got, exact, relErr)
		}
	}
	if h.Count() != uint64(len(samples)) {
		t.Errorf("Count() = %d, want %d", h.Count(), len(samples))
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty snapshot quantile = %g, want 0", got)
	}
	var h Histogram
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 1} {
		got := h.Quantile(q)
		lo, hi := BucketBounds(bucketIndex(42))
		if got < float64(lo) || got > float64(hi) {
			t.Errorf("single-sample quantile(%g) = %g outside bucket [%d, %d]", q, got, lo, hi)
		}
	}
}

func TestSnapshotSub(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(100)
	var before HistSnapshot
	h.Snapshot(&before)
	h.Observe(1000)
	h.Observe(1000)
	var after HistSnapshot
	h.Snapshot(&after)
	after.Sub(&before)
	if after.Count != 2 || after.Sum != 2000 {
		t.Fatalf("interval snapshot count=%d sum=%d, want 2, 2000", after.Count, after.Sum)
	}
	if after.Counts[bucketIndex(1000)] != 2 {
		t.Fatalf("interval snapshot missing the two 1000 samples")
	}
	if after.Counts[bucketIndex(10)] != 0 {
		t.Fatalf("interval snapshot kept pre-interval samples")
	}
}

// TestHistogramConcurrent hammers one histogram from several goroutines
// (meaningful under -race) and checks totals.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		workers = 8
		perW    = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(uint64(w*perW + i))
			}
		}(w)
	}
	// Concurrent readers: snapshots and summaries while writes proceed.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s HistSnapshot
			for i := 0; i < 100; i++ {
				h.Snapshot(&s)
				s.Quantile(0.9)
				h.Summary()
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*perW {
		t.Fatalf("Count() = %d, want %d", h.Count(), workers*perW)
	}
	want := uint64(workers*perW) * uint64(workers*perW-1) / 2
	if h.Sum() != want {
		t.Fatalf("Sum() = %d, want %d", h.Sum(), want)
	}
	total := uint64(0)
	var s HistSnapshot
	h.Snapshot(&s)
	for _, n := range s.Counts {
		total += n
	}
	if total != workers*perW {
		t.Fatalf("bucket total = %d, want %d", total, workers*perW)
	}
}

func TestSummary(t *testing.T) {
	var h Histogram
	sum := h.Summary()
	if sum.Count != 0 || sum.Mean != 0 || sum.Max != 0 {
		t.Fatalf("empty summary not zero: %+v", sum)
	}
	for i := uint64(1); i <= 100; i++ {
		h.Observe(i)
	}
	sum = h.Summary()
	if sum.Count != 100 || sum.Sum != 5050 {
		t.Fatalf("summary count=%d sum=%d, want 100, 5050", sum.Count, sum.Sum)
	}
	if sum.Mean != 50.5 {
		t.Fatalf("summary mean = %g, want 50.5", sum.Mean)
	}
	if sum.P50 < 45 || sum.P50 > 56 {
		t.Fatalf("summary p50 = %g, want ≈50", sum.P50)
	}
	// Max is the upper bound of the bucket holding 100.
	_, hi := BucketBounds(bucketIndex(100))
	if sum.Max != float64(hi) {
		t.Fatalf("summary max = %g, want %d", sum.Max, hi)
	}
}
