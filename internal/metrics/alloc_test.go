package metrics

import (
	"io"
	"testing"
	"time"
)

// The instruments guard the owner engine's zero-allocation request path,
// so their own hot operations must not allocate either.

func TestInstrumentAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(5)
		g.Add(-1)
		h.Observe(12345)
	}); n != 0 {
		t.Fatalf("instrument ops allocate %.1f allocs/op, want 0", n)
	}
}

func TestSnapshotQuantileAllocs(t *testing.T) {
	var h Histogram
	for i := uint64(0); i < 1000; i++ {
		h.Observe(i * 37)
	}
	var prev, cur HistSnapshot
	h.Snapshot(&prev)
	if n := testing.AllocsPerRun(100, func() {
		h.Snapshot(&cur)
		cur.Sub(&prev)
		cur.Quantile(0.99)
	}); n != 0 {
		t.Fatalf("snapshot+quantile allocates %.1f allocs/op, want 0", n)
	}
}

// TestTimelineTickAllocs: after the first row (header + buffer growth),
// steady-state ticks reuse the row buffer and allocate nothing.
func TestTimelineTickAllocs(t *testing.T) {
	tl := NewTimeline(io.Discard)
	var c Counter
	var g Gauge
	var h Histogram
	tl.Value("gauge", func() float64 { return float64(g.Value()) })
	tl.Delta("delta", func() float64 { return float64(c.Value()) })
	tl.Rate("rate", func() float64 { return float64(c.Value()) })
	tl.RatioOfDeltas("ratio", func() float64 { return float64(c.Value()) }, func() float64 { return float64(c.Value()) })
	tl.Quantile("p99", &h, 0.99)
	clock := time.Duration(0)
	tl.SetClock(func() time.Duration { clock += time.Second; return clock })
	for i := uint64(0); i < 500; i++ {
		h.Observe(i)
	}
	if err := tl.Tick("interval"); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		c.Add(17)
		g.Set(int64(c.Value()))
		h.Observe(c.Value())
		if err := tl.Tick("interval"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state Tick allocates %.1f allocs/op, want 0", n)
	}
}
