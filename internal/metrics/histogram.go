package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of a Histogram: values 0–3 get
// exact buckets, every higher power of two is split into four sub-buckets
// (two mantissa bits), covering the full uint64 range in 4 + 4·62
// buckets. The relative width of every bucket is at most 25%.
const NumBuckets = 252

// Histogram is a log-bucketed histogram of uint64 samples (latencies in
// nanoseconds, sizes in bytes — the unit is the caller's). The zero value
// is ready to use. Observe is a few atomic adds into fixed storage: no
// locks, no allocation, safe for any number of concurrent writers — cheap
// enough for the owner-engine batch path.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// bucketIndex maps a sample to its bucket: exact for v < 4, then
// 4·(exp−1) + the two bits below the leading one.
func bucketIndex(v uint64) int {
	if v < 4 {
		return int(v)
	}
	e := bits.Len64(v) - 1 // position of the leading one, ≥ 2
	m := (v >> (uint(e) - 2)) & 3
	return 4*(e-1) + int(m)
}

// BucketBounds returns the inclusive sample range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i < 4 {
		return uint64(i), uint64(i)
	}
	e := uint(i/4 + 1)
	m := uint64(i % 4)
	lo = (4 + m) << (e - 2)
	hi = lo + 1<<(e-2) - 1
	return lo, hi
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// HistSnapshot is a point-in-time copy of a histogram's buckets. Snapshots
// subtract (Sub), which is how per-interval distributions are carved out
// of cumulative histograms; reusing one snapshot as the destination keeps
// the operation allocation-free.
type HistSnapshot struct {
	Counts [NumBuckets]uint64
	Count  uint64
	Sum    uint64
}

// Snapshot copies the histogram's current state into dst. Buckets are
// loaded one atomic at a time, so a snapshot taken under concurrent
// Observe calls may be mid-update across buckets; Count and Sum here are
// the raw totals, while quantile math uses the bucket sums so each
// snapshot is internally consistent.
func (h *Histogram) Snapshot(dst *HistSnapshot) {
	for i := range h.counts {
		dst.Counts[i] = h.counts[i].Load()
	}
	dst.Count = h.count.Load()
	dst.Sum = h.sum.Load()
}

// Sub subtracts an earlier snapshot in place, leaving the distribution of
// the samples observed between the two.
func (s *HistSnapshot) Sub(prev *HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] -= prev.Counts[i]
	}
	s.Count -= prev.Count
	s.Sum -= prev.Sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the snapshot's samples
// by walking the buckets and interpolating linearly inside the target
// bucket. With 25%-wide buckets the estimate is within ~12% of the true
// sample value. Returns 0 when the snapshot is empty.
func (s *HistSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for i := range s.Counts {
		total += s.Counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	cum := uint64(0)
	for i, n := range s.Counts {
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo, hi := BucketBounds(i)
			f := float64(target-cum) / float64(n)
			return float64(lo) + f*float64(hi-lo)
		}
		cum += n
	}
	return 0 // unreachable: target ≤ total
}

// Quantile estimates the q-quantile of all samples observed so far.
func (h *Histogram) Quantile(q float64) float64 {
	var s HistSnapshot
	h.Snapshot(&s)
	return s.Quantile(q)
}

// Summary condenses a histogram for JSON reporting (the admin /stats
// endpoint): totals, mean, and a few standard quantiles. Max is the upper
// bound of the highest non-empty bucket, so it overshoots the true
// maximum by at most the bucket width.
type Summary struct {
	Count uint64  `json:"count"`
	Sum   uint64  `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Summary returns the histogram's current summary.
func (h *Histogram) Summary() Summary {
	var s HistSnapshot
	h.Snapshot(&s)
	sum := Summary{Count: s.Count, Sum: s.Sum}
	if s.Count == 0 {
		return sum
	}
	sum.Mean = float64(s.Sum) / float64(s.Count)
	sum.P50 = s.Quantile(0.50)
	sum.P90 = s.Quantile(0.90)
	sum.P99 = s.Quantile(0.99)
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Counts[i] > 0 {
			_, hi := BucketBounds(i)
			sum.Max = float64(hi)
			break
		}
	}
	return sum
}
