package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTimelineScriptedClock pins the CSV format with a deterministic clock
// and hand-computed column values of every kind.
func TestTimelineScriptedClock(t *testing.T) {
	var b strings.Builder
	tl := NewTimeline(&b)
	ticks := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second}
	i := -1
	tl.SetClock(func() time.Duration { i++; return ticks[i] })

	var reqs, hits Counter
	var depth Gauge
	var lat Histogram
	tl.Value("outq", func() float64 { return float64(depth.Value()) })
	tl.Delta("requests", func() float64 { return float64(reqs.Value()) })
	tl.Rate("rps", func() float64 { return float64(reqs.Value()) })
	tl.RatioOfDeltas("hit_ratio", func() float64 { return float64(hits.Value()) }, func() float64 { return float64(reqs.Value()) })
	tl.Quantile("lat_p50", &lat, 0.5)

	reqs.Add(100)
	hits.Add(80)
	depth.Set(7)
	lat.Observe(2)
	lat.Observe(2)
	lat.Observe(2)
	if err := tl.Tick("interval"); err != nil {
		t.Fatal(err)
	}
	reqs.Add(50)
	hits.Add(10)
	depth.Set(3)
	lat.Observe(64) // bucket [64, 79]; a 1-sample interval quantile lands on hi
	if err := tl.Tick("rotation"); err != nil {
		t.Fatal(err)
	}
	// Third row: nothing changed → zero deltas, empty interval histogram.
	if err := tl.Tick("final"); err != nil {
		t.Fatal(err)
	}
	if err := tl.Err(); err != nil {
		t.Fatal(err)
	}

	want := `row,elapsed_s,reason,outq,requests,rps,hit_ratio,lat_p50
0,0.250,interval,7,100,400,0.8,2
1,0.500,rotation,3,50,200,0.2,79
2,1.000,final,3,0,0,0,0
`
	if got := b.String(); got != want {
		t.Fatalf("timeline mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestTimelineAddColAfterTick(t *testing.T) {
	tl := NewTimeline(&strings.Builder{})
	if err := tl.Tick("interval"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("adding a column after the first tick should panic")
		}
	}()
	tl.Value("late", func() float64 { return 0 })
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, &timeoutErr{}
}

type timeoutErr struct{}

func (*timeoutErr) Error() string { return "sink failed" }

func TestTimelineWriteError(t *testing.T) {
	w := &failWriter{}
	tl := NewTimeline(w)
	if err := tl.Tick("interval"); err == nil {
		t.Fatal("expected write error")
	}
	if tl.Err() == nil {
		t.Fatal("Err() should report the first write error")
	}
}

// TestTimelineStart drives the sampling goroutine with a real clock at a
// tiny interval and checks interval, rotation and final rows all appear.
func TestTimelineStart(t *testing.T) {
	var b strings.Builder
	var mu chanWriter
	mu.b = &b
	tl := NewTimeline(&mu)
	var reqs Counter
	tl.Delta("requests", func() float64 { return float64(reqs.Value()) })
	var rot Counter
	stop := tl.Start(20*time.Millisecond, func() float64 { return float64(rot.Value()) })

	time.Sleep(50 * time.Millisecond) // at least one interval row
	rot.Inc()                         // trigger a rotation row
	time.Sleep(30 * time.Millisecond)
	stop()

	out := mu.String()
	if !strings.Contains(out, ",interval,") {
		t.Errorf("no interval row in:\n%s", out)
	}
	if !strings.Contains(out, ",rotation,") {
		t.Errorf("no rotation row in:\n%s", out)
	}
	if !strings.Contains(out, ",final,") {
		t.Errorf("no final row in:\n%s", out)
	}
	if err := tl.Err(); err != nil {
		t.Fatal(err)
	}
}

// chanWriter guards a strings.Builder for the goroutine test (the sampler
// writes concurrently with the main goroutine's stop/read).
type chanWriter struct {
	mu sync.Mutex
	b  *strings.Builder
}

func (w *chanWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *chanWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}
