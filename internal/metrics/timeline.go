package metrics

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// Timeline records registered series as CSV rows over time: one row per
// tick, one column per registered reading. Rows carry a row index, the
// elapsed clock and the trigger reason, then the column values. Columns
// are point-in-time values, deltas since the previous row, per-second
// rates, ratios of deltas, or per-interval histogram quantiles — the
// shapes a time-resolved cache evaluation needs (hit ratio, throughput,
// queue depth, latency quantiles per interval).
//
// Ticks are explicit (Tick) or driven by Start's sampling goroutine,
// which emits a row every interval and additionally whenever the watched
// rotation counter changes, so window rotations land in the timeline at
// poll resolution. The clock is injectable (SetClock); with a scripted
// clock and explicit ticks a timeline file is bit-identical across runs,
// which is how the golden CSV test pins the format.
//
// Tick allocates nothing in steady state: the row is assembled in a
// reused buffer and written with one Write call. Timeline methods are
// safe for concurrent use; column registration must finish before the
// first tick (the header is written once).
type Timeline struct {
	mu      sync.Mutex
	w       io.Writer
	clock   func() time.Duration
	cols    []*column
	buf     []byte
	row     int
	lastT   time.Duration
	started bool
	err     error

	stop chan struct{}
	done chan struct{}
}

type colKind uint8

const (
	colValue colKind = iota
	colDelta
	colRate
	colRatio
	colQuantile
)

type column struct {
	name  string
	kind  colKind
	read  func() float64
	read2 func() float64 // ratio denominator
	last  float64
	last2 float64
	hist  *Histogram
	q     float64
	prev  HistSnapshot
	cur   HistSnapshot
	diff  HistSnapshot
}

// NewTimeline returns a timeline writing CSV rows to w. The default clock
// is wall time since this call.
func NewTimeline(w io.Writer) *Timeline {
	start := time.Now()
	return &Timeline{w: w, clock: func() time.Duration { return time.Since(start) }}
}

// SetClock replaces the timeline's clock (elapsed time since an arbitrary
// epoch). Call before the first tick; tests inject deterministic clocks.
func (t *Timeline) SetClock(fn func() time.Duration) {
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

func (t *Timeline) addCol(c *column) {
	t.mu.Lock()
	if t.started {
		t.mu.Unlock()
		panic("metrics: Timeline column added after first tick")
	}
	t.cols = append(t.cols, c)
	t.mu.Unlock()
}

// Value adds a point-in-time column (gauges: queue depth, cache fill).
func (t *Timeline) Value(name string, read func() float64) {
	t.addCol(&column{name: name, kind: colValue, read: read})
}

// Delta adds a column reporting the change in read since the previous row
// (per-interval request, eviction, rotation counts).
func (t *Timeline) Delta(name string, read func() float64) {
	t.addCol(&column{name: name, kind: colDelta, read: read})
}

// Rate adds a column reporting the change in read since the previous row
// divided by the elapsed seconds (throughput).
func (t *Timeline) Rate(name string, read func() float64) {
	t.addCol(&column{name: name, kind: colRate, read: read})
}

// RatioOfDeltas adds a column reporting Δnum/Δden across the interval (the
// per-interval hit ratio), 0 when the denominator did not move.
func (t *Timeline) RatioOfDeltas(name string, num, den func() float64) {
	t.addCol(&column{name: name, kind: colRatio, read: num, read2: den})
}

// Quantile adds a column reporting the q-quantile of the samples h
// observed during the interval (not cumulatively).
func (t *Timeline) Quantile(name string, h *Histogram, q float64) {
	t.addCol(&column{name: name, kind: colQuantile, hist: h, q: q})
}

// Err returns the first write error encountered by a tick.
func (t *Timeline) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Tick samples every column and appends one CSV row tagged with reason.
// The first call also writes the header. Baselines for delta, rate, ratio
// and quantile columns are primed at construction state, so the first
// row's deltas cover everything since the timeline was built.
func (t *Timeline) Tick(reason string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.started {
		t.started = true
		t.buf = append(t.buf[:0], "row,elapsed_s,reason"...)
		for _, c := range t.cols {
			t.buf = append(t.buf, ',')
			t.buf = append(t.buf, c.name...)
		}
		t.buf = append(t.buf, '\n')
		if err := t.flushRow(); err != nil {
			return err
		}
	}
	now := t.clock()
	dt := (now - t.lastT).Seconds()
	t.buf = strconv.AppendInt(t.buf[:0], int64(t.row), 10)
	t.buf = append(t.buf, ',')
	t.buf = strconv.AppendFloat(t.buf, now.Seconds(), 'f', 3, 64)
	t.buf = append(t.buf, ',')
	t.buf = append(t.buf, reason...)
	for _, c := range t.cols {
		t.buf = append(t.buf, ',')
		t.buf = strconv.AppendFloat(t.buf, c.sample(dt), 'g', -1, 64)
	}
	t.buf = append(t.buf, '\n')
	t.row++
	t.lastT = now
	return t.flushRow()
}

// flushRow writes the assembled buffer, recording the first error.
func (t *Timeline) flushRow() error {
	_, err := t.w.Write(t.buf)
	if err != nil && t.err == nil {
		t.err = err
	}
	return err
}

// sample reads one column's value for a row spanning dt seconds.
func (c *column) sample(dt float64) float64 {
	switch c.kind {
	case colValue:
		return c.read()
	case colDelta:
		v := c.read()
		d := v - c.last
		c.last = v
		return d
	case colRate:
		v := c.read()
		d := v - c.last
		c.last = v
		if dt <= 0 {
			return 0
		}
		return d / dt
	case colRatio:
		n, d := c.read(), c.read2()
		dn, dd := n-c.last, d-c.last2
		c.last, c.last2 = n, d
		if dd == 0 {
			return 0
		}
		return dn / dd
	default: // colQuantile
		c.hist.Snapshot(&c.cur)
		c.diff = c.cur
		c.diff.Sub(&c.prev)
		c.prev = c.cur
		return c.diff.Quantile(c.q)
	}
}

// Start launches the sampling goroutine: one row per interval, plus an
// immediate row whenever the rotations reading (typically the front's
// completed-window count; nil to disable) changes, observed at a quarter
// of the interval. The returned stop function emits a last row tagged
// "final" and waits for the goroutine to exit; it must be called at most
// once.
func (t *Timeline) Start(interval time.Duration, rotations func() float64) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	poll := interval / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t.mu.Lock()
	t.stop = make(chan struct{})
	t.done = make(chan struct{})
	stopCh, doneCh, clock := t.stop, t.done, t.clock
	t.mu.Unlock()
	go func() {
		defer close(doneCh)
		lastRot := 0.0
		if rotations != nil {
			lastRot = rotations()
		}
		lastRow := clock()
		ticker := time.NewTicker(poll)
		defer ticker.Stop()
		for {
			select {
			case <-stopCh:
				return
			case <-ticker.C:
				now := clock()
				if rotations != nil {
					if rot := rotations(); rot != lastRot {
						lastRot = rot
						lastRow = now
						_ = t.Tick("rotation")
						continue
					}
				}
				// The poll fires every interval/4; the half-poll slack keeps
				// a row from slipping a whole extra poll past its due time.
				if now-lastRow >= interval-poll/2 {
					lastRow = now
					_ = t.Tick("interval")
				}
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
		_ = t.Tick("final")
	}
}
