package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-longer", "22")
	tbl.AddNote("a note %d", 7)
	out := tbl.String()
	if !strings.Contains(out, "Demo\n====") {
		t.Errorf("missing title underline:\n%s", out)
	}
	for _, want := range []string{"name", "value", "alpha", "beta-longer", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Columns align: every data line has the value column at the same
	// offset as the header's.
	lines := strings.Split(out, "\n")
	var headerIdx int
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			headerIdx = i
			break
		}
	}
	col := strings.Index(lines[headerIdx], "value")
	if got := strings.Index(lines[headerIdx+2], "1"); got != col {
		t.Errorf("column misaligned: header at %d, cell at %d\n%s", col, got, out)
	}
}

func TestAddRowPadding(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.AddRow("only")
	tbl.AddRow("x", "y", "z", "extra-dropped")
	if len(tbl.Rows[0]) != 3 || len(tbl.Rows[1]) != 3 {
		t.Errorf("rows not normalised: %v", tbl.Rows)
	}
	if tbl.Rows[1][2] != "z" {
		t.Errorf("cell content wrong: %v", tbl.Rows[1])
	}
}

func TestMarkdown(t *testing.T) {
	tbl := NewTable("Figure X", "k", "v")
	tbl.AddRow("a", "1")
	tbl.AddNote("scaled 10x")
	md := tbl.Markdown()
	for _, want := range []string{"### Figure X", "| k | v |", "| --- | --- |", "| a | 1 |", "*scaled 10x*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.4567); got != "45.7%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0); got != "0.0%" {
		t.Errorf("Pct(0) = %q", got)
	}
	if got := Pct(1); got != "100.0%" {
		t.Errorf("Pct(1) = %q", got)
	}
}

func TestNum(t *testing.T) {
	cases := map[int]string{
		0:        "0",
		12:       "12",
		123:      "123",
		1234:     "1,234",
		1234567:  "1,234,567",
		-9876543: "-9,876,543",
	}
	for in, want := range cases {
		if got := Num(in); got != want {
			t.Errorf("Num(%d) = %q, want %q", in, got, want)
		}
	}
	if got := Num(uint64(1000)); got != "1,000" {
		t.Errorf("Num(uint64) = %q", got)
	}
}

func TestSci(t *testing.T) {
	if got := Sci(0); got != "0" {
		t.Errorf("Sci(0) = %q", got)
	}
	if got := Sci(1.234e-5); got != "1.23e-05" {
		t.Errorf("Sci = %q", got)
	}
}
