// Package report renders the aligned text tables and series that the
// experiment harness prints for each of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; it pads or truncates to the column count.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a free-form note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render renders the table to w. (It is not io.WriterTo: byte counts are
// uninteresting here, so only an error is returned.)
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown (used by
// cmd/experiments -md to write a report file).
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// Pct formats a ratio as a percentage with one decimal, e.g. "42.3%".
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Num formats an integer with thousands separators, e.g. "1,234,567".
func Num[T ~int | ~int64 | ~uint64 | ~uint32 | ~int32 | ~uint](v T) string {
	s := fmt.Sprintf("%d", v)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Sci formats a float in compact scientific-ish notation for priorities.
func Sci(x float64) string {
	if x == 0 {
		return "0"
	}
	return fmt.Sprintf("%.3g", x)
}
