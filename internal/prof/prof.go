// Package prof wires the standard runtime/pprof file profiles into a
// command's lifetime: Start begins a CPU profile if asked, and the returned
// stop function ends it and writes a heap profile. Commands pass their
// -cpuprofile/-memprofile flag values straight through; empty paths disable
// the respective profile.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling per the given file paths (empty = disabled). The
// returned stop function is safe to call exactly once, at exit; it stops
// the CPU profile and dumps the heap profile after a GC (so the heap
// profile reflects live objects, not transient garbage).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
