package tq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hint"
	"repro/internal/trace"
)

// testDict builds a dictionary with the standard write-hint vocabulary and
// returns it with the interned IDs.
func testDict() (d *hint.Dict, read, repl, rec, sync hint.ID) {
	d = hint.NewDict()
	read = d.Intern(hint.Make("reqtype", "read"))
	repl = d.Intern(hint.Make("reqtype", "repl-write"))
	rec = d.Intern(hint.Make("reqtype", "rec-write"))
	sync = d.Intern(hint.Make("reqtype", "sync-write"))
	return
}

func TestClassifierFromDict(t *testing.T) {
	d, read, repl, rec, sync := testDict()
	other := d.Intern(hint.Make("pool", "p0"))
	cl := ClassifierFromDict(d)
	cases := []struct {
		h    hint.ID
		op   trace.Op
		want Class
	}{
		{read, trace.Read, ClassNormal},
		{repl, trace.Write, ClassReplacement},
		{sync, trace.Write, ClassReplacement},
		{rec, trace.Write, ClassRecovery},
		{other, trace.Read, ClassNormal},
	}
	for _, tc := range cases {
		if got := cl(trace.Request{Hint: tc.h, Op: tc.op}); got != tc.want {
			t.Errorf("classify(%s) = %d, want %d", d.Key(tc.h), got, tc.want)
		}
	}
}

func TestClassifierNamespacedTypes(t *testing.T) {
	d := hint.NewDict()
	id := d.Intern(hint.Make("DB2_C60/reqtype", "repl-write"))
	cl := ClassifierFromDict(d)
	if got := cl(trace.Request{Hint: id, Op: trace.Write}); got != ClassReplacement {
		t.Errorf("namespaced reqtype classified as %d", got)
	}
}

func TestRecoveryWritesNotAdmitted(t *testing.T) {
	d, _, _, rec, _ := testDict()
	c := New(4, ClassifierFromDict(d))
	c.Access(trace.Request{Page: 1, Hint: rec, Op: trace.Write})
	if c.Len() != 0 {
		t.Error("recovery write was admitted")
	}
}

func TestReplacementWritesAdmitted(t *testing.T) {
	d, read, repl, _, _ := testDict()
	c := New(4, ClassifierFromDict(d))
	c.Access(trace.Request{Page: 1, Hint: repl, Op: trace.Write})
	if c.Len() != 1 {
		t.Fatal("replacement write not admitted")
	}
	if !c.Access(trace.Request{Page: 1, Hint: read, Op: trace.Read}) {
		t.Error("read of replacement-written page should hit")
	}
}

func TestRecoveryWriteLeavesStandingUntouched(t *testing.T) {
	d, read, _, rec, _ := testDict()
	c := New(2, ClassifierFromDict(d))
	c.Access(trace.Request{Page: 1, Hint: read, Op: trace.Read})
	c.Access(trace.Request{Page: 2, Hint: read, Op: trace.Read})
	// Recovery write to 1 must not refresh it; 1 stays LRU.
	c.Access(trace.Request{Page: 1, Hint: rec, Op: trace.Write})
	c.Access(trace.Request{Page: 3, Hint: read, Op: trace.Read}) // evicts RQ LRU
	if c.Access(trace.Request{Page: 1, Hint: read, Op: trace.Read}) {
		t.Error("page 1 should have been evicted (rec-write must not refresh)")
	}
}

func TestAdaptationGrowsWriteQueue(t *testing.T) {
	d, read, repl, _, _ := testDict()
	c := New(4, ClassifierFromDict(d))
	before := c.WTarget()
	// Fill the cache, then cause WQ ghost hits: write pages, force their
	// eviction with reads, then re-read them.
	for p := uint64(0); p < 4; p++ {
		c.Access(trace.Request{Page: p, Hint: repl, Op: trace.Write})
	}
	for p := uint64(100); p < 110; p++ {
		c.Access(trace.Request{Page: p, Hint: read, Op: trace.Read})
	}
	for p := uint64(0); p < 4; p++ {
		c.Access(trace.Request{Page: p, Hint: read, Op: trace.Read})
	}
	if c.WTarget() <= before {
		t.Errorf("WTarget did not grow after write-ghost hits: %d -> %d", before, c.WTarget())
	}
}

// TestInvariantsQuick property-tests the cache and ghost bounds.
func TestInvariantsQuick(t *testing.T) {
	d, read, repl, rec, sync := testDict()
	hints := []hint.ID{read, repl, rec, sync}
	f := func(seed int64, capRaw uint8) bool {
		capacity := 1 + int(capRaw%12)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity, ClassifierFromDict(d))
		for i := 0; i < 1000; i++ {
			h := hints[rng.Intn(len(hints))]
			op := trace.Write
			if h == read {
				op = trace.Read
			}
			c.Access(trace.Request{Page: uint64(rng.Intn(50)), Hint: h, Op: op})
			if c.Len() > capacity {
				return false
			}
			if c.gw.size > capacity || c.gr.size > capacity {
				return false
			}
			if c.WTarget() < 0 || c.WTarget() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCapacity(t *testing.T) {
	d, read, _, _, _ := testDict()
	c := New(0, ClassifierFromDict(d))
	for i := 0; i < 5; i++ {
		if c.Access(trace.Request{Page: 1, Hint: read, Op: trace.Read}) {
			t.Fatal("zero-capacity hit")
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	d, _, _, _, _ := testDict()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative capacity should panic")
			}
		}()
		New(-1, ClassifierFromDict(d))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil classifier should panic")
			}
		}()
		New(1, nil)
	}()
}
