// Package tq reimplements the TQ ("two queue") algorithm of Li, Aboulnaga,
// Salem, Sachedina & Gao (FAST '05), the state-of-the-art ad hoc
// hint-aware baseline the CLIC paper compares against (§6). TQ exploits one
// specific hint type — write hints — hard-coding two insights:
//
//   - Recovery writes flush pages that remain hot in the client's cache;
//     the client will not re-read them from the server soon, so they are
//     poor caching candidates and are not admitted.
//   - Replacement writes (including synchronous replacement writes) push
//     out pages the client is evicting; a future access must come back to
//     the server, so they are prime caching candidates and receive high
//     priority: a dedicated queue whose share of the cache adapts to the
//     observed payoff.
//
// The original implementation is not available, so this is a faithful
// reconstruction of its published behaviour: two cache queues — WQ for
// pages admitted by replacement writes, RQ for pages admitted by reads —
// with ghost (history) lists per queue that adapt the split, in the style
// of ARC's target-size adaptation. A re-read of a recently evicted WQ page
// is evidence that write-hinted pages deserve more space, and vice versa.
// This preserves every property the CLIC paper relies on: TQ gives
// replacement writes high priority (§3) and clearly outperforms
// hint-oblivious policies when write hints are informative, while CLIC can
// still beat it by exploiting hint types TQ ignores.
package tq

import (
	"repro/internal/hint"
	"repro/internal/policy"
	"repro/internal/trace"
)

// Class is the caching-value class TQ derives from a request's write hint.
type Class uint8

const (
	// ClassRecovery marks recovery writes: still hot in the client tier.
	ClassRecovery Class = iota
	// ClassNormal marks reads and requests without a usable write hint.
	ClassNormal
	// ClassReplacement marks replacement and synchronous writes.
	ClassReplacement
)

// Classifier maps a request to its class. TQ is hint-type-specific: the
// classifier encodes knowledge of the client's write-hint vocabulary,
// exactly the hard-coding CLIC exists to avoid.
type Classifier func(r trace.Request) Class

type where uint8

const (
	inWQ where = iota // cached, admitted by a replacement write
	inRQ              // cached, admitted by a read
	inGW              // ghost of an evicted WQ page
	inGR              // ghost of an evicted RQ page
)

type entry struct {
	page       uint64
	where      where
	prev, next *entry
}

type list struct {
	head, tail *entry
	size       int
}

func (l *list) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.size++
}

func (l *list) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.size--
}

// Cache is a TQ cache over page numbers.
type Cache struct {
	capacity int
	classify Classifier
	entries  map[uint64]*entry
	wq, rq   list // cached pages
	gw, gr   list // ghost histories
	wTarget  int  // adaptive target size for WQ
}

var _ policy.Policy = (*Cache)(nil)

// New returns a TQ cache holding up to capacity pages, classifying requests
// with classify.
func New(capacity int, classify Classifier) *Cache {
	if capacity < 0 {
		panic("tq: negative capacity")
	}
	if classify == nil {
		panic("tq: nil classifier")
	}
	return &Cache{
		capacity: capacity,
		classify: classify,
		entries:  make(map[uint64]*entry, 2*capacity),
		wTarget:  capacity / 2,
	}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "TQ" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return c.wq.size + c.rq.size }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// WTarget returns the current adaptive target for the write-hint queue
// (exported for tests and ablations).
func (c *Cache) WTarget() int { return c.wTarget }

// Access implements policy.Policy.
func (c *Cache) Access(r trace.Request) bool {
	if c.capacity == 0 {
		return false
	}
	cl := c.classify(r)
	if e, ok := c.entries[r.Page]; ok {
		switch e.where {
		case inWQ, inRQ:
			hit := r.Op == trace.Read
			c.refresh(e, cl)
			return hit
		case inGW:
			// A recently evicted write-hinted page proved its worth:
			// grow the write queue's share.
			c.wTarget = min(c.capacity, c.wTarget+max(1, c.gr.size/max(c.gw.size, 1)))
			c.gw.remove(e)
			delete(c.entries, e.page)
			c.adoptGhost(r.Page, cl)
			return false
		case inGR:
			c.wTarget = max(0, c.wTarget-max(1, c.gw.size/max(c.gr.size, 1)))
			c.gr.remove(e)
			delete(c.entries, e.page)
			c.adoptGhost(r.Page, cl)
			return false
		}
	}
	c.adoptNew(r.Page, cl)
	return false
}

// refresh repositions a cached page after a new request: the latest request
// re-determines which queue holds it. Recovery writes carry no reuse
// information, so they leave the page's standing untouched.
func (c *Cache) refresh(e *entry, cl Class) {
	switch cl {
	case ClassRecovery:
		return
	case ClassReplacement:
		c.queueOf(e.where).remove(e)
		e.where = inWQ
		c.wq.pushFront(e)
	default:
		c.queueOf(e.where).remove(e)
		e.where = inRQ
		c.rq.pushFront(e)
	}
}

// adoptGhost admits a page whose ghost was just hit.
func (c *Cache) adoptGhost(page uint64, cl Class) {
	if cl == ClassRecovery {
		return
	}
	c.makeRoom()
	c.insert(page, cl)
}

// adoptNew admits a brand-new page.
func (c *Cache) adoptNew(page uint64, cl Class) {
	if cl == ClassRecovery {
		// Not admitted: the client still holds this page.
		return
	}
	c.makeRoom()
	c.insert(page, cl)
}

func (c *Cache) insert(page uint64, cl Class) {
	e := &entry{page: page}
	if cl == ClassReplacement {
		e.where = inWQ
		c.wq.pushFront(e)
	} else {
		e.where = inRQ
		c.rq.pushFront(e)
	}
	c.entries[page] = e
}

// makeRoom evicts one cached page if the cache is full: from WQ when it
// exceeds its adaptive target (or RQ is empty), else from RQ. Victims leave
// a ghost entry; ghost lists are each bounded by the cache capacity.
func (c *Cache) makeRoom() {
	if c.wq.size+c.rq.size < c.capacity {
		return
	}
	if (c.wq.size > c.wTarget && c.wq.size > 0) || c.rq.size == 0 {
		v := c.wq.tail
		c.wq.remove(v)
		v.where = inGW
		c.gw.pushFront(v)
		if c.gw.size > c.capacity {
			g := c.gw.tail
			c.gw.remove(g)
			delete(c.entries, g.page)
		}
		return
	}
	v := c.rq.tail
	c.rq.remove(v)
	v.where = inGR
	c.gr.pushFront(v)
	if c.gr.size > c.capacity {
		g := c.gr.tail
		c.gr.remove(g)
		delete(c.entries, g.page)
	}
}

func (c *Cache) queueOf(w where) *list {
	switch w {
	case inWQ:
		return &c.wq
	case inRQ:
		return &c.rq
	case inGW:
		return &c.gw
	default:
		return &c.gr
	}
}

// ClassifierFromDict builds a Classifier by inspecting the hint dictionary
// for the write-hint vocabulary used by the workload generators in this
// repository (request type values "repl-write", "sync-write", "rec-write").
// Requests whose hint set carries none of these values are ClassNormal.
func ClassifierFromDict(d *hint.Dict) Classifier {
	classes := make([]Class, d.Len())
	for id := 0; id < d.Len(); id++ {
		classes[id] = classOfKey(d, hint.ID(id))
	}
	return func(r trace.Request) Class {
		if int(r.Hint) < len(classes) {
			return classes[r.Hint]
		}
		return ClassNormal
	}
}

func classOfKey(d *hint.Dict, id hint.ID) Class {
	set := d.Set(id)
	for _, f := range set {
		// Interleaved traces namespace types as "client/reqtype"; match on
		// the suffix so multi-client traces classify correctly too.
		if !hasSuffix(f.Type, "reqtype") {
			continue
		}
		switch f.Value {
		case "repl-write", "sync-write":
			return ClassReplacement
		case "rec-write":
			return ClassRecovery
		default:
			return ClassNormal
		}
	}
	return ClassNormal
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
