// Package fifo implements first-in-first-out replacement, the simplest
// baseline used by the ablation benches.
package fifo

import (
	"repro/internal/policy"
	"repro/internal/trace"
)

// Cache is a FIFO cache over page numbers.
type Cache struct {
	capacity int
	pages    map[uint64]struct{}
	order    []uint64 // ring buffer of insertion order
	headIdx  int
	size     int
}

var _ policy.Policy = (*Cache)(nil)

// New returns a FIFO cache holding up to capacity pages.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("fifo: negative capacity")
	}
	return &Cache{
		capacity: capacity,
		pages:    make(map[uint64]struct{}, capacity),
		order:    make([]uint64, capacity),
	}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "FIFO" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// Access implements policy.Policy.
func (c *Cache) Access(r trace.Request) bool {
	if _, ok := c.pages[r.Page]; ok {
		return r.Op == trace.Read
	}
	if c.capacity == 0 {
		return false
	}
	for c.size >= c.capacity {
		victim := c.order[c.headIdx]
		c.headIdx = (c.headIdx + 1) % c.capacity
		c.size--
		// The ring can contain stale entries for pages re-inserted after
		// eviction; only drop the page if this slot is its live entry.
		if _, ok := c.pages[victim]; ok {
			delete(c.pages, victim)
		}
	}
	c.pages[r.Page] = struct{}{}
	tail := (c.headIdx + c.size) % c.capacity
	c.order[tail] = r.Page
	c.size++
	return false
}
