package fifo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func read(p uint64) trace.Request { return trace.Request{Page: p, Op: trace.Read} }

func TestHitsDoNotReorder(t *testing.T) {
	c := New(3)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(3))
	for i := 0; i < 5; i++ {
		c.Access(read(1)) // hits must not protect 1 in FIFO
	}
	c.Access(read(4)) // evicts 1 regardless of its hits
	if c.Access(read(1)) {
		t.Error("FIFO retained a page because of hits")
	}
}

func TestReinsertionGetsFreshSlot(t *testing.T) {
	c := New(2)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(3)) // evicts 1
	c.Access(read(1)) // evicts 2; 1 re-enters at the tail
	if !c.Access(read(3)) {
		t.Error("page 3 should still be cached")
	}
	if !c.Access(read(1)) {
		t.Error("re-inserted page 1 should be cached")
	}
}

// TestRingMapAgreement property-tests that the ring window and the page map
// always describe the same set.
func TestRingMapAgreement(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := 1 + int(capRaw%10)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < 600; i++ {
			c.Access(read(uint64(rng.Intn(25))))
			if c.Len() > capacity || c.size != len(c.pages) {
				return false
			}
			// Every ring slot in the live window must be a cached page.
			for j := 0; j < c.size; j++ {
				p := c.order[(c.headIdx+j)%c.capacity]
				if _, ok := c.pages[p]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
