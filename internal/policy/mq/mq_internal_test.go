package mq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func read(p uint64) trace.Request { return trace.Request{Page: p, Op: trace.Read} }

func TestQueueForLog2(t *testing.T) {
	cases := map[uint64]int{
		1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 255: 7, 1 << 20: numQueues - 1,
	}
	for freq, want := range cases {
		if got := queueFor(freq); got != want {
			t.Errorf("queueFor(%d) = %d, want %d", freq, got, want)
		}
	}
}

func TestLifetimeDemotion(t *testing.T) {
	c := New(4)
	// Push a page into a high queue.
	for i := 0; i < 8; i++ {
		c.Access(read(1))
	}
	hi := c.entries[1].queue
	if hi < 2 {
		t.Fatalf("page in queue %d after 8 accesses", hi)
	}
	// Let its lifetime expire with unrelated traffic.
	for i := 0; i < 3*c.capacity; i++ {
		c.Access(read(uint64(100 + i%3)))
	}
	if e, ok := c.entries[1]; ok && e.queue >= 0 && e.queue >= hi {
		t.Errorf("page never demoted from queue %d (now %d)", hi, e.queue)
	}
}

// TestAccounting property-tests cached-count and ghost bounds.
func TestAccounting(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := 1 + int(capRaw%12)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < 900; i++ {
			c.Access(read(uint64(rng.Intn(40))))
			sum := 0
			for q := range c.queues {
				sum += c.queues[q].size
			}
			if sum != c.cached || sum > capacity {
				return false
			}
			if c.qout.size > capacity {
				return false
			}
			if len(c.entries) != sum+c.qout.size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
