// Package mq implements the Multi-Queue (MQ) replacement policy of Zhou,
// Chen & Li (IEEE TPDS '04), which was designed specifically for second-tier
// buffer caches (§7): m LRU queues partitioned by reference frequency, a
// per-page expiration time that demotes pages that stop being referenced,
// and a ghost buffer Qout remembering access counts of evicted pages.
package mq

import (
	"repro/internal/policy"
	"repro/internal/trace"
)

const numQueues = 8

type entry struct {
	page       uint64
	freq       uint64
	queue      int // 0..numQueues-1, or -1 when in Qout
	expire     uint64
	prev, next *entry
}

type list struct {
	head, tail *entry
	size       int
}

func (l *list) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.size++
}

func (l *list) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.size--
}

// Cache is an MQ cache over page numbers.
type Cache struct {
	capacity int
	lifeTime uint64 // queue residency time before demotion
	queues   [numQueues]list
	qout     list // ghost entries (bounded by capacity)
	entries  map[uint64]*entry
	cached   int
	now      uint64
}

var _ policy.Policy = (*Cache)(nil)

// New returns an MQ cache holding up to capacity pages. The lifeTime is set
// to the capacity, a common setting standing in for the peak temporal
// distance estimate the MQ paper computes online.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("mq: negative capacity")
	}
	lt := uint64(capacity)
	if lt == 0 {
		lt = 1
	}
	return &Cache{
		capacity: capacity,
		lifeTime: lt,
		entries:  make(map[uint64]*entry, 2*capacity),
	}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "MQ" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return c.cached }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// queueFor maps an access count to a queue index: floor(log2(freq)),
// saturating at the top queue.
func queueFor(freq uint64) int {
	q := 0
	for f := freq; f > 1 && q < numQueues-1; f >>= 1 {
		q++
	}
	return q
}

// Access implements policy.Policy.
func (c *Cache) Access(r trace.Request) bool {
	if c.capacity == 0 {
		return false
	}
	c.now++
	c.adjust()
	x := r.Page
	if e, ok := c.entries[x]; ok && e.queue >= 0 {
		// Cache hit: bump frequency, maybe move up a queue.
		c.queues[e.queue].remove(e)
		e.freq++
		e.queue = queueFor(e.freq)
		e.expire = c.now + c.lifeTime
		c.queues[e.queue].pushFront(e)
		return r.Op == trace.Read
	}
	// Miss. Remembered frequency from Qout, if any.
	freq := uint64(0)
	if e, ok := c.entries[x]; ok {
		freq = e.freq
		c.qout.remove(e)
		delete(c.entries, x)
	}
	if c.cached >= c.capacity {
		c.evict()
	}
	e := &entry{page: x, freq: freq + 1}
	e.queue = queueFor(e.freq)
	e.expire = c.now + c.lifeTime
	c.entries[x] = e
	c.queues[e.queue].pushFront(e)
	c.cached++
	return false
}

// adjust demotes the LRU page of each queue whose expiration time passed,
// implementing MQ's lifetime mechanism.
func (c *Cache) adjust() {
	for q := 1; q < numQueues; q++ {
		l := &c.queues[q]
		if l.tail != nil && l.tail.expire < c.now {
			e := l.tail
			l.remove(e)
			e.queue = q - 1
			e.expire = c.now + c.lifeTime
			c.queues[q-1].pushFront(e)
		}
	}
}

// evict removes the LRU page of the lowest non-empty queue, remembering its
// access count in Qout.
func (c *Cache) evict() {
	for q := 0; q < numQueues; q++ {
		l := &c.queues[q]
		if l.tail == nil {
			continue
		}
		v := l.tail
		l.remove(v)
		c.cached--
		v.queue = -1
		c.qout.pushFront(v)
		if c.qout.size > c.capacity {
			g := c.qout.tail
			c.qout.remove(g)
			delete(c.entries, g.page)
		}
		return
	}
}
