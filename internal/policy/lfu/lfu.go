// Package lfu implements in-cache least-frequently-used replacement with
// FIFO tie-breaking, an ablation baseline representing pure frequency-based
// policies. Frequency counts are per residency: they reset when a page is
// evicted, which is the classic in-cache LFU variant.
package lfu

import (
	"container/heap"

	"repro/internal/policy"
	"repro/internal/trace"
)

type entry struct {
	page    uint64
	freq    uint64
	seq     uint64 // insertion sequence, breaks frequency ties FIFO
	heapIdx int
}

type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].seq < h[j].seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIdx = i
	h[j].heapIdx = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*entry)
	e.heapIdx = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Cache is an LFU cache over page numbers.
type Cache struct {
	capacity int
	pages    map[uint64]*entry
	heap     entryHeap
	seq      uint64
}

var _ policy.Policy = (*Cache)(nil)

// New returns an LFU cache holding up to capacity pages.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("lfu: negative capacity")
	}
	return &Cache{capacity: capacity, pages: make(map[uint64]*entry, capacity)}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "LFU" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// Access implements policy.Policy.
func (c *Cache) Access(r trace.Request) bool {
	c.seq++
	if e, ok := c.pages[r.Page]; ok {
		e.freq++
		heap.Fix(&c.heap, e.heapIdx)
		return r.Op == trace.Read
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.pages) >= c.capacity {
		v := heap.Pop(&c.heap).(*entry)
		delete(c.pages, v.page)
	}
	e := &entry{page: r.Page, freq: 1, seq: c.seq}
	c.pages[r.Page] = e
	heap.Push(&c.heap, e)
	return false
}
