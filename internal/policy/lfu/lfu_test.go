package lfu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func read(p uint64) trace.Request { return trace.Request{Page: p, Op: trace.Read} }

func TestFrequencyTieBreaksFIFO(t *testing.T) {
	c := New(2)
	c.Access(read(1)) // freq 1, older
	c.Access(read(2)) // freq 1, newer
	c.Access(read(3)) // tie on freq: evict 1 (inserted first)
	if c.Access(read(1)) {
		t.Error("expected page 1 (older insertion) to be the victim")
	}
}

func TestFrequencyResetsOnEviction(t *testing.T) {
	c := New(2)
	for i := 0; i < 10; i++ {
		c.Access(read(1))
	}
	c.Access(read(2))
	c.Access(read(3)) // evicts 2 (freq 1)
	c.Access(read(2)) // evicts 3; 2 returns with freq 1, not freq 2
	c.Access(read(4)) // tie between 2 (freq 1) and ... 3 gone; victim must not be 1
	if !c.Access(read(1)) {
		t.Error("high-frequency page 1 evicted")
	}
}

// TestHeapMapAgreement property-tests heap/map consistency and the
// capacity bound.
func TestHeapMapAgreement(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := 1 + int(capRaw%10)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < 600; i++ {
			c.Access(read(uint64(rng.Intn(25))))
			if c.Len() > capacity || len(c.heap) != len(c.pages) {
				return false
			}
			for j, e := range c.heap {
				if e.heapIdx != j || c.pages[e.page] != e {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
