// Package policy defines the storage-server cache replacement policy
// interface shared by CLIC and every baseline the paper compares against
// (OPT, LRU, ARC, TQ — §6), plus the extra hint-oblivious policies from the
// related-work section (2Q, MQ, CLOCK, FIFO, LFU) used by the ablation
// benches.
package policy

import "repro/internal/trace"

// Policy is a server cache replacement policy driven one request at a time.
// Implementations are not safe for concurrent use; the simulator is
// single-threaded so runs are deterministic.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Access offers one request to the cache and reports whether it was a
	// read hit. Write requests never count as hits (the paper's metric is
	// the read hit ratio, §6), but they update cache state: every request,
	// read or write, is a caching opportunity (§3).
	Access(r trace.Request) bool
	// Len returns the number of pages currently cached.
	Len() int
	// Capacity returns the maximum number of cached pages.
	Capacity() int
}

// Preparer is implemented by offline policies (OPT) that must see the whole
// request sequence before simulation starts. The simulator calls Prepare
// exactly once, with the full trace, before the first Access.
type Preparer interface {
	Prepare(reqs []trace.Request)
}

// Constructor builds a policy instance for a given capacity. The simulator's
// sweep helpers work in terms of constructors.
type Constructor func(capacity int) Policy
