// Package lru implements least-recently-used replacement, the classic
// recency-based baseline. The paper expects it to do poorly at the second
// tier, where the client cache has absorbed most temporal locality (§1, §6).
package lru

import (
	"repro/internal/policy"
	"repro/internal/trace"
)

type entry struct {
	page       uint64
	prev, next *entry
}

// Cache is an LRU cache over page numbers. Both reads and writes refresh
// recency; misses (read or write) insert the page, evicting the LRU page.
type Cache struct {
	capacity int
	pages    map[uint64]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
}

var _ policy.Policy = (*Cache)(nil)

// New returns an LRU cache holding up to capacity pages.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("lru: negative capacity")
	}
	return &Cache{capacity: capacity, pages: make(map[uint64]*entry, capacity)}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "LRU" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return len(c.pages) }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// Access implements policy.Policy.
func (c *Cache) Access(r trace.Request) bool {
	if e, ok := c.pages[r.Page]; ok {
		c.moveToFront(e)
		return r.Op == trace.Read
	}
	if c.capacity == 0 {
		return false
	}
	if len(c.pages) >= c.capacity {
		c.evict()
	}
	e := &entry{page: r.Page}
	c.pages[r.Page] = e
	c.pushFront(e)
	return false
}

// Contains reports whether the page is cached, without touching recency.
func (c *Cache) Contains(page uint64) bool {
	_, ok := c.pages[page]
	return ok
}

func (c *Cache) evict() {
	v := c.tail
	c.remove(v)
	delete(c.pages, v.page)
}

func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *entry) {
	if c.head == e {
		return
	}
	c.remove(e)
	c.pushFront(e)
}
