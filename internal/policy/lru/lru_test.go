package lru

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func read(page uint64) trace.Request  { return trace.Request{Page: page, Op: trace.Read} }
func write(page uint64) trace.Request { return trace.Request{Page: page, Op: trace.Write} }

func TestBasicHitMiss(t *testing.T) {
	c := New(2)
	if c.Access(read(1)) {
		t.Error("first access cannot hit")
	}
	if !c.Access(read(1)) {
		t.Error("second read of cached page must hit")
	}
	if c.Access(write(1)) {
		t.Error("writes never count as hits")
	}
}

func TestEvictsLeastRecentlyUsed(t *testing.T) {
	c := New(2)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(1)) // 2 is now LRU
	c.Access(read(3)) // evicts 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Errorf("cache contents wrong: 1=%v 2=%v 3=%v",
			c.Contains(1), c.Contains(2), c.Contains(3))
	}
}

func TestWritesRefreshRecency(t *testing.T) {
	c := New(2)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(write(1)) // refreshes 1; 2 becomes LRU
	c.Access(read(3))
	if !c.Contains(1) || c.Contains(2) {
		t.Error("write did not refresh recency")
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	for i := 0; i < 10; i++ {
		if c.Access(read(uint64(i % 2))) {
			t.Fatal("zero-capacity cache cannot hit")
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestNameAndCapacity(t *testing.T) {
	c := New(7)
	if c.Name() != "LRU" || c.Capacity() != 7 {
		t.Errorf("Name=%q Capacity=%d", c.Name(), c.Capacity())
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

// TestCapacityInvariantQuick property-tests that Len never exceeds capacity
// under random access sequences.
func TestCapacityInvariantQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw % 20)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < 500; i++ {
			op := trace.Read
			if rng.Intn(2) == 0 {
				op = trace.Write
			}
			c.Access(trace.Request{Page: uint64(rng.Intn(40)), Op: op})
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestMatchesReferenceLRU property-tests this implementation against a
// simple slice-based reference model.
func TestMatchesReferenceLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(8)
		c := New(capacity)
		var ref []uint64 // front = MRU
		for i := 0; i < 400; i++ {
			p := uint64(rng.Intn(15))
			gotHit := c.Access(read(p))
			wantHit := false
			for j, q := range ref {
				if q == p {
					wantHit = true
					ref = append(ref[:j], ref[j+1:]...)
					break
				}
			}
			ref = append([]uint64{p}, ref...)
			if len(ref) > capacity {
				ref = ref[:capacity]
			}
			if gotHit != wantHit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(1024)
	rng := rand.New(rand.NewSource(1))
	pages := make([]uint64, 8192)
	for i := range pages {
		pages[i] = uint64(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(trace.Request{Page: pages[i%len(pages)], Op: trace.Read})
	}
}
