// Package clock implements the CLOCK (second-chance) approximation of LRU,
// included as an ablation baseline from the related-work family.
package clock

import (
	"repro/internal/policy"
	"repro/internal/trace"
)

type frame struct {
	page uint64
	ref  bool
	used bool
}

// Cache is a CLOCK cache over page numbers.
type Cache struct {
	capacity int
	frames   []frame
	index    map[uint64]int
	hand     int
	size     int
}

var _ policy.Policy = (*Cache)(nil)

// New returns a CLOCK cache holding up to capacity pages.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("clock: negative capacity")
	}
	return &Cache{
		capacity: capacity,
		frames:   make([]frame, capacity),
		index:    make(map[uint64]int, capacity),
	}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "CLOCK" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return c.size }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// Access implements policy.Policy.
func (c *Cache) Access(r trace.Request) bool {
	if i, ok := c.index[r.Page]; ok {
		c.frames[i].ref = true
		return r.Op == trace.Read
	}
	if c.capacity == 0 {
		return false
	}
	slot := c.findSlot()
	if c.frames[slot].used {
		delete(c.index, c.frames[slot].page)
		c.size--
	}
	c.frames[slot] = frame{page: r.Page, ref: true, used: true}
	c.index[r.Page] = slot
	c.size++
	return false
}

// findSlot advances the hand, clearing reference bits, until it lands on an
// unused frame or a frame with a clear reference bit.
func (c *Cache) findSlot() int {
	for {
		f := &c.frames[c.hand]
		slot := c.hand
		c.hand = (c.hand + 1) % c.capacity
		if !f.used || !f.ref {
			return slot
		}
		f.ref = false
	}
}
