package clock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func read(p uint64) trace.Request { return trace.Request{Page: p, Op: trace.Read} }

func TestSecondChanceProtects(t *testing.T) {
	c := New(3)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(3))
	// All reference bits are set, so this sweep degenerates to FIFO: it
	// clears every bit and evicts page 1 (the frame under the hand).
	c.Access(read(4))
	// Re-reference page 2 so only its bit is set.
	if !c.Access(read(2)) {
		t.Fatal("page 2 should still be cached")
	}
	// Next eviction must spare the referenced page 2 and take page 3.
	c.Access(read(5))
	if !c.Access(read(2)) {
		t.Error("referenced page did not get its second chance")
	}
	if c.Access(read(3)) {
		t.Error("unreferenced page 3 should have been the victim")
	}
}

func TestHandWrapsDeterministically(t *testing.T) {
	a, b := New(4), New(4)
	rng1 := rand.New(rand.NewSource(3))
	rng2 := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		ra := a.Access(read(uint64(rng1.Intn(12))))
		rb := b.Access(read(uint64(rng2.Intn(12))))
		if ra != rb {
			t.Fatalf("divergence at step %d", i)
		}
	}
}

// TestFrameAccounting property-tests size bookkeeping and the index map.
func TestFrameAccounting(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := 1 + int(capRaw%10)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < 600; i++ {
			c.Access(read(uint64(rng.Intn(30))))
			if c.Len() > capacity || c.Len() != len(c.index) {
				return false
			}
			for page, slot := range c.index {
				if !c.frames[slot].used || c.frames[slot].page != page {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
