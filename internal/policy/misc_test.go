// Package policy's test file exercises the smaller related-work baselines
// (FIFO, CLOCK, LFU, 2Q, MQ) through the shared Policy interface, plus
// cross-policy sanity properties.
package policy_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/policy"
	"repro/internal/policy/clock"
	"repro/internal/policy/fifo"
	"repro/internal/policy/lfu"
	"repro/internal/policy/mq"
	"repro/internal/policy/twoq"
	"repro/internal/trace"
)

func read(p uint64) trace.Request { return trace.Request{Page: p, Op: trace.Read} }

var constructors = map[string]policy.Constructor{
	"FIFO":  func(c int) policy.Policy { return fifo.New(c) },
	"CLOCK": func(c int) policy.Policy { return clock.New(c) },
	"LFU":   func(c int) policy.Policy { return lfu.New(c) },
	"2Q":    func(c int) policy.Policy { return twoq.New(c) },
	"MQ":    func(c int) policy.Policy { return mq.New(c) },
}

func TestNames(t *testing.T) {
	for want, mk := range constructors {
		if got := mk(4).Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestBasicHitSemantics(t *testing.T) {
	for name, mk := range constructors {
		c := mk(4)
		if c.Access(read(1)) {
			t.Errorf("%s: cold access hit", name)
		}
		if !c.Access(read(1)) {
			t.Errorf("%s: warm read missed", name)
		}
		if c.Access(trace.Request{Page: 1, Op: trace.Write}) {
			t.Errorf("%s: write counted as hit", name)
		}
	}
}

// TestCapacityInvariantQuick property-tests that no policy ever caches more
// pages than its capacity.
func TestCapacityInvariantQuick(t *testing.T) {
	for name, mk := range constructors {
		mk := mk
		f := func(seed int64, capRaw uint8) bool {
			capacity := 1 + int(capRaw%16)
			rng := rand.New(rand.NewSource(seed))
			c := mk(capacity)
			for i := 0; i < 800; i++ {
				op := trace.Read
				if rng.Intn(4) == 0 {
					op = trace.Write
				}
				c.Access(trace.Request{Page: uint64(rng.Intn(64)), Op: op})
				if c.Len() > capacity {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestSmallWorkingSetAllHit: once a working set smaller than the cache has
// been touched, every policy must serve it entirely from cache.
func TestSmallWorkingSetAllHit(t *testing.T) {
	for name, mk := range constructors {
		c := mk(16)
		for round := 0; round < 4; round++ {
			for p := uint64(0); p < 8; p++ {
				c.Access(read(p))
			}
		}
		for p := uint64(0); p < 8; p++ {
			if !c.Access(read(p)) {
				t.Errorf("%s: page %d missed with working set half the cache", name, p)
			}
		}
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	c := fifo.New(2)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(1)) // hit; FIFO order unchanged
	c.Access(read(3)) // evicts 1 (first in), not 2
	if c.Access(read(1)) {
		t.Error("FIFO should have evicted page 1")
	}
}

func TestCLOCKSecondChance(t *testing.T) {
	c := clock.New(2)
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(1)) // sets 1's reference bit (already set on insert)
	c.Access(read(3)) // hand sweeps: clears bits, evicts one page
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLFUKeepsFrequent(t *testing.T) {
	c := lfu.New(2)
	for i := 0; i < 5; i++ {
		c.Access(read(1))
	}
	c.Access(read(2))
	c.Access(read(3)) // evicts 2 (freq 1), never 1 (freq 5)
	if !c.Access(read(1)) {
		t.Error("LFU evicted the most frequent page")
	}
	if c.Access(read(2)) {
		t.Error("LFU kept a once-used page over insertion")
	}
}

func TestTwoQPromotionThroughGhost(t *testing.T) {
	c := twoq.New(4) // Kin = 1, Kout = 2
	// Page 1 enters A1in, gets pushed out to A1out by later inserts, and a
	// re-read must promote it to Am.
	c.Access(read(1))
	c.Access(read(2))
	c.Access(read(3))
	c.Access(read(4))
	c.Access(read(5)) // cache full: A1in overflows, oldest go to ghost
	// Page 1 should be a ghost now; touching it promotes to Am (a miss).
	if c.Access(read(1)) {
		t.Log("page 1 still cached (acceptable depending on Kin); skipping ghost check")
		return
	}
	// Now cached in Am: re-read hits.
	if !c.Access(read(1)) {
		t.Error("ghost promotion to Am failed")
	}
}

func TestMQFrequencyQueues(t *testing.T) {
	c := mq.New(4)
	// Build a frequent page.
	for i := 0; i < 16; i++ {
		c.Access(read(1))
	}
	// Stream one-shot pages; the frequent page should survive.
	for p := uint64(10); p < 30; p++ {
		c.Access(read(p))
	}
	if !c.Access(read(1)) {
		t.Error("MQ evicted a frequent page in favour of one-shot pages")
	}
}

func TestMQGhostRemembersFrequency(t *testing.T) {
	c := mq.New(2)
	for i := 0; i < 8; i++ {
		c.Access(read(1))
	}
	// Evict 1 with new pages.
	c.Access(read(2))
	c.Access(read(3))
	c.Access(read(4))
	// 1 returns: its remembered count should place it in a high queue.
	c.Access(read(1))
	c.Access(read(5))
	c.Access(read(6))
	if !c.Access(read(1)) {
		t.Error("MQ did not prioritise a page with remembered high frequency")
	}
}

func TestConstructorsPanicOnNegative(t *testing.T) {
	for name, mk := range constructors {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative capacity should panic", name)
				}
			}()
			mk(-1)
		}()
	}
}
