// Package opt implements the optimal off-line MIN algorithm (Belady, 1966)
// as the paper uses it (§6): "it replaces the cached page that will not be
// read for the longest time", so write re-references do not count as reuse.
// The policy is allowed to bypass the cache — not caching a page is
// equivalent to caching it and evicting it immediately, and bypassing the
// farthest-read page is exactly what MIN's eviction rule chooses — so the
// resulting read hit ratio upper-bounds every on-line policy in this
// repository.
//
// OPT requires the whole request sequence in advance; it implements
// policy.Preparer and the simulator calls Prepare before the run.
package opt

import (
	"container/heap"
	"math"

	"repro/internal/policy"
	"repro/internal/trace"
)

// Cache is the off-line MIN policy.
type Cache struct {
	capacity int
	nextRead []int64 // per request index: index of next read of same page
	pos      int     // index of the next request to be processed
	cached   map[uint64]int64
	h        victimHeap // lazy max-heap of (page, nextRead) candidates
}

var (
	_ policy.Policy   = (*Cache)(nil)
	_ policy.Preparer = (*Cache)(nil)
)

const never = int64(math.MaxInt64)

// New returns a MIN cache holding up to capacity pages. Prepare must be
// called with the full trace before the first Access.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("opt: negative capacity")
	}
	return &Cache{capacity: capacity, cached: make(map[uint64]int64, capacity)}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "OPT" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return len(c.cached) }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// Prepare computes, for every request index i, the index of the next read
// of the same page strictly after i (or "never"). One backward pass.
func (c *Cache) Prepare(reqs []trace.Request) {
	c.nextRead = make([]int64, len(reqs))
	lastRead := make(map[uint64]int64, 1<<16)
	for i := len(reqs) - 1; i >= 0; i-- {
		p := reqs[i].Page
		if nr, ok := lastRead[p]; ok {
			c.nextRead[i] = nr
		} else {
			c.nextRead[i] = never
		}
		if reqs[i].Op == trace.Read {
			lastRead[p] = int64(i)
		}
	}
	c.pos = 0
}

// Access implements policy.Policy. Requests must be fed in exactly the
// order given to Prepare.
func (c *Cache) Access(r trace.Request) bool {
	if c.nextRead == nil || c.pos >= len(c.nextRead) {
		panic("opt: Access without matching Prepare")
	}
	i := c.pos
	c.pos++
	next := c.nextRead[i]
	p := r.Page

	if _, ok := c.cached[p]; ok {
		c.cached[p] = next
		// Push even when next == never: such pages must surface at the top
		// of the max-heap so they are the first victims, not unevictable
		// residents.
		heap.Push(&c.h, victim{page: p, next: next})
		return r.Op == trace.Read
	}
	if c.capacity == 0 || next == never {
		// Never read again: caching cannot produce a future read hit.
		return false
	}
	if len(c.cached) < c.capacity {
		c.cached[p] = next
		heap.Push(&c.h, victim{page: p, next: next})
		return false
	}
	// Full: find the cached page with the farthest next read, skipping
	// stale heap entries.
	for len(c.h) > 0 {
		top := c.h[0]
		cur, ok := c.cached[top.page]
		if !ok || cur != top.next {
			heap.Pop(&c.h) // stale
			continue
		}
		if top.next <= next {
			// Every cached page is read sooner than the incoming page:
			// bypass (equivalent to caching and immediately evicting it).
			return false
		}
		heap.Pop(&c.h)
		delete(c.cached, top.page)
		c.cached[p] = next
		heap.Push(&c.h, victim{page: p, next: next})
		return false
	}
	// Heap exhausted (all cached pages have no future reads — possible only
	// transiently): evict arbitrarily by replacing one map entry.
	for old := range c.cached {
		delete(c.cached, old)
		break
	}
	c.cached[p] = next
	heap.Push(&c.h, victim{page: p, next: next})
	return false
}

type victim struct {
	page uint64
	next int64
}

// victimHeap is a max-heap by next read position.
type victimHeap []victim

func (h victimHeap) Len() int           { return len(h) }
func (h victimHeap) Less(i, j int) bool { return h[i].next > h[j].next }
func (h victimHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *victimHeap) Push(x any)        { *h = append(*h, x.(victim)) }
func (h *victimHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
