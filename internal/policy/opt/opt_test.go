package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/policy/lru"
	"repro/internal/trace"
)

func randomTrace(seed int64, n, pages int, writeFrac float64) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]trace.Request, n)
	for i := range reqs {
		op := trace.Read
		if rng.Float64() < writeFrac {
			op = trace.Write
		}
		reqs[i] = trace.Request{Page: uint64(rng.Intn(pages)), Op: op}
	}
	return reqs
}

func runOPT(capacity int, reqs []trace.Request) int {
	c := New(capacity)
	c.Prepare(reqs)
	hits := 0
	for _, r := range reqs {
		if c.Access(r) {
			hits++
		}
	}
	return hits
}

// slowOPT is a brute-force Belady MIN used as a reference model.
type slowOPT struct {
	capacity int
	nextRead []int64
	pos      int
	cached   map[uint64]int64
}

func (s *slowOPT) prepare(reqs []trace.Request) {
	s.cached = make(map[uint64]int64)
	s.nextRead = make([]int64, len(reqs))
	last := map[uint64]int64{}
	for i := len(reqs) - 1; i >= 0; i-- {
		if nr, ok := last[reqs[i].Page]; ok {
			s.nextRead[i] = nr
		} else {
			s.nextRead[i] = math.MaxInt64
		}
		if reqs[i].Op == trace.Read {
			last[reqs[i].Page] = int64(i)
		}
	}
}

func (s *slowOPT) access(r trace.Request) bool {
	i := s.pos
	s.pos++
	next := s.nextRead[i]
	if _, ok := s.cached[r.Page]; ok {
		s.cached[r.Page] = next
		return r.Op == trace.Read
	}
	if s.capacity == 0 || next == math.MaxInt64 {
		return false
	}
	if len(s.cached) < s.capacity {
		s.cached[r.Page] = next
		return false
	}
	var vp uint64
	vn := int64(-1)
	for p, n := range s.cached {
		if n > vn {
			vn, vp = n, p
		}
	}
	if vn <= next {
		return false
	}
	delete(s.cached, vp)
	s.cached[r.Page] = next
	return false
}

func TestKnownSequence(t *testing.T) {
	// Belady's classic example: with capacity 2 and sequence
	// 1 2 3 1 2, caching 1 and 2 (bypassing 3) yields 2 hits.
	reqs := []trace.Request{
		{Page: 1, Op: trace.Read},
		{Page: 2, Op: trace.Read},
		{Page: 3, Op: trace.Read},
		{Page: 1, Op: trace.Read},
		{Page: 2, Op: trace.Read},
	}
	if hits := runOPT(2, reqs); hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
}

func TestWriteReReferenceNotAHit(t *testing.T) {
	// A page whose only future request is a write gives no caching benefit;
	// OPT must prefer pages with future reads.
	reqs := []trace.Request{
		{Page: 1, Op: trace.Read},
		{Page: 2, Op: trace.Read},
		{Page: 1, Op: trace.Write},
		{Page: 2, Op: trace.Read},
	}
	// Capacity 1: the only hit available is the read of 2 at the end.
	if hits := runOPT(1, reqs); hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

// TestMatchesBruteForceQuick property-tests the heap implementation against
// the brute-force reference on random traces.
func TestMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64, capRaw, pagesRaw uint8) bool {
		capacity := int(capRaw % 12)
		pages := 1 + int(pagesRaw%40)
		reqs := randomTrace(seed, 600, pages, 0.4)
		fast := runOPT(capacity, reqs)
		slow := &slowOPT{capacity: capacity}
		slow.prepare(reqs)
		slowHits := 0
		for _, r := range reqs {
			if slow.access(r) {
				slowHits++
			}
		}
		return fast == slowHits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestDominatesLRUQuick property-tests OPT's optimality against LRU.
func TestDominatesLRUQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw % 16)
		reqs := randomTrace(seed, 800, 30, 0.3)
		optHits := runOPT(capacity, reqs)
		l := lru.New(capacity)
		lruHits := 0
		for _, r := range reqs {
			if l.Access(r) {
				lruHits++
			}
		}
		return optHits >= lruHits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestNoZombiePages is a regression test: pages whose next read becomes
// "never" while cached must remain evictable. Before the fix, such pages
// permanently occupied the cache, and OPT's hit count plateaued on long
// write-heavy traces.
func TestNoZombiePages(t *testing.T) {
	var reqs []trace.Request
	// Phase 1: pages 1, 2 are read twice each (they get cached, and after
	// their last read their next read is "never").
	for _, p := range []uint64{1, 2, 1, 2} {
		reqs = append(reqs, trace.Request{Page: p, Op: trace.Read})
	}
	// Phase 2: pages 3, 4 are each read twice. With capacity 2, OPT must
	// evict the dead pages 1 and 2 to hit on 3 and 4.
	for _, p := range []uint64{3, 4, 3, 4} {
		reqs = append(reqs, trace.Request{Page: p, Op: trace.Read})
	}
	if hits := runOPT(2, reqs); hits != 4 {
		t.Errorf("hits = %d, want 4 (zombie pages blocked eviction)", hits)
	}
}

func TestNeverReadPagesBypassed(t *testing.T) {
	c := New(4)
	reqs := []trace.Request{
		{Page: 1, Op: trace.Write},
		{Page: 2, Op: trace.Read},
		{Page: 2, Op: trace.Read},
	}
	c.Prepare(reqs)
	c.Access(reqs[0])
	if c.Len() != 0 {
		t.Error("page with no future read was cached")
	}
}

func TestAccessWithoutPreparePanics(t *testing.T) {
	c := New(2)
	defer func() {
		if recover() == nil {
			t.Error("Access without Prepare should panic")
		}
	}()
	c.Access(trace.Request{Page: 1, Op: trace.Read})
}

func TestZeroCapacity(t *testing.T) {
	reqs := randomTrace(1, 100, 5, 0.2)
	if hits := runOPT(0, reqs); hits != 0 {
		t.Errorf("zero capacity produced %d hits", hits)
	}
}

func BenchmarkAccess(b *testing.B) {
	reqs := randomTrace(1, 100000, 4096, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOPT(1024, reqs)
	}
}
