package twoq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func read(p uint64) trace.Request { return trace.Request{Page: p, Op: trace.Read} }

func TestTuningDefaults(t *testing.T) {
	c := New(100)
	if c.kin != 25 || c.kout != 50 {
		t.Errorf("kin=%d kout=%d, want 25, 50", c.kin, c.kout)
	}
	small := New(2)
	if small.kin < 1 || small.kout < 1 {
		t.Errorf("tiny cache tuning degenerate: kin=%d kout=%d", small.kin, small.kout)
	}
}

func TestA1inHitsDoNotPromote(t *testing.T) {
	c := New(8)
	c.Access(read(1))
	if e := c.entries[1]; e.where != inA1in {
		t.Fatalf("fresh page in %v, want A1in", e.where)
	}
	c.Access(read(1)) // correlated reference: stays in A1in
	if e := c.entries[1]; e.where != inA1in {
		t.Errorf("A1in hit promoted the page to %v", e.where)
	}
}

// TestListAccounting property-tests that the entries map always equals the
// union of the four lists and the ghost bound holds.
func TestListAccounting(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := 2 + int(capRaw%14)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < 900; i++ {
			c.Access(read(uint64(rng.Intn(50))))
			if len(c.entries) != c.a1in.size+c.am.size+c.a1out.size {
				return false
			}
			if c.a1out.size > c.kout {
				return false
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
