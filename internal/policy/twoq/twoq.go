// Package twoq implements the 2Q replacement policy (Johnson & Shasha,
// VLDB '94), a related-work baseline (§7): a FIFO probation queue A1in, a
// ghost queue A1out, and a main LRU queue Am. Pages prove reuse by being
// re-referenced while in A1out before earning a slot in Am.
package twoq

import (
	"repro/internal/policy"
	"repro/internal/trace"
)

type where uint8

const (
	inA1in where = iota
	inA1out
	inAm
)

type entry struct {
	page       uint64
	where      where
	prev, next *entry
}

type list struct {
	head, tail *entry
	size       int
}

func (l *list) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.size++
}

func (l *list) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.size--
}

// Cache is a 2Q cache over page numbers.
type Cache struct {
	capacity int
	kin      int // max A1in size (cached)
	kout     int // max A1out size (ghosts)
	entries  map[uint64]*entry
	a1in     list
	a1out    list
	am       list
}

var _ policy.Policy = (*Cache)(nil)

// New returns a 2Q cache holding up to capacity pages, with the
// recommended tuning Kin = capacity/4 and Kout = capacity/2.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("twoq: negative capacity")
	}
	kin := capacity / 4
	if kin < 1 && capacity > 0 {
		kin = 1
	}
	kout := capacity / 2
	if kout < 1 && capacity > 0 {
		kout = 1
	}
	return &Cache{
		capacity: capacity,
		kin:      kin,
		kout:     kout,
		entries:  make(map[uint64]*entry, 2*capacity),
	}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "2Q" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return c.a1in.size + c.am.size }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// Access implements policy.Policy.
func (c *Cache) Access(r trace.Request) bool {
	if c.capacity == 0 {
		return false
	}
	x := r.Page
	if e, ok := c.entries[x]; ok {
		switch e.where {
		case inAm:
			c.am.remove(e)
			c.am.pushFront(e)
			return r.Op == trace.Read
		case inA1in:
			// 2Q leaves A1in hits in place: correlated references do not
			// earn promotion.
			return r.Op == trace.Read
		case inA1out:
			// Reuse after probation: promote to Am. Unlink from the ghost
			// list first — makeRoom may trim A1out, and it must not be able
			// to trim the entry being promoted.
			c.a1out.remove(e)
			c.makeRoom()
			e.where = inAm
			c.am.pushFront(e)
			return false
		}
	}
	c.makeRoom()
	e := &entry{page: x, where: inA1in}
	c.entries[x] = e
	c.a1in.pushFront(e)
	return false
}

// makeRoom frees one cached slot if the cache is full, per the 2Q
// reclamation rule: overflow A1in into A1out first, otherwise evict from Am.
func (c *Cache) makeRoom() {
	if c.a1in.size+c.am.size < c.capacity {
		return
	}
	if c.a1in.size > c.kin && c.a1in.size > 0 {
		v := c.a1in.tail
		c.a1in.remove(v)
		v.where = inA1out
		c.a1out.pushFront(v)
		if c.a1out.size > c.kout {
			g := c.a1out.tail
			c.a1out.remove(g)
			delete(c.entries, g.page)
		}
		return
	}
	if c.am.size > 0 {
		v := c.am.tail
		c.am.remove(v)
		delete(c.entries, v.page)
		return
	}
	// Am is empty: evict from A1in regardless of Kin.
	v := c.a1in.tail
	c.a1in.remove(v)
	v.where = inA1out
	c.a1out.pushFront(v)
	if c.a1out.size > c.kout {
		g := c.a1out.tail
		c.a1out.remove(g)
		delete(c.entries, g.page)
	}
}
