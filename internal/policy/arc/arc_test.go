package arc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func read(page uint64) trace.Request { return trace.Request{Page: page, Op: trace.Read} }

func TestBasicHitMiss(t *testing.T) {
	c := New(4)
	if c.Access(read(1)) {
		t.Error("cold miss reported as hit")
	}
	if !c.Access(read(1)) {
		t.Error("re-read must hit")
	}
	if c.Access(trace.Request{Page: 1, Op: trace.Write}) {
		t.Error("write hits must not count")
	}
}

func TestFrequencyPromotion(t *testing.T) {
	c := New(2)
	c.Access(read(1)) // T1
	c.Access(read(1)) // promoted to T2
	c.Access(read(2)) // T1
	c.Access(read(3)) // T1 full: should evict 2 (T1), keep 1 (T2)
	if !c.Access(read(1)) {
		t.Error("frequent page was evicted before one-shot pages")
	}
}

func TestScanResistance(t *testing.T) {
	c := New(8)
	// Establish a working set with repeated accesses.
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 4; p++ {
			c.Access(read(p))
		}
	}
	// A long one-shot scan should not flush the whole working set.
	for p := uint64(100); p < 200; p++ {
		c.Access(read(p))
	}
	hits := 0
	for p := uint64(0); p < 4; p++ {
		if c.Access(read(p)) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("ARC kept no frequent pages through a scan; LRU-like behaviour")
	}
}

// TestInvariantsQuick property-tests the ARC size invariants from the
// FAST '03 paper: |T1|+|T2| <= c, |T1|+|B1| <= c, total directory <= 2c,
// and 0 <= p <= c.
func TestInvariantsQuick(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := 1 + int(capRaw%16)
		rng := rand.New(rand.NewSource(seed))
		c := New(capacity)
		for i := 0; i < 1000; i++ {
			op := trace.Read
			if rng.Intn(4) == 0 {
				op = trace.Write
			}
			c.Access(trace.Request{Page: uint64(rng.Intn(60)), Op: op})
			if c.t1.size+c.t2.size > capacity {
				return false
			}
			if c.t1.size+c.b1.size > capacity {
				return false
			}
			if c.t1.size+c.t2.size+c.b1.size+c.b2.size > 2*capacity {
				return false
			}
			if c.p < 0 || c.p > capacity {
				return false
			}
			if c.Len() != c.t1.size+c.t2.size {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEntriesMapConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(8)
	for i := 0; i < 5000; i++ {
		c.Access(read(uint64(rng.Intn(50))))
	}
	count := 0
	for range c.entries {
		count++
	}
	want := c.t1.size + c.t2.size + c.b1.size + c.b2.size
	if count != want {
		t.Errorf("entries map has %d, lists have %d", count, want)
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	for i := 0; i < 10; i++ {
		if c.Access(read(1)) {
			t.Fatal("zero-capacity hit")
		}
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1) should panic")
		}
	}()
	New(-1)
}

func BenchmarkAccess(b *testing.B) {
	c := New(1024)
	rng := rand.New(rand.NewSource(1))
	pages := make([]uint64, 8192)
	for i := range pages {
		pages[i] = uint64(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(trace.Request{Page: pages[i%len(pages)], Op: trace.Read})
	}
}
