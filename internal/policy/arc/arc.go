// Package arc implements ARC (Adaptive Replacement Cache), Megiddo & Modha,
// FAST '03 — the paper's strongest hint-oblivious baseline (§6). ARC
// balances recency (T1) and frequency (T2) using ghost lists (B1, B2) to
// adapt the target size p of T1.
//
// Note on accounting: as in the paper's experiments (§6.1), ARC's ghost
// lists are extra metadata comparable to CLIC's outqueue, but ARC's cache is
// not shrunk to compensate — the paper deliberately gives ARC a small space
// advantage.
package arc

import (
	"repro/internal/policy"
	"repro/internal/trace"
)

type listID uint8

const (
	inT1 listID = iota
	inT2
	inB1
	inB2
)

type entry struct {
	page       uint64
	where      listID
	prev, next *entry
}

// list is an intrusive LRU list; head is MRU, tail is LRU.
type list struct {
	head, tail *entry
	size       int
}

func (l *list) pushFront(e *entry) {
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.size++
}

func (l *list) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next = nil, nil
	l.size--
}

// Cache is an ARC cache over page numbers.
type Cache struct {
	capacity int
	p        int // target size of T1
	entries  map[uint64]*entry
	t1, t2   list // cached pages
	b1, b2   list // ghost (history) pages
}

var _ policy.Policy = (*Cache)(nil)

// New returns an ARC cache holding up to capacity pages.
func New(capacity int) *Cache {
	if capacity < 0 {
		panic("arc: negative capacity")
	}
	return &Cache{capacity: capacity, entries: make(map[uint64]*entry, 2*capacity)}
}

// Name implements policy.Policy.
func (c *Cache) Name() string { return "ARC" }

// Len implements policy.Policy.
func (c *Cache) Len() int { return c.t1.size + c.t2.size }

// Capacity implements policy.Policy.
func (c *Cache) Capacity() int { return c.capacity }

// Access implements policy.Policy. It follows the FAST '03 pseudo-code
// (Figure 4 of that paper) with reads and writes both treated as accesses.
func (c *Cache) Access(r trace.Request) bool {
	if c.capacity == 0 {
		return false
	}
	x := r.Page
	e, ok := c.entries[x]
	if ok {
		switch e.where {
		case inT1, inT2:
			// Case I: cache hit — move to MRU of T2.
			c.listOf(e.where).remove(e)
			e.where = inT2
			c.t2.pushFront(e)
			return r.Op == trace.Read
		case inB1:
			// Case II: ghost hit in B1 — favour recency.
			c.p = min(c.capacity, c.p+max(c.b2.size/max(c.b1.size, 1), 1))
			c.replace(true)
			c.b1.remove(e)
			e.where = inT2
			c.t2.pushFront(e)
			return false
		case inB2:
			// Case III: ghost hit in B2 — favour frequency.
			c.p = max(0, c.p-max(c.b1.size/max(c.b2.size, 1), 1))
			c.replace(false)
			c.b2.remove(e)
			e.where = inT2
			c.t2.pushFront(e)
			return false
		}
	}
	// Case IV: complete miss.
	l1 := c.t1.size + c.b1.size
	total := l1 + c.t2.size + c.b2.size
	switch {
	case l1 == c.capacity:
		if c.t1.size < c.capacity {
			c.dropLRU(&c.b1)
			c.replace(false)
		} else {
			// B1 is empty and T1 is full: evict from T1 without history.
			c.dropLRU(&c.t1)
		}
	case l1 < c.capacity && total >= c.capacity:
		if total == 2*c.capacity {
			c.dropLRU(&c.b2)
		}
		c.replace(false)
	}
	e = &entry{page: x, where: inT1}
	c.entries[x] = e
	c.t1.pushFront(e)
	return false
}

// replace demotes one cached page to the appropriate ghost list. fromB2Hit
// is true when the triggering request hit in B2 (the boundary case in the
// ARC paper's REPLACE subroutine).
func (c *Cache) replace(fromB2Hit bool) {
	if c.t1.size >= 1 && (c.t1.size > c.p || (fromB2Hit && c.t1.size == c.p)) {
		v := c.t1.tail
		c.t1.remove(v)
		v.where = inB1
		c.b1.pushFront(v)
	} else if c.t2.size > 0 {
		v := c.t2.tail
		c.t2.remove(v)
		v.where = inB2
		c.b2.pushFront(v)
	}
}

func (c *Cache) dropLRU(l *list) {
	v := l.tail
	l.remove(v)
	delete(c.entries, v.page)
}

func (c *Cache) listOf(w listID) *list {
	switch w {
	case inT1:
		return &c.t1
	case inT2:
		return &c.t2
	case inB1:
		return &c.b1
	default:
		return &c.b2
	}
}
