package hint

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSetKey(t *testing.T) {
	tests := []struct {
		set  Set
		want string
	}{
		{nil, ""},
		{Make("a", "1"), "a=1"},
		{Make("pool", "p0", "object", "o13"), "pool=p0|object=o13"},
		{Make("reqtype", "repl-write", "prio", "3"), "reqtype=repl-write|prio=3"},
	}
	for _, tt := range tests {
		if got := tt.set.Key(); got != tt.want {
			t.Errorf("Key(%v) = %q, want %q", tt.set, got, tt.want)
		}
		if got := tt.set.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.set, got, tt.want)
		}
	}
}

func TestSetOrderMatters(t *testing.T) {
	a := Make("x", "1", "y", "2")
	b := Make("y", "2", "x", "1")
	if a.Key() == b.Key() {
		t.Fatalf("sets with different field order must have distinct keys: %q", a.Key())
	}
}

func TestParseRoundTrip(t *testing.T) {
	sets := []Set{
		nil,
		Make("a", "1"),
		Make("pool", "p0", "object", "o13", "objtype", "index", "reqtype", "read", "prio", "2"),
		Make("thread", "t4", "reqtype", "rec-write", "file", "f8", "fix", "2"),
	}
	for _, s := range sets {
		got, err := Parse(s.Key())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.Key(), err)
		}
		if len(got) == 0 && len(s) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("Parse(Key(%v)) = %v", s, got)
		}
	}
}

// TestParseRoundTripQuick property-tests Key/Parse inversion over random
// well-formed sets.
func TestParseRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6)
		s := make(Set, 0, n)
		for i := 0; i < n; i++ {
			s = append(s, Field{
				Type:  fmt.Sprintf("t%d", rng.Intn(10)),
				Value: fmt.Sprintf("v%d", rng.Intn(10)),
			})
		}
		got, err := Parse(s.Key())
		if err != nil {
			return false
		}
		if len(got) != len(s) {
			return false
		}
		for i := range s {
			if got[i] != s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"nofield", "a=1|junk", "|"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestMakePanics(t *testing.T) {
	for _, args := range [][]string{
		{"odd"},
		{"a=b", "c"},
		{"a", "v|w"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Make(%v) should panic", args)
				}
			}()
			Make(args...)
		}()
	}
}

func TestSetHelpers(t *testing.T) {
	s := Make("a", "1", "b", "2")
	if v, ok := s.Value("b"); !ok || v != "2" {
		t.Errorf("Value(b) = %q, %v", v, ok)
	}
	if _, ok := s.Value("missing"); ok {
		t.Error("Value(missing) should report absence")
	}
	w := s.With("c", "3")
	if w.Key() != "a=1|b=2|c=3" {
		t.Errorf("With: %q", w.Key())
	}
	if s.Key() != "a=1|b=2" {
		t.Errorf("With mutated receiver: %q", s.Key())
	}
	c := s.Clone()
	c[0].Value = "changed"
	if s[0].Value == "changed" {
		t.Error("Clone should be deep")
	}
}

func TestNamespace(t *testing.T) {
	s := Make("reqtype", "read", "pool", "p1")
	n := s.Namespace("DB2_C60")
	if n.Key() != "DB2_C60/reqtype=read|DB2_C60/pool=p1" {
		t.Errorf("Namespace: %q", n.Key())
	}
	if s.Key() != "reqtype=read|pool=p1" {
		t.Error("Namespace mutated receiver")
	}
}

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern(Make("a", "1"))
	b := d.Intern(Make("b", "2"))
	if a == b {
		t.Fatal("distinct sets must get distinct IDs")
	}
	if again := d.Intern(Make("a", "1")); again != a {
		t.Errorf("re-interning returned %d, want %d", again, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if d.Key(a) != "a=1" {
		t.Errorf("Key(a) = %q", d.Key(a))
	}
	if got := d.Set(b); got.Key() != "b=2" {
		t.Errorf("Set(b) = %v", got)
	}
	if id, ok := d.Lookup(Make("a", "1")); !ok || id != a {
		t.Errorf("Lookup = %d, %v", id, ok)
	}
	if _, ok := d.Lookup(Make("zz", "9")); ok {
		t.Error("Lookup of unknown set should fail")
	}
}

func TestDictIDsAreDense(t *testing.T) {
	d := NewDict()
	for i := 0; i < 100; i++ {
		id := d.InternKey(fmt.Sprintf("k=%d", i))
		if id != ID(i) {
			t.Fatalf("ID %d assigned for %dth key", id, i)
		}
	}
}

func TestDictKeyPanicsOutOfRange(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Error("Key(99) on empty dict should panic")
		}
	}()
	d.Key(99)
}

func TestDictClone(t *testing.T) {
	d := NewDict()
	d.InternKey("a=1")
	c := d.Clone()
	c.InternKey("b=2")
	if d.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: d=%d c=%d", d.Len(), c.Len())
	}
	if c.Key(0) != "a=1" {
		t.Errorf("clone lost key 0: %q", c.Key(0))
	}
}

func TestDictDomains(t *testing.T) {
	d := NewDict()
	d.Intern(Make("reqtype", "read", "pool", "p0"))
	d.Intern(Make("reqtype", "write", "pool", "p0"))
	d.Intern(Make("reqtype", "read", "pool", "p1"))
	domains := d.Domains()
	if got := domains["reqtype"]; len(got) != 2 || got[0] != "read" || got[1] != "write" {
		t.Errorf("reqtype domain = %v", got)
	}
	if got := domains["pool"]; len(got) != 2 {
		t.Errorf("pool domain = %v", got)
	}
}
