// Package hint models the client-supplied hint sets that CLIC consumes.
//
// A hint set is an ordered tuple of categorical (type, value) pairs attached
// by a storage client to each I/O request. CLIC treats hint sets as opaque:
// it neither assumes nor exploits any ordering on hint values (paper §2).
// To make that opacity cheap, hint sets are interned into dense uint32 IDs
// through a Dict; everything downstream of trace generation works with IDs.
package hint

import (
	"fmt"
	"sort"
	"strings"
)

// Field is a single (hint type, hint value) pair.
type Field struct {
	Type  string
	Value string
}

// Set is an ordered tuple of hint fields. The order is defined by the client
// that generates the hints and is preserved verbatim; two sets with the same
// fields in different orders are distinct hint sets.
type Set []Field

// Key returns the canonical encoding of the set, "type=value|type=value|…".
// Types and values must not contain '=' or '|'; Make enforces this.
func (s Set) Key() string {
	if len(s) == 0 {
		return ""
	}
	var b strings.Builder
	for i, f := range s {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(f.Type)
		b.WriteByte('=')
		b.WriteString(f.Value)
	}
	return b.String()
}

// String implements fmt.Stringer using the canonical key encoding.
func (s Set) String() string { return s.Key() }

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Value returns the value of the first field with the given type and
// whether such a field exists.
func (s Set) Value(typ string) (string, bool) {
	for _, f := range s {
		if f.Type == typ {
			return f.Value, true
		}
	}
	return "", false
}

// With returns a new set with the given field appended.
func (s Set) With(typ, value string) Set {
	out := make(Set, 0, len(s)+1)
	out = append(out, s...)
	out = append(out, Field{Type: typ, Value: value})
	return out
}

// Namespace returns a copy of the set with every hint type prefixed by
// "client/". The paper requires that hint types from distinct clients be
// treated as distinct even when the clients are instances of the same
// application (§2); prefixing achieves that under interning.
func (s Set) Namespace(client string) Set {
	out := make(Set, len(s))
	for i, f := range s {
		out[i] = Field{Type: client + "/" + f.Type, Value: f.Value}
	}
	return out
}

// Make builds a Set from alternating type, value strings. It panics if the
// argument count is odd or any component contains a reserved character;
// it is intended for statically-known hint shapes in generators and tests.
func Make(pairs ...string) Set {
	if len(pairs)%2 != 0 {
		panic("hint.Make: odd number of arguments")
	}
	s := make(Set, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		checkComponent(pairs[i])
		checkComponent(pairs[i+1])
		s = append(s, Field{Type: pairs[i], Value: pairs[i+1]})
	}
	return s
}

func checkComponent(c string) {
	if strings.ContainsAny(c, "=|") {
		panic(fmt.Sprintf("hint: component %q contains reserved character", c))
	}
}

// Parse decodes a canonical key produced by Set.Key. An empty string decodes
// to an empty set.
func Parse(key string) (Set, error) {
	if key == "" {
		return nil, nil
	}
	parts := strings.Split(key, "|")
	s := make(Set, 0, len(parts))
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		if eq < 0 {
			return nil, fmt.Errorf("hint: malformed field %q in key %q", p, key)
		}
		s = append(s, Field{Type: p[:eq], Value: p[eq+1:]})
	}
	return s, nil
}

// ID is a dense identifier for an interned hint set. IDs are only meaningful
// relative to the Dict that produced them.
type ID = uint32

// Dict interns hint sets to dense IDs. It is not safe for concurrent use;
// the simulator is single-threaded by design so every run is deterministic.
type Dict struct {
	byKey map[string]ID
	keys  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{byKey: make(map[string]ID)}
}

// Intern returns the ID for the set, assigning a fresh one if the set has
// not been seen before.
func (d *Dict) Intern(s Set) ID { return d.InternKey(s.Key()) }

// InternKey is Intern for an already-encoded canonical key.
func (d *Dict) InternKey(key string) ID {
	if id, ok := d.byKey[key]; ok {
		return id
	}
	id := ID(len(d.keys))
	d.byKey[key] = id
	d.keys = append(d.keys, key)
	return id
}

// Lookup returns the ID for the set if it is already interned.
func (d *Dict) Lookup(s Set) (ID, bool) {
	id, ok := d.byKey[s.Key()]
	return id, ok
}

// Key returns the canonical key for an ID. It panics if the ID was not
// produced by this dictionary.
func (d *Dict) Key(id ID) string {
	if int(id) >= len(d.keys) {
		panic(fmt.Sprintf("hint: ID %d out of range (dict has %d entries)", id, len(d.keys)))
	}
	return d.keys[id]
}

// Set decodes the hint set for an ID.
func (d *Dict) Set(id ID) Set {
	s, err := Parse(d.Key(id))
	if err != nil {
		// Keys are produced by Set.Key, which cannot emit malformed fields.
		panic("hint: corrupt dictionary: " + err.Error())
	}
	return s
}

// Len returns the number of interned hint sets.
func (d *Dict) Len() int { return len(d.keys) }

// Keys returns all interned keys in ID order. The returned slice is a copy.
func (d *Dict) Keys() []string {
	out := make([]string, len(d.keys))
	copy(out, d.keys)
	return out
}

// Clone returns an independent copy of the dictionary that assigns the same
// IDs to the same keys.
func (d *Dict) Clone() *Dict {
	c := &Dict{
		byKey: make(map[string]ID, len(d.byKey)),
		keys:  make([]string, len(d.keys)),
	}
	for k, v := range d.byKey {
		c.byKey[k] = v
	}
	copy(c.keys, d.keys)
	return c
}

// Domains summarises the value domain observed for each hint type across all
// interned hint sets, as in the paper's Figure 2 ("value domain
// cardinality"). The result maps hint type to the sorted list of distinct
// values seen for it.
func (d *Dict) Domains() map[string][]string {
	vals := make(map[string]map[string]struct{})
	for _, key := range d.keys {
		s, err := Parse(key)
		if err != nil {
			continue
		}
		for _, f := range s {
			m, ok := vals[f.Type]
			if !ok {
				m = make(map[string]struct{})
				vals[f.Type] = m
			}
			m[f.Value] = struct{}{}
		}
	}
	out := make(map[string][]string, len(vals))
	for t, m := range vals {
		list := make([]string, 0, len(m))
		for v := range m {
			list = append(list, v)
		}
		sort.Strings(list)
		out[t] = list
	}
	return out
}
