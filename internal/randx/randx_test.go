package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZipfBounds(t *testing.T) {
	rng := New(1)
	z := NewZipf(rng, 50, 1)
	if z.N() != 50 {
		t.Fatalf("N = %d", z.N())
	}
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 50 {
			t.Fatalf("sample %d out of [0,50)", v)
		}
	}
}

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 2} {
		z := NewZipf(New(1), 100, s)
		sum := 0.0
		for i := 0; i < 100; i++ {
			sum += z.Prob(i)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%v: probabilities sum to %v", s, sum)
		}
	}
	if z := NewZipf(New(1), 10, 1); z.Prob(-1) != 0 || z.Prob(10) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestZipfMonotone(t *testing.T) {
	z := NewZipf(New(1), 100, 1)
	for i := 1; i < 100; i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-15 {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v", i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(New(1), 10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Fatalf("s=0 Prob(%d) = %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfSkewEmpirical(t *testing.T) {
	z := NewZipf(New(42), 100, 1)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// With z=1 over 100 values, value 0 has probability 1/H(100) ≈ 0.193.
	p0 := float64(counts[0]) / n
	if p0 < 0.17 || p0 > 0.22 {
		t.Errorf("empirical P(0) = %v, want ≈ 0.193", p0)
	}
	// The top 10 values should dominate: P ≈ H(10)/H(100) ≈ 0.565.
	top := 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	if frac := float64(top) / n; frac < 0.52 || frac > 0.61 {
		t.Errorf("empirical P(top 10) = %v, want ≈ 0.565", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {-3, 1}, {10, -0.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(n=%d, s=%v) should panic", tc.n, tc.s)
				}
			}()
			NewZipf(New(1), tc.n, tc.s)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NewZipf(New(7), 1000, 1), NewZipf(New(7), 1000, 1)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

// TestNURandQuick property-tests that NURand stays within its range.
func TestNURandQuick(t *testing.T) {
	rng := New(3)
	f := func(aRaw, xRaw, spanRaw uint16) bool {
		a := int(aRaw % 1024)
		x := int(xRaw % 1000)
		y := x + int(spanRaw%5000)
		v := NURand(rng, a, x, y, 42)
		return v >= x && v <= y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPerm(t *testing.T) {
	p := Perm(New(1), 20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}
