// Package randx provides the deterministic random-number utilities shared by
// the workload generators and the noise-hint injector: a seeded PRNG
// constructor and a bounded Zipf sampler that supports skew parameters
// z <= 1 (which math/rand's Zipf does not).
package randx

import (
	"math"
	"math/rand"
	"sort"
)

// New returns a rand.Rand seeded deterministically from seed. All
// randomness in this repository flows through explicit seeds so that traces
// and experiments are reproducible bit-for-bit.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Zipf samples integers in [0, n) with P(i) proportional to 1/(i+1)^s.
// Unlike math/rand.Zipf it accepts any s >= 0 (s=0 is uniform, s=1 is the
// classic harmonic distribution used by the paper's noise-hint experiment,
// §6.3). Sampling is O(log n) by binary search over the precomputed CDF.
type Zipf struct {
	cdf []float64
	rng *rand.Rand
}

// NewZipf builds a sampler over [0, n) with exponent s, drawing randomness
// from rng. It panics if n <= 0 or s < 0.
func NewZipf(rng *rand.Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("randx: Zipf domain must be positive")
	}
	if s < 0 {
		panic("randx: Zipf exponent must be non-negative")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the domain size.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws one sample.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of value i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// NURand implements the TPC-C non-uniform random function
// NURand(A, x, y) = (((rand(0,A) | rand(x,y)) + C) % (y-x+1)) + x,
// used to pick customers and items with realistic skew.
func NURand(rng *rand.Rand, a, x, y, c int) int {
	r1 := rng.Intn(a + 1)
	r2 := x + rng.Intn(y-x+1)
	return ((r1|r2)+c)%(y-x+1) + x
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
