package sim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hint"
	"repro/internal/trace"
)

func smallTrace() *trace.Trace {
	t := trace.New("small", 4096)
	h := t.Dict.Intern(hint.Make("reqtype", "read"))
	w := t.Dict.Intern(hint.Make("reqtype", "repl-write"))
	// Pages 1 and 2 alternate; page 3 appears once.
	seq := []trace.Request{
		{Page: 1, Hint: h, Op: trace.Read},
		{Page: 2, Hint: w, Op: trace.Write},
		{Page: 1, Hint: h, Op: trace.Read},
		{Page: 3, Hint: h, Op: trace.Read},
		{Page: 2, Hint: h, Op: trace.Read},
		{Page: 1, Hint: h, Op: trace.Read},
	}
	t.Reqs = seq
	return t
}

func TestRunCounts(t *testing.T) {
	tr := smallTrace()
	p, err := NewPolicy("LRU", 4, tr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res := Run(p, tr)
	if res.Requests != 6 || res.Reads != 5 {
		t.Fatalf("Requests=%d Reads=%d", res.Requests, res.Reads)
	}
	// LRU with room for everything: hits are re-reads of 1 (twice) and the
	// read of 2 after its write.
	if res.ReadHits != 3 {
		t.Errorf("ReadHits = %d, want 3", res.ReadHits)
	}
	if res.HitRatio() != 0.6 {
		t.Errorf("HitRatio = %v", res.HitRatio())
	}
	if res.Trace != "small" || res.Policy != "LRU" || res.CacheSize != 4 {
		t.Errorf("metadata: %+v", res)
	}
}

func TestRunPerClient(t *testing.T) {
	a := smallTrace()
	a.Name = "A"
	b := smallTrace()
	b.Name = "B"
	m, err := trace.Interleave("M", a, b)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := NewPolicy("LRU", 16, m, core.Config{})
	res := Run(p, m)
	if len(res.PerClient) != 2 {
		t.Fatalf("PerClient = %d entries", len(res.PerClient))
	}
	if res.PerClient[0].Name != "A" || res.PerClient[1].Name != "B" {
		t.Errorf("client names: %+v", res.PerClient)
	}
	var sumReads, sumHits uint64
	for _, cs := range res.PerClient {
		sumReads += cs.Reads
		sumHits += cs.ReadHits
	}
	if sumReads != res.Reads || sumHits != res.ReadHits {
		t.Errorf("per-client totals %d/%d != overall %d/%d", sumHits, sumReads, res.ReadHits, res.Reads)
	}
}

func TestHitRatioZeroReads(t *testing.T) {
	var r Result
	if r.HitRatio() != 0 {
		t.Error("zero reads should give zero ratio")
	}
	var c ClientStat
	if c.HitRatio() != 0 {
		t.Error("zero reads should give zero client ratio")
	}
}

func TestClicCapacity(t *testing.T) {
	if got := ClicCapacity(18000); got != 17820 {
		t.Errorf("ClicCapacity(18000) = %d, want 17820", got)
	}
	if got := ClicCapacity(50); got != 50 {
		t.Errorf("ClicCapacity(50) = %d, want 50 (sub-1%% rounds to zero)", got)
	}
}

func TestNewPolicyAllNames(t *testing.T) {
	tr := smallTrace()
	for _, name := range PolicyNames {
		p, err := NewPolicy(name, 8, tr, core.Config{Window: 4})
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", name, err)
		}
		res := Run(p, tr)
		if res.Requests != uint64(tr.Len()) {
			t.Errorf("%s processed %d requests", name, res.Requests)
		}
	}
	if _, err := NewPolicy("BOGUS", 8, tr, core.Config{}); err == nil {
		t.Error("unknown policy should error")
	}
}

func TestCLICGetsReducedCapacity(t *testing.T) {
	tr := smallTrace()
	p, err := NewPolicy("CLIC", 1000, tr, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Capacity() != 990 {
		t.Errorf("CLIC capacity = %d, want 990 (1%% space accounting)", p.Capacity())
	}
	o, _ := NewPolicy("LRU", 1000, tr, core.Config{})
	if o.Capacity() != 1000 {
		t.Errorf("LRU capacity = %d, want 1000", o.Capacity())
	}
}

func TestSweep(t *testing.T) {
	tr := smallTrace()
	results := Sweep(Constructor("LRU", tr, core.Config{}), tr, []int{1, 2, 4})
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, size := range []int{1, 2, 4} {
		if results[i].CacheSize != size {
			t.Errorf("result %d size = %d", i, results[i].CacheSize)
		}
	}
	// Hit ratio must be monotone in cache size for LRU on this trace.
	for i := 1; i < len(results); i++ {
		if results[i].HitRatio() < results[i-1].HitRatio() {
			t.Errorf("hit ratio not monotone: %v", results)
		}
	}
}

func TestConstructorPanicsOnBadName(t *testing.T) {
	tr := smallTrace()
	defer func() {
		if recover() == nil {
			t.Error("Constructor with bad name should panic at build time")
		}
	}()
	Constructor("BOGUS", tr, core.Config{})(4)
}

// TestOPTDominatesAll cross-checks OPT's optimality against every policy
// in the factory on a moderately sized random-ish trace.
func TestOPTDominatesAll(t *testing.T) {
	tr := trace.New("x", 4096)
	h := tr.Dict.Intern(hint.Make("reqtype", "read"))
	w := tr.Dict.Intern(hint.Make("reqtype", "repl-write"))
	// Deterministic mixed workload.
	for i := 0; i < 5000; i++ {
		page := uint64((i*i + i/3) % 97)
		op := trace.Read
		hh := h
		if i%4 == 3 {
			op = trace.Write
			hh = w
		}
		tr.Reqs = append(tr.Reqs, trace.Request{Page: page, Hint: hh, Op: op})
	}
	for _, cap := range []int{5, 20, 60} {
		optPolicy, _ := NewPolicy("OPT", cap, tr, core.Config{})
		optHits := Run(optPolicy, tr).ReadHits
		for _, name := range PolicyNames {
			if name == "OPT" {
				continue
			}
			p, err := NewPolicy(name, cap, tr, core.Config{Window: 500})
			if err != nil {
				t.Fatal(err)
			}
			if hits := Run(p, tr).ReadHits; hits > optHits {
				t.Errorf("cap %d: %s (%d hits) beat OPT (%d hits)", cap, name, hits, optHits)
			}
		}
	}
}
