// Package sim drives cache replacement policies over I/O request traces and
// reports read hit ratios, the paper's evaluation metric (§6): the number
// of read hits divided by the number of read requests.
package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/policy/arc"
	"repro/internal/policy/clock"
	"repro/internal/policy/fifo"
	"repro/internal/policy/lfu"
	"repro/internal/policy/lru"
	"repro/internal/policy/mq"
	"repro/internal/policy/opt"
	"repro/internal/policy/tq"
	"repro/internal/policy/twoq"
	"repro/internal/trace"
)

// ClientStat is the per-client read accounting of a run.
type ClientStat struct {
	Name     string
	Reads    uint64
	ReadHits uint64
}

// HitRatio returns the client's read hit ratio (0 when it issued no reads).
func (c ClientStat) HitRatio() float64 {
	if c.Reads == 0 {
		return 0
	}
	return float64(c.ReadHits) / float64(c.Reads)
}

// Result summarises one policy × trace × cache-size run.
type Result struct {
	Trace     string
	Policy    string
	CacheSize int
	Requests  uint64
	Reads     uint64
	ReadHits  uint64
	PerClient []ClientStat
}

// HitRatio returns the overall read hit ratio.
func (r Result) HitRatio() float64 {
	if r.Reads == 0 {
		return 0
	}
	return float64(r.ReadHits) / float64(r.Reads)
}

// Run feeds the whole trace through the policy. Offline policies
// (policy.Preparer) receive the full request sequence first.
func Run(p policy.Policy, t *trace.Trace) Result {
	if prep, ok := p.(policy.Preparer); ok {
		prep.Prepare(t.Reqs)
	}
	res := Result{
		Trace:     t.Name,
		Policy:    p.Name(),
		CacheSize: p.Capacity(),
		PerClient: make([]ClientStat, len(t.Clients)),
	}
	for i, name := range t.Clients {
		res.PerClient[i].Name = name
	}
	for _, r := range t.Reqs {
		hit := p.Access(r)
		res.Requests++
		if r.Op == trace.Read {
			res.Reads++
			res.PerClient[r.Client].Reads++
			if hit {
				res.ReadHits++
				res.PerClient[r.Client].ReadHits++
			}
		}
	}
	return res
}

// Sweep runs the constructor at each cache size over the trace.
func Sweep(mk policy.Constructor, t *trace.Trace, sizes []int) []Result {
	out := make([]Result, 0, len(sizes))
	for _, size := range sizes {
		out = append(out, Run(mk(size), t))
	}
	return out
}

// ClicCapacity applies the paper's space-overhead accounting (§6.1): CLIC's
// tracking structures cost roughly 1% of the cache, so its page capacity is
// reduced by 1% to keep total space equal to the other policies'.
func ClicCapacity(capacity int) int {
	return capacity - capacity/100
}

// PolicyNames lists the factory-constructible policies: the paper's five
// (§6) first, then the extra related-work baselines.
var PolicyNames = []string{"OPT", "LRU", "ARC", "TQ", "CLIC", "2Q", "MQ", "CLOCK", "FIFO", "LFU"}

// NewPolicy builds the named policy for a trace at the given capacity.
// CLIC's capacity is reduced per ClicCapacity; all other policies get the
// full capacity (ARC additionally keeps its ghost lists for free, matching
// the paper's accounting).
func NewPolicy(name string, capacity int, t *trace.Trace, clicCfg core.Config) (policy.Policy, error) {
	switch name {
	case "OPT":
		return opt.New(capacity), nil
	case "LRU":
		return lru.New(capacity), nil
	case "ARC":
		return arc.New(capacity), nil
	case "TQ":
		return tq.New(capacity, tq.ClassifierFromDict(t.Dict)), nil
	case "CLIC":
		cfg := clicCfg
		cfg.Capacity = ClicCapacity(capacity)
		return core.New(cfg), nil
	case "2Q":
		return twoq.New(capacity), nil
	case "MQ":
		return mq.New(capacity), nil
	case "CLOCK":
		return clock.New(capacity), nil
	case "FIFO":
		return fifo.New(capacity), nil
	case "LFU":
		return lfu.New(capacity), nil
	default:
		return nil, fmt.Errorf("sim: unknown policy %q (known: %v)", name, PolicyNames)
	}
}

// Constructor returns a policy.Constructor for NewPolicy, panicking on
// unknown names (for use in sweeps after validation).
func Constructor(name string, t *trace.Trace, clicCfg core.Config) policy.Constructor {
	return func(capacity int) policy.Policy {
		p, err := NewPolicy(name, capacity, t, clicCfg)
		if err != nil {
			panic(err)
		}
		return p
	}
}
