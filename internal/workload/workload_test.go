package workload

import (
	"strings"
	"testing"

	"repro/internal/hint"
	"repro/internal/trace"
)

// smallPreset shrinks a named preset for test runtimes.
func smallPreset(t *testing.T, name string, requests int) Preset {
	t.Helper()
	p, err := PresetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	p.Requests = requests
	return p
}

func TestPresetsComplete(t *testing.T) {
	want := []string{"DB2_C60", "DB2_C300", "DB2_C540", "DB2_H80", "DB2_H400", "DB2_H720", "MY_H65", "MY_H98"}
	ps := Presets()
	if len(ps) != len(want) {
		t.Fatalf("got %d presets", len(ps))
	}
	for i, p := range ps {
		if p.Name != want[i] {
			t.Errorf("preset %d = %q, want %q", i, p.Name, want[i])
		}
		if p.DBPages <= 0 || p.ClientBuffer <= 0 || p.Requests <= 0 || len(p.ServerSizes) == 0 {
			t.Errorf("preset %s incomplete: %+v", p.Name, p)
		}
		if p.ClientBuffer >= p.DBPages {
			t.Errorf("preset %s: client buffer %d >= DB %d", p.Name, p.ClientBuffer, p.DBPages)
		}
	}
	if _, err := PresetByName("NOPE"); err == nil {
		t.Error("unknown preset should error")
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate(Preset{Kind: "bogus"}); err == nil {
		t.Error("unknown kind should error")
	}
}

func TestTPCCGenerate(t *testing.T) {
	p := smallPreset(t, "DB2_C60", 250000)
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != p.Requests {
		t.Fatalf("generated %d requests, want %d", tr.Len(), p.Requests)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Reads == 0 || s.Writes == 0 {
		t.Errorf("degenerate trace: %+v", s)
	}
	// The DB2 hint vocabulary must be present.
	domains := tr.Dict.Domains()
	for _, typ := range []string{"pool", "object", "objtype", "reqtype", "prio"} {
		if len(domains[typ]) == 0 {
			t.Errorf("hint type %q missing", typ)
		}
	}
	// TPC-C pools: exactly 2 (Figure 2).
	if got := len(domains["pool"]); got != 2 {
		t.Errorf("pool domain = %d, want 2", got)
	}
	// Write hints must include all three kinds.
	rt := strings.Join(domains["reqtype"], ",")
	for _, v := range []string{"read", "repl-write", "rec-write", "sync-write"} {
		if !strings.Contains(rt, v) {
			t.Errorf("reqtype domain %q missing %q", rt, v)
		}
	}
}

func TestTPCCDatabaseGrows(t *testing.T) {
	p := smallPreset(t, "DB2_C60", 400000)
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Stats().DistinctPages; got <= p.DBPages/2 {
		// With 150K requests the trace should already touch many pages;
		// growth pushes the page space beyond the initial allocation over
		// longer runs (Figure 5's TPC-C note).
		t.Logf("distinct pages %d of %d initial", got, p.DBPages)
	}
	maxPage := uint64(0)
	for _, r := range tr.Reqs {
		if r.Page > maxPage {
			maxPage = r.Page
		}
	}
	if maxPage < uint64(p.DBPages) {
		t.Errorf("no growth: max page %d within initial %d", maxPage, p.DBPages)
	}
}

func TestTPCCDeterministic(t *testing.T) {
	p := smallPreset(t, "DB2_C60", 40000)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Reqs {
		if a.Reqs[i] != b.Reqs[i] {
			t.Fatalf("request %d differs: %+v vs %+v", i, a.Reqs[i], b.Reqs[i])
		}
	}
	p2 := p
	p2.Seed++
	c, err := Generate(p2)
	if err != nil {
		t.Fatal(err)
	}
	same := c.Len() == a.Len()
	if same {
		for i := range a.Reqs {
			if a.Reqs[i] != c.Reqs[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seed produced an identical trace")
	}
}

func TestTPCHDB2Generate(t *testing.T) {
	p := smallPreset(t, "DB2_H80", 120000)
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != p.Requests {
		t.Fatalf("generated %d requests", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	domains := tr.Dict.Domains()
	// TPC-H DB2 pools: 5 (Figure 2).
	if got := len(domains["pool"]); got != 5 {
		t.Errorf("pool domain = %d, want 5", got)
	}
	// Prefetch reads must dominate in a scan-heavy workload.
	counts := map[string]int{}
	for _, r := range tr.Reqs {
		key := tr.Dict.Key(r.Hint)
		if strings.Contains(key, "reqtype=prefetch") {
			counts["prefetch"]++
		}
	}
	if counts["prefetch"] < tr.Len()/4 {
		t.Errorf("only %d prefetch reads in %d requests", counts["prefetch"], tr.Len())
	}
}

func TestTPCHMySQLGenerate(t *testing.T) {
	p := smallPreset(t, "MY_H65", 120000)
	tr, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	domains := tr.Dict.Domains()
	// MySQL hint vocabulary (Figure 2): thread, reqtype (3 values), file, fix.
	for _, typ := range []string{"thread", "reqtype", "file", "fix"} {
		if len(domains[typ]) == 0 {
			t.Errorf("hint type %q missing", typ)
		}
	}
	if got := len(domains["reqtype"]); got > 3 {
		t.Errorf("MySQL reqtype domain has %d values, want <= 3: %v", got, domains["reqtype"])
	}
	if got := len(domains["thread"]); got > 5 {
		t.Errorf("thread domain has %d values, want <= 5", got)
	}
	if got := len(domains["fix"]); got > 2 {
		t.Errorf("fix domain has %d values, want <= 2", got)
	}
	// MySQL files: 9 (each table with its indexes in one file).
	if got := len(domains["file"]); got != 9 {
		t.Errorf("file domain has %d values, want 9: %v", got, domains["file"])
	}
	// No DB2-style hints.
	if len(domains["pool"]) != 0 || len(domains["objtype"]) != 0 {
		t.Error("MySQL trace carries DB2 hint types")
	}
}

func TestClientBufferAffectsLocality(t *testing.T) {
	// The same workload behind a larger client buffer must leave less
	// temporal locality for the server: compare read fractions.
	small := smallPreset(t, "DB2_C60", 80000)
	large := smallPreset(t, "DB2_C300", 80000)
	ts, err := Generate(small)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := Generate(large)
	if err != nil {
		t.Fatal(err)
	}
	rs := float64(ts.Stats().Reads) / float64(ts.Len())
	rl := float64(tl.Stats().Reads) / float64(tl.Len())
	if rl >= rs {
		t.Errorf("larger client buffer should absorb reads: C60 reads %.2f, C300 reads %.2f", rs, rl)
	}
}

// TestGenerateAllMatchesSerial is the parallel-generation equality test:
// GenerateAll at any worker count must produce traces bit-identical to
// serial Generate calls — same requests and same hint dictionary, preset
// by preset.
func TestGenerateAllMatchesSerial(t *testing.T) {
	presets := []Preset{
		smallPreset(t, "DB2_C60", 40000),
		smallPreset(t, "DB2_H80", 30000),
		smallPreset(t, "MY_H65", 30000),
		smallPreset(t, "DB2_C300", 25000),
	}
	want := make([]*trace.Trace, len(presets))
	for i, p := range presets {
		tr, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = tr
	}
	for _, workers := range []int{0, 1, 3} {
		got, err := GenerateAll(presets, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d traces, want %d", workers, len(got), len(want))
		}
		for pi := range presets {
			g, w := got[pi], want[pi]
			if g.Name != w.Name || g.Len() != w.Len() {
				t.Fatalf("workers=%d preset %s: name/len %q/%d, want %q/%d",
					workers, presets[pi].Name, g.Name, g.Len(), w.Name, w.Len())
			}
			if g.Dict.Len() != w.Dict.Len() {
				t.Fatalf("workers=%d preset %s: dict sizes %d vs %d",
					workers, presets[pi].Name, g.Dict.Len(), w.Dict.Len())
			}
			for i := range w.Reqs {
				if g.Reqs[i] != w.Reqs[i] {
					t.Fatalf("workers=%d preset %s request %d: %+v vs %+v",
						workers, presets[pi].Name, i, g.Reqs[i], w.Reqs[i])
				}
			}
			for id := 0; id < w.Dict.Len(); id++ {
				if g.Dict.Key(hint.ID(id)) != w.Dict.Key(hint.ID(id)) {
					t.Fatalf("workers=%d preset %s hint %d: %q vs %q",
						workers, presets[pi].Name, id, g.Dict.Key(hint.ID(id)), w.Dict.Key(hint.ID(id)))
				}
			}
		}
	}
}

// TestGenerateAllError propagates the first failure in preset order.
func TestGenerateAllError(t *testing.T) {
	presets := []Preset{smallPreset(t, "DB2_C60", 10000), {Name: "BAD", Kind: "bogus"}}
	if _, err := GenerateAll(presets, 2); err == nil || !strings.Contains(err.Error(), "BAD") {
		t.Errorf("GenerateAll error = %v, want failure naming BAD", err)
	}
}
