package workload

import (
	"bytes"
	"testing"

	"repro/internal/hint"
	"repro/internal/trace"
)

// requireTracesIdentical asserts byte-level equality: same requests in the
// same order, same dictionary with the same IDs, same clients.
func requireTracesIdentical(t *testing.T, label string, got, want *trace.Trace) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d requests, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Reqs {
		if got.Reqs[i] != want.Reqs[i] {
			t.Fatalf("%s: request %d: %+v, want %+v", label, i, got.Reqs[i], want.Reqs[i])
		}
	}
	if got.Dict.Len() != want.Dict.Len() {
		t.Fatalf("%s: dict sizes %d vs %d", label, got.Dict.Len(), want.Dict.Len())
	}
	for id := 0; id < want.Dict.Len(); id++ {
		if got.Dict.Key(hint.ID(id)) != want.Dict.Key(hint.ID(id)) {
			t.Fatalf("%s: hint %d: %q vs %q", label, id, got.Dict.Key(hint.ID(id)), want.Dict.Key(hint.ID(id)))
		}
	}
	if len(got.Clients) != len(want.Clients) {
		t.Fatalf("%s: clients %v vs %v", label, got.Clients, want.Clients)
	}
	for i := range want.Clients {
		if got.Clients[i] != want.Clients[i] {
			t.Fatalf("%s: client %d: %q vs %q", label, i, got.Clients[i], want.Clients[i])
		}
	}
}

// TestStreamedGenerationBitIdentical is the golden test of the streaming
// pipeline: for every preset at its pinned seed, generating through the v2
// streaming writer (serial and parallel encoders) and scanning the bytes
// back yields exactly the in-RAM Generate output.
func TestStreamedGenerationBitIdentical(t *testing.T) {
	for _, base := range Presets() {
		p := base
		p.Requests = 20000
		t.Run(p.Name, func(t *testing.T) {
			want, err := Generate(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				var buf bytes.Buffer
				w := trace.NewWriter(&buf, p.Name, p.PageSize, []string{p.Name},
					trace.WriterOptions{BlockSize: 1024, Workers: workers})
				if err := GenerateTo(p, w); err != nil {
					t.Fatal(err)
				}
				if err := w.Close(); err != nil {
					t.Fatal(err)
				}
				sc, err := trace.NewScanner(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				got, err := trace.Collect(sc)
				if err != nil {
					t.Fatal(err)
				}
				requireTracesIdentical(t, p.Name, got, want)
			}
		})
	}
}

// TestSpecParallelMatchesSerial pins the multi-client merge: the concurrent
// pipe-fed generation must be bit-identical to the serial in-RAM reference,
// run to run and regardless of scheduling.
func TestSpecParallelMatchesSerial(t *testing.T) {
	spec := Spec{Preset: smallPreset(t, "DB2_C60", 30000), Clients: 3}
	want, err := spec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Clients) != 3 || want.Len() != 30000 {
		t.Fatalf("reference trace: %d clients, %d requests", len(want.Clients), want.Len())
	}
	// Run the parallel path several times to shake scheduling.
	for round := 0; round < 3; round++ {
		got := trace.New(spec.Preset.Name, spec.Preset.PageSize)
		got.Clients = spec.ClientNames()
		if err := spec.GenerateTo(got); err != nil {
			t.Fatal(err)
		}
		requireTracesIdentical(t, "parallel round", got, want)
	}
}

// TestSpecSingleClientMatchesGenerate checks the degenerate spec reproduces
// plain Generate exactly.
func TestSpecSingleClientMatchesGenerate(t *testing.T) {
	p := smallPreset(t, "MY_H65", 15000)
	want, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Spec{Preset: p, Clients: 1}.Trace()
	if err != nil {
		t.Fatal(err)
	}
	requireTracesIdentical(t, "single-client spec", got, want)
}

// TestSpecSource checks the Source adapter streams the same requests.
func TestSpecSource(t *testing.T) {
	spec := Spec{Preset: smallPreset(t, "DB2_H80", 12000), Clients: 2}
	want, err := spec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	src := spec.Source()
	if src.Label() != "DB2_H80*2:12000" {
		t.Fatalf("label = %q", src.Label())
	}
	it, err := src.Iter()
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	got, err := trace.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	requireTracesIdentical(t, "spec source", got, want)
}

// TestSpecPagesDisjoint checks the private page regions and client tags.
func TestSpecPagesDisjoint(t *testing.T) {
	spec := Spec{Preset: smallPreset(t, "DB2_C60", 9000), Clients: 3}
	tr, err := spec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range tr.Reqs {
		if region := r.Page >> 44; region != uint64(r.Client) {
			t.Fatalf("request %d: page %d in region %d but client %d", i, r.Page, region, r.Client)
		}
	}
	// Hints must be namespaced per client.
	for id := 0; id < tr.Dict.Len(); id++ {
		set, err := hint.Parse(tr.Dict.Key(hint.ID(id)))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range set {
			if !hasClientPrefix(f.Type, tr.Clients) {
				t.Fatalf("hint type %q not namespaced by any client", f.Type)
			}
		}
	}
}

func hasClientPrefix(typ string, clients []string) bool {
	for _, c := range clients {
		if len(typ) > len(c) && typ[:len(c)] == c && typ[len(c)] == '/' {
			return true
		}
	}
	return false
}

// TestParseSpec covers the NAME[*clients][:requests][@seed] grammar.
func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("DB2_C60*4:1000000@7")
	if err != nil {
		t.Fatal(err)
	}
	if s.Preset.Name != "DB2_C60" || s.Clients != 4 || s.Preset.Requests != 1000000 || s.Preset.Seed != 7 {
		t.Fatalf("parsed %+v", s)
	}
	if s.String() != "DB2_C60*4:1000000@7" {
		t.Fatalf("String() = %q", s.String())
	}
	s, err = ParseSpec("MY_H98")
	if err != nil {
		t.Fatal(err)
	}
	base, _ := PresetByName("MY_H98")
	if s.Clients != 1 || s.Preset.Requests != base.Requests || s.Preset.Seed != base.Seed {
		t.Fatalf("parsed %+v", s)
	}
	for _, bad := range []string{"", "NOPE", "DB2_C60*0", "DB2_C60:-5", "DB2_C60@x", "DB2_C60*999"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

// TestSplitSeedDistinct checks child seeds don't collide over a wide range.
func TestSplitSeedDistinct(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		s := SplitSeed(10601, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("seed collision between children %d and %d", i, j)
		}
		seen[s] = i
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different bases produced the same child seed")
	}
}
