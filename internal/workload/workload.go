// Package workload generates the paper's eight I/O request traces
// (Figure 5) by running TPC-C-like and TPC-H-like workloads against the
// simulated database clients of package dbsim. The traces carry the exact
// hint vocabularies of the paper's Figure 2.
//
// All sizes are scaled ~10× down from the paper (see README.md): every
// ratio that drives the caching behaviour — client buffer / database size,
// server cache / database size — is preserved.
package workload

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/trace"
)

// Kind selects a workload generator.
type Kind string

const (
	// TPCCDB2 is the TPC-C-like workload with DB2-style hints.
	TPCCDB2 Kind = "tpcc-db2"
	// TPCHDB2 is the TPC-H-like workload with DB2-style hints.
	TPCHDB2 Kind = "tpch-db2"
	// TPCHMySQL is the TPC-H-like workload with MySQL-style hints
	// (21 queries, no refresh, single buffer pool).
	TPCHMySQL Kind = "tpch-mysql"
)

// Preset describes one generated trace.
type Preset struct {
	// Name is the paper's trace name, e.g. "DB2_C60".
	Name string
	// Kind selects the generator.
	Kind Kind
	// DBPages is the initial database size in pages.
	DBPages int
	// ClientBuffer is the total client buffer size in pages.
	ClientBuffer int
	// Requests is the number of requests to generate.
	Requests int
	// PageSize is the block size in bytes (informational).
	PageSize int
	// Seed drives all workload randomness.
	Seed int64
	// ServerSizes is the server-cache sweep used in the paper's figure for
	// this trace.
	ServerSizes []int
}

// Presets returns the eight traces of Figure 5, scaled per README.md.
// The paper's server cache sweeps are 60K–300K pages for DB2 traces and
// 50K–100K for MySQL; scaled tenfold down they become 6K–30K and 5K–10K.
func Presets() []Preset {
	db2Sweep := []int{6000, 12000, 18000, 24000, 30000}
	mySweep := []int{5000, 7500, 10000}
	return []Preset{
		{Name: "DB2_C60", Kind: TPCCDB2, DBPages: 60000, ClientBuffer: 6000, Requests: 2000000, PageSize: 4096, Seed: 10601, ServerSizes: db2Sweep},
		{Name: "DB2_C300", Kind: TPCCDB2, DBPages: 60000, ClientBuffer: 30000, Requests: 1600000, PageSize: 4096, Seed: 10601, ServerSizes: db2Sweep},
		{Name: "DB2_C540", Kind: TPCCDB2, DBPages: 60000, ClientBuffer: 54000, Requests: 1200000, PageSize: 4096, Seed: 10601, ServerSizes: db2Sweep},
		{Name: "DB2_H80", Kind: TPCHDB2, DBPages: 80000, ClientBuffer: 8000, Requests: 2400000, PageSize: 4096, Seed: 20801, ServerSizes: db2Sweep},
		{Name: "DB2_H400", Kind: TPCHDB2, DBPages: 80000, ClientBuffer: 40000, Requests: 1200000, PageSize: 4096, Seed: 20801, ServerSizes: db2Sweep},
		{Name: "DB2_H720", Kind: TPCHDB2, DBPages: 80000, ClientBuffer: 72000, Requests: 500000, PageSize: 4096, Seed: 20801, ServerSizes: db2Sweep},
		{Name: "MY_H65", Kind: TPCHMySQL, DBPages: 32800, ClientBuffer: 6500, Requests: 1200000, PageSize: 16384, Seed: 30651, ServerSizes: mySweep},
		{Name: "MY_H98", Kind: TPCHMySQL, DBPages: 32800, ClientBuffer: 9800, Requests: 800000, PageSize: 16384, Seed: 30651, ServerSizes: mySweep},
	}
}

// PresetByName returns the named preset.
func PresetByName(name string) (Preset, error) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, nil
		}
	}
	return Preset{}, fmt.Errorf("workload: unknown preset %q", name)
}

// Generate runs the preset's workload and returns its trace in memory. It
// is GenerateTo into a fresh *Trace — streamed and in-RAM generation share
// one code path, so they are bit-identical by construction.
func Generate(p Preset) (*trace.Trace, error) {
	t := trace.New(p.Name, p.PageSize)
	if err := GenerateTo(p, t); err != nil {
		return nil, err
	}
	return t, t.Validate()
}

// GenerateTo runs the preset's workload, emitting each request into sink as
// it is produced: with a streaming sink (trace.Writer, trace.PipeWriter)
// memory stays bounded no matter how many requests the preset asks for.
// Exactly p.Requests requests are appended (the last transaction's
// overshoot is cut, like the historical truncate; hint keys the cut
// requests interned stay in the dictionary, also like the historical
// behavior).
func GenerateTo(p Preset, sink trace.Sink) error {
	lim := trace.Limit(sink, p.Requests)
	var err error
	switch p.Kind {
	case TPCCDB2:
		err = generateTPCC(p, lim)
	case TPCHDB2:
		err = generateTPCH(p, lim, false)
	case TPCHMySQL:
		err = generateTPCH(p, lim, true)
	default:
		return fmt.Errorf("workload: unknown kind %q", p.Kind)
	}
	if err != nil {
		return err
	}
	return trace.Err(sink)
}

// GenerateAll generates every preset's trace, fanning the generations
// across a worker pool. Each generation is an independent deterministic
// simulation of a single stateful database client, so the sequential
// dependency is entirely within one preset: parallelism across presets
// changes only the wall clock, and the returned traces are bit-identical
// to serial Generate calls, in preset order.
//
// workers bounds the pool; 0 or negative selects GOMAXPROCS, 1 reproduces
// the serial path exactly (no goroutines). On error the first failure (in
// preset order) is returned and the trace slice is nil.
func GenerateAll(presets []Preset, workers int) ([]*trace.Trace, error) {
	out := make([]*trace.Trace, len(presets))
	errs := make([]error, len(presets))
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(presets) {
		w = len(presets)
	}
	if w <= 1 {
		for i, p := range presets {
			t, err := Generate(p)
			if err != nil {
				return nil, fmt.Errorf("workload: generating %s: %w", p.Name, err)
			}
			out[i] = t
		}
		return out, nil
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for n := 0; n < w; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = Generate(presets[i])
			}
		}()
	}
	for i := range presets {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("workload: generating %s: %w", presets[i].Name, err)
		}
	}
	return out, nil
}
