package workload

import (
	"math/rand"

	"repro/internal/dbsim"
	"repro/internal/randx"
	"repro/internal/trace"
)

// tpch runs a TPC-H-like decision-support stream: 22 query templates built
// from sequential scans (prefetch reads), index-nested-loop probes, and
// temp-area spills (writes followed by re-reads), plus the two refresh
// functions for the DB2 flavour (§6: the MySQL workload omitted the
// refreshes and skipped Q18).
type tpch struct {
	c     *dbsim.Client
	db    *dbsim.Database
	rng   *rand.Rand
	mysql bool

	lineitem, orders, partsupp, part     *dbsim.Object
	customer, supplier, nation, region   *dbsim.Object
	temp, catalog                        *dbsim.Object
	liIdx, oIdx, psIdx, pIdx, cIdx, sIdx *dbsim.Object

	spillPtr int
	queryNo  int
}

// tpchScan is a sequential scan over a leading fraction of a table.
type tpchScan struct {
	obj  string
	frac float64
}

// tpchProbe is an index-nested-loop join leg: n probes into inner via its
// index, each reading fanout consecutive inner pages.
type tpchProbe struct {
	inner  string
	n      int
	fanout int
}

// tpchQuery is one query template.
type tpchQuery struct {
	name   string
	scans  []tpchScan
	probes []tpchProbe
	spill  int // temp pages written and then re-read
}

// queries is the 22-template mix. Fractions and probe counts are chosen to
// reflect each query's dominant access pattern (LINEITEM-heavy scans,
// selective index joins, and sort/aggregation spills).
var tpchQueries = []tpchQuery{
	{name: "Q1", scans: []tpchScan{{"LINEITEM", 0.98}}, spill: 320},
	{name: "Q2", scans: []tpchScan{{"PART", 0.30}, {"SUPPLIER", 1.0}, {"NATION", 1.0}, {"REGION", 1.0}}, probes: []tpchProbe{{"PARTSUPP", 300, 1}}, spill: 80},
	{name: "Q3", scans: []tpchScan{{"CUSTOMER", 0.50}}, probes: []tpchProbe{{"ORDERS", 400, 1}, {"LINEITEM", 400, 2}}, spill: 240},
	{name: "Q4", scans: []tpchScan{{"ORDERS", 0.60}}, probes: []tpchProbe{{"LINEITEM", 500, 2}}, spill: 160},
	{name: "Q5", scans: []tpchScan{{"CUSTOMER", 0.60}, {"SUPPLIER", 1.0}, {"NATION", 1.0}, {"REGION", 1.0}}, probes: []tpchProbe{{"ORDERS", 300, 1}, {"LINEITEM", 300, 2}}, spill: 200},
	{name: "Q6", scans: []tpchScan{{"LINEITEM", 0.90}}, spill: 40},
	{name: "Q7", scans: []tpchScan{{"SUPPLIER", 1.0}, {"CUSTOMER", 0.40}, {"NATION", 1.0}}, probes: []tpchProbe{{"LINEITEM", 400, 3}, {"ORDERS", 300, 1}}, spill: 240},
	{name: "Q8", scans: []tpchScan{{"PART", 0.25}, {"CUSTOMER", 0.30}, {"NATION", 1.0}, {"REGION", 1.0}}, probes: []tpchProbe{{"LINEITEM", 350, 2}, {"ORDERS", 200, 1}}, spill: 160},
	{name: "Q9", scans: []tpchScan{{"PART", 0.40}}, probes: []tpchProbe{{"PARTSUPP", 400, 1}, {"LINEITEM", 400, 2}, {"ORDERS", 250, 1}}, spill: 320},
	{name: "Q10", scans: []tpchScan{{"ORDERS", 0.40}}, probes: []tpchProbe{{"LINEITEM", 400, 2}, {"CUSTOMER", 300, 1}}, spill: 240},
	{name: "Q11", scans: []tpchScan{{"PARTSUPP", 0.90}, {"SUPPLIER", 1.0}}, spill: 120},
	{name: "Q12", scans: []tpchScan{{"LINEITEM", 0.85}}, probes: []tpchProbe{{"ORDERS", 300, 1}}, spill: 80},
	{name: "Q13", scans: []tpchScan{{"CUSTOMER", 0.90}}, probes: []tpchProbe{{"ORDERS", 500, 1}}, spill: 200},
	{name: "Q14", scans: []tpchScan{{"LINEITEM", 0.50}}, probes: []tpchProbe{{"PART", 300, 1}}, spill: 40},
	{name: "Q15", scans: []tpchScan{{"LINEITEM", 0.70}, {"SUPPLIER", 1.0}}, spill: 80},
	{name: "Q16", scans: []tpchScan{{"PARTSUPP", 0.80}, {"PART", 0.50}}, spill: 120},
	{name: "Q17", scans: []tpchScan{{"PART", 0.20}}, probes: []tpchProbe{{"LINEITEM", 400, 3}}, spill: 80},
	{name: "Q18", scans: []tpchScan{{"ORDERS", 0.90}, {"CUSTOMER", 0.50}}, probes: []tpchProbe{{"LINEITEM", 600, 3}}, spill: 400},
	{name: "Q19", scans: []tpchScan{{"LINEITEM", 0.60}}, probes: []tpchProbe{{"PART", 250, 1}}, spill: 40},
	{name: "Q20", scans: []tpchScan{{"PARTSUPP", 0.50}, {"SUPPLIER", 1.0}}, probes: []tpchProbe{{"LINEITEM", 300, 2}}, spill: 80},
	{name: "Q21", scans: []tpchScan{{"SUPPLIER", 1.0}}, probes: []tpchProbe{{"LINEITEM", 500, 3}, {"ORDERS", 400, 1}}, spill: 200},
	{name: "Q22", scans: []tpchScan{{"CUSTOMER", 0.70}}, probes: []tpchProbe{{"ORDERS", 200, 1}}, spill: 80},
}

func generateTPCH(p Preset, out trace.Sink, mysql bool) error {
	db := dbsim.NewDatabase(p.PageSize)
	w := &tpch{db: db, rng: randx.New(p.Seed), mysql: mysql}

	frac := func(f float64) int {
		n := int(f * float64(p.DBPages))
		if n < 1 {
			n = 1
		}
		return n
	}

	// Buffer pools. DB2 uses five (Figure 2: pool ID cardinality 5):
	// LINEITEM, ORDERS, other data, indexes, temp. MySQL uses one.
	var poolSizes []int
	liPool, oPool, dataPool, idxPool, tmpPool := 0, 0, 0, 0, 0
	if mysql {
		poolSizes = []int{p.ClientBuffer}
	} else {
		poolSizes = []int{
			p.ClientBuffer * 49 / 100,
			p.ClientBuffer * 15 / 100,
			p.ClientBuffer * 20 / 100,
			p.ClientBuffer * 10 / 100,
			p.ClientBuffer * 6 / 100,
		}
		liPool, oPool, dataPool, idxPool, tmpPool = 0, 1, 2, 3, 4
	}

	// Schema. MySQL stores each table together with its indexes in one
	// file (Figure 2), so table and index share a FileID; 9 files total.
	w.lineitem = db.NewObject("LINEITEM", "table", liPool, 1, 0, frac(0.52))
	w.orders = db.NewObject("ORDERS", "table", oPool, 1, 1, frac(0.13))
	w.partsupp = db.NewObject("PARTSUPP", "table", dataPool, 1, 2, frac(0.09))
	w.part = db.NewObject("PART", "table", dataPool, 1, 3, frac(0.035))
	w.customer = db.NewObject("CUSTOMER", "table", dataPool, 1, 4, frac(0.03))
	w.supplier = db.NewObject("SUPPLIER", "table", dataPool, 1, 5, frac(0.008))
	w.nation = db.NewObject("NATION", "table", dataPool, 1, 6, 1)
	w.region = db.NewObject("REGION", "table", dataPool, 1, 7, 1)
	w.liIdx = db.NewObject("LINEITEM_IDX", "index", idxPool, 1, 0, frac(0.04))
	w.oIdx = db.NewObject("ORDERS_IDX", "index", idxPool, 1, 1, frac(0.015))
	w.psIdx = db.NewObject("PARTSUPP_IDX", "index", idxPool, 1, 2, frac(0.01))
	w.pIdx = db.NewObject("PART_IDX", "index", idxPool, 1, 3, frac(0.005))
	w.cIdx = db.NewObject("CUSTOMER_IDX", "index", idxPool, 1, 4, frac(0.004))
	w.sIdx = db.NewObject("SUPPLIER_IDX", "index", idxPool, 1, 5, frac(0.001))
	w.temp = db.NewObject("TEMP", "temp", tmpPool, 1, 8, frac(0.05))
	w.catalog = db.NewObject("CATALOG", "catalog", idxPool, 1, 8, 4)

	var style dbsim.HintStyle = dbsim.DB2Style{}
	threads := 1
	if mysql {
		style = dbsim.MySQLStyle{}
		threads = 5
	}
	w.c = dbsim.NewClient(db, out, dbsim.Config{
		Style:           style,
		PoolSizes:       poolSizes,
		Threads:         threads,
		CheckpointEvery: 300,
		Seed:            p.Seed + 1,
	})

	for i := 0; i < w.catalog.Pages(); i++ {
		w.c.Read(w.catalog, i)
	}

	for w.c.Emitted() < p.Requests {
		w.runStream(p.Requests)
	}
	return nil
}

// runStream executes one query stream: the 22 templates in a pseudo-random
// order, then (DB2 only) the two refresh functions.
func (w *tpch) runStream(limit int) {
	order := w.rng.Perm(len(tpchQueries))
	for _, qi := range order {
		if w.c.Emitted() >= limit {
			return
		}
		q := tpchQueries[qi]
		if w.mysql && q.name == "Q18" {
			continue // excessive run time on the MySQL configuration (§6)
		}
		w.runQuery(q)
	}
	if !w.mysql {
		w.refresh1()
		w.refresh2()
	}
}

func (w *tpch) runQuery(q tpchQuery) {
	w.queryNo++
	w.c.SetThread(w.queryNo) // MySQL thread hint: one thread per query
	for _, s := range q.scans {
		obj := w.object(s.obj)
		// Selectivity jitter: scan 75%–125% of the nominal fraction.
		n := int(s.frac * (0.75 + 0.5*w.rng.Float64()) * float64(obj.Pages()))
		if n > obj.Pages() {
			n = obj.Pages()
		}
		w.scanChunked(obj, 0, n)
	}
	for _, pr := range q.probes {
		inner := w.object(pr.inner)
		idx := w.indexOf(pr.inner)
		for i := 0; i < pr.n; i++ {
			target := w.rng.Intn(inner.Pages())
			if idx != nil {
				w.c.Read(idx, idxPageFor(idx, inner, target))
			}
			for f := 0; f < pr.fanout && target+f < inner.Pages(); f++ {
				w.c.Read(inner, target+f)
			}
			if i%64 == 63 {
				w.c.Op()
			}
		}
		w.c.Op()
	}
	if q.spill > 0 {
		w.spill(q.spill)
	}
	w.c.Op()
}

// scanChunked scans in cleaner-friendly chunks so background writes
// interleave with the scan as they would in a real system.
func (w *tpch) scanChunked(obj *dbsim.Object, from, n int) {
	const chunk = 512
	for off := 0; off < n; off += chunk {
		c := chunk
		if off+c > n {
			c = n - off
		}
		w.c.Scan(obj, from+off, c, false)
		w.c.Op()
	}
}

// spill writes n temp pages (sort runs / hash partitions) and then reads
// them back — the write-then-re-read pattern that makes replacement writes
// of temp pages excellent server caching candidates.
func (w *tpch) spill(n int) {
	start := w.spillPtr
	for i := 0; i < n; i++ {
		w.c.Update(w.temp, (start+i)%w.temp.Pages())
	}
	w.c.Op()
	for i := 0; i < n; i++ {
		w.c.Read(w.temp, (start+i)%w.temp.Pages())
	}
	w.spillPtr = (start + n) % w.temp.Pages()
	w.c.Op()
}

// refresh1 (RF1) inserts new orders and their lineitems.
func (w *tpch) refresh1() {
	for i := 0; i < 150; i++ {
		w.c.Insert(w.orders, 80)
		lines := 1 + w.rng.Intn(7)
		for j := 0; j < lines; j++ {
			w.c.Insert(w.lineitem, 50)
		}
		if i%32 == 31 {
			w.c.Op()
		}
	}
	w.c.Op()
}

// refresh2 (RF2) deletes old orders: reads and dirties pages in the old
// half of ORDERS and LINEITEM.
func (w *tpch) refresh2() {
	half := w.orders.Pages() / 2
	for i := 0; i < 100; i++ {
		w.c.Update(w.orders, w.rng.Intn(half+1))
		if i%32 == 31 {
			w.c.Op()
		}
	}
	halfLI := w.lineitem.Pages() / 2
	for i := 0; i < 400; i++ {
		w.c.Update(w.lineitem, w.rng.Intn(halfLI+1))
		if i%32 == 31 {
			w.c.Op()
		}
	}
	w.c.Op()
}

func (w *tpch) object(name string) *dbsim.Object {
	o := w.db.Object(name)
	if o == nil {
		panic("workload: unknown TPC-H object " + name)
	}
	return o
}

func (w *tpch) indexOf(table string) *dbsim.Object {
	switch table {
	case "LINEITEM":
		return w.liIdx
	case "ORDERS":
		return w.oIdx
	case "PARTSUPP":
		return w.psIdx
	case "PART":
		return w.pIdx
	case "CUSTOMER":
		return w.cIdx
	case "SUPPLIER":
		return w.sIdx
	default:
		return nil
	}
}
