package workload

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hint"
	"repro/internal/trace"
)

// Spec describes a generated workload as data: a preset, optionally scaled
// to several concurrent clients, a total request budget, and a seed. The
// textual syntax is
//
//	NAME[*clients][:requests][@seed]
//
// e.g. "DB2_C60", "DB2_C60:10000000", "DB2_C60*4:100000000@7". It is the
// streaming counterpart of a trace path: anywhere a replay accepts a trace
// file it can accept a spec instead, and the requests are generated on the
// fly in bounded memory — a 100M-request run needs no 100M-request file.
type Spec struct {
	// Preset is the base preset with Requests and Seed already adjusted to
	// the spec (for multi-client specs, Requests is the total across
	// clients).
	Preset Preset
	// Clients is the number of concurrent simulated clients (>= 1). Each
	// client runs the preset's workload with a split seed, a private page
	// region, and client-namespaced hints; their streams are merged
	// round-robin.
	Clients int
}

// clientPageBits is the size of each client's private page region in a
// multi-client merge. Generated page numbers stay far below 2^44 (databases
// are tens of millions of pages at most), so regions never collide.
const clientPageBits = 44

// ParseSpec parses the NAME[*clients][:requests][@seed] syntax against the
// known presets.
func ParseSpec(s string) (Spec, error) {
	spec := Spec{Clients: 1}
	rest := s
	var seed *int64
	var requests *int
	if i := strings.IndexByte(rest, '@'); i >= 0 {
		v, err := strconv.ParseInt(rest[i+1:], 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: spec %q: bad seed: %v", s, err)
		}
		rest = rest[:i]
		seed = &v
	}
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n <= 0 {
			return Spec{}, fmt.Errorf("workload: spec %q: bad request count", s)
		}
		rest = rest[:i]
		requests = &n
	}
	if i := strings.IndexByte(rest, '*'); i >= 0 {
		n, err := strconv.Atoi(rest[i+1:])
		if err != nil || n < 1 || n > 256 {
			return Spec{}, fmt.Errorf("workload: spec %q: bad client count (1..256)", s)
		}
		rest = rest[:i]
		spec.Clients = n
	}
	p, err := PresetByName(rest)
	if err != nil {
		return Spec{}, fmt.Errorf("workload: spec %q: %w", s, err)
	}
	spec.Preset = p
	if requests != nil {
		spec.Preset.Requests = *requests
	}
	if seed != nil {
		spec.Preset.Seed = *seed
	}
	return spec, nil
}

// String renders the spec in the ParseSpec syntax.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Preset.Name)
	if s.Clients > 1 {
		fmt.Fprintf(&b, "*%d", s.Clients)
	}
	fmt.Fprintf(&b, ":%d", s.Preset.Requests)
	if base, _ := PresetByName(s.Preset.Name); s.Preset.Seed != base.Seed {
		fmt.Fprintf(&b, "@%d", s.Preset.Seed)
	}
	return b.String()
}

// SplitSeed derives the i-th child seed from a base seed, splitmix64-style:
// well-mixed, collision-free for distinct i, and machine-independent —
// the foundation of deterministic parallel generation.
func SplitSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// clientPresets returns the per-client presets of a multi-client spec: each
// client runs the same workload with a split seed and an even share of the
// total request budget (earlier clients absorb the remainder).
func (s Spec) clientPresets() []Preset {
	ps := make([]Preset, s.Clients)
	base, rem := s.Preset.Requests/s.Clients, s.Preset.Requests%s.Clients
	for i := range ps {
		p := s.Preset
		p.Name = fmt.Sprintf("%s#%d", s.Preset.Name, i)
		p.Seed = SplitSeed(s.Preset.Seed, i)
		p.Requests = base
		if i < rem {
			p.Requests++
		}
		ps[i] = p
	}
	return ps
}

// ClientNames returns the merged trace's client list (what a trace.Writer
// for this spec should carry in its header).
func (s Spec) ClientNames() []string {
	if s.Clients <= 1 {
		return []string{s.Preset.Name}
	}
	names := make([]string, s.Clients)
	for i, p := range s.clientPresets() {
		names[i] = p.Name
	}
	return names
}

// GenerateTo streams the spec's requests into sink. Single-client specs run
// the plain generator (bit-identical to Generate). Multi-client specs run
// every client concurrently on its own goroutine, each feeding a bounded
// pipe, and merge the streams in canonical order — the output is
// bit-identical regardless of scheduling because the merge, not the
// goroutines, decides every byte.
func (s Spec) GenerateTo(sink trace.Sink) error {
	if s.Clients <= 1 {
		return GenerateTo(s.Preset, sink)
	}
	presets := s.clientPresets()
	its := make([]trace.Iterator, len(presets))
	for i, p := range presets {
		pw, pr := trace.NewPipe(p.Name, p.PageSize, []string{p.Name}, 0)
		its[i] = pr
		go func(p Preset, pw *trace.PipeWriter) {
			pw.CloseWithError(GenerateTo(p, pw))
		}(p, pw)
	}
	defer func() {
		for _, it := range its {
			it.Close()
		}
	}()
	return mergeStreams(sink, s.ClientNames(), its)
}

// Trace generates the spec in memory: the serial reference the golden tests
// compare the parallel streamed path against. Multi-client merges run the
// same mergeStreams core over in-memory iterators, so "what the bytes must
// be" is defined once.
func (s Spec) Trace() (*trace.Trace, error) {
	if s.Clients <= 1 {
		return Generate(s.Preset)
	}
	presets := s.clientPresets()
	its := make([]trace.Iterator, len(presets))
	for i, p := range presets {
		t, err := Generate(p)
		if err != nil {
			return nil, err
		}
		its[i] = t.Iter()
	}
	out := trace.New(s.Preset.Name, s.Preset.PageSize)
	out.Clients = s.ClientNames()
	if err := mergeStreams(out, out.Clients, its); err != nil {
		return nil, err
	}
	return out, out.Validate()
}

// Source exposes the spec as a trace.Source: each Iter spawns the (possibly
// parallel) generation behind a pipe, so replay paths consume generated
// requests exactly like scanned ones — without a trace file or an in-RAM
// trace anywhere.
func (s Spec) Source() trace.Source { return specSource{s} }

type specSource struct{ s Spec }

func (ss specSource) Label() string { return ss.s.String() }

func (ss specSource) Iter() (trace.Iterator, error) {
	pw, pr := trace.NewPipe(ss.s.Preset.Name, ss.s.Preset.PageSize, ss.s.ClientNames(), 0)
	go func() {
		pw.CloseWithError(ss.s.GenerateTo(pw))
	}()
	return pr, nil
}

// mergeStreams is the canonical multi-client merge: round-robin one request
// per client per turn (clients that run out drop out), client i's pages
// offset into the i-th private region, hint sets namespaced by the client
// name and interned into the sink's dictionary on first use in merge order.
// Every downstream byte is a pure function of the input streams, never of
// goroutine scheduling.
func mergeStreams(sink trace.Sink, names []string, its []trace.Iterator) error {
	const unset = ^hint.ID(0)
	remaps := make([][]hint.ID, len(its))
	done := make([]bool, len(its))
	alive := len(its)
	for alive > 0 {
		for i, it := range its {
			if done[i] {
				continue
			}
			if !it.Scan() {
				if err := it.Err(); err != nil {
					return fmt.Errorf("workload: client %s: %w", names[i], err)
				}
				done[i] = true
				alive--
				continue
			}
			r := it.Request()
			d := it.HintDict()
			for len(remaps[i]) < d.Len() {
				remaps[i] = append(remaps[i], unset)
			}
			id := remaps[i][r.Hint]
			if id == unset {
				set, err := hint.Parse(d.Key(r.Hint))
				if err != nil {
					return fmt.Errorf("workload: client %s: %w", names[i], err)
				}
				id = sink.HintDict().Intern(set.Namespace(names[i]))
				remaps[i][r.Hint] = id
			}
			sink.AppendReq(trace.Request{
				Page:   uint64(i)<<clientPageBits | r.Page,
				Hint:   id,
				Op:     r.Op,
				Client: uint8(i),
			})
		}
	}
	return trace.Err(sink)
}
