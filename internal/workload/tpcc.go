package workload

import (
	"math/rand"

	"repro/internal/dbsim"
	"repro/internal/randx"
	"repro/internal/trace"
)

// tpcc runs a TPC-C-like transaction mix against a simulated DB2-style
// client: NewOrder 45%, Payment 43%, OrderStatus 4%, Delivery 4%,
// StockLevel 4% (the standard mix). The access patterns are chosen so the
// trace exhibits the structures the paper's Figure 3 highlights: STOCK
// pages are updated at random and pushed out by the page cleaner
// (high-value replacement writes), while ORDERLINE pages are appended and
// re-read much later by Delivery (long-distance, low-value reads).
type tpcc struct {
	c   *dbsim.Client
	db  *dbsim.Database
	rng *rand.Rand

	warehouse, district, customer, stock *dbsim.Object
	orders, orderline, neworder, history *dbsim.Object
	item, catalog                        *dbsim.Object
	custIdx, custNameIdx, stockIdx       *dbsim.Object
	ordersIdx, orderlineIdx, itemIdx     *dbsim.Object
	newordIdx, distIdx                   *dbsim.Object

	itemZipf    *randx.Zipf
	stockZipf   *randx.Zipf
	deliveryPtr int // next ORDERLINE page Delivery will re-read
}

// Rows per page for the growing tables. These are set low (pages fill after
// a handful of rows) so the database grows at a rate comparable to the
// paper's TPC-C runs, where the page count tripled over the trace
// (Figure 5: 600K initial pages, up to 1.8M distinct pages touched).
const (
	ordersRows    = 24
	orderlineRows = 12
	historyRows   = 40
	newordRows    = 80
)

func generateTPCC(p Preset, out trace.Sink) error {
	db := dbsim.NewDatabase(p.PageSize)

	// Buffer pools: pool 0 holds data tables (80%), pool 1 indexes and the
	// catalog (20%) — matching the paper's two DB2 TPC-C pools (Figure 2).
	dataPool := p.ClientBuffer * 8 / 10
	idxPool := p.ClientBuffer - dataPool

	frac := func(f float64) int {
		n := int(f * float64(p.DBPages))
		if n < 1 {
			n = 1
		}
		return n
	}
	w := &tpcc{db: db, rng: randx.New(p.Seed)}

	// Data objects (pool 0). Buffer priorities follow hotness: 3 for the
	// tiny always-hot tables, 1 for the big randomly-accessed ones, 0 for
	// append-mostly ones.
	w.warehouse = db.NewObject("WAREHOUSE", "table", 0, 3, 0, 4)
	w.district = db.NewObject("DISTRICT", "table", 0, 3, 1, 8)
	w.customer = db.NewObject("CUSTOMER", "table", 0, 1, 2, frac(0.12))
	w.stock = db.NewObject("STOCK", "table", 0, 1, 3, frac(0.40))
	w.orders = db.NewObject("ORDERS", "table", 0, 0, 4, frac(0.04))
	w.orderline = db.NewObject("ORDERLINE", "table", 0, 0, 5, frac(0.16))
	w.neworder = db.NewObject("NEWORDER", "table", 0, 0, 6, frac(0.01))
	w.history = db.NewObject("HISTORY", "table", 0, 0, 7, frac(0.03))
	w.item = db.NewObject("ITEM", "table", 0, 2, 8, frac(0.04))
	// Index objects and catalog (pool 1).
	w.custIdx = db.NewObject("CUSTOMER_IDX", "index", 1, 2, 2, frac(0.03))
	w.custNameIdx = db.NewObject("CUSTOMER_NAME_IDX", "index", 1, 2, 2, frac(0.01))
	w.stockIdx = db.NewObject("STOCK_IDX", "index", 1, 2, 3, frac(0.05))
	w.ordersIdx = db.NewObject("ORDERS_IDX", "index", 1, 2, 4, frac(0.01))
	w.orderlineIdx = db.NewObject("ORDERLINE_IDX", "index", 1, 2, 5, frac(0.03))
	w.itemIdx = db.NewObject("ITEM_IDX", "index", 1, 2, 8, frac(0.01))
	w.newordIdx = db.NewObject("NEWORDER_IDX", "index", 1, 2, 6, 2)
	w.distIdx = db.NewObject("DISTRICT_IDX", "index", 1, 3, 1, 2)
	w.catalog = db.NewObject("CATALOG", "catalog", 1, 3, 9, 4)

	w.c = dbsim.NewClient(db, out, dbsim.Config{
		Style:     dbsim.DB2Style{},
		PoolSizes: []int{dataPool, idxPool},
		// A cleaner batch slightly below the update rate lets bursts push
		// dirty pages to the LRU tail, producing the synchronous writes the
		// DB2 traces contain alongside asynchronous replacement writes.
		CleanerBatch:    32,
		CheckpointEvery: 10000,
		Seed:            p.Seed + 1,
	})
	// Popular items follow a Zipf distribution over ITEM pages, and since
	// stock rows are selected by item, STOCK page popularity inherits a
	// (milder) skew: a hot minority of stock pages is updated and re-read
	// much more often than the rest.
	w.itemZipf = randx.NewZipf(randx.New(p.Seed+2), w.item.Pages(), 1)
	w.stockZipf = randx.NewZipf(randx.New(p.Seed+3), w.stock.Pages(), 0.55)
	w.deliveryPtr = w.orderline.Pages() / 4

	// Warm the catalog once, as a DBMS would at startup.
	for i := 0; i < w.catalog.Pages(); i++ {
		w.c.Read(w.catalog, i)
	}

	for w.c.Emitted() < p.Requests {
		switch d := w.rng.Intn(100); {
		case d < 45:
			w.newOrder()
		case d < 88:
			w.payment()
		case d < 92:
			w.orderStatus()
		case d < 96:
			w.delivery()
		default:
			w.stockLevel()
		}
	}
	return nil
}

// uniformPage returns a uniformly random page index of obj.
func (w *tpcc) uniformPage(obj *dbsim.Object) int { return w.rng.Intn(obj.Pages()) }

// nurandPage returns a skewed page index of obj using TPC-C's NURand.
func (w *tpcc) nurandPage(obj *dbsim.Object) int {
	n := obj.Pages()
	a := 255
	if n <= a {
		a = n/2 + 1
	}
	return randx.NURand(w.rng, a, 0, n-1, 42)
}

// idxPageFor returns the index page covering the given table page,
// assuming the index is ordered like the table (dense mapping).
func idxPageFor(idx *dbsim.Object, table *dbsim.Object, tablePage int) int {
	p := tablePage * idx.Pages() / table.Pages()
	if p >= idx.Pages() {
		p = idx.Pages() - 1
	}
	return p
}

// recentPage returns a page index near the tail of a growing object.
func (w *tpcc) recentPage(obj *dbsim.Object, window int) int {
	n := obj.Pages()
	if window > n {
		window = n
	}
	return n - 1 - w.rng.Intn(window)
}

func (w *tpcc) newOrder() {
	w.c.Read(w.warehouse, w.rng.Intn(w.warehouse.Pages()))
	w.c.Update(w.district, w.rng.Intn(w.district.Pages()))
	cp := w.nurandPage(w.customer)
	w.c.Read(w.custIdx, idxPageFor(w.custIdx, w.customer, cp))
	w.c.Read(w.customer, cp)
	lines := 5 + w.rng.Intn(11)
	for i := 0; i < lines; i++ {
		ip := w.itemZipf.Next()
		w.c.Read(w.itemIdx, idxPageFor(w.itemIdx, w.item, ip))
		w.c.Read(w.item, ip)
		sp := w.stockZipf.Next()
		w.c.Read(w.stockIdx, idxPageFor(w.stockIdx, w.stock, sp))
		w.c.Update(w.stock, sp)
	}
	w.c.Insert(w.orders, ordersRows)
	w.c.Update(w.ordersIdx, w.ordersIdx.Pages()-1)
	w.c.Insert(w.neworder, newordRows)
	w.c.Update(w.newordIdx, w.newordIdx.Pages()-1)
	for i := 0; i < lines; i++ {
		w.c.Insert(w.orderline, orderlineRows)
	}
	w.c.Update(w.orderlineIdx, w.orderlineIdx.Pages()-1)
	w.c.Op()
}

func (w *tpcc) payment() {
	w.c.Update(w.warehouse, w.rng.Intn(w.warehouse.Pages()))
	w.c.Update(w.district, w.rng.Intn(w.district.Pages()))
	cp := w.nurandPage(w.customer)
	// 60% of payments locate the customer by last name (extra index).
	if w.rng.Intn(100) < 60 {
		w.c.Read(w.custNameIdx, idxPageFor(w.custNameIdx, w.customer, cp))
	}
	w.c.Read(w.custIdx, idxPageFor(w.custIdx, w.customer, cp))
	w.c.Update(w.customer, cp)
	w.c.Insert(w.history, historyRows)
	w.c.Op()
}

func (w *tpcc) orderStatus() {
	cp := w.nurandPage(w.customer)
	w.c.Read(w.custNameIdx, idxPageFor(w.custNameIdx, w.customer, cp))
	w.c.Read(w.custIdx, idxPageFor(w.custIdx, w.customer, cp))
	w.c.Read(w.customer, cp)
	op := w.recentPage(w.orders, 64)
	w.c.Read(w.ordersIdx, idxPageFor(w.ordersIdx, w.orders, op))
	w.c.Read(w.orders, op)
	for i := 0; i < 2; i++ {
		w.c.Read(w.orderline, w.recentPage(w.orderline, 256))
	}
	w.c.Op()
}

// delivery processes the oldest undelivered orders: it walks ORDERLINE
// sequentially from a pointer that trails the append frontier, producing
// the long-re-reference-distance ORDERLINE reads of Figure 3.
func (w *tpcc) delivery() {
	for d := 0; d < 10; d++ {
		w.c.Read(w.newordIdx, 0)
		w.c.Update(w.neworder, w.recentPage(w.neworder, 16))
		op := w.recentPage(w.orders, 512)
		w.c.Read(w.ordersIdx, idxPageFor(w.ordersIdx, w.orders, op))
		w.c.Update(w.orders, op)
		// Consume one ORDERLINE page per district.
		if w.deliveryPtr >= w.orderline.Pages()-32 {
			// Caught up with the append frontier: fall back to an older
			// region, as delivery batches do when re-scanning arrears.
			n := w.orderline.Pages()
			w.deliveryPtr = n/4 + w.rng.Intn(n/4+1)
		}
		w.c.Update(w.orderline, w.deliveryPtr)
		w.deliveryPtr++
		w.c.Update(w.customer, w.nurandPage(w.customer))
	}
	w.c.Op()
}

func (w *tpcc) stockLevel() {
	w.c.Read(w.district, w.rng.Intn(w.district.Pages()))
	// Examine the 10 most recent ORDERLINE pages...
	start := w.orderline.Pages() - 10
	if start < 0 {
		start = 0
	}
	w.c.Scan(w.orderline, start, 10, false)
	// ...and check stock for ~20 of the items seen.
	for i := 0; i < 20; i++ {
		sp := w.stockZipf.Next()
		w.c.Read(w.stockIdx, idxPageFor(w.stockIdx, w.stock, sp))
		w.c.Read(w.stock, sp)
	}
	w.c.Op()
}
