package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/hint"
	"repro/internal/netclient"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Announce extends every node's hint table with keys discovered after
// Hello. The same keys go to every node in the same order, preserving the
// invariant that announcement indices mean the same thing cluster-wide.
// Frames are buffered and ride ahead of each node's next sub-batch.
func (r *Router) Announce(keys []string) error {
	for i, conn := range r.conns {
		if err := conn.Announce(keys); err != nil {
			return fmt.Errorf("cluster: announce to %s: %w", r.ring.Name(i), err)
		}
	}
	return nil
}

// Announced returns how many hint keys this router has announced (the same
// count on every node: Hello and Announce always fan identical key lists).
func (r *Router) Announced() int {
	if len(r.conns) == 0 {
		return 0
	}
	return r.conns[0].Announced()
}

// ReplaySource replays any request source — a trace file, an in-memory
// trace, or a live generator spec — against a cluster, never materialising
// the stream: Replay generalised the same way netclient.ReplaySource
// generalises netclient.Replay.
func ReplaySource(nodes []Node, src trace.Source, opt ReplayOptions) (sim.Result, error) {
	it, err := src.Iter()
	if err != nil {
		return sim.Result{}, err
	}
	defer it.Close()
	return ReplayIterator(nodes, it, opt)
}

// ReplayIterator replays a request iterator against a cluster with one
// Router (one connection per node) and one goroutine per discovered client.
// Clients and hint keys may appear as the iteration proceeds (text traces,
// v2 dict sections, generated streams); new keys are announced to every
// node ahead of the first batch that references them.
func ReplayIterator(nodes []Node, it trace.Iterator, opt ReplayOptions) (sim.Result, error) {
	type worker struct {
		ch      chan []trace.Request
		free    chan []trace.Request
		pending []trace.Request
		st      *sim.ClientStat
		// size is the worker's current adaptive batch size, read by the
		// dispatcher to decide batch boundaries.
		size atomic.Int64
	}
	var (
		log       keyLog
		workers   []*worker
		stats     []*sim.ClientStat
		wg        sync.WaitGroup
		mu        sync.Mutex
		first     error
		policy    string
		capacity  int
		haveLabel bool
		total     uint64
		dictLen   int
	)
	log.grow(it.HintDict())
	dictLen = it.HintDict().Len()
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}
	spawn := func(name string) *worker {
		w := &worker{
			ch:   make(chan []trace.Request, 4),
			free: make(chan []trace.Request, 8),
			st:   &sim.ClientStat{Name: name},
		}
		sizer := netclient.NewBatchSizer(opt.BatchSize)
		w.size.Store(int64(sizer.Current()))
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pl *RouterPipeline
			router, err := DialRouter(nodes, opt.VirtualNodes)
			if err != nil {
				fail(err)
				router = nil
			} else {
				defer router.Close()
				if err := router.Hello(name, log.since(0)); err != nil {
					fail(err)
					router = nil
				} else {
					mu.Lock()
					if !haveLabel {
						policy, capacity, haveLabel = router.PolicyName(), router.Capacity(), true
					}
					mu.Unlock()
					pl = router.Pipeline(opt.depth(), func(_ any, isRead, hits []bool, _ int, rttNs int64) error {
						for i, rd := range isRead {
							if rd {
								w.st.Reads++
								if hits[i] {
									w.st.ReadHits++
								}
							}
						}
						sizer.Observe(rttNs, len(isRead))
						w.size.Store(int64(sizer.Current()))
						return nil
					})
				}
			}
			send := func(reqs []trace.Request) error {
				if fresh := log.since(router.Announced()); len(fresh) > 0 {
					if err := router.Announce(fresh); err != nil {
						return err
					}
				}
				return pl.Submit(reqs, nil)
			}
			for reqs := range w.ch {
				// On failure keep draining so the dispatcher never blocks.
				if router != nil && !failed() {
					if err := send(reqs); err != nil {
						fail(err)
					}
				}
				select {
				case w.free <- reqs[:0]:
				default:
				}
			}
			if pl != nil && !failed() {
				if err := pl.Drain(); err != nil {
					fail(err)
				}
			}
		}()
		return w
	}

	for it.Scan() {
		if opt.Limit > 0 && total >= uint64(opt.Limit) {
			break
		}
		if failed() {
			break
		}
		r := it.Request()
		if n := it.HintDict().Len(); n != dictLen {
			log.grow(it.HintDict())
			dictLen = n
		}
		c := int(r.Client)
		for c >= len(workers) {
			names := it.Clients()
			name := fmt.Sprintf("client%d", len(workers))
			if len(workers) < len(names) {
				name = names[len(workers)]
			}
			w := spawn(name)
			workers = append(workers, w)
			stats = append(stats, w.st)
		}
		w := workers[c]
		w.pending = append(w.pending, r)
		if len(w.pending) >= int(w.size.Load()) {
			w.ch <- w.pending
			select {
			case w.pending = <-w.free:
			default:
				w.pending = nil
			}
		}
		total++
	}
	for _, w := range workers {
		if len(w.pending) > 0 {
			w.ch <- w.pending
		}
		close(w.ch)
	}
	wg.Wait()
	if err := it.Err(); err != nil {
		return sim.Result{}, err
	}
	if first != nil {
		return sim.Result{}, first
	}

	res := sim.Result{
		Trace:     it.Name(),
		Policy:    policy,
		CacheSize: capacity,
		Requests:  total,
		PerClient: make([]sim.ClientStat, len(stats)),
	}
	for i, st := range stats {
		res.PerClient[i] = *st
		res.Reads += st.Reads
		res.ReadHits += st.ReadHits
	}
	return res, nil
}

// keyLog is the append-only list of hint keys discovered by a streaming
// scan, shared between the dispatcher (writer) and the per-client senders
// (readers catching their routers up before each batch) — the cluster twin
// of netclient's keyLog.
type keyLog struct {
	mu   sync.Mutex
	keys []string
}

func (l *keyLog) grow(d *hint.Dict) {
	l.mu.Lock()
	for id := len(l.keys); id < d.Len(); id++ {
		l.keys = append(l.keys, d.Key(hint.ID(id)))
	}
	l.mu.Unlock()
}

func (l *keyLog) since(from int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from >= len(l.keys) {
		return nil
	}
	out := make([]string, len(l.keys)-from)
	copy(out, l.keys[from:])
	return out
}
