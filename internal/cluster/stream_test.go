package cluster_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/hint"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestClusterReplaySourceFile streams a v2 trace file through a cluster.
// Small blocks force dictionary sections to arrive mid-stream, so the
// routers must Announce new keys to every node ahead of the batches that
// use them. Per-client read counts are exact; they must match the in-RAM
// cluster.Replay of the same trace.
func TestClusterReplaySourceFile(t *testing.T) {
	spec, err := workload.ParseSpec("DB2_C60*3:15000")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := spec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stream.clic")
	w, err := trace.Create(path, tr.Name, tr.PageSize, tr.Clients, trace.WriterOptions{BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	it := tr.Iter()
	d := w.HintDict()
	for it.Scan() {
		r := it.Request()
		// Intern lazily (in ID order, so IDs are preserved) so dictionary
		// sections interleave with request blocks instead of arriving in one
		// up-front section.
		for id := d.Len(); id <= int(r.Hint); id++ {
			d.InternKey(tr.Dict.Key(hint.ID(id)))
		}
		w.AppendReq(r)
	}
	it.Close()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	h := startHarness(t, cluster.HarnessConfig{
		Nodes: 2,
		Cache: core.Config{Capacity: 2000, Window: 2000},
	})
	want, err := cluster.Replay(h.Nodes(), tr, cluster.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	h2 := startHarness(t, cluster.HarnessConfig{
		Nodes: 2,
		Cache: core.Config{Capacity: 2000, Window: 2000},
	})
	got, err := cluster.ReplaySource(h2.Nodes(), trace.FileSource(path), cluster.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if got.Requests != uint64(tr.Len()) {
		t.Errorf("Requests = %d, want %d", got.Requests, tr.Len())
	}
	if got.Policy != want.Policy || got.CacheSize != want.CacheSize {
		t.Errorf("label %s/%d, want %s/%d", got.Policy, got.CacheSize, want.Policy, want.CacheSize)
	}
	if len(got.PerClient) != len(want.PerClient) {
		t.Fatalf("PerClient has %d entries, want %d", len(got.PerClient), len(want.PerClient))
	}
	for c := range got.PerClient {
		if got.PerClient[c].Name != want.PerClient[c].Name {
			t.Errorf("client %d named %q, want %q", c, got.PerClient[c].Name, want.PerClient[c].Name)
		}
		if got.PerClient[c].Reads != want.PerClient[c].Reads {
			t.Errorf("client %d: %d reads, want %d", c, got.PerClient[c].Reads, want.PerClient[c].Reads)
		}
	}
	if got.ReadHits == 0 {
		t.Error("no hits; test is vacuous")
	}

	// The file really is the v2 format with an incremental dictionary.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	magic := make([]byte, 8)
	if _, err := f.Read(magic); err != nil || string(magic) != "CLICTRC2" {
		t.Fatalf("file magic %q, err %v", magic, err)
	}
}

// TestClusterReplaySourceGenerator streams straight from a live workload
// generator into a cluster — no trace in RAM or on disk anywhere.
func TestClusterReplaySourceGenerator(t *testing.T) {
	spec, err := workload.ParseSpec("DB2_C60*2:10000")
	if err != nil {
		t.Fatal(err)
	}
	h := startHarness(t, cluster.HarnessConfig{
		Nodes: 2,
		Cache: core.Config{Capacity: 1500, Window: 1500},
	})
	res, err := cluster.ReplaySource(h.Nodes(), spec.Source(), cluster.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 10000 {
		t.Errorf("Requests = %d, want 10000", res.Requests)
	}
	if len(res.PerClient) != 2 {
		t.Fatalf("PerClient has %d entries, want 2", len(res.PerClient))
	}
	for c, st := range res.PerClient {
		if st.Name != spec.ClientNames()[c] {
			t.Errorf("client %d named %q, want %q", c, st.Name, spec.ClientNames()[c])
		}
		if st.Reads == 0 {
			t.Errorf("client %d issued no reads", c)
		}
	}
	if res.ReadHits == 0 {
		t.Error("no hits; test is vacuous")
	}
}
