package cluster

import (
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/netclient"
	"repro/internal/server"
	"repro/internal/wire"
)

// Coordinator is the in-process summary exchanger: every node's publish
// hook enqueues its window summaries here, and Step delivers everything
// queued to all other nodes. Holding summaries until Step makes cluster
// replays schedulable — a serial driver that steps between request batches
// gets a fully deterministic exchange (delivery is sorted by origin and
// round, so even summaries enqueued concurrently land in canonical order),
// which is what makes the cluster ablation golden-testable. SetImmediate
// switches to delivery at publish time for concurrent stress runs, where
// determinism is out the window anyway.
type Coordinator struct {
	mu        sync.Mutex
	servers   []*server.Server
	queue     []queuedSummary
	immediate bool
	delivered metrics.Counter
}

// queuedSummary is one published summary awaiting delivery, tagged with
// the index of the node that published it (so it is not delivered back).
type queuedSummary struct {
	origin int
	sum    wire.Summary
}

// NewCoordinator returns a coordinator for an n-node cluster. Wire each
// node i with Publisher(i) as its server.Config.OnSummary, then Register
// the built server under the same index.
func NewCoordinator(n int) *Coordinator {
	return &Coordinator{servers: make([]*server.Server, n)}
}

// Publisher returns the publication hook for node origin. The hook only
// enqueues (or, in immediate mode, delivers) — safe to call from inside
// the learner's rotation.
func (c *Coordinator) Publisher(origin int) func(wire.Summary) {
	return func(sum wire.Summary) {
		c.mu.Lock()
		if c.immediate {
			targets := c.deliveryTargets(origin)
			c.mu.Unlock()
			c.deliver(targets, sum)
			return
		}
		c.queue = append(c.queue, queuedSummary{origin: origin, sum: sum})
		c.mu.Unlock()
	}
}

// Register attaches the built server for node origin.
func (c *Coordinator) Register(origin int, srv *server.Server) {
	c.mu.Lock()
	c.servers[origin] = srv
	c.mu.Unlock()
}

// SetImmediate toggles delivery at publish time (plus a drain of anything
// already queued when turning it on).
func (c *Coordinator) SetImmediate(on bool) {
	c.mu.Lock()
	c.immediate = on
	c.mu.Unlock()
	if on {
		c.Step()
	}
}

// deliveryTargets returns every registered server except origin's, in node
// order. Callers hold c.mu.
func (c *Coordinator) deliveryTargets(origin int) []*server.Server {
	targets := make([]*server.Server, 0, len(c.servers)-1)
	for i, srv := range c.servers {
		if i != origin && srv != nil {
			targets = append(targets, srv)
		}
	}
	return targets
}

// deliver absorbs one summary into every target. Absorption errors are
// impossible by construction here (every registered server runs merged
// mode) but surface defensively via panic rather than silent loss.
func (c *Coordinator) deliver(targets []*server.Server, sum wire.Summary) {
	for _, srv := range targets {
		if err := srv.AbsorbSummary(sum); err != nil {
			panic("cluster: coordinator delivery failed: " + err.Error())
		}
		c.delivered.Inc()
	}
}

// Step delivers every queued summary to all other nodes and reports how
// many deliveries it made. Delivery order is canonical — summaries sort by
// (origin, round) — so stepping between the batches of a serial replay is
// deterministic no matter how the publishing rotations interleaved.
func (c *Coordinator) Step() int {
	c.mu.Lock()
	queue := c.queue
	c.queue = nil
	c.mu.Unlock()
	if len(queue) == 0 {
		return 0
	}
	sort.SliceStable(queue, func(i, j int) bool {
		if queue[i].origin != queue[j].origin {
			return queue[i].origin < queue[j].origin
		}
		return queue[i].sum.Round < queue[j].sum.Round
	})
	n := 0
	for _, q := range queue {
		c.mu.Lock()
		targets := c.deliveryTargets(q.origin)
		c.mu.Unlock()
		c.deliver(targets, q.sum)
		n += len(targets)
	}
	return n
}

// Pending returns the number of summaries awaiting Step.
func (c *Coordinator) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Delivered returns the total deliveries made (one per summary per target).
func (c *Coordinator) Delivered() uint64 { return c.delivered.Value() }

// Gossip is the over-the-wire summary exchanger for real deployments
// (cmd/clicserve -cluster): a node's publish hook hands summaries to a
// background sender that ships them to every peer over ordinary protocol
// connections (wire Summary frames). Publication is non-blocking and
// lossy by design — a full buffer or an unreachable peer drops the
// summary and counts it, because a window summary is a perishable
// statistical aid, not state: the next rotation publishes a fresh one,
// and merged learning degrades gracefully toward local-only learning in
// the meantime.
type Gossip struct {
	peers []string
	ch    chan wire.Summary
	wg    sync.WaitGroup

	mu    sync.Mutex
	conns map[string]*netclient.Conn

	published metrics.Counter
	dropped   metrics.Counter
}

// DefaultGossipBuffer is the publication buffer when NewGossip gets 0: a
// handful of rotations of slack before a slow peer costs summaries.
const DefaultGossipBuffer = 16

// NewGossip starts a gossip sender shipping to the peer addresses. Use
// Publish (or hand it to server.Config.OnSummary) to send; Close to stop.
func NewGossip(peers []string, buffer int) *Gossip {
	if buffer <= 0 {
		buffer = DefaultGossipBuffer
	}
	g := &Gossip{
		peers: append([]string(nil), peers...),
		ch:    make(chan wire.Summary, buffer),
		conns: make(map[string]*netclient.Conn),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

// Publish enqueues one summary for delivery to every peer. Never blocks;
// a full buffer drops the summary (counted in Dropped).
func (g *Gossip) Publish(sum wire.Summary) {
	select {
	case g.ch <- sum:
	default:
		g.dropped.Add(uint64(len(g.peers)))
	}
}

// run is the sender loop: one summary at a time, to every peer, dialing
// lazily and redialing after errors.
func (g *Gossip) run() {
	defer g.wg.Done()
	for sum := range g.ch {
		for _, peer := range g.peers {
			if err := g.send(peer, sum); err != nil {
				g.dropped.Inc()
			} else {
				g.published.Inc()
			}
		}
	}
	g.mu.Lock()
	for _, conn := range g.conns {
		conn.Close()
	}
	g.conns = nil
	g.mu.Unlock()
}

// send ships one summary to one peer, (re)establishing the connection as
// needed. A send error tears the connection down so the next summary
// redials.
func (g *Gossip) send(peer string, sum wire.Summary) error {
	g.mu.Lock()
	conn := g.conns[peer]
	g.mu.Unlock()
	if conn == nil {
		c, err := netclient.Dial(peer)
		if err != nil {
			return err
		}
		if _, err := c.Hello("gossip:"+sum.Node, nil); err != nil {
			c.Close()
			return err
		}
		conn = c
		g.mu.Lock()
		g.conns[peer] = conn
		g.mu.Unlock()
	}
	if err := conn.SendSummary(sum); err != nil {
		conn.Close()
		g.mu.Lock()
		if g.conns[peer] == conn {
			delete(g.conns, peer)
		}
		g.mu.Unlock()
		return err
	}
	return nil
}

// Published returns successful peer deliveries; Dropped returns summaries
// lost to full buffers or peer errors (both counted per peer).
func (g *Gossip) Published() uint64 { return g.published.Value() }
func (g *Gossip) Dropped() uint64   { return g.dropped.Value() }

// Close stops the sender and closes the peer connections. Summaries still
// buffered are sent first.
func (g *Gossip) Close() {
	close(g.ch)
	g.wg.Wait()
}
