package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HarnessConfig parameterises an in-process cluster.
type HarnessConfig struct {
	// Nodes is the cluster size; 0 selects 1.
	Nodes int
	// Cache is the CLUSTER-WIDE cache configuration: capacity, outqueue
	// and statistics window are split evenly across the nodes (the same
	// resource-conserving split core.Sharded applies across shards), so a
	// 3-node cluster is compared against a single node with the same total
	// resources, not 3× the resources. Cache.Stats is overridden when
	// Merging is set.
	Cache core.Config
	// Shards is the shard count per node; 0 selects 1 (cluster tests
	// usually shard across nodes, not within them).
	Shards int
	// Merging switches every node to merged statistics mode
	// (core.StatsMerged) and wires the nodes through a Coordinator, so
	// window summaries flow between them. Without it nodes learn only
	// from their own slice of the stream.
	Merging bool
	// LocalBias is the merged learner's node-local weighting (see
	// clicstats.Config.LocalBias). Ignored without Merging.
	LocalBias float64
	// VirtualNodes is the ring density used by the harness's replay
	// drivers; 0 selects DefaultVirtualNodes.
	VirtualNodes int
}

// Harness is an in-process cluster: N cache servers on loopback listeners
// plus, in merging mode, the coordinator exchanging their window
// summaries. It exists so cluster behaviour — including the headline
// single-vs-cluster ablation — runs inside ordinary go tests over real
// TCP connections.
type Harness struct {
	servers []*server.Server
	nodes   []Node
	coord   *Coordinator
	vnodes  int
}

// StartHarness boots the cluster: every node gets its split of the cache
// configuration, a loopback listener, and (in merging mode) the
// coordinator's publish hook.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	n := cfg.Nodes
	if n <= 0 {
		n = 1
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	window := cfg.Cache.Window
	if window == 0 {
		window = core.DefaultWindow
	}
	h := &Harness{
		servers: make([]*server.Server, n),
		nodes:   make([]Node, n),
		vnodes:  cfg.VirtualNodes,
	}
	if cfg.Merging {
		h.coord = NewCoordinator(n)
	}
	for i := 0; i < n; i++ {
		sub := cfg.Cache
		sub.Capacity = splitEven(cfg.Cache.Capacity, n, i)
		sub.Window = splitEven(window, n, i)
		if sub.Window < 1 {
			sub.Window = 1
		}
		// A zero Noutq means "default to 5× capacity", which the node's own
		// smaller capacity already scales; only explicit entry counts split.
		if cfg.Cache.Noutq > 0 {
			if q := splitEven(cfg.Cache.Noutq, n, i); q > 0 {
				sub.Noutq = q
			} else {
				sub.Noutq = core.NoOutqueue
			}
		}
		scfg := server.Config{
			Cache:  sub,
			Shards: shards,
			Node:   fmt.Sprintf("node%d", i),
		}
		if cfg.Merging {
			scfg.Cache.Stats = core.StatsMerged
			scfg.Cache.LocalBias = cfg.LocalBias
			scfg.OnSummary = h.coord.Publisher(i)
		}
		srv := server.New(scfg)
		if err := srv.Start("127.0.0.1:0"); err != nil {
			h.Close()
			return nil, fmt.Errorf("cluster: starting node %d: %w", i, err)
		}
		h.servers[i] = srv
		h.nodes[i] = Node{Name: scfg.Node, Addr: srv.Addr().String()}
		if cfg.Merging {
			h.coord.Register(i, srv)
		}
	}
	return h, nil
}

// splitEven distributes total across n buckets, remainder to the lowest
// indices (mirrors core.Sharded's capacity split).
func splitEven(total, n, i int) int {
	v := total / n
	if i < total%n {
		v++
	}
	return v
}

// Nodes returns the cluster's routing table (stable names, live
// addresses) for DialRouter / Replay.
func (h *Harness) Nodes() []Node { return h.nodes }

// Server returns node i's server (stats, snapshots).
func (h *Harness) Server(i int) *server.Server { return h.servers[i] }

// Coordinator returns the summary exchanger (nil without Merging).
func (h *Harness) Coordinator() *Coordinator { return h.coord }

// Exchange delivers all pending window summaries between the nodes and
// reports the delivery count. A no-op (0) without Merging.
func (h *Harness) Exchange() int {
	if h.coord == nil {
		return 0
	}
	return h.coord.Step()
}

// Close shuts every node down.
func (h *Harness) Close() error {
	var first error
	for _, srv := range h.servers {
		if srv == nil {
			continue
		}
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReplaySerial replays a trace through one router, one batch at a time in
// trace order, exchanging summaries between batches. Single driver, no
// concurrent producers, canonical exchange order: the result is fully
// deterministic — the mode the golden tests and the cluster ablation run
// in. Per-client accounting is derived from the request tags, exactly like
// sim.Run's round-robin replay.
func (h *Harness) ReplaySerial(t *trace.Trace, opt ReplayOptions) (sim.Result, error) {
	if opt.Limit > 0 {
		t = t.Truncate(opt.Limit)
	}
	router, err := DialRouter(h.nodes, h.vnodes)
	if err != nil {
		return sim.Result{}, err
	}
	defer router.Close()
	if err := router.Hello("harness", t.Dict.Keys()); err != nil {
		return sim.Result{}, err
	}
	res := sim.Result{
		Trace:     t.Name,
		Policy:    router.PolicyName(),
		CacheSize: router.Capacity(),
		Requests:  uint64(len(t.Reqs)),
		PerClient: make([]sim.ClientStat, len(t.Clients)),
	}
	for c, name := range t.Clients {
		res.PerClient[c].Name = name
	}
	batch := opt.batch()
	reqs := t.Reqs
	for len(reqs) > 0 {
		n := batch
		if n > len(reqs) {
			n = len(reqs)
		}
		hits, _, err := router.Do(reqs[:n])
		if err != nil {
			return sim.Result{}, err
		}
		for i, r := range reqs[:n] {
			if r.Op == trace.Read {
				st := &res.PerClient[r.Client]
				st.Reads++
				res.Reads++
				if hits[i] {
					st.ReadHits++
					res.ReadHits++
				}
			}
		}
		reqs = reqs[n:]
		h.Exchange()
	}
	return res, nil
}

// Replay replays a trace concurrently — one router per trace client — while
// a background pump exchanges summaries as they appear. Nondeterministic
// like every concurrent replay; this is the stress and benchmark mode.
func (h *Harness) Replay(t *trace.Trace, opt ReplayOptions) (sim.Result, error) {
	if opt.VirtualNodes == 0 {
		opt.VirtualNodes = h.vnodes
	}
	stop := make(chan struct{})
	pumped := make(chan struct{})
	if h.coord != nil {
		go func() {
			defer close(pumped)
			for {
				select {
				case <-stop:
					return
				case <-time.After(200 * time.Microsecond):
					h.coord.Step()
				}
			}
		}()
	} else {
		close(pumped)
	}
	res, err := Replay(h.nodes, t, opt)
	close(stop)
	<-pumped
	h.Exchange()
	return res, err
}
