// Package cluster scales the CLIC storage-server cache out to several
// nodes: a consistent-hash ring assigns every page to one owning node, a
// routing client splits request batches across the owners, and — the part
// that matters for the paper's hint learning — the nodes exchange window
// summaries so each node's merged learner (clicstats.Merged) approximates
// the cluster-wide request stream instead of only its own slice of it.
//
// Placement divides the request stream, and with it the hint statistics:
// a node that owns one third of the pages sees roughly one third of each
// hint set's requests and re-references, so per-node priorities are
// learned from samples N times smaller than a single node's. The summary
// exchange restores the lost sample mass. At every window rotation a
// merged-mode node publishes its window counters (keyed by canonical hint
// strings — hint IDs are per-node interning orders) through an exchanger —
// the in-process Coordinator or the TCP Gossip — and folds the summaries
// it received into its own rotation, so the priorities driving eviction
// approximate what a single node with the whole stream would have learned.
//
// The in-process Harness boots an N-node cluster on loopback listeners and
// replays traces through the router, either deterministically
// (ReplaySerial, for golden tests and ablations) or concurrently (Replay,
// for stress and benchmarks).
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the ring points placed per node when the caller
// does not choose: enough that a 3–8 node ring balances within a few
// percent, few enough that building the ring stays trivial.
const DefaultVirtualNodes = 64

// ringSalt decorrelates the ring's page hash from the in-node shard hash
// (core.Sharded.ShardFor runs the same mixer on the raw page number; the
// salt keeps ring position and shard index independent).
const ringSalt = 0x9e3779b97f4a7c15

// ringPoint is one virtual node: a position on the hash circle owned by a
// physical node.
type ringPoint struct {
	hash uint64
	node int
}

// Ring is a consistent-hash ring mapping pages to nodes. Placement is a
// pure function of the node names and the page number — ephemeral details
// like listen addresses never influence it, so a cluster booted twice (or
// described by two routers) places every page identically.
type Ring struct {
	names  []string
	points []ringPoint
}

// NewRing builds a ring over the named nodes with vnodes virtual nodes
// each (0 selects DefaultVirtualNodes). Names must be non-empty and
// distinct; order does not affect placement.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("cluster: node %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", name)
		}
		seen[name] = true
		base := hashString(name)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: mix64(base + uint64(v)), node: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// A full-period hash collision across names is vanishingly rare but
		// must still order deterministically.
		return r.names[a.node] < r.names[b.node]
	})
	return r, nil
}

// Nodes returns the node count.
func (r *Ring) Nodes() int { return len(r.names) }

// Name returns the identity of node i.
func (r *Ring) Name(i int) string { return r.names[i] }

// Owner returns the node owning a page: the first ring point at or after
// the page's position, wrapping at the top of the circle. Like the shard
// hash, the page number is mixed first so sequential page ranges spread
// instead of striping.
func (r *Ring) Owner(page uint64) int {
	h := mix64(page ^ ringSalt)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].hash >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].node
}

// hashString is FNV-1a, the seed for a node's virtual-node positions.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// mix64 is the SplitMix64 finalizer (same mixer core.Sharded uses for
// shard placement, decorrelated here via ringSalt and the FNV seed).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
