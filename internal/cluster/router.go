package cluster

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/netclient"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Node identifies one cluster member to a router: a stable name (the ring
// placement key — must match across every router and every boot of the
// cluster) and the address its page-request listener currently answers on.
type Node struct {
	Name string
	Addr string
}

// Router is one logical client connection to a whole cluster: it holds one
// netclient.Conn per node and splits every request batch by ring owner,
// fanning the sub-batches out concurrently and reassembling the per-request
// results in submission order — callers see exactly the Do contract of a
// single connection, just answered by N caches. Like netclient.Conn it is
// not safe for concurrent use; the replay drivers give each goroutine its
// own Router.
type Router struct {
	ring  *Ring
	conns []*netclient.Conn
	acks  []wire.HelloAck

	// Per-Do scratch, reused across batches: the per-node sub-batches, the
	// submission index of each sub-batch entry, and the reassembled hits.
	split [][]trace.Request
	index [][]int
	hits  []bool
	errs  []error
}

// DialRouter connects to every node of a cluster (vnodes as in NewRing;
// 0 selects DefaultVirtualNodes). Call Hello next, then Do.
func DialRouter(nodes []Node, vnodes int) (*Router, error) {
	names := make([]string, len(nodes))
	for i, n := range nodes {
		names[i] = n.Name
	}
	ring, err := NewRing(names, vnodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		ring:  ring,
		conns: make([]*netclient.Conn, len(nodes)),
		acks:  make([]wire.HelloAck, len(nodes)),
		split: make([][]trace.Request, len(nodes)),
		index: make([][]int, len(nodes)),
		errs:  make([]error, len(nodes)),
	}
	for i, n := range nodes {
		conn, err := netclient.Dial(n.Addr)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("cluster: dialing %s (%s): %w", n.Name, n.Addr, err)
		}
		r.conns[i] = conn
	}
	return r, nil
}

// Hello handshakes with every node, announcing the same client name and
// hint vocabulary everywhere (requests then reference keys by announcement
// index regardless of which node serves them).
func (r *Router) Hello(client string, keys []string) error {
	for i, conn := range r.conns {
		ack, err := conn.Hello(client, keys)
		if err != nil {
			return fmt.Errorf("cluster: hello to %s: %w", r.ring.Name(i), err)
		}
		r.acks[i] = ack
	}
	return nil
}

// Close closes every node connection, reporting the first error.
func (r *Router) Close() error {
	var first error
	for _, conn := range r.conns {
		if conn == nil {
			continue
		}
		if err := conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Capacity returns the cluster-wide cache capacity (the sum of the node
// capacities from the handshakes).
func (r *Router) Capacity() int {
	total := 0
	for _, ack := range r.acks {
		total += ack.Capacity
	}
	return total
}

// PolicyName labels cluster results: a single node keeps the node's own
// label (so a 1-node cluster is directly comparable to a direct replay), a
// real cluster prefixes the node count, e.g. "3×CLIC/8".
func (r *Router) PolicyName() string {
	name := "CLIC"
	if len(r.acks) > 0 && r.acks[0].Shards != 1 {
		name = fmt.Sprintf("CLIC/%d", r.acks[0].Shards)
	}
	if len(r.conns) == 1 {
		return name
	}
	return fmt.Sprintf("%d×%s", len(r.conns), name)
}

// Do serves one request batch through the cluster: each request goes to
// its ring owner, the sub-batches travel concurrently, and the returned
// hit flags are in submission order — index i answers reqs[i]. The second
// result is the cluster-wide outqueue depth (summed over the nodes that
// served a sub-batch). The returned slice is the router's scratch buffer,
// valid until the next Do.
func (r *Router) Do(reqs []trace.Request) ([]bool, int, error) {
	for n := range r.conns {
		r.split[n] = r.split[n][:0]
		r.index[n] = r.index[n][:0]
		r.errs[n] = nil
	}
	for i, req := range reqs {
		n := r.ring.Owner(req.Page)
		r.split[n] = append(r.split[n], req)
		r.index[n] = append(r.index[n], i)
	}
	if cap(r.hits) < len(reqs) {
		r.hits = make([]bool, len(reqs))
	}
	r.hits = r.hits[:len(reqs)]

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		outq int
	)
	for n := range r.conns {
		if len(r.split[n]) == 0 {
			continue
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			res, err := r.conns[n].Do(r.split[n])
			if err != nil {
				r.errs[n] = fmt.Errorf("cluster: node %s: %w", r.ring.Name(n), err)
				return
			}
			for i, hit := range res.Hits {
				r.hits[r.index[n][i]] = hit
			}
			mu.Lock()
			outq += res.OutqueueDepth
			mu.Unlock()
		}(n)
	}
	wg.Wait()
	for _, err := range r.errs {
		if err != nil {
			return nil, 0, err
		}
	}
	return r.hits, outq, nil
}

// RouterHandler consumes one completed pipelined router batch: tag is the
// value given to Submit, isRead flags the positions that were reads and
// hits carries the reassembled verdicts (both in submission order, valid
// only during the call), outq is the cluster-wide outqueue depth summed
// over the nodes that served a sub-batch, and rttNs is the batch's
// submit-to-last-result round-trip time.
type RouterHandler func(tag any, isRead, hits []bool, outq int, rttNs int64) error

// routerBatch is one in-flight pipelined router batch: the reassembly
// state waiting for its sub-batches to come back. Batches recycle through
// the pipeline's free list, so the steady-state routed path allocates
// nothing.
type routerBatch struct {
	pending int     // nodes still to answer
	isRead  []bool  // submission order
	hits    []bool  // submission order, scattered from the sub-results
	index   [][]int // per-node submission indices
	outq    int
	tag     any
	start   time.Time
}

// RouterPipeline keeps up to depth batches in flight per node connection:
// every Submit splits its batch by ring owner and feeds the sub-batches
// into per-node netclient.Pipelines, and a router batch is delivered to
// the handler when its last sub-batch completes. Like the Router it is
// not safe for concurrent use. Batches may complete slightly out of
// submission order when they touch disjoint node sets; each node's
// sub-batches always complete in order.
type RouterPipeline struct {
	r       *Router
	pls     []*netclient.Pipeline
	handler RouterHandler
	split   [][]trace.Request // per-Submit scratch (sub-batches are encoded eagerly)
	free    []*routerBatch
}

// Pipeline returns a pipelined sender over the router's node connections
// with at most depth batches in flight per node (capped per node at the
// server's advertised window; lock-step against pre-pipelining nodes).
// Use Submit/Drain instead of Do; mixing them corrupts the streams.
func (r *Router) Pipeline(depth int, h RouterHandler) *RouterPipeline {
	rp := &RouterPipeline{
		r:       r,
		pls:     make([]*netclient.Pipeline, len(r.conns)),
		handler: h,
		split:   make([][]trace.Request, len(r.conns)),
	}
	for n := range r.conns {
		n := n
		rp.pls[n] = r.conns[n].Pipeline(depth, func(tag any, _ []bool, res wire.Results, _ int64) error {
			rb := tag.(*routerBatch)
			idx := rb.index[n]
			for i, hit := range res.Hits {
				rb.hits[idx[i]] = hit
			}
			rb.outq += res.OutqueueDepth
			rb.pending--
			if rb.pending > 0 {
				return nil
			}
			err := rp.handler(rb.tag, rb.isRead, rb.hits, rb.outq, int64(time.Since(rb.start)))
			rb.tag = nil
			rp.free = append(rp.free, rb)
			return err
		})
	}
	return rp
}

// Submit routes one batch by ring owner and sends the sub-batches down
// the per-node pipelines, completing older batches as node windows fill.
// reqs is fully consumed before Submit returns; tag is handed back to the
// handler with the batch's reassembled results.
func (rp *RouterPipeline) Submit(reqs []trace.Request, tag any) error {
	var rb *routerBatch
	if k := len(rp.free); k > 0 {
		rb, rp.free = rp.free[k-1], rp.free[:k-1]
	} else {
		rb = &routerBatch{index: make([][]int, len(rp.r.conns))}
	}
	for n := range rp.split {
		rp.split[n] = rp.split[n][:0]
		rb.index[n] = rb.index[n][:0]
	}
	rb.isRead = rb.isRead[:0]
	if cap(rb.hits) < len(reqs) {
		rb.hits = make([]bool, len(reqs))
	}
	rb.hits = rb.hits[:len(reqs)]
	for i, req := range reqs {
		n := rp.r.ring.Owner(req.Page)
		rp.split[n] = append(rp.split[n], req)
		rb.index[n] = append(rb.index[n], i)
		rb.isRead = append(rb.isRead, req.Op == trace.Read)
	}
	rb.outq = 0
	rb.tag = tag
	rb.start = time.Now()
	rb.pending = 0
	for n := range rp.split {
		if len(rp.split[n]) > 0 {
			rb.pending++
		}
	}
	if rb.pending == 0 {
		err := rp.handler(tag, rb.isRead, rb.hits, 0, 0)
		rb.tag = nil
		rp.free = append(rp.free, rb)
		return err
	}
	for n := range rp.split {
		if len(rp.split[n]) == 0 {
			continue
		}
		if err := rp.pls[n].Submit(rp.split[n], rb); err != nil {
			return fmt.Errorf("cluster: node %s: %w", rp.r.ring.Name(n), err)
		}
	}
	return nil
}

// Drain flushes and completes every in-flight batch on every node.
func (rp *RouterPipeline) Drain() error {
	for n, pl := range rp.pls {
		if err := pl.Drain(); err != nil {
			return fmt.Errorf("cluster: node %s: %w", rp.r.ring.Name(n), err)
		}
	}
	return nil
}

// ReplayOptions tune the cluster replay drivers.
type ReplayOptions struct {
	// BatchSize is the request count per router batch; 0 selects adaptive
	// sizing (netclient.BatchSizer: start small, grow toward
	// wire.DefaultBatch while the per-request round-trip tail stays flat).
	BatchSize int
	// Depth is the in-flight batch window per node connection: 0 selects
	// netclient.DefaultDepth, 1 is lock-step. Values above a node's
	// advertised window are capped at that node's handshake.
	Depth int
	// Limit caps the total number of requests replayed; 0 replays the
	// whole trace.
	Limit int
	// VirtualNodes is the ring density; 0 selects DefaultVirtualNodes.
	VirtualNodes int
}

func (o ReplayOptions) batch() int {
	if o.BatchSize <= 0 {
		return wire.DefaultBatch
	}
	return o.BatchSize
}

func (o ReplayOptions) depth() int {
	if o.Depth <= 0 {
		return netclient.DefaultDepth
	}
	return o.Depth
}

// Replay replays an in-memory trace against a cluster with one concurrent
// Router per trace client — netclient.Replay generalised from one server
// to N. Per-client read accounting is exact; like every concurrent replay,
// the aggregate hit count depends on how the clients' requests interleave
// at the nodes.
func Replay(nodes []Node, t *trace.Trace, opt ReplayOptions) (sim.Result, error) {
	if opt.Limit > 0 {
		t = t.Truncate(opt.Limit)
	}
	keys := t.Dict.Keys()
	var (
		mu        sync.Mutex
		policy    string
		capacity  int
		haveLabel bool
	)
	res, err := engine.ServeStreams(t, func(c int, reqs []trace.Request, st *sim.ClientStat) error {
		router, err := DialRouter(nodes, opt.VirtualNodes)
		if err != nil {
			return err
		}
		defer router.Close()
		if err := router.Hello(t.Clients[c], keys); err != nil {
			return err
		}
		mu.Lock()
		if !haveLabel {
			policy, capacity, haveLabel = router.PolicyName(), router.Capacity(), true
		}
		mu.Unlock()
		sizer := netclient.NewBatchSizer(opt.BatchSize)
		pl := router.Pipeline(opt.depth(), func(_ any, isRead, hits []bool, _ int, rttNs int64) error {
			for i, rd := range isRead {
				if rd {
					st.Reads++
					if hits[i] {
						st.ReadHits++
					}
				}
			}
			sizer.Observe(rttNs, len(isRead))
			return nil
		})
		for len(reqs) > 0 {
			n := sizer.Current()
			if n > len(reqs) {
				n = len(reqs)
			}
			if err := pl.Submit(reqs[:n], nil); err != nil {
				return err
			}
			reqs = reqs[n:]
		}
		return pl.Drain()
	})
	if err != nil {
		return sim.Result{}, err
	}
	res.Policy = policy
	res.CacheSize = capacity
	return res, nil
}
