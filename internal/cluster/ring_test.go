package cluster

import "testing"

// TestRingPlacementPure checks that placement depends only on the node
// names, not their listing order: every page must map to the same name
// through differently-ordered rings.
func TestRingPlacementPure(t *testing.T) {
	a, err := NewRing([]string{"node0", "node1", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"node2", "node0", "node1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for page := uint64(0); page < 10000; page++ {
		if got, want := b.Name(b.Owner(page)), a.Name(a.Owner(page)); got != want {
			t.Fatalf("page %d: reordered ring places on %s, original on %s", page, got, want)
		}
	}
}

// TestRingBalance checks that virtual nodes spread a sequential page range
// over the nodes with no grossly starved or overloaded member.
func TestRingBalance(t *testing.T) {
	const nodes, pages = 3, 100000
	r, err := NewRing([]string{"node0", "node1", "node2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, nodes)
	for page := uint64(0); page < pages; page++ {
		counts[r.Owner(page)]++
	}
	for i, c := range counts {
		share := float64(c) / pages
		if share < 0.15 || share > 0.55 {
			t.Errorf("node %d owns %.1f%% of pages (counts %v)", i, 100*share, counts)
		}
	}
}

// TestRingStability checks the consistent-hashing property: removing one
// node moves only that node's pages; every page owned by a survivor keeps
// its owner.
func TestRingStability(t *testing.T) {
	full, err := NewRing([]string{"node0", "node1", "node2", "node3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]string{"node0", "node1", "node3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for page := uint64(0); page < 50000; page++ {
		before := full.Name(full.Owner(page))
		after := reduced.Name(reduced.Owner(page))
		if before == "node2" {
			moved++
			continue // this page had to move somewhere
		}
		if after != before {
			t.Fatalf("page %d moved %s -> %s though its owner survived", page, before, after)
		}
	}
	if moved == 0 {
		t.Error("removed node owned no pages; the stability check is vacuous")
	}
}

// TestRingSingleNode checks the degenerate ring.
func TestRingSingleNode(t *testing.T) {
	r, err := NewRing([]string{"only"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for page := uint64(0); page < 1000; page++ {
		if r.Owner(page) != 0 {
			t.Fatalf("page %d not owned by the only node", page)
		}
	}
}

// TestRingRejects checks construction errors.
func TestRingRejects(t *testing.T) {
	for _, names := range [][]string{nil, {}, {""}, {"a", "a"}, {"a", "", "b"}} {
		if _, err := NewRing(names, 0); err == nil {
			t.Errorf("NewRing(%q) succeeded, want error", names)
		}
	}
}
