// Cluster integration tests: real servers and routers over 127.0.0.1.
// The single-node golden test pins the router to the direct netclient
// path bit for bit; the serial-replay test pins cluster determinism; the
// concurrent tests exercise the same machinery under -race.
package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netclient"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workload"
)

// testTrace generates a small seeded TPC-C trace once per test binary.
var testTrace = func() *trace.Trace {
	p, err := workload.PresetByName("DB2_C60")
	if err != nil {
		panic(err)
	}
	p.Requests = 30000
	t, err := workload.Generate(p)
	if err != nil {
		panic(err)
	}
	return t
}()

func startHarness(t *testing.T, cfg cluster.HarnessConfig) *cluster.Harness {
	t.Helper()
	h, err := cluster.StartHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// TestSingleNodeGolden is the router equivalence test: a 1-node cluster
// routes every request to its only node in submission order, so replaying
// a single-client trace through the router must be bit-identical — hits,
// misses, labels, server-side counters, outqueue — to netclient.Replay
// against an identically configured standalone server.
func TestSingleNodeGolden(t *testing.T) {
	cfg := core.Config{Capacity: 3000, Window: 5000}
	const shards = 4

	direct := startDirect(t, server.Config{Cache: cfg, Shards: shards})
	want, err := netclient.Replay(direct.Addr().String(), testTrace, netclient.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	h := startHarness(t, cluster.HarnessConfig{Nodes: 1, Cache: cfg, Shards: shards})
	got, err := cluster.Replay(h.Nodes(), testTrace, cluster.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("router %d/%d hits/reads, direct %d/%d", got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.Requests != want.Requests || got.Policy != want.Policy || got.CacheSize != want.CacheSize {
		t.Errorf("labels (%d, %q, %d), want (%d, %q, %d)",
			got.Requests, got.Policy, got.CacheSize, want.Requests, want.Policy, want.CacheSize)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all; the cluster path is vacuous")
	}
	ds, cs := direct.Cache().Stats(), h.Server(0).Cache().Stats()
	if ds != cs {
		t.Errorf("server cores diverged: direct %+v, cluster %+v", ds, cs)
	}
	if do, co := direct.Cache().OutqueueLen(), h.Server(0).Cache().OutqueueLen(); do != co {
		t.Errorf("outqueue depth %d behind router, %d direct", co, do)
	}
}

func startDirect(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv := server.New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestReplaySerialDeterministic boots the same merging cluster twice and
// replays the same trace serially through each: results — totals,
// per-client accounting, merge-round and delivery counts — must be
// identical, which is what lets the cluster ablation pin golden numbers.
func TestReplaySerialDeterministic(t *testing.T) {
	run := func() (got struct {
		reads, hits uint64
		delivered   uint64
		rounds      [3]uint64
		absorbed    [3]uint64
	}) {
		h := startHarness(t, cluster.HarnessConfig{
			Nodes:   3,
			Cache:   core.Config{Capacity: 3000, Window: 3000},
			Merging: true,
		})
		res, err := h.ReplaySerial(testTrace, cluster.ReplayOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got.reads, got.hits = res.Reads, res.ReadHits
		got.delivered = h.Coordinator().Delivered()
		for i := 0; i < 3; i++ {
			cl := h.Server(i).Snapshot(0).Cluster
			got.rounds[i], got.absorbed[i] = cl.MergeRounds, cl.SummariesAbsorbed
		}
		if want := "3×CLIC"; res.Policy != want {
			t.Errorf("Policy = %q, want %q", res.Policy, want)
		}
		if res.CacheSize != 3000 {
			t.Errorf("CacheSize = %d, want 3000 (split capacity sums back)", res.CacheSize)
		}
		return got
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("serial cluster replay not deterministic:\n  first  %+v\n  second %+v", a, b)
	}
	if a.hits == 0 {
		t.Error("no hits at all")
	}
	if a.delivered == 0 {
		t.Error("no summaries delivered; merging never happened")
	}
	for i, r := range a.rounds {
		if r == 0 {
			t.Errorf("node %d never rotated its window", i)
		}
		if a.absorbed[i] == 0 {
			t.Errorf("node %d never absorbed a peer summary", i)
		}
	}
}

// TestClusterConcurrent replays an interleaved trace with more clients
// than nodes through a merging cluster — the -race stress: concurrent
// routers fan batches to every node while the exchange pump delivers
// summaries mid-flight. Only order-free quantities are asserted.
func TestClusterConcurrent(t *testing.T) {
	parts := make([]*trace.Trace, 5)
	for i := range parts {
		parts[i] = testTrace.Truncate(6000)
		parts[i].Name = fmt.Sprintf("c%d", i)
	}
	merged, err := trace.Interleave("FIVE", parts...)
	if err != nil {
		t.Fatal(err)
	}
	h := startHarness(t, cluster.HarnessConfig{
		Nodes:   3,
		Cache:   core.Config{Capacity: 3000, Window: 3000},
		Shards:  2,
		Merging: true,
	})
	res, err := h.Replay(merged, cluster.ReplayOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != uint64(len(merged.Reqs)) {
		t.Errorf("Requests = %d, want %d", res.Requests, len(merged.Reqs))
	}
	if res.ReadHits == 0 {
		t.Error("no hits at all")
	}
	for c := range res.PerClient {
		var wantReads uint64
		for _, r := range merged.Reqs {
			if int(r.Client) == c && r.Op == trace.Read {
				wantReads++
			}
		}
		if res.PerClient[c].Reads != wantReads {
			t.Errorf("client %d Reads = %d, want %d", c, res.PerClient[c].Reads, wantReads)
		}
	}
	// The nodes' own accounting must sum to the client-side totals.
	var reads, hits uint64
	for i := 0; i < 3; i++ {
		st := h.Server(i).Cache().Stats()
		reads += st.Reads
		hits += st.ReadHits
	}
	if reads != res.Reads || hits != res.ReadHits {
		t.Errorf("nodes account %d/%d reads/hits, clients %d/%d", reads, hits, res.Reads, res.ReadHits)
	}
}

// TestCoordinator pins the exchanger's stepped and immediate semantics
// against two directly-constructed merged-mode servers.
func TestCoordinator(t *testing.T) {
	coord := cluster.NewCoordinator(2)
	srvs := make([]*server.Server, 2)
	for i := range srvs {
		srvs[i] = server.New(server.Config{
			Cache:     core.Config{Capacity: 100, Window: 100, Stats: core.StatsMerged},
			Shards:    1,
			Node:      fmt.Sprintf("node%d", i),
			OnSummary: coord.Publisher(i),
		})
		coord.Register(i, srvs[i])
		defer srvs[i].Close()
	}
	sum := wire.Summary{Node: "node0", Round: 1, Entries: []wire.SummaryEntry{{Key: "k=1", N: 4, Nr: 2, Dsum: 8}}}

	coord.Publisher(0)(sum)
	if coord.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", coord.Pending())
	}
	if n := coord.Step(); n != 1 {
		t.Fatalf("Step delivered %d, want 1", n)
	}
	if got := srvs[1].Snapshot(0).Cluster.SummariesAbsorbed; got != 1 {
		t.Errorf("peer absorbed %d summaries, want 1", got)
	}
	if got := srvs[0].Snapshot(0).Cluster.SummariesAbsorbed; got != 0 {
		t.Errorf("origin absorbed its own summary (%d)", got)
	}

	coord.SetImmediate(true)
	coord.Publisher(1)(wire.Summary{Node: "node1", Round: 1})
	if got := srvs[0].Snapshot(0).Cluster.SummariesAbsorbed; got != 1 {
		t.Errorf("immediate mode: origin 1's summary not delivered (absorbed %d)", got)
	}
	if coord.Pending() != 0 {
		t.Errorf("Pending = %d after immediate delivery", coord.Pending())
	}
	if coord.Delivered() != 2 {
		t.Errorf("Delivered = %d, want 2", coord.Delivered())
	}
}

// TestGossip ships a summary over real TCP into a merged-mode server.
func TestGossip(t *testing.T) {
	srv := startDirect(t, server.Config{
		Cache:  core.Config{Capacity: 100, Window: 100, Stats: core.StatsMerged},
		Shards: 1,
	})
	g := cluster.NewGossip([]string{srv.Addr().String()}, 0)
	g.Publish(wire.Summary{Node: "peer", Round: 1, Entries: []wire.SummaryEntry{{Key: "k=1", N: 4, Nr: 2, Dsum: 8}}})
	deadline := time.Now().Add(5 * time.Second)
	for srv.Snapshot(0).Cluster.SummariesAbsorbed == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("summary never arrived (published %d, dropped %d)", g.Published(), g.Dropped())
		}
		time.Sleep(time.Millisecond)
	}
	g.Close()
	if g.Published() != 1 || g.Dropped() != 0 {
		t.Errorf("published %d dropped %d, want 1/0", g.Published(), g.Dropped())
	}
}
