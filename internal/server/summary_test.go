// Summary-exchange tests: absorption into a merged-mode server, clean
// rejection on non-merged servers, and clean rejection on connections that
// negotiated a pre-summary protocol version.
package server_test

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netclient"
	"repro/internal/server"
	"repro/internal/wire"
)

func testSummary() wire.Summary {
	return wire.Summary{Node: "peer", Round: 1, Entries: []wire.SummaryEntry{
		{Key: "reqtype=seq", N: 10, Nr: 5, Dsum: 20},
		{Key: "reqtype=rand", N: 4, Nr: 1, Dsum: 100},
	}}
}

// TestSummaryAbsorbed drives a summary frame into a merged-mode server and
// watches it land in the cluster accounting and /metrics.
func TestSummaryAbsorbed(t *testing.T) {
	srv := startServer(t, server.Config{
		Cache:  core.Config{Capacity: 500, Window: 100, Stats: core.StatsMerged},
		Shards: 2,
		Node:   "n0",
	})
	conn, err := netclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hello("peer", nil); err != nil {
		t.Fatal(err)
	}
	if conn.Version() != wire.Version {
		t.Fatalf("negotiated version %d, want %d", conn.Version(), wire.Version)
	}
	if err := conn.SendSummary(testSummary()); err != nil {
		t.Fatal(err)
	}
	// The frame is handled asynchronously; no reply is sent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		cl := srv.Snapshot(0).Cluster
		if cl == nil {
			t.Fatal("merged-mode snapshot has no cluster block")
		}
		if cl.SummariesAbsorbed == 1 {
			if cl.Node != "n0" || cl.PendingHintSets != 2 {
				t.Fatalf("cluster snapshot %+v, want node n0 with 2 pending hint sets", cl)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("summary never absorbed: %+v", cl)
		}
		time.Sleep(time.Millisecond)
	}
	samples := scrape(t, srv)
	if got := samples["clic_cluster_summaries_absorbed_total"]; got != 1 {
		t.Errorf("clic_cluster_summaries_absorbed_total = %v, want 1", got)
	}
	if got := samples["clic_cluster_pending_hint_sets"]; got != 2 {
		t.Errorf("clic_cluster_pending_hint_sets = %v, want 2", got)
	}
}

// TestSummaryRejectedNotMerged checks that a server outside merged mode
// answers a summary with a clean Error frame naming the reason.
func TestSummaryRejectedNotMerged(t *testing.T) {
	srv := startServer(t, server.Config{
		Cache:  core.Config{Capacity: 500, Window: 100},
		Shards: 2,
	})
	conn, err := netclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hello("peer", nil); err != nil {
		t.Fatal(err)
	}
	if err := conn.SendSummary(testSummary()); err != nil {
		t.Fatal(err)
	}
	// The rejection arrives as the next frame the client reads.
	_, err = conn.Do(nil)
	if err == nil || !strings.Contains(err.Error(), "merged statistics mode") {
		t.Fatalf("err = %v, want merged-statistics-mode rejection", err)
	}
}

// TestSummaryRejectedOldProtocol hand-rolls a version-1 handshake (as an
// old binary would) and checks the server both negotiates down to 1 and
// rejects a later summary frame cleanly instead of desyncing.
func TestSummaryRejectedOldProtocol(t *testing.T) {
	srv := startServer(t, server.Config{
		Cache:  core.Config{Capacity: 500, Window: 100, Stats: core.StatsMerged},
		Shards: 2,
	})
	nc, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)

	if err := wire.WriteFrame(bw, wire.AppendHello(nil, wire.Hello{Version: 1, Client: "old"})); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err := wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := wire.DecodeHelloAck(p)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Version != 1 {
		t.Fatalf("server acked version %d to a v1 client, want 1", ack.Version)
	}

	if err := wire.WriteFrame(bw, wire.AppendSummary(nil, testSummary())); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	p, err = wire.ReadFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg, err := wire.DecodeError(p)
	if err != nil {
		t.Fatalf("reply to a v1 summary is not an Error frame: %v", err)
	}
	if !strings.Contains(msg, "protocol") {
		t.Fatalf("rejection %q does not name the protocol version", msg)
	}
	if srv.Snapshot(0).Cluster.SummariesAbsorbed != 0 {
		t.Error("summary absorbed despite protocol rejection")
	}
}
