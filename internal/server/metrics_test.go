// Observability tests: a real server, a real in-process client over
// 127.0.0.1, and the /metrics, /stats and timeline surfaces checked
// end to end.
package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netclient"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace generates a small seeded TPC-C trace once per test binary.
var testTrace = func() *trace.Trace {
	p, err := workload.PresetByName("DB2_C60")
	if err != nil {
		panic(err)
	}
	p.Requests = 30000
	t, err := workload.Generate(p)
	if err != nil {
		panic(err)
	}
	return t
}()

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv := server.New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.ListenAdmin("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// scrape fetches /metrics and parses the sample lines into name{labels} →
// value, skipping comments.
func scrape(t *testing.T, srv *server.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsEndpoint is the acceptance check for the exposition layer:
// after a loopback replay, /metrics must carry live series from all four
// instrumented layers — cache, wire, server, and the in-process netclient.
func TestMetricsEndpoint(t *testing.T) {
	const shards = 4
	srv := startServer(t, server.Config{
		Cache:  core.Config{Capacity: 2000, Window: 4000, Engine: core.EngineOwner},
		Shards: shards,
	})
	tr := testTrace.Truncate(16000)
	res, err := netclient.Replay(srv.Addr().String(), tr, netclient.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	samples := scrape(t, srv)

	// Core family: totals must agree exactly with the replay accounting.
	if got := samples["clic_cache_reads_total"]; got != float64(res.Reads) {
		t.Errorf("clic_cache_reads_total = %v, want %d", got, res.Reads)
	}
	if got := samples["clic_cache_read_hits_total"]; got != float64(res.ReadHits) || got == 0 {
		t.Errorf("clic_cache_read_hits_total = %v, want %d (nonzero)", got, res.ReadHits)
	}
	for _, name := range []string{
		"clic_cache_writes_total", "clic_cache_evictions_total", "clic_cache_rotations_total",
		"clic_cache_pages", "clic_cache_outqueue_depth", "clic_cache_tracked_hint_sets",
	} {
		if v, ok := samples[name]; !ok {
			t.Errorf("series %s missing", name)
		} else if v == 0 && name != "clic_cache_tracked_hint_sets" {
			t.Errorf("series %s is zero after a replay", name)
		}
	}
	if got := samples["clic_cache_capacity_pages"]; got != 2000 {
		t.Errorf("clic_cache_capacity_pages = %v, want 2000", got)
	}

	// Shard family: one labelled series per shard, summing to the front.
	var shardReads float64
	for i := 0; i < shards; i++ {
		key := fmt.Sprintf(`clic_shard_reads_total{shard="%d"}`, i)
		v, ok := samples[key]
		if !ok {
			t.Fatalf("series %s missing", key)
		}
		shardReads += v
	}
	if shardReads != float64(res.Reads) {
		t.Errorf("shard reads sum %v, want %d", shardReads, res.Reads)
	}

	// Wire family: the replay decoded and encoded frames on this server.
	for _, key := range []string{
		`clic_wire_frames_total{dir="decoded"}`, `clic_wire_frames_total{dir="encoded"}`,
		`clic_wire_bytes_total{dir="decoded"}`, `clic_wire_bytes_total{dir="encoded"}`,
	} {
		if samples[key] == 0 {
			t.Errorf("series %s missing or zero", key)
		}
	}

	// Server family: connection accounting and the batch histogram.
	if samples["clic_server_connections_total"] == 0 {
		t.Error("clic_server_connections_total missing or zero")
	}
	if v := samples["clic_server_connections_active"]; v != 0 {
		t.Errorf("clic_server_connections_active = %v after replay closed, want 0", v)
	}
	if samples["clic_server_batches_total"] == 0 || samples["clic_server_batch_ns_count"] == 0 {
		t.Error("batch service-time series missing or zero")
	}
	if samples["clic_server_batch_ns_count"] != samples["clic_server_batches_total"] {
		t.Errorf("batch histogram count %v != batches total %v",
			samples["clic_server_batch_ns_count"], samples["clic_server_batches_total"])
	}
	if samples[`clic_server_batch_ns_bucket{le="+Inf"}`] != samples["clic_server_batch_ns_count"] {
		t.Error("+Inf bucket does not equal histogram count")
	}

	// Netclient family: the replay ran in this process, so the client-side
	// RTT histogram must be live too.
	if samples["clic_netclient_batches_total"] == 0 || samples["clic_netclient_batch_rtt_ns_count"] == 0 {
		t.Error("netclient series missing or zero for an in-process replay")
	}
}

// TestSnapshotSchema is the /stats golden schema test: the JSON document's
// key sets are pinned, so accidental field renames or removals (the
// endpoint is a public surface; CI and dashboards parse it) fail loudly.
// The snapshot stays a superset: adding fields requires updating the
// pinned sets here, deliberately.
func TestSnapshotSchema(t *testing.T) {
	srv := startServer(t, server.Config{Cache: core.Config{Capacity: 1000, Window: 2000}, Shards: 2})
	if _, err := netclient.Replay(srv.Addr().String(), testTrace.Truncate(6000), netclient.ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/stats?top=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}

	keysOf := func(raw json.RawMessage) []string {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("not an object: %s", raw)
		}
		ks := make([]string, 0, len(m))
		for k := range m {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return ks
	}
	check := func(name string, raw json.RawMessage, want []string) {
		t.Helper()
		sort.Strings(want)
		if got := keysOf(raw); !reflect.DeepEqual(got, want) {
			t.Errorf("%s keys = %v, want %v", name, got, want)
		}
	}

	check("top-level", mustMarshal(t, doc), []string{
		"policy", "core", "shards", "connections", "histograms", "clients", "windowStats",
	})
	check("core", doc["core"], []string{
		"Requests", "Reads", "ReadHits", "ReadMisses", "Writes", "Evictions",
		"Len", "OutqueueLen", "Windows", "Shards", "Capacity", "Learner", "Engine",
	})
	var shardsArr []json.RawMessage
	if err := json.Unmarshal(doc["shards"], &shardsArr); err != nil {
		t.Fatal(err)
	}
	if len(shardsArr) != 2 {
		t.Fatalf("shards has %d entries, want 2", len(shardsArr))
	}
	check("shards[0]", shardsArr[0], []string{
		"reads", "read_hits", "writes", "evictions", "len", "outqueue_len", "windows",
	})
	check("connections", doc["connections"], []string{"active", "total", "inflight"})
	check("histograms", doc["histograms"], []string{"batchServiceNs", "batches"})
	var hists struct {
		BatchServiceNs json.RawMessage `json:"batchServiceNs"`
		Batches        uint64          `json:"batches"`
	}
	if err := json.Unmarshal(doc["histograms"], &hists); err != nil {
		t.Fatal(err)
	}
	check("histograms.batchServiceNs", hists.BatchServiceNs, []string{
		"count", "sum", "mean", "p50", "p90", "p99", "max",
	})
	if hists.Batches == 0 {
		t.Error("histograms.batches is zero after a replay")
	}

	// Cross-checks: the shard rows must tile the core aggregate.
	var snap server.Snapshot
	raw := mustMarshal(t, doc)
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	var reads uint64
	for _, ss := range snap.Shards {
		reads += ss.Reads
	}
	if reads != snap.Core.Reads {
		t.Errorf("shard reads sum %d != core reads %d", reads, snap.Core.Reads)
	}
	if snap.Connections.Total == 0 {
		t.Error("connections.total is zero after a replay")
	}
}

func mustMarshal(t *testing.T, v any) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// lockedBuffer guards concurrent timeline writes from the sampler
// goroutine against the final read.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.b.String()
}

// TestServerTimeline attaches a timeline to a live server through a
// replay and checks the CSV stream has the standard schema, a final row,
// and internally consistent request accounting.
func TestServerTimeline(t *testing.T) {
	srv := startServer(t, server.Config{
		Cache:  core.Config{Capacity: 2000, Window: 4000, Engine: core.EngineOwner},
		Shards: 4,
	})
	var buf lockedBuffer
	stop := srv.StartTimeline(&buf, 5*time.Millisecond)
	tr := testTrace.Truncate(16000)
	if _, err := netclient.Replay(srv.Addr().String(), tr, netclient.ReplayOptions{BatchSize: 64}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(15 * time.Millisecond) // let at least one interval elapse
	stop()

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 2 {
		t.Fatalf("timeline has %d lines, want header plus rows:\n%s", len(lines), out)
	}
	wantHeader := "row,elapsed_s,reason,requests,req_per_s,hit_ratio,evictions,rotations,len,outq,batch_p50_ns,batch_p99_ns,connections"
	if lines[0] != wantHeader {
		t.Fatalf("timeline header = %q, want %q", lines[0], wantHeader)
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, ",final,") {
		t.Errorf("last row %q is not the final row", last)
	}
	// The requests column is a per-row delta; across all rows it must sum
	// to the replayed total.
	var total float64
	for _, line := range lines[1:] {
		f := strings.Split(line, ",")
		v, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			t.Fatalf("bad requests cell in %q: %v", line, err)
		}
		total += v
	}
	if total != float64(tr.Len()) {
		t.Errorf("timeline request deltas sum to %v, want %d", total, tr.Len())
	}
}
