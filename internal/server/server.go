// Package server wraps a core.Sharded CLIC front in the hint-carrying TCP
// page-request protocol of package wire, turning the in-process cache into
// the storage server the paper describes: many clients connect, stream
// (page, hint set) request batches, and get hit/miss verdicts back, while
// the second-tier cache learns caching priorities from the hints.
//
// One connection is one client. The handshake interns the client's hint
// vocabulary into the server-wide dictionary once, so the per-request hot
// path is a table lookup plus a core.Sharded access — connections touching
// different shards proceed in parallel, exactly like engine.ServeClients'
// in-process goroutines. Per-client read accounting matches ServeClients'
// sim.ClientStat bookkeeping so loopback replays are comparable to the
// in-process path.
//
// A second, optional HTTP listener is the observability surface: live
// stats as JSON at /stats (front aggregate, per-shard breakdown, per-client
// accounting, hint-set window statistics, batch-latency summaries), every
// layer's series in the Prometheus text format at /metrics (cache, shards,
// wire codec, server connections and batch service times, in-process
// netclient RTTs), and the usual pprof endpoints under /debug/pprof/. A
// timeline recorder (StartTimeline) can additionally stream per-interval
// CSV rows — hit ratio, throughput, outqueue depth, eviction and rotation
// counts, batch-latency quantiles — to a file, sampling on a wall-clock
// interval and on window rotations. The instrumentation rides on counters
// the request path already maintained, so the zero-allocation batch loop
// stays allocation-free with metrics enabled.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/clicstats"
	"repro/internal/core"
	"repro/internal/hint"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Config parameterises a cache server.
type Config struct {
	// Cache is the CLIC configuration of the backing core.Sharded front.
	Cache core.Config
	// Shards is the shard count; 0 selects 8. One shard still serves
	// concurrent connections correctly (it degenerates to a mutex-guarded
	// cache), it just serializes them.
	Shards int
	// MaxHintKeys bounds how many hint keys one connection may announce
	// (Hello plus Intern frames); 0 selects DefaultMaxHintKeys. The server
	// dictionary interns announced keys permanently, so this is the lever
	// that keeps a misbehaving client from growing server memory without
	// bound. The paper's workloads carry tens of distinct hint sets.
	MaxHintKeys int
	// MaxInflight bounds how many pipelined batches one connection may
	// keep in flight (decoded but not yet answered); 0 selects
	// DefaultMaxInflight. Advertised to v3+ clients in HelloAck.Window.
	// When the window is full the connection's reader stops reading, so
	// backpressure propagates to the client through TCP.
	MaxInflight int
	// Node names this server in the window summaries it publishes to
	// cluster peers (wire.Summary.Node); empty selects "node".
	// Meaningful only with Cache.Stats == core.StatsMerged.
	Node string
	// OnSummary, when non-nil in merged statistics mode, receives each
	// closed window's summary — the cluster exchanger's publication hook
	// (internal/cluster delivers it to peers in-process or over TCP). It
	// runs inside the learner's rotation, so it must return quickly and
	// must not call back into this server's cache.
	OnSummary func(wire.Summary)
}

// DefaultMaxHintKeys is the per-connection hint-vocabulary bound when
// Config.MaxHintKeys is zero — far above any real workload (Figure 2's
// vocabularies are in the tens) but small enough that no connection can
// intern unbounded state into the shared dictionary.
const DefaultMaxHintKeys = 1 << 20

// DefaultMaxInflight is the per-connection pipelining window when
// Config.MaxInflight is zero: deep enough that a client streaming
// DefaultBatch-sized frames never stalls on the window before the cache
// becomes the bottleneck, small enough to bound per-connection memory
// (each in-flight batch holds one result slot).
const DefaultMaxInflight = 32

// clientTotals is the merged read accounting for one client name across all
// of its (past and present) connections.
type clientTotals struct {
	reads    uint64
	readHits uint64
}

// Server is a TCP cache server. Create with New, wire up listeners with
// Listen/ListenAdmin (or Start), then Serve.
type Server struct {
	cache       *core.Sharded
	maxHintKeys int
	maxInflight int
	node        string
	onSummary   func(wire.Summary)

	ln      net.Listener
	adminLn net.Listener

	mu      sync.Mutex
	dict    *hint.Dict
	clients map[string]*clientTotals
	conns   map[net.Conn]struct{}
	closed  bool

	// Observability: the registry behind /metrics plus the server-layer
	// instruments (the cache, wire and netclient layers keep their own).
	registry     *metrics.Registry
	connsTotal   metrics.Counter
	connsActive  metrics.Gauge
	batchesTotal metrics.Counter
	batchNs      metrics.Histogram

	// inflight gauges pipelined batches accepted but not yet answered,
	// summed over all connections; flushes counts writer-side buffer
	// flushes (batches ÷ flushes is the write-coalescing factor).
	inflight metrics.Gauge
	flushes  metrics.Counter

	// summariesPublished counts windows published to the cluster exchanger
	// (merged mode with OnSummary wired; the absorbed side lives on the
	// merged learner).
	summariesPublished metrics.Counter

	wg sync.WaitGroup
}

// New returns an unstarted server over a fresh core.Sharded front.
func New(cfg Config) *Server {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 8
	}
	maxKeys := cfg.MaxHintKeys
	if maxKeys <= 0 {
		maxKeys = DefaultMaxHintKeys
	}
	maxInflight := cfg.MaxInflight
	if maxInflight <= 0 {
		maxInflight = DefaultMaxInflight
	}
	node := cfg.Node
	if node == "" {
		node = "node"
	}
	s := &Server{
		cache:       core.NewSharded(cfg.Cache, shards),
		maxHintKeys: maxKeys,
		maxInflight: maxInflight,
		node:        node,
		onSummary:   cfg.OnSummary,
		dict:        hint.NewDict(),
		clients:     make(map[string]*clientTotals),
		conns:       make(map[net.Conn]struct{}),
	}
	if m := s.cache.Merged(); m != nil && s.onSummary != nil {
		m.SetPublish(s.publishSummary)
	}
	s.buildRegistry()
	return s
}

// Node returns the server's cluster node name.
func (s *Server) Node() string { return s.node }

// publishSummary is the merged learner's publication hook: it resolves the
// window's local hint IDs back to canonical keys (IDs are per-node
// interning orders, meaningless to peers), orders the entries
// deterministically, and hands the frame-ready summary to the exchanger.
// It runs inside a window rotation; the dictionary lock is the only one it
// takes.
func (s *Server) publishSummary(round uint64, local []clicstats.WindowCounter) {
	sum := wire.Summary{Node: s.node, Round: round, Entries: make([]wire.SummaryEntry, 0, len(local))}
	s.mu.Lock()
	for _, wc := range local {
		sum.Entries = append(sum.Entries, wire.SummaryEntry{Key: s.dict.Key(wc.Hint), N: wc.N, Nr: wc.Nr, Dsum: wc.Dsum})
	}
	s.mu.Unlock()
	sort.Slice(sum.Entries, func(i, j int) bool { return sum.Entries[i].Key < sum.Entries[j].Key })
	s.summariesPublished.Inc()
	s.onSummary(sum)
}

// AbsorbSummary folds one peer node's window summary into this server's
// merged learner: entry keys are interned into the local dictionary and
// the counters wait in the learner's pending pool until the next rotation.
// It errors when the server is not in merged statistics mode, or when the
// summary would blow the hint-vocabulary bound.
func (s *Server) AbsorbSummary(sum wire.Summary) error {
	m := s.cache.Merged()
	if m == nil {
		return fmt.Errorf("server: summaries need merged statistics mode (running %q)", s.cache.StatsMode())
	}
	if len(sum.Entries) > s.maxHintKeys {
		return fmt.Errorf("server: summary with %d entries exceeds hint limit %d", len(sum.Entries), s.maxHintKeys)
	}
	counters := make([]clicstats.WindowCounter, len(sum.Entries))
	s.mu.Lock()
	for i, e := range sum.Entries {
		counters[i] = clicstats.WindowCounter{Hint: s.dict.InternKey(e.Key), N: e.N, Nr: e.Nr, Dsum: e.Dsum}
	}
	s.mu.Unlock()
	m.Absorb(counters)
	return nil
}

// Cache exposes the backing sharded front (read-mostly use: stats, tests).
func (s *Server) Cache() *core.Sharded { return s.cache }

// Listen binds the page-request listener (e.g. ":7070", "127.0.0.1:0").
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	return nil
}

// Addr returns the page-request listener's address (nil before Listen).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAdmin binds the admin HTTP listener and starts serving /stats on it.
func (s *Server) ListenAdmin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.adminLn = ln
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	// Live profiling rides on the admin listener: /debug/pprof/ for the
	// index, plus the usual profile endpoints. The page-request listener
	// stays pure protocol.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		// ErrServerClosed etc. surface when the listener closes; Serve's
		// lifetime is bounded by Close.
		_ = srv.Serve(ln)
	}()
	return nil
}

// AdminAddr returns the admin listener's address (nil when not listening).
func (s *Server) AdminAddr() net.Addr {
	if s.adminLn == nil {
		return nil
	}
	return s.adminLn.Addr()
}

// Start is the one-call setup used by tests and the loopback tools: bind
// the page-request listener and run the accept loop in the background.
func (s *Server) Start(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Serve()
	}()
	return nil
}

// Serve accepts connections until the listener closes (via Close).
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosed() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close shuts the listeners, disconnects every client, and waits for the
// connection handlers to drain. The cache and its statistics survive Close
// so final numbers can still be read.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln, adminLn := s.ln, s.adminLn
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	var err error
	if ln != nil {
		err = ln.Close()
	}
	if adminLn != nil {
		if e := adminLn.Close(); err == nil {
			err = e
		}
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	// All producers are drained; stop the shard owner goroutines (a no-op
	// in mutex mode). Snapshots still read afterwards.
	s.cache.Close()
	return err
}

// intern maps announced hint keys to server-wide hint IDs, appending to the
// connection's remap table.
func (s *Server) intern(remap []hint.ID, keys []string) []hint.ID {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		remap = append(remap, s.dict.InternKey(k))
	}
	return remap
}

// mergeClient folds one finished connection's accounting into the by-name
// totals.
func (s *Server) mergeClient(name string, reads, readHits uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ct, ok := s.clients[name]
	if !ok {
		ct = &clientTotals{}
		s.clients[name] = ct
	}
	ct.reads += reads
	ct.readHits += readHits
}

// resultSlot carries one served batch (or a terminal error report) from a
// connection's reader to its writer. Slots circulate between the free list
// and the result queue, so the steady-state pipeline allocates nothing.
type resultSlot struct {
	seq    uint64 // BatchSeq sequence number (tagged frames only)
	tagged bool   // answer with ResultsSeq instead of Results
	hits   []bool // per-request verdicts, reused batch after batch
	isRead []bool // which positions were reads, for client accounting
	outq   int    // outqueue depth sampled after the batch
	start  time.Time
	errMsg string // non-empty: write an Error frame; the connection is done
}

// batchState is the per-connection decode state shared by the streaming
// decode callbacks. The callbacks close over one batchState for the whole
// connection — never over per-batch variables — so the steady-state batch
// loop creates no closures.
type batchState struct {
	prod  *core.Producer
	remap []hint.ID
	slot  *resultSlot
	err   error // sticky decode-side failure (bad hint index)
}

// begin is the DecodeBatchStream size callback: size the slot's result
// buffers and open the producer's streamed batch.
func (st *batchState) begin(n int) error {
	if cap(st.slot.hits) < n {
		st.slot.hits = make([]bool, n)
		st.slot.isRead = make([]bool, n)
	}
	st.slot.hits = st.slot.hits[:n]
	st.slot.isRead = st.slot.isRead[:n]
	st.prod.Begin(st.slot.hits)
	return nil
}

// emit is the DecodeBatchStream per-request callback: remap the
// connection-local hint index to a server-wide ID and route the request
// straight into its owner-shard frame — no intermediate request slice.
func (st *batchState) emit(i int, r trace.Request) error {
	if int(r.Hint) >= len(st.remap) {
		st.err = fmt.Errorf("hint index %d not announced (table has %d)", r.Hint, len(st.remap))
		return st.err
	}
	r.Hint = st.remap[r.Hint]
	st.slot.isRead[i] = r.Op == trace.Read
	st.prod.Add(r)
	return nil
}

// handle runs one connection: handshake, then a reader loop feeding the
// cache and a writer goroutine draining completed results. The reader
// decodes each batch straight into the producer's shard frames, runs it,
// and hands the filled result slot to the writer; the writer encodes and
// writes results in arrival order (which is sequence order — TCP keeps
// frames ordered and the reader serves them in order) and flushes only
// when its queue goes empty, coalescing many results into one syscall
// under pipelined load. The slot channel caps the in-flight window: a full
// window blocks the reader, which stops reading, which backpressures the
// client through TCP.
func (s *Server) handle(conn net.Conn) {
	s.connsTotal.Inc()
	s.connsActive.Add(1)
	defer func() {
		s.connsActive.Add(-1)
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)

	// Handshake failures are reported inline: the writer does not exist yet.
	failNow := func(msg string) {
		// Best-effort error report; the connection is going away either way.
		if err := wire.WriteFrame(bw, wire.AppendError(nil, msg)); err == nil {
			bw.Flush()
		}
	}

	payload, err := wire.ReadFrame(br, nil)
	if err != nil {
		return
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		failNow(err.Error())
		return
	}
	// Negotiate down to the client's version when it is older; refuse
	// clients below the floor. Every later frame is interpreted under the
	// negotiated version.
	ver, err := wire.Negotiate(hello.Version)
	if err != nil {
		failNow(fmt.Sprintf("unsupported protocol version %d (server speaks %d, accepts %d and up)",
			hello.Version, wire.Version, wire.MinVersion))
		return
	}
	if len(hello.Keys) > s.maxHintKeys {
		failNow(fmt.Sprintf("hint vocabulary %d exceeds limit %d", len(hello.Keys), s.maxHintKeys))
		return
	}
	st := &batchState{remap: s.intern(nil, hello.Keys)}
	ack := wire.AppendHelloAck(nil, wire.HelloAck{
		Version:  ver,
		Shards:   s.cache.Shards(),
		Capacity: s.cache.Capacity(),
		Window:   s.maxInflight,
	})
	if err := wire.WriteFrame(bw, ack); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	// Each connection drives the front through its own producer handle: in
	// owner mode the decoded batch fans out to the shard owners as frames,
	// in mutex mode the streamed adds degenerate to per-request accesses.
	// All batch state (the slots, the producer's frames, the writer's
	// encode buffer) is connection-owned and recycled.
	st.prod = s.cache.NewProducer()
	defer st.prod.Close()

	results := make(chan *resultSlot, s.maxInflight)
	free := make(chan *resultSlot, s.maxInflight)
	for i := 0; i < s.maxInflight; i++ {
		free <- &resultSlot{}
	}
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeLoop(conn, bw, results, free)
	}()
	defer func() {
		close(results)
		<-writerDone
	}()

	// fail routes a terminal error through the writer so it lands after
	// every already-queued result, keeping the stream well-formed from the
	// client's point of view.
	fail := func(msg string) {
		slot := <-free
		slot.errMsg = msg
		results <- slot
	}

	for {
		payload, err = wire.ReadFrame(br, payload)
		if err != nil {
			return // io.EOF is the clean goodbye; anything else, same exit
		}
		t, err := wire.PayloadType(payload)
		if err != nil {
			fail(err.Error())
			return
		}
		switch t {
		case wire.TypeIntern:
			keys, err := wire.DecodeIntern(payload)
			if err != nil {
				fail(err.Error())
				return
			}
			if len(st.remap)+len(keys) > s.maxHintKeys {
				fail(fmt.Sprintf("hint vocabulary %d exceeds limit %d", len(st.remap)+len(keys), s.maxHintKeys))
				return
			}
			st.remap = s.intern(st.remap, keys)
		case wire.TypeBatch, wire.TypeBatchSeq:
			if t == wire.TypeBatchSeq && ver < wire.PipelineVersion {
				fail(fmt.Sprintf("pipelined batches need protocol %d, connection negotiated %d", wire.PipelineVersion, ver))
				return
			}
			batchStart := time.Now()
			// Blocking here is the in-flight window: no free slot until the
			// writer retires one.
			slot := <-free
			slot.start = batchStart
			st.slot = slot
			seq, tagged, err := wire.DecodeBatchStream(payload, st.begin, st.emit)
			if err != nil {
				st.prod.Abort()
				free <- slot
				if st.err != nil {
					err = st.err
				}
				fail(err.Error())
				return
			}
			st.prod.Commit()
			var reads, readHits uint64
			for i, hit := range slot.hits {
				if slot.isRead[i] {
					reads++
					if hit {
						readHits++
					}
				}
			}
			// Fold the batch into the by-client totals before responding,
			// so once a client has its results the admin snapshot already
			// reflects them: Snapshot sums equal client-side accounting
			// the moment a replay returns.
			s.mergeClient(hello.Client, reads, readHits)
			slot.seq, slot.tagged = seq, tagged
			slot.outq = s.cache.OutqueueLen()
			s.inflight.Add(1)
			results <- slot
		case wire.TypeSummary:
			// Reject cleanly on connections that negotiated a pre-summary
			// protocol: the peer learns why instead of desyncing.
			if ver < wire.SummaryVersion {
				fail(fmt.Sprintf("summary frames need protocol %d, connection negotiated %d", wire.SummaryVersion, ver))
				return
			}
			sum, err := wire.DecodeSummary(payload)
			if err != nil {
				fail(err.Error())
				return
			}
			if err := s.AbsorbSummary(sum); err != nil {
				fail(err.Error())
				return
			}
		default:
			fail(fmt.Sprintf("unexpected frame type %d", t))
			return
		}
	}
}

// writeLoop is a connection's writer goroutine: encode and write each
// result slot in queue order, flush when the queue goes empty (one flush
// per serve cycle, not per frame), recycle the slot. On a write error it
// closes the connection — unblocking the reader — and keeps draining so
// the reader never blocks on a full queue.
func (s *Server) writeLoop(conn net.Conn, bw *bufio.Writer, results, free chan *resultSlot) {
	var out []byte
	var res wire.Results
	broken := false
	for slot := range results {
		if slot.errMsg != "" {
			// Terminal: report after everything already queued, best-effort.
			if !broken {
				if err := wire.WriteFrame(bw, wire.AppendError(out[:0], slot.errMsg)); err == nil {
					bw.Flush()
				}
				broken = true
			}
			slot.errMsg = ""
			free <- slot
			continue
		}
		if broken {
			s.inflight.Add(-1)
			free <- slot
			continue
		}
		res.Hits, res.OutqueueDepth = slot.hits, slot.outq
		if slot.tagged {
			out = wire.AppendResultsSeq(out[:0], slot.seq, res)
		} else {
			out = wire.AppendResults(out[:0], res)
		}
		err := wire.WriteFrame(bw, out)
		if err == nil && len(results) == 0 {
			if err = bw.Flush(); err == nil {
				s.flushes.Inc()
			}
		}
		// Batch service time spans decode through response write — the
		// server-side share of the client's observed RTT.
		s.batchNs.Observe(uint64(time.Since(slot.start)))
		s.batchesTotal.Inc()
		s.inflight.Add(-1)
		res.Hits = nil
		free <- slot
		if err != nil {
			broken = true
			conn.Close()
		}
	}
}

// ClientSnapshot is one client's merged read accounting.
type ClientSnapshot struct {
	Name     string `json:"name"`
	Reads    uint64 `json:"reads"`
	ReadHits uint64 `json:"readHits"`
}

// WindowStatSnapshot is one hint set's current-window statistics with the
// hint key resolved against the server dictionary.
type WindowStatSnapshot struct {
	Key string  `json:"key"`
	N   uint64  `json:"n"`
	Nr  uint64  `json:"nr"`
	D   float64 `json:"d"`
	Pr  float64 `json:"pr"`
}

// Snapshot is the admin view of a running server. Core.Learner reports
// where hint statistics are learned ("partitioned": per shard over W/N
// windows; "global": one shared lock-striped learner over the full
// window), and WindowStats is the current window of that learning —
// merged across shards in partitioned mode, the shared learner's view in
// global mode.
type Snapshot struct {
	Policy string     `json:"policy"`
	Core   core.Stats `json:"core"`
	// Shards is the per-shard breakdown of the same counters Core sums,
	// indexed by shard — the load-skew view of the partition hash.
	Shards []core.ShardStats `json:"shards"`
	// Connections is the page-request connection accounting.
	Connections ConnectionsSnapshot `json:"connections"`
	// Histograms summarises the server's cumulative latency histograms.
	Histograms  HistogramsSnapshot   `json:"histograms"`
	Clients     []ClientSnapshot     `json:"clients"`
	WindowStats []WindowStatSnapshot `json:"windowStats,omitempty"`
	// Cluster is the merged-learning accounting, present only in merged
	// statistics mode.
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`
}

// ClusterSnapshot is the merged-learning view of one cluster node: how
// many windows it has rotated (merge rounds), how many peer summaries it
// has folded in, how many it has published, and how many hint sets wait in
// the pending pool for the next rotation.
type ClusterSnapshot struct {
	Node               string `json:"node"`
	MergeRounds        uint64 `json:"mergeRounds"`
	SummariesAbsorbed  uint64 `json:"summariesAbsorbed"`
	SummariesPublished uint64 `json:"summariesPublished"`
	PendingHintSets    int    `json:"pendingHintSets"`
}

// ConnectionsSnapshot is the connection accounting at snapshot time.
type ConnectionsSnapshot struct {
	Active int64  `json:"active"`
	Total  uint64 `json:"total"`
	// Inflight is the number of pipelined batches accepted but not yet
	// answered, summed over all connections.
	Inflight int64 `json:"inflight"`
}

// HistogramsSnapshot carries cumulative histogram summaries: the server's
// batch service time, and (for in-process clients — loopback replays,
// tests) the netclient batch round-trip time. Each summary's unit is
// nanoseconds.
type HistogramsSnapshot struct {
	BatchServiceNs metrics.Summary `json:"batchServiceNs"`
	// Batches is the number of batches served (BatchServiceNs.Count once
	// quiescent, kept separate because the histogram lags the counter by
	// in-flight batches).
	Batches uint64 `json:"batches"`
}

// Snapshot assembles the admin view. topHints bounds the per-window hint
// statistics (0 omits them; they take every shard lock).
func (s *Server) Snapshot(topHints int) Snapshot {
	snap := Snapshot{
		Policy: s.cache.Name(),
		Core:   s.cache.Stats(),
		Connections: ConnectionsSnapshot{
			Active:   s.connsActive.Value(),
			Total:    s.connsTotal.Value(),
			Inflight: s.inflight.Value(),
		},
		Histograms: HistogramsSnapshot{
			BatchServiceNs: s.batchNs.Summary(),
			Batches:        s.batchesTotal.Value(),
		},
	}
	if m := s.cache.Merged(); m != nil {
		snap.Cluster = &ClusterSnapshot{
			Node:               s.node,
			MergeRounds:        m.Rounds(),
			SummariesAbsorbed:  m.Absorbed(),
			SummariesPublished: s.summariesPublished.Value(),
			PendingHintSets:    m.PendingHintSets(),
		}
	}
	snap.Shards = make([]core.ShardStats, s.cache.Shards())
	for i := range snap.Shards {
		snap.Shards[i] = s.cache.ShardStats(i)
	}
	var ws []core.HintStat
	if topHints > 0 {
		ws = s.cache.WindowStats()
		if len(ws) > topHints {
			ws = ws[:topHints]
		}
	}
	s.mu.Lock()
	for name, ct := range s.clients {
		snap.Clients = append(snap.Clients, ClientSnapshot{Name: name, Reads: ct.reads, ReadHits: ct.readHits})
	}
	for _, hs := range ws {
		snap.WindowStats = append(snap.WindowStats, WindowStatSnapshot{
			Key: s.dict.Key(hs.Hint), N: hs.N, Nr: hs.Nr, D: hs.D, Pr: hs.Pr,
		})
	}
	s.mu.Unlock()
	sort.Slice(snap.Clients, func(i, j int) bool { return snap.Clients[i].Name < snap.Clients[j].Name })
	return snap
}

// handleStats serves the snapshot as JSON. ?top=N bounds the hint-set
// statistics (default 20).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	top := 20
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad top parameter", http.StatusBadRequest)
			return
		}
		top = n
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A write error here means the client went away mid-response; there is
	// no one left to report it to.
	_ = enc.Encode(s.Snapshot(top))
}
