package server

import (
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netclient"
	"repro/internal/wire"
)

// buildRegistry wires every layer's series into the server's registry,
// scrape-time reads only — the hot path keeps writing the same atomics it
// already wrote, and the registry reads them when someone asks.
//
// Four families ride on one endpoint: clic_cache_* and clic_shard_* read
// the front's snapshot counters, clic_wire_* the process-wide codec
// counters, clic_server_* the connection and batch-service accounting, and
// clic_netclient_* the in-process client instruments. The client series
// count this process's netclient use (loopback replays, tests); against
// remote clients they sit at zero.
func (s *Server) buildRegistry() {
	r := metrics.NewRegistry()
	s.registry = r

	c := s.cache
	r.CounterFunc("clic_cache_reads_total", "Read requests served by the front.",
		func() float64 { return float64(c.Stats().Reads) })
	r.CounterFunc("clic_cache_read_hits_total", "Read requests that hit cache.",
		func() float64 { return float64(c.Stats().ReadHits) })
	r.CounterFunc("clic_cache_writes_total", "Write requests served by the front.",
		func() float64 { return float64(c.Stats().Writes) })
	r.CounterFunc("clic_cache_evictions_total", "Pages displaced by higher-priority admits.",
		func() float64 { return float64(c.Stats().Evictions) })
	r.CounterFunc("clic_cache_rotations_total", "Completed statistics windows (learner rotations).",
		func() float64 { return float64(c.Windows()) })
	r.GaugeFunc("clic_cache_pages", "Pages resident in cache.",
		func() float64 { return float64(c.Len()) })
	r.GaugeFunc("clic_cache_capacity_pages", "Configured page capacity.",
		func() float64 { return float64(c.Capacity()) })
	r.GaugeFunc("clic_cache_outqueue_depth", "Outqueue entries (uncached-page history).",
		func() float64 { return float64(c.OutqueueLen()) })
	r.GaugeFunc("clic_cache_tracked_hint_sets", "Hint sets tracked in the current window.",
		func() float64 { return float64(c.TrackedHintSets()) })

	for i := 0; i < c.Shards(); i++ {
		i := i
		shard := strconv.Itoa(i)
		r.CounterFunc("clic_shard_reads_total", "Read requests by shard.",
			func() float64 { return float64(c.ShardStats(i).Reads) }, "shard", shard)
		r.CounterFunc("clic_shard_read_hits_total", "Read hits by shard.",
			func() float64 { return float64(c.ShardStats(i).ReadHits) }, "shard", shard)
		r.CounterFunc("clic_shard_evictions_total", "Evictions by shard.",
			func() float64 { return float64(c.ShardStats(i).Evictions) }, "shard", shard)
		r.GaugeFunc("clic_shard_pages", "Resident pages by shard.",
			func() float64 { return float64(c.ShardStats(i).Len) }, "shard", shard)
		r.GaugeFunc("clic_shard_outqueue_depth", "Outqueue entries by shard.",
			func() float64 { return float64(c.ShardStats(i).OutqueueLen) }, "shard", shard)
	}

	wire.RegisterMetrics(r)
	netclient.RegisterMetrics(r)

	r.GaugeFunc("clic_server_connections_active", "Open page-request connections.",
		func() float64 { return float64(s.connsActive.Value()) })
	r.CounterFunc("clic_server_connections_total", "Page-request connections accepted since start.",
		func() float64 { return float64(s.connsTotal.Value()) })
	r.CounterFunc("clic_server_batches_total", "Request batches served.",
		func() float64 { return float64(s.batchesTotal.Value()) })
	r.GaugeFunc("clic_server_inflight_batches", "Pipelined batches accepted but not yet answered, all connections.",
		func() float64 { return float64(s.inflight.Value()) })
	r.CounterFunc("clic_server_flushes_total", "Writer buffer flushes (batches per flush is the write-coalescing factor).",
		func() float64 { return float64(s.flushes.Value()) })
	r.RegisterHistogram("clic_server_batch_ns", "Batch service time (decode to response write) in nanoseconds.", &s.batchNs)

	// Cluster merged-learning series, present only in merged statistics
	// mode so single-node scrapes stay unchanged.
	if m := c.Merged(); m != nil {
		r.CounterFunc("clic_cluster_merge_rounds_total", "Window rotations folding cluster state (merge rounds).",
			func() float64 { return float64(m.Rounds()) })
		r.CounterFunc("clic_cluster_summaries_absorbed_total", "Peer window summaries folded into the merged learner.",
			func() float64 { return float64(m.Absorbed()) })
		r.CounterFunc("clic_cluster_summaries_published_total", "Window summaries published to the cluster exchanger.",
			func() float64 { return float64(s.summariesPublished.Value()) })
		r.GaugeFunc("clic_cluster_pending_hint_sets", "Hint sets with remote counters awaiting the next rotation.",
			func() float64 { return float64(m.PendingHintSets()) })
	}
}

// Registry exposes the server's metrics registry (for embedding callers
// that want to add their own series next to the server's).
func (s *Server) Registry() *metrics.Registry { return s.registry }

// BatchServiceTime exposes the cumulative batch service-time histogram.
func (s *Server) BatchServiceTime() *metrics.Histogram { return &s.batchNs }

// handleMetrics serves the registry in the Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// A write error means the scraper went away mid-response.
	_ = s.registry.WritePrometheus(w)
}

// StartTimeline attaches a timeline recorder to the server: the standard
// cache columns (engine.CacheTimeline — same schema as clicsim's) over the
// server's batch service-time histogram, sampled every interval and on
// window rotations. The returned stop function writes the final row; call
// it before Close so the last rows still see the cache.
func (s *Server) StartTimeline(w io.Writer, interval time.Duration) (stop func()) {
	tl := metrics.NewTimeline(w)
	engine.CacheTimeline(tl, s.cache, &s.batchNs)
	tl.Value("connections", func() float64 { return float64(s.connsActive.Value()) })
	return tl.Start(interval, func() float64 { return float64(s.cache.Windows()) })
}
