// Package netclient is the client side of the wire protocol: a thin
// connection type (Dial/Hello/Announce/Do) for programs that want to talk
// to a cache server directly, plus trace replay drivers that mirror
// engine.ServeClients over the network — one connection and one goroutine
// per trace client, each streaming its own request subsequence and
// counting hits from the server's responses.
//
// Replay takes an in-memory trace; ReplayFile streams one from disk via
// trace.Scanner and ReplaySource streams from any trace.Source (file,
// in-memory trace, or live workload generator), so arbitrarily long
// streams replay in constant memory. All return a sim.Result shaped
// exactly like engine.ServeClients' so the loopback and in-process paths
// are directly comparable.
package netclient

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/hint"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Package-wide client instrumentation: every Do on every connection lands
// in one histogram of end-to-end batch round-trip times (encode, network,
// server service, decode) and one batch counter. Process-wide like
// wire.Metrics — an observation is two atomic bumps, nothing per
// connection to configure.
var (
	batchRTT     metrics.Histogram
	batchesTotal metrics.Counter
)

// BatchRTT exposes the cumulative round-trip histogram (nanoseconds per
// Do batch) for summaries and timelines.
func BatchRTT() *metrics.Histogram { return &batchRTT }

// RegisterMetrics registers the client-side series on r under the
// clic_netclient_* names.
func RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("clic_netclient_batches_total", "Request batches completed by in-process clients.",
		func() float64 { return float64(batchesTotal.Value()) })
	r.RegisterHistogram("clic_netclient_batch_rtt_ns", "End-to-end batch round-trip time in nanoseconds.", &batchRTT)
}

// Conn is one client connection to a cache server. Not safe for concurrent
// use; the replay drivers give each goroutine its own Conn.
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	ack       wire.HelloAck
	version   int // negotiated protocol version (0 before Hello)
	announced int // hint keys announced so far (Hello + Announce)

	scratch []byte       // frame read buffer
	enc     []byte       // frame build buffer
	res     wire.Results // reused results decode target
}

// Dial connects to a cache server without handshaking; call Hello next.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 1<<16),
		bw: bufio.NewWriterSize(nc, 1<<16),
	}, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// readFrame reads one frame, surfacing server Error frames as errors.
func (c *Conn) readFrame() ([]byte, error) {
	p, err := wire.ReadFrame(c.br, c.scratch)
	if err != nil {
		return nil, err
	}
	c.scratch = p
	if t, _ := wire.PayloadType(p); t == wire.TypeError {
		msg, err := wire.DecodeError(p)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("netclient: server error: %s", msg)
	}
	return p, nil
}

// Hello performs the handshake, announcing the client's name and initial
// hint vocabulary (requests then reference keys by announcement index).
func (c *Conn) Hello(client string, keys []string) (wire.HelloAck, error) {
	c.enc = wire.AppendHello(c.enc[:0], wire.Hello{Version: wire.Version, Client: client, Keys: keys})
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return wire.HelloAck{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.HelloAck{}, err
	}
	p, err := c.readFrame()
	if err != nil {
		return wire.HelloAck{}, err
	}
	ack, err := wire.DecodeHelloAck(p)
	if err != nil {
		return wire.HelloAck{}, err
	}
	// The server acks min(our version, its version); accept it under the
	// same floor rule the server applies to us.
	v, err := wire.Negotiate(ack.Version)
	if err != nil {
		return wire.HelloAck{}, fmt.Errorf("netclient: %w", err)
	}
	c.ack = ack
	c.version = v
	c.announced = len(keys)
	return ack, nil
}

// Ack returns the handshake response (zero before Hello).
func (c *Conn) Ack() wire.HelloAck { return c.ack }

// Version returns the negotiated protocol version (0 before Hello).
func (c *Conn) Version() int { return c.version }

// Probe dials addr and completes a throwaway handshake, verifying that a
// compatible cache server is listening there. Replay drivers use it to
// validate addresses up front instead of failing confusingly mid-replay.
func Probe(addr string) error {
	conn, err := Dial(addr)
	if err != nil {
		return fmt.Errorf("netclient: probing %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Hello("probe", nil); err != nil {
		return fmt.Errorf("netclient: probing %s: %w", addr, err)
	}
	return nil
}

// Announced returns how many hint keys this connection has announced.
func (c *Conn) Announced() int { return c.announced }

// Announce extends the connection's hint table with keys discovered after
// Hello. The frame is buffered and rides ahead of the next batch; the
// server sends no reply.
func (c *Conn) Announce(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	c.enc = wire.AppendIntern(c.enc[:0], keys)
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return err
	}
	c.announced += len(keys)
	return nil
}

// Do sends one request batch and returns the server's per-request results.
// Request Hint fields must index the announced hint table; Client fields
// are ignored. The returned Results reuses the connection's buffers and is
// valid until the next Do.
func (c *Conn) Do(reqs []trace.Request) (wire.Results, error) {
	start := time.Now()
	c.enc = wire.AppendBatch(c.enc[:0], reqs)
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return wire.Results{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Results{}, err
	}
	p, err := c.readFrame()
	if err != nil {
		return wire.Results{}, err
	}
	res, err := wire.DecodeResults(p, c.res)
	if err != nil {
		return wire.Results{}, err
	}
	c.res = res
	if len(res.Hits) != len(reqs) {
		return wire.Results{}, fmt.Errorf("netclient: %d results for %d requests", len(res.Hits), len(reqs))
	}
	batchRTT.Observe(uint64(time.Since(start)))
	batchesTotal.Inc()
	return res, nil
}

// SendSummary ships one merged-learning window summary to the peer — the
// node-to-node exchange of internal/cluster's gossip path. The peer sends
// no reply. It requires the negotiated protocol to define Summary frames;
// against an older peer it fails without writing anything, so a
// mixed-version cluster degrades to unmerged learning instead of desyncing
// the stream.
func (c *Conn) SendSummary(s wire.Summary) error {
	if c.version < wire.SummaryVersion {
		return fmt.Errorf("netclient: peer negotiated protocol %d, summaries need %d", c.version, wire.SummaryVersion)
	}
	c.enc = wire.AppendSummary(c.enc[:0], s)
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return err
	}
	return c.bw.Flush()
}

// ReplayOptions tune the replay drivers.
type ReplayOptions struct {
	// BatchSize is the request count per Batch frame; 0 selects
	// wire.DefaultBatch.
	BatchSize int
	// Limit caps the total number of requests replayed; 0 replays the
	// whole trace.
	Limit int
}

func (o ReplayOptions) batch() int {
	if o.BatchSize <= 0 {
		return wire.DefaultBatch
	}
	return o.BatchSize
}

// policyName mirrors core.Sharded.Name from the handshake, so loopback
// results label themselves like the in-process path.
func policyName(ack wire.HelloAck) string {
	if ack.Shards == 1 {
		return "CLIC"
	}
	return fmt.Sprintf("CLIC/%d", ack.Shards)
}

// runClient replays one client's request stream over one connection,
// counting read hits from the responses.
func runClient(addr, name string, keys []string, reqs []trace.Request, batch int, st *sim.ClientStat) (wire.HelloAck, error) {
	conn, err := Dial(addr)
	if err != nil {
		return wire.HelloAck{}, err
	}
	defer conn.Close()
	ack, err := conn.Hello(name, keys)
	if err != nil {
		return wire.HelloAck{}, err
	}
	for len(reqs) > 0 {
		n := batch
		if n > len(reqs) {
			n = len(reqs)
		}
		res, err := conn.Do(reqs[:n])
		if err != nil {
			return ack, err
		}
		for i, r := range reqs[:n] {
			if r.Op == trace.Read {
				st.Reads++
				if res.Hits[i] {
					st.ReadHits++
				}
			}
		}
		reqs = reqs[n:]
	}
	return ack, nil
}

// Replay replays an in-memory trace against the server at addr with one
// concurrent connection per trace client, engine.ServeClients over the
// wire. Like ServeClients, per-client read counts are exact while the
// aggregate hit count depends on how the clients' requests interleave at
// the server.
func Replay(addr string, t *trace.Trace, opt ReplayOptions) (sim.Result, error) {
	if opt.Limit > 0 {
		t = t.Truncate(opt.Limit)
	}
	keys := t.Dict.Keys()
	var (
		mu  sync.Mutex
		ack wire.HelloAck
	)
	res, err := engine.ServeStreams(t, func(c int, reqs []trace.Request, st *sim.ClientStat) error {
		a, err := runClient(addr, t.Clients[c], keys, reqs, opt.batch(), st)
		if a != (wire.HelloAck{}) {
			mu.Lock()
			ack = a
			mu.Unlock()
		}
		return err
	})
	if err != nil {
		return sim.Result{}, err
	}
	res.Policy = policyName(ack)
	res.CacheSize = ack.Capacity
	return res, nil
}

// keyLog is the append-only list of hint keys discovered by a streaming
// scan, shared between the dispatcher (writer) and the per-client senders
// (readers catching their connections up before each batch).
type keyLog struct {
	mu   sync.Mutex
	keys []string
}

func (l *keyLog) grow(d *hint.Dict) {
	l.mu.Lock()
	for id := len(l.keys); id < d.Len(); id++ {
		l.keys = append(l.keys, d.Key(hint.ID(id)))
	}
	l.mu.Unlock()
}

// since returns a copy of the keys appended at or after index from.
func (l *keyLog) since(from int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from >= len(l.keys) {
		return nil
	}
	out := make([]string, len(l.keys)-from)
	copy(out, l.keys[from:])
	return out
}

// ReplayFile replays a trace file against the server at addr, streaming
// requests via trace.Scanner so memory stays constant regardless of trace
// length.
func ReplayFile(addr, path string, opt ReplayOptions) (sim.Result, error) {
	return ReplaySource(addr, trace.FileSource(path), opt)
}

// ReplaySource replays any request source — a trace file, an in-memory
// trace, or a live generator spec — against the server at addr, never
// materialising the stream.
func ReplaySource(addr string, src trace.Source, opt ReplayOptions) (sim.Result, error) {
	it, err := src.Iter()
	if err != nil {
		return sim.Result{}, err
	}
	defer it.Close()
	return ReplayIterator(addr, it, opt)
}

// ReplayIterator replays a request iterator against the server at addr with
// one connection and one goroutine per discovered client. Clients and hint
// sets may be discovered as the iteration proceeds (text traces, v2 dict
// sections, generated streams); newly seen hint keys are announced to the
// server ahead of the first batch that references them.
func ReplayIterator(addr string, sc trace.Iterator, opt ReplayOptions) (sim.Result, error) {
	// Batch buffers cycle between the dispatcher and each worker: the
	// dispatcher fills one from the scan, hands it over on ch, and the
	// worker returns it on free once the server has answered. After a few
	// batches per client the replay reuses the same handful of buffers —
	// the steady-state dispatch path allocates nothing.
	type worker struct {
		ch      chan []trace.Request
		free    chan []trace.Request
		pending []trace.Request
		st      *sim.ClientStat
	}
	var (
		log     keyLog
		workers []*worker
		wg      sync.WaitGroup
		mu      sync.Mutex
		first   error
		ack     wire.HelloAck
		batch   = opt.batch()
		stats   []*sim.ClientStat
		total   uint64
		dictLen int
	)
	log.grow(sc.HintDict())
	dictLen = sc.HintDict().Len()
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}
	spawn := func(name string) *worker {
		w := &worker{
			ch:   make(chan []trace.Request, 4),
			free: make(chan []trace.Request, 8),
			st:   &sim.ClientStat{Name: name},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := Dial(addr)
			if err != nil {
				fail(err)
			} else {
				defer conn.Close()
				a, err := conn.Hello(name, log.since(0))
				if err != nil {
					fail(err)
					conn = nil
				} else {
					mu.Lock()
					ack = a
					mu.Unlock()
				}
			}
			send := func(reqs []trace.Request) error {
				if fresh := log.since(conn.Announced()); len(fresh) > 0 {
					if err := conn.Announce(fresh); err != nil {
						return err
					}
				}
				res, err := conn.Do(reqs)
				if err != nil {
					return err
				}
				for i, r := range reqs {
					if r.Op == trace.Read {
						w.st.Reads++
						if res.Hits[i] {
							w.st.ReadHits++
						}
					}
				}
				return nil
			}
			for reqs := range w.ch {
				// On failure keep draining so the dispatcher never blocks.
				if conn != nil && !failed() {
					if err := send(reqs); err != nil {
						fail(err)
					}
				}
				select {
				case w.free <- reqs[:0]:
				default:
				}
			}
		}()
		return w
	}

	for sc.Scan() {
		if opt.Limit > 0 && total >= uint64(opt.Limit) {
			break
		}
		if failed() {
			break
		}
		r := sc.Request()
		// Streaming inputs (text traces, v2 dict sections, generator
		// pipes) grow the dictionary mid-stream; checking the length
		// (dictionary mutation happens on this goroutine only) keeps the
		// keyLog mutex off the per-request path.
		if n := sc.HintDict().Len(); n != dictLen {
			log.grow(sc.HintDict())
			dictLen = n
		}
		c := int(r.Client)
		for c >= len(workers) {
			names := sc.Clients()
			name := fmt.Sprintf("client%d", len(workers))
			if len(workers) < len(names) {
				name = names[len(workers)]
			}
			w := spawn(name)
			workers = append(workers, w)
			stats = append(stats, w.st)
		}
		w := workers[c]
		w.pending = append(w.pending, r)
		if len(w.pending) >= batch {
			w.ch <- w.pending
			select {
			case w.pending = <-w.free:
			default:
				w.pending = nil
			}
		}
		total++
	}
	for _, w := range workers {
		if len(w.pending) > 0 {
			w.ch <- w.pending
		}
		close(w.ch)
	}
	wg.Wait()
	if err := sc.Err(); err != nil {
		return sim.Result{}, err
	}
	if first != nil {
		return sim.Result{}, first
	}

	res := sim.Result{
		Trace:     sc.Name(),
		Policy:    policyName(ack),
		CacheSize: ack.Capacity,
		Requests:  total,
		PerClient: make([]sim.ClientStat, len(stats)),
	}
	for i, st := range stats {
		res.PerClient[i] = *st
		res.Reads += st.Reads
		res.ReadHits += st.ReadHits
	}
	return res, nil
}
