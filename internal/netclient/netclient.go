// Package netclient is the client side of the wire protocol: a thin
// connection type (Dial/Hello/Announce/Do) for programs that want to talk
// to a cache server directly, plus trace replay drivers that mirror
// engine.ServeClients over the network — one connection and one goroutine
// per trace client, each streaming its own request subsequence and
// counting hits from the server's responses.
//
// Replay takes an in-memory trace; ReplayFile streams one from disk via
// trace.Scanner and ReplaySource streams from any trace.Source (file,
// in-memory trace, or live workload generator), so arbitrarily long
// streams replay in constant memory. All return a sim.Result shaped
// exactly like engine.ServeClients' so the loopback and in-process paths
// are directly comparable.
package netclient

import (
	"bufio"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/hint"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Package-wide client instrumentation: every Do on every connection lands
// in one histogram of end-to-end batch round-trip times (encode, network,
// server service, decode) and one batch counter. Process-wide like
// wire.Metrics — an observation is two atomic bumps, nothing per
// connection to configure.
var (
	batchRTT     metrics.Histogram
	batchesTotal metrics.Counter
)

// BatchRTT exposes the cumulative round-trip histogram (nanoseconds per
// Do batch) for summaries and timelines.
func BatchRTT() *metrics.Histogram { return &batchRTT }

// RegisterMetrics registers the client-side series on r under the
// clic_netclient_* names.
func RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("clic_netclient_batches_total", "Request batches completed by in-process clients.",
		func() float64 { return float64(batchesTotal.Value()) })
	r.RegisterHistogram("clic_netclient_batch_rtt_ns", "End-to-end batch round-trip time in nanoseconds.", &batchRTT)
}

// Conn is one client connection to a cache server. Not safe for concurrent
// use; the replay drivers give each goroutine its own Conn.
type Conn struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	ack       wire.HelloAck
	version   int // negotiated protocol version (0 before Hello)
	announced int // hint keys announced so far (Hello + Announce)

	scratch []byte       // frame read buffer
	enc     []byte       // frame build buffer
	res     wire.Results // reused results decode target
}

// Dial connects to a cache server without handshaking; call Hello next.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Conn{
		nc: nc,
		br: bufio.NewReaderSize(nc, 1<<16),
		bw: bufio.NewWriterSize(nc, 1<<16),
	}, nil
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.nc.Close() }

// readFrame reads one frame, surfacing server Error frames as errors.
func (c *Conn) readFrame() ([]byte, error) {
	p, err := wire.ReadFrame(c.br, c.scratch)
	if err != nil {
		return nil, err
	}
	c.scratch = p
	if t, _ := wire.PayloadType(p); t == wire.TypeError {
		msg, err := wire.DecodeError(p)
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("netclient: server error: %s", msg)
	}
	return p, nil
}

// Hello performs the handshake, announcing the client's name and initial
// hint vocabulary (requests then reference keys by announcement index).
func (c *Conn) Hello(client string, keys []string) (wire.HelloAck, error) {
	c.enc = wire.AppendHello(c.enc[:0], wire.Hello{Version: wire.Version, Client: client, Keys: keys})
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return wire.HelloAck{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.HelloAck{}, err
	}
	p, err := c.readFrame()
	if err != nil {
		return wire.HelloAck{}, err
	}
	ack, err := wire.DecodeHelloAck(p)
	if err != nil {
		return wire.HelloAck{}, err
	}
	// The server acks min(our version, its version); accept it under the
	// same floor rule the server applies to us.
	v, err := wire.Negotiate(ack.Version)
	if err != nil {
		return wire.HelloAck{}, fmt.Errorf("netclient: %w", err)
	}
	c.ack = ack
	c.version = v
	c.announced = len(keys)
	return ack, nil
}

// Ack returns the handshake response (zero before Hello).
func (c *Conn) Ack() wire.HelloAck { return c.ack }

// Version returns the negotiated protocol version (0 before Hello).
func (c *Conn) Version() int { return c.version }

// Probe dials addr and completes a throwaway handshake, verifying that a
// compatible cache server is listening there. Replay drivers use it to
// validate addresses up front instead of failing confusingly mid-replay.
func Probe(addr string) error {
	conn, err := Dial(addr)
	if err != nil {
		return fmt.Errorf("netclient: probing %s: %w", addr, err)
	}
	defer conn.Close()
	if _, err := conn.Hello("probe", nil); err != nil {
		return fmt.Errorf("netclient: probing %s: %w", addr, err)
	}
	return nil
}

// Announced returns how many hint keys this connection has announced.
func (c *Conn) Announced() int { return c.announced }

// Announce extends the connection's hint table with keys discovered after
// Hello. The frame is buffered and rides ahead of the next batch; the
// server sends no reply.
func (c *Conn) Announce(keys []string) error {
	if len(keys) == 0 {
		return nil
	}
	c.enc = wire.AppendIntern(c.enc[:0], keys)
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return err
	}
	c.announced += len(keys)
	return nil
}

// Do sends one request batch and returns the server's per-request results.
// Request Hint fields must index the announced hint table; Client fields
// are ignored. The returned Results reuses the connection's buffers and is
// valid until the next Do.
func (c *Conn) Do(reqs []trace.Request) (wire.Results, error) {
	start := time.Now()
	c.enc = wire.AppendBatch(c.enc[:0], reqs)
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return wire.Results{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Results{}, err
	}
	p, err := c.readFrame()
	if err != nil {
		return wire.Results{}, err
	}
	res, err := wire.DecodeResults(p, c.res)
	if err != nil {
		return wire.Results{}, err
	}
	c.res = res
	if len(res.Hits) != len(reqs) {
		return wire.Results{}, fmt.Errorf("netclient: %d results for %d requests", len(res.Hits), len(reqs))
	}
	batchRTT.Observe(uint64(time.Since(start)))
	batchesTotal.Inc()
	return res, nil
}

// SendSummary ships one merged-learning window summary to the peer — the
// node-to-node exchange of internal/cluster's gossip path. The peer sends
// no reply. It requires the negotiated protocol to define Summary frames;
// against an older peer it fails without writing anything, so a
// mixed-version cluster degrades to unmerged learning instead of desyncing
// the stream.
func (c *Conn) SendSummary(s wire.Summary) error {
	if c.version < wire.SummaryVersion {
		return fmt.Errorf("netclient: peer negotiated protocol %d, summaries need %d", c.version, wire.SummaryVersion)
	}
	c.enc = wire.AppendSummary(c.enc[:0], s)
	if err := wire.WriteFrame(c.bw, c.enc); err != nil {
		return err
	}
	return c.bw.Flush()
}

// PipelineHandler consumes one completed pipelined batch: tag is the
// value given to Submit, isRead flags the positions that were reads (in
// batch order), res carries the server's verdicts (valid only during the
// call), and rttNs is the batch's submit-to-result round-trip time.
type PipelineHandler func(tag any, isRead []bool, res wire.Results, rttNs int64) error

// pbatch is one in-flight pipelined batch: what the handler needs when
// its results arrive. Request payloads are not retained — Submit encodes
// them into the write buffer immediately, so callers may reuse their
// request slices the moment Submit returns.
type pbatch struct {
	seq    uint64
	tag    any
	isRead []bool
	start  time.Time
}

// Pipeline keeps up to depth batches in flight on one connection,
// overlapping the request stream with the server's responses instead of
// stalling a full round trip per batch. Results arrive in sequence order
// (TCP preserves frame order and the server answers in order); each is
// delivered to the handler as it completes. Against a server that
// negotiated below wire.PipelineVersion the pipeline degrades to
// lock-step (depth 1, untagged frames), so every caller works unchanged
// against v2 peers. Not safe for concurrent use, like Conn.
type Pipeline struct {
	c       *Conn
	depth   int
	handler PipelineHandler

	seq       uint64
	ring      []*pbatch // FIFO of in-flight batches
	head, n   int
	free      []*pbatch
	unflushed bool
}

// Pipeline returns a pipelined sender over the connection with at most
// depth batches in flight (min 1; capped at the server's advertised
// window, and forced to 1 when the negotiated protocol predates
// pipelining). Use Submit/Drain instead of Do; mixing them corrupts the
// stream.
func (c *Conn) Pipeline(depth int, h PipelineHandler) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	if c.version >= wire.PipelineVersion {
		if w := c.ack.Window; w > 0 && depth > w {
			depth = w
		}
	} else {
		depth = 1
	}
	return &Pipeline{c: c, depth: depth, handler: h, ring: make([]*pbatch, depth)}
}

// Depth returns the effective in-flight window after server capping.
func (p *Pipeline) Depth() int { return p.depth }

// Submit encodes and sends one batch, completing the oldest in-flight
// batch first when the window is full. reqs is fully consumed before
// Submit returns; tag is handed back to the handler with the batch's
// results. Writes are buffered — the wire sees them when the window
// forces a read, or at Drain — so a stream of small batches coalesces
// into few syscalls.
func (p *Pipeline) Submit(reqs []trace.Request, tag any) error {
	if p.n == p.depth {
		if err := p.completeOne(); err != nil {
			return err
		}
	}
	var b *pbatch
	if k := len(p.free); k > 0 {
		b, p.free = p.free[k-1], p.free[:k-1]
	} else {
		b = &pbatch{}
	}
	b.tag = tag
	b.start = time.Now()
	b.isRead = b.isRead[:0]
	for i := range reqs {
		b.isRead = append(b.isRead, reqs[i].Op == trace.Read)
	}
	if p.c.version >= wire.PipelineVersion {
		b.seq = p.seq
		p.seq++
		p.c.enc = wire.AppendBatchSeq(p.c.enc[:0], b.seq, reqs)
	} else {
		p.c.enc = wire.AppendBatch(p.c.enc[:0], reqs)
	}
	if err := wire.WriteFrame(p.c.bw, p.c.enc); err != nil {
		return err
	}
	p.unflushed = true
	p.ring[(p.head+p.n)%p.depth] = b
	p.n++
	return nil
}

// Inflight returns the number of batches awaiting results.
func (p *Pipeline) Inflight() int { return p.n }

// completeOne flushes any buffered writes (the server cannot answer
// frames it has not received) and consumes the oldest in-flight batch's
// results.
func (p *Pipeline) completeOne() error {
	if p.unflushed {
		if err := p.c.bw.Flush(); err != nil {
			return err
		}
		p.unflushed = false
	}
	b := p.ring[p.head]
	payload, err := p.c.readFrame()
	if err != nil {
		return err
	}
	var res wire.Results
	if p.c.version >= wire.PipelineVersion {
		seq, r, err := wire.DecodeResultsSeq(payload, p.c.res)
		if err != nil {
			return err
		}
		if seq != b.seq {
			return fmt.Errorf("netclient: results for sequence %d, want %d (pipelined results must arrive in order)", seq, b.seq)
		}
		res = r
	} else {
		res, err = wire.DecodeResults(payload, p.c.res)
		if err != nil {
			return err
		}
	}
	p.c.res = res
	if len(res.Hits) != len(b.isRead) {
		return fmt.Errorf("netclient: %d results for %d requests", len(res.Hits), len(b.isRead))
	}
	rtt := time.Since(b.start)
	batchRTT.Observe(uint64(rtt))
	batchesTotal.Inc()
	p.ring[p.head] = nil
	p.head = (p.head + 1) % p.depth
	p.n--
	err = p.handler(b.tag, b.isRead, res, int64(rtt))
	b.tag = nil
	p.free = append(p.free, b)
	return err
}

// Drain flushes and completes every in-flight batch.
func (p *Pipeline) Drain() error {
	for p.n > 0 {
		if err := p.completeOne(); err != nil {
			return err
		}
	}
	if p.unflushed {
		if err := p.c.bw.Flush(); err != nil {
			return err
		}
		p.unflushed = false
	}
	return nil
}

// DefaultDepth is the in-flight batch window replay drivers use when
// ReplayOptions.Depth is zero: deep enough to hide a loopback round trip
// behind the server's service time, shallow enough that per-connection
// buffering stays small.
const DefaultDepth = 8

// adaptiveStartBatch is where adaptive batch sizing begins; it doubles
// from here toward wire.DefaultBatch.
const adaptiveStartBatch = 64

// adaptiveSlack is how much the per-request latency may exceed the best
// observed before the sizer stops growing the batch.
const adaptiveSlack = 1.25

// BatchSizer grows the per-frame request count toward the
// wire.DefaultBatch sweet spot while the observed per-request round-trip
// latency stays flat: after a sample window of batches at the current
// size, it doubles the size if the window's median per-request RTT is
// within adaptiveSlack of the best window median seen; a degraded window
// holds the size instead. One settle window is discarded after start and
// after every growth, so the pipeline-fill transient (early batches see
// no queueing and would make every steady-state window look degraded)
// and the first batches at a new size never enter the comparison. The
// replay drivers here and in internal/cluster feed it from their result
// handlers; an explicit fixed size pins it and disables adaptation. Not
// safe for concurrent use.
type BatchSizer struct {
	size   int
	fixed  bool
	sample [8]float64 // per-request RTTs of the current window, ns
	sn     int
	settle int // batches to discard before sampling resumes
	best   float64
}

// NewBatchSizer returns a sizer pinned at fixed when fixed > 0, adaptive
// otherwise.
func NewBatchSizer(fixed int) *BatchSizer {
	if fixed > 0 {
		return &BatchSizer{size: fixed, fixed: true}
	}
	s := &BatchSizer{size: adaptiveStartBatch}
	s.settle = len(s.sample)
	return s
}

// Current returns the batch size to use for the next frame.
func (s *BatchSizer) Current() int { return s.size }

// Observe records one completed batch's round trip (n requests in
// rttNs nanoseconds).
func (s *BatchSizer) Observe(rttNs int64, n int) {
	if s.fixed || s.size >= wire.DefaultBatch || n == 0 {
		return
	}
	if s.settle > 0 {
		s.settle--
		return
	}
	s.sample[s.sn] = float64(rttNs) / float64(n)
	s.sn++
	if s.sn < len(s.sample) {
		return
	}
	s.sn = 0
	// Median of the window: robust against the occasional batch that
	// lands behind a window rotation or a scheduler hiccup.
	var sorted [8]float64
	copy(sorted[:], s.sample[:])
	sort.Float64s(sorted[:])
	med := sorted[len(sorted)/2]
	if s.best == 0 || med < s.best {
		s.best = med
	}
	if med <= s.best*adaptiveSlack {
		s.size *= 2
		if s.size > wire.DefaultBatch {
			s.size = wire.DefaultBatch
		}
		s.settle = len(s.sample)
	}
}

// ReplayOptions tune the replay drivers.
type ReplayOptions struct {
	// BatchSize is the request count per Batch frame; 0 selects adaptive
	// sizing (start at adaptiveStartBatch, grow toward wire.DefaultBatch
	// while the per-request round-trip tail stays flat).
	BatchSize int
	// Depth is the in-flight batch window per connection: 0 selects
	// DefaultDepth, 1 is lock-step (one round trip per batch, the v2
	// behaviour). Values above the server's advertised window are capped
	// at the handshake.
	Depth int
	// Limit caps the total number of requests replayed; 0 replays the
	// whole trace.
	Limit int
}

func (o ReplayOptions) batch() int {
	if o.BatchSize <= 0 {
		return wire.DefaultBatch
	}
	return o.BatchSize
}

func (o ReplayOptions) depth() int {
	if o.Depth <= 0 {
		return DefaultDepth
	}
	return o.Depth
}

// policyName mirrors core.Sharded.Name from the handshake, so loopback
// results label themselves like the in-process path.
func policyName(ack wire.HelloAck) string {
	if ack.Shards == 1 {
		return "CLIC"
	}
	return fmt.Sprintf("CLIC/%d", ack.Shards)
}

// runClient replays one client's request stream over one pipelined
// connection, counting read hits from the responses.
func runClient(addr, name string, keys []string, reqs []trace.Request, opt ReplayOptions, st *sim.ClientStat) (wire.HelloAck, error) {
	conn, err := Dial(addr)
	if err != nil {
		return wire.HelloAck{}, err
	}
	defer conn.Close()
	ack, err := conn.Hello(name, keys)
	if err != nil {
		return wire.HelloAck{}, err
	}
	sizer := NewBatchSizer(opt.BatchSize)
	pl := conn.Pipeline(opt.depth(), func(_ any, isRead []bool, res wire.Results, rttNs int64) error {
		for i, rd := range isRead {
			if rd {
				st.Reads++
				if res.Hits[i] {
					st.ReadHits++
				}
			}
		}
		sizer.Observe(rttNs, len(isRead))
		return nil
	})
	for len(reqs) > 0 {
		n := sizer.Current()
		if n > len(reqs) {
			n = len(reqs)
		}
		if err := pl.Submit(reqs[:n], nil); err != nil {
			return ack, err
		}
		reqs = reqs[n:]
	}
	return ack, pl.Drain()
}

// Replay replays an in-memory trace against the server at addr with one
// concurrent connection per trace client, engine.ServeClients over the
// wire. Like ServeClients, per-client read counts are exact while the
// aggregate hit count depends on how the clients' requests interleave at
// the server.
func Replay(addr string, t *trace.Trace, opt ReplayOptions) (sim.Result, error) {
	if opt.Limit > 0 {
		t = t.Truncate(opt.Limit)
	}
	keys := t.Dict.Keys()
	var (
		mu  sync.Mutex
		ack wire.HelloAck
	)
	res, err := engine.ServeStreams(t, func(c int, reqs []trace.Request, st *sim.ClientStat) error {
		a, err := runClient(addr, t.Clients[c], keys, reqs, opt, st)
		if a != (wire.HelloAck{}) {
			mu.Lock()
			ack = a
			mu.Unlock()
		}
		return err
	})
	if err != nil {
		return sim.Result{}, err
	}
	res.Policy = policyName(ack)
	res.CacheSize = ack.Capacity
	return res, nil
}

// keyLog is the append-only list of hint keys discovered by a streaming
// scan, shared between the dispatcher (writer) and the per-client senders
// (readers catching their connections up before each batch).
type keyLog struct {
	mu   sync.Mutex
	keys []string
}

func (l *keyLog) grow(d *hint.Dict) {
	l.mu.Lock()
	for id := len(l.keys); id < d.Len(); id++ {
		l.keys = append(l.keys, d.Key(hint.ID(id)))
	}
	l.mu.Unlock()
}

// since returns a copy of the keys appended at or after index from.
func (l *keyLog) since(from int) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from >= len(l.keys) {
		return nil
	}
	out := make([]string, len(l.keys)-from)
	copy(out, l.keys[from:])
	return out
}

// ReplayFile replays a trace file against the server at addr, streaming
// requests via trace.Scanner so memory stays constant regardless of trace
// length.
func ReplayFile(addr, path string, opt ReplayOptions) (sim.Result, error) {
	return ReplaySource(addr, trace.FileSource(path), opt)
}

// ReplaySource replays any request source — a trace file, an in-memory
// trace, or a live generator spec — against the server at addr, never
// materialising the stream.
func ReplaySource(addr string, src trace.Source, opt ReplayOptions) (sim.Result, error) {
	it, err := src.Iter()
	if err != nil {
		return sim.Result{}, err
	}
	defer it.Close()
	return ReplayIterator(addr, it, opt)
}

// ReplayIterator replays a request iterator against the server at addr with
// one connection and one goroutine per discovered client. Clients and hint
// sets may be discovered as the iteration proceeds (text traces, v2 dict
// sections, generated streams); newly seen hint keys are announced to the
// server ahead of the first batch that references them.
func ReplayIterator(addr string, sc trace.Iterator, opt ReplayOptions) (sim.Result, error) {
	// Batch buffers cycle between the dispatcher and each worker: the
	// dispatcher fills one from the scan, hands it over on ch, and the
	// worker returns it on free once the batch is encoded onto the wire
	// (the pipeline does not retain request payloads). After a few batches
	// per client the replay reuses the same handful of buffers — the
	// steady-state dispatch path allocates nothing.
	type worker struct {
		ch      chan []trace.Request
		free    chan []trace.Request
		pending []trace.Request
		st      *sim.ClientStat
		// size is the worker's current adaptive batch size, read by the
		// dispatcher to decide batch boundaries and stored by the worker's
		// result handler as its sizer grows.
		size atomic.Int64
	}
	var (
		log     keyLog
		workers []*worker
		wg      sync.WaitGroup
		mu      sync.Mutex
		first   error
		ack     wire.HelloAck
		stats   []*sim.ClientStat
		total   uint64
		dictLen int
	)
	log.grow(sc.HintDict())
	dictLen = sc.HintDict().Len()
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return first != nil
	}
	spawn := func(name string) *worker {
		w := &worker{
			ch:   make(chan []trace.Request, 4),
			free: make(chan []trace.Request, 8),
			st:   &sim.ClientStat{Name: name},
		}
		sizer := NewBatchSizer(opt.BatchSize)
		w.size.Store(int64(sizer.Current()))
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pl *Pipeline
			conn, err := Dial(addr)
			if err != nil {
				fail(err)
			} else {
				defer conn.Close()
				a, err := conn.Hello(name, log.since(0))
				if err != nil {
					fail(err)
					conn = nil
				} else {
					mu.Lock()
					ack = a
					mu.Unlock()
					pl = conn.Pipeline(opt.depth(), func(_ any, isRead []bool, res wire.Results, rttNs int64) error {
						for i, rd := range isRead {
							if rd {
								w.st.Reads++
								if res.Hits[i] {
									w.st.ReadHits++
								}
							}
						}
						sizer.Observe(rttNs, len(isRead))
						w.size.Store(int64(sizer.Current()))
						return nil
					})
				}
			}
			send := func(reqs []trace.Request) error {
				if fresh := log.since(conn.Announced()); len(fresh) > 0 {
					if err := conn.Announce(fresh); err != nil {
						return err
					}
				}
				return pl.Submit(reqs, nil)
			}
			for reqs := range w.ch {
				// On failure keep draining so the dispatcher never blocks.
				if conn != nil && !failed() {
					if err := send(reqs); err != nil {
						fail(err)
					}
				}
				select {
				case w.free <- reqs[:0]:
				default:
				}
			}
			if pl != nil && !failed() {
				if err := pl.Drain(); err != nil {
					fail(err)
				}
			}
		}()
		return w
	}

	for sc.Scan() {
		if opt.Limit > 0 && total >= uint64(opt.Limit) {
			break
		}
		if failed() {
			break
		}
		r := sc.Request()
		// Streaming inputs (text traces, v2 dict sections, generator
		// pipes) grow the dictionary mid-stream; checking the length
		// (dictionary mutation happens on this goroutine only) keeps the
		// keyLog mutex off the per-request path.
		if n := sc.HintDict().Len(); n != dictLen {
			log.grow(sc.HintDict())
			dictLen = n
		}
		c := int(r.Client)
		for c >= len(workers) {
			names := sc.Clients()
			name := fmt.Sprintf("client%d", len(workers))
			if len(workers) < len(names) {
				name = names[len(workers)]
			}
			w := spawn(name)
			workers = append(workers, w)
			stats = append(stats, w.st)
		}
		w := workers[c]
		w.pending = append(w.pending, r)
		if len(w.pending) >= int(w.size.Load()) {
			w.ch <- w.pending
			select {
			case w.pending = <-w.free:
			default:
				w.pending = nil
			}
		}
		total++
	}
	for _, w := range workers {
		if len(w.pending) > 0 {
			w.ch <- w.pending
		}
		close(w.ch)
	}
	wg.Wait()
	if err := sc.Err(); err != nil {
		return sim.Result{}, err
	}
	if first != nil {
		return sim.Result{}, first
	}

	res := sim.Result{
		Trace:     sc.Name(),
		Policy:    policyName(ack),
		CacheSize: ack.Capacity,
		Requests:  total,
		PerClient: make([]sim.ClientStat, len(stats)),
	}
	for i, st := range stats {
		res.PerClient[i] = *st
		res.Reads += st.Reads
		res.ReadHits += st.ReadHits
	}
	return res, nil
}
