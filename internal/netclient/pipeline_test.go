// Pipelined wire-path tests: equivalence of every in-flight depth with
// the in-process engine, protocol edge cases against hand-rolled peers
// (reordered results, v2 fallback, window capping), a concurrency stress
// for -race, and the end-to-end zero-allocation pin for the pipelined
// client and server serve loops.
package netclient_test

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netclient"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestPipelineDepthEquivalence is the golden test for pipelining: a
// single-client replay produces exactly the same reads and hits at any
// in-flight depth, and exactly matches engine.ServeClients — depth
// changes when results arrive, never what the server computes.
func TestPipelineDepthEquivalence(t *testing.T) {
	cfg := core.Config{Capacity: 3000, Window: 5000}
	const shards = 4
	want := engine.ServeClients(core.NewSharded(cfg, shards), testTrace)

	for _, depth := range []int{1, 4, 32} {
		srv := startServer(t, server.Config{Cache: cfg, Shards: shards})
		got, err := netclient.Replay(srv.Addr().String(), testTrace,
			netclient.ReplayOptions{Depth: depth, BatchSize: 256})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
			t.Errorf("depth %d: %d/%d hits/reads, in-process %d/%d",
				depth, got.ReadHits, got.Reads, want.ReadHits, want.Reads)
		}
		if got.ReadHits == 0 {
			t.Errorf("depth %d: no hits at all; test is vacuous", depth)
		}
		st := srv.Cache().Stats()
		if st.Reads != got.Reads || st.ReadHits != got.ReadHits {
			t.Errorf("depth %d: server stats (%d/%d) disagree with client (%d/%d)",
				depth, st.ReadHits, st.Reads, got.ReadHits, got.Reads)
		}
	}
}

// TestPipelineOwnerDepthEquivalence runs the same invariant through the
// owner-shard engine, whose producers are fed directly by the server's
// streaming decoder.
func TestPipelineOwnerDepthEquivalence(t *testing.T) {
	cfg := core.Config{Capacity: 3000, Window: 5000, Engine: core.EngineOwner}
	const shards = 4

	srv1 := startServer(t, server.Config{Cache: cfg, Shards: shards})
	want, err := netclient.Replay(srv1.Addr().String(), testTrace,
		netclient.ReplayOptions{Depth: 1, BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{4, 32} {
		srv := startServer(t, server.Config{Cache: cfg, Shards: shards})
		got, err := netclient.Replay(srv.Addr().String(), testTrace,
			netclient.ReplayOptions{Depth: depth, BatchSize: 256})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
			t.Errorf("depth %d: %d/%d hits/reads, depth-1 %d/%d",
				depth, got.ReadHits, got.Reads, want.ReadHits, want.Reads)
		}
	}
	if want.ReadHits == 0 {
		t.Error("no hits at all; test is vacuous")
	}
}

// fakeServer runs handler on one accepted connection, for protocol tests
// that need server behaviour a real server would never produce.
func fakeServer(t *testing.T, handler func(br *bufio.Reader, bw *bufio.Writer) error) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		if err := handler(br, bw); err != nil {
			t.Log("fake server:", err)
		}
		bw.Flush()
	}()
	return ln.Addr().String()
}

// ackHello consumes the client Hello and answers with the given ack.
func ackHello(br *bufio.Reader, bw *bufio.Writer, ack wire.HelloAck) error {
	p, err := wire.ReadFrame(br, nil)
	if err != nil {
		return err
	}
	if _, err := wire.DecodeHello(p); err != nil {
		return err
	}
	if err := wire.WriteFrame(bw, wire.AppendHelloAck(nil, ack)); err != nil {
		return err
	}
	return bw.Flush()
}

// TestPipelineReorderedResults checks the client detects a server that
// answers out of sequence order and fails with a readable protocol error
// instead of silently mis-attributing hits.
func TestPipelineReorderedResults(t *testing.T) {
	addr := fakeServer(t, func(br *bufio.Reader, bw *bufio.Writer) error {
		if err := ackHello(br, bw, wire.HelloAck{Version: wire.Version, Shards: 1, Capacity: 100, Window: 8}); err != nil {
			return err
		}
		// Read two tagged batches, answer them swapped.
		var seqs []uint64
		var sizes []int
		for i := 0; i < 2; i++ {
			p, err := wire.ReadFrame(br, nil)
			if err != nil {
				return err
			}
			seq, reqs, err := wire.DecodeBatchSeq(p, nil)
			if err != nil {
				return err
			}
			seqs = append(seqs, seq)
			sizes = append(sizes, len(reqs))
		}
		for i := []int{1, 0}[0]; i >= 0; i-- {
			res := wire.Results{Hits: make([]bool, sizes[i])}
			if err := wire.WriteFrame(bw, wire.AppendResultsSeq(nil, seqs[i], res)); err != nil {
				return err
			}
		}
		return bw.Flush()
	})

	conn, err := netclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hello("reorder", nil); err != nil {
		t.Fatal(err)
	}
	pl := conn.Pipeline(4, func(any, []bool, wire.Results, int64) error { return nil })
	for i := 0; i < 2; i++ {
		if err := pl.Submit([]trace.Request{{Page: uint64(i)}, {Page: uint64(i + 10)}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	err = pl.Drain()
	if err == nil {
		t.Fatal("client accepted out-of-order results")
	}
	if !strings.Contains(err.Error(), "sequence") {
		t.Errorf("error %q does not mention the sequence mismatch", err)
	}
}

// TestPipelineV2Fallback checks a v3 client degrades to lock-step
// untagged frames against a v2 server: depth forced to 1, plain Batch on
// the wire, plain Results accepted.
func TestPipelineV2Fallback(t *testing.T) {
	const batches = 3
	addr := fakeServer(t, func(br *bufio.Reader, bw *bufio.Writer) error {
		if err := ackHello(br, bw, wire.HelloAck{Version: wire.PipelineVersion - 1, Shards: 1, Capacity: 100}); err != nil {
			return err
		}
		var scratch []byte
		for i := 0; i < batches; i++ {
			p, err := wire.ReadFrame(br, scratch)
			if err != nil {
				return err
			}
			scratch = p
			if typ, _ := wire.PayloadType(p); typ != wire.TypeBatch {
				return wire.WriteFrame(bw, wire.AppendError(nil, "v2 server got a tagged frame"))
			}
			reqs, err := wire.DecodeBatch(p, nil)
			if err != nil {
				return err
			}
			hits := make([]bool, len(reqs))
			for j := range hits {
				hits[j] = true
			}
			if err := wire.WriteFrame(bw, wire.AppendResults(nil, wire.Results{Hits: hits})); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		return nil
	})

	conn, err := netclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hello("v2", nil); err != nil {
		t.Fatal(err)
	}
	if v := conn.Version(); v != wire.PipelineVersion-1 {
		t.Fatalf("negotiated version %d, want %d", v, wire.PipelineVersion-1)
	}
	var delivered, hits int
	pl := conn.Pipeline(8, func(_ any, isRead []bool, res wire.Results, _ int64) error {
		delivered++
		for _, h := range res.Hits {
			if h {
				hits++
			}
		}
		return nil
	})
	if pl.Depth() != 1 {
		t.Fatalf("v2 fallback depth = %d, want 1", pl.Depth())
	}
	for i := 0; i < batches; i++ {
		if err := pl.Submit([]trace.Request{{Page: 1}, {Page: 2, Op: trace.Write}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := pl.Drain(); err != nil {
		t.Fatal(err)
	}
	if delivered != batches || hits != batches*2 {
		t.Errorf("delivered %d batches with %d hits, want %d and %d", delivered, hits, batches, batches*2)
	}
}

// TestPipelineWindowCap checks the server's advertised window caps the
// client's requested depth, against both a fake peer and the real server.
func TestPipelineWindowCap(t *testing.T) {
	addr := fakeServer(t, func(br *bufio.Reader, bw *bufio.Writer) error {
		return ackHello(br, bw, wire.HelloAck{Version: wire.Version, Shards: 1, Capacity: 100, Window: 2})
	})
	conn, err := netclient.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hello("cap", nil); err != nil {
		t.Fatal(err)
	}
	if d := conn.Pipeline(16, nil).Depth(); d != 2 {
		t.Errorf("depth = %d, want the advertised window 2", d)
	}

	srv := startServer(t, server.Config{Cache: core.Config{Capacity: 100}, Shards: 1, MaxInflight: 4})
	conn2, err := netclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	ack, err := conn2.Hello("cap2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Window != 4 {
		t.Errorf("server advertised window %d, want 4", ack.Window)
	}
	if d := conn2.Pipeline(64, nil).Depth(); d != 4 {
		t.Errorf("depth = %d, want the server window 4", d)
	}
}

// TestPipelineRaceStress drives more concurrent pipelined connections
// than the server has shards, checking total accounting stays exact.
// Run under -race in CI, this is the data-race probe for the split
// reader/writer connection handler and the pooled result slots.
func TestPipelineRaceStress(t *testing.T) {
	const conns = 8
	const batches = 60
	const batchLen = 50
	cfg := core.Config{Capacity: 2000, Window: 4000, Engine: core.EngineOwner}
	srv := startServer(t, server.Config{Cache: cfg, Shards: 2, MaxInflight: 8})

	var wg sync.WaitGroup
	var mu sync.Mutex
	var reads, hits uint64
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := netclient.Dial(srv.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			if _, err := conn.Hello("stress", []string{"w=stress"}); err != nil {
				errs <- err
				return
			}
			var myReads, myHits uint64
			pl := conn.Pipeline(6, func(_ any, isRead []bool, res wire.Results, _ int64) error {
				for i, rd := range isRead {
					if rd {
						myReads++
						if res.Hits[i] {
							myHits++
						}
					}
				}
				return nil
			})
			reqs := make([]trace.Request, batchLen)
			for b := 0; b < batches; b++ {
				for i := range reqs {
					op := trace.Read
					if (b+i)%9 == 0 {
						op = trace.Write
					}
					// Overlapping page ranges across connections force
					// shard contention and real hits.
					reqs[i] = trace.Request{Page: uint64((c*31 + b*batchLen + i) % 1500), Op: op}
				}
				if err := pl.Submit(reqs, nil); err != nil {
					errs <- err
					return
				}
			}
			if err := pl.Drain(); err != nil {
				errs <- err
				return
			}
			mu.Lock()
			reads += myReads
			hits += myHits
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := srv.Cache().Stats()
	if st.Reads != reads || st.ReadHits != hits {
		t.Errorf("server stats (%d/%d) disagree with client accounting (%d/%d)",
			st.ReadHits, st.Reads, hits, reads)
	}
	if hits == 0 {
		t.Error("no hits at all; stress is vacuous")
	}
	if st.Requests != uint64(conns*batches*batchLen) {
		t.Errorf("server Requests = %d, want %d", st.Requests, conns*batches*batchLen)
	}
}

// TestPipelineSteadyStateAllocs pins the end-to-end zero-allocation
// contract of the pipelined path. AllocsPerRun counts process-wide
// mallocs, so one pin covers both sides at once: the client's
// Submit/complete cycle and the server's reader-decode → producer →
// writer-encode loop, over a real TCP connection. The window stays full
// (submit one, complete one) — the steady state of a saturating replay.
func TestPipelineSteadyStateAllocs(t *testing.T) {
	cfg := core.Config{Capacity: 512, Window: 1 << 30, TopK: 64, Engine: core.EngineOwner}
	srv := startServer(t, server.Config{Cache: cfg, Shards: 2, MaxInflight: 8})
	conn, err := netclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hello("alloc", []string{"w=alloc"}); err != nil {
		t.Fatal(err)
	}
	pl := conn.Pipeline(4, func(any, []bool, wire.Results, int64) error { return nil })

	reqs := make([]trace.Request, wire.DefaultBatch)
	off := 0
	submit := func() {
		for i := range reqs {
			op := trace.Read
			if i%7 == 0 {
				op = trace.Write
			}
			reqs[i] = trace.Request{Page: uint64((off + i*13) % 4096), Op: op}
		}
		off++
		if err := pl.Submit(reqs, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: fill the window and run enough cycles that every pooled
	// buffer on both sides (client pbatches, server slots, producer
	// frames, bufio, cache freelists) has reached steady-state size.
	for i := 0; i < 300; i++ {
		submit()
	}
	if err := pl.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		submit() // refill the window so each measured Submit completes one
	}
	if avg := testing.AllocsPerRun(200, submit); avg > 0.02 {
		t.Errorf("pipelined submit/complete cycle allocates %v allocs per batch (client+server), want 0", avg)
	}
	if err := pl.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSizer pins the adaptive-sizing rules: a fixed size never
// moves; flat per-request latency grows the size to wire.DefaultBatch;
// degraded latency holds it.
func TestBatchSizer(t *testing.T) {
	fixed := netclient.NewBatchSizer(128)
	for i := 0; i < 100; i++ {
		fixed.Observe(1000, fixed.Current())
	}
	if fixed.Current() != 128 {
		t.Errorf("fixed sizer moved to %d", fixed.Current())
	}

	flat := netclient.NewBatchSizer(0)
	if flat.Current() >= wire.DefaultBatch {
		t.Fatalf("adaptive sizer starts at %d, want below the %d cap", flat.Current(), wire.DefaultBatch)
	}
	// Early fill-phase batches with unrealistically low RTT must not
	// poison the baseline (they are the settle window).
	for i := 0; i < 4; i++ {
		flat.Observe(10, flat.Current())
	}
	for i := 0; i < 200; i++ {
		n := flat.Current()
		flat.Observe(int64(n)*1000, n) // flat 1000ns per request
	}
	if flat.Current() != wire.DefaultBatch {
		t.Errorf("flat latency grew the size to %d, want %d", flat.Current(), wire.DefaultBatch)
	}

	degraded := netclient.NewBatchSizer(0)
	start := degraded.Current()
	for i := 0; i < 20; i++ { // establish a baseline at the start size
		degraded.Observe(int64(start)*1000, start)
	}
	grown := degraded.Current()
	for i := 0; i < 200; i++ { // then per-request latency triples
		n := degraded.Current()
		degraded.Observe(int64(n)*3000, n)
	}
	if degraded.Current() > grown {
		t.Errorf("sizer kept growing (%d -> %d) through tripled latency", grown, degraded.Current())
	}
}
