// Loopback integration tests: a real server and real clients in one
// process, talking TCP over 127.0.0.1, checked against the in-process
// engine.ServeClients path on the same trace and configuration.
package netclient_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netclient"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workload"
)

// testTrace generates a small seeded TPC-C trace once per test binary.
var testTrace = func() *trace.Trace {
	p, err := workload.PresetByName("DB2_C60")
	if err != nil {
		panic(err)
	}
	p.Requests = 30000
	t, err := workload.Generate(p)
	if err != nil {
		panic(err)
	}
	return t
}()

func startServer(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	srv := server.New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestLoopbackGoldenSingleClient is the golden equivalence test: with a
// single client both paths drive the cache with the same total request
// order, so the networked replay's aggregate hit/miss counts must equal
// engine.ServeClients exactly — same trace, same configuration, bit for
// bit.
func TestLoopbackGoldenSingleClient(t *testing.T) {
	cfg := core.Config{Capacity: 3000, Window: 5000}
	const shards = 4

	want := engine.ServeClients(core.NewSharded(cfg, shards), testTrace)

	srv := startServer(t, server.Config{Cache: cfg, Shards: shards})
	got, err := netclient.Replay(srv.Addr().String(), testTrace, netclient.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("loopback %d/%d hits/reads, in-process %d/%d", got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.Requests != want.Requests {
		t.Errorf("Requests = %d, want %d", got.Requests, want.Requests)
	}
	if got.Policy != want.Policy {
		t.Errorf("Policy = %q, want %q", got.Policy, want.Policy)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all; the loopback path is vacuous")
	}
	// The server's own accounting must agree with the client's.
	st := srv.Cache().Stats()
	if st.Reads != got.Reads || st.ReadHits != got.ReadHits {
		t.Errorf("server stats (%d, %d) disagree with client accounting (%d, %d)",
			st.Reads, st.ReadHits, got.Reads, got.ReadHits)
	}
	if st.Requests != got.Requests {
		t.Errorf("server Requests = %d, want %d", st.Requests, got.Requests)
	}
}

// TestLoopbackMultiClient replays an interleaved three-client trace over
// three concurrent connections. The interleaving at the server is
// scheduler-dependent (exactly as in ServeClients), so only order-free
// quantities are compared: per-client read counts, totals, and the
// server-side accounting.
func TestLoopbackMultiClient(t *testing.T) {
	parts := make([]*trace.Trace, 3)
	for i := range parts {
		parts[i] = testTrace.Truncate(8000)
		parts[i].Name = fmt.Sprintf("c%d", i)
	}
	merged, err := trace.Interleave("TRIPLE", parts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Capacity: 3000, Window: 5000}
	want := engine.ServeClients(core.NewSharded(cfg, 4), merged)

	srv := startServer(t, server.Config{Cache: cfg, Shards: 4})
	got, err := netclient.Replay(srv.Addr().String(), merged, netclient.ReplayOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}

	if len(got.PerClient) != len(want.PerClient) {
		t.Fatalf("PerClient has %d entries, want %d", len(got.PerClient), len(want.PerClient))
	}
	for c := range got.PerClient {
		if got.PerClient[c].Name != want.PerClient[c].Name {
			t.Errorf("client %d name %q, want %q", c, got.PerClient[c].Name, want.PerClient[c].Name)
		}
		// Read counts depend only on the trace, not the interleaving.
		if got.PerClient[c].Reads != want.PerClient[c].Reads {
			t.Errorf("client %d Reads = %d, want %d", c, got.PerClient[c].Reads, want.PerClient[c].Reads)
		}
	}
	if got.Reads != want.Reads {
		t.Errorf("Reads = %d, want %d", got.Reads, want.Reads)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all")
	}
	st := srv.Cache().Stats()
	if st.ReadHits != got.ReadHits || st.Reads != got.Reads {
		t.Errorf("server stats (%d/%d) disagree with client accounting (%d/%d)",
			st.ReadHits, st.Reads, got.ReadHits, got.Reads)
	}
	snap := srv.Snapshot(10)
	var snapReads, snapHits uint64
	for _, cs := range snap.Clients {
		snapReads += cs.Reads
		snapHits += cs.ReadHits
	}
	if snapReads != got.Reads || snapHits != got.ReadHits {
		t.Errorf("snapshot per-client sums (%d/%d) disagree with client accounting (%d/%d)",
			snapHits, snapReads, got.ReadHits, got.Reads)
	}
}

// TestLoopbackReplayFileBinary streams a binary trace file over the wire
// and checks it against the in-memory replay of the same requests on an
// identically configured server.
func TestLoopbackReplayFileBinary(t *testing.T) {
	tr := testTrace.Truncate(12000)
	path := filepath.Join(t.TempDir(), "t.trc")
	if err := trace.Save(path, tr); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Capacity: 2000, Window: 4000}

	srv := startServer(t, server.Config{Cache: cfg, Shards: 4})
	got, err := netclient.ReplayFile(srv.Addr().String(), path, netclient.ReplayOptions{BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}

	// Single client: the file replay is sequential, so it must match the
	// in-memory sequential replay exactly.
	want := engine.ServeClients(core.NewSharded(cfg, 4), tr)
	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("file replay %d/%d, in-memory %d/%d", got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.Requests != uint64(tr.Len()) {
		t.Errorf("Requests = %d, want %d", got.Requests, tr.Len())
	}
}

// TestLoopbackReplayFileText streams a text trace, whose hint dictionary is
// discovered mid-scan — exercising the Intern (mid-stream announcement)
// protocol path end to end. Hint-set identity, not ID numbering, is what
// the cache keys on, so the sequential text replay must still match the
// in-memory path exactly.
func TestLoopbackReplayFileText(t *testing.T) {
	tr := testTrace.Truncate(5000)
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteText(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Capacity: 1500, Window: 2000}

	srv := startServer(t, server.Config{Cache: cfg, Shards: 4})
	got, err := netclient.ReplayFile(srv.Addr().String(), path, netclient.ReplayOptions{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := engine.ServeClients(core.NewSharded(cfg, 4), tr)
	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("text replay %d/%d, in-memory %d/%d", got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all")
	}
}

// TestLoopbackLimit checks ReplayOptions.Limit.
func TestLoopbackLimit(t *testing.T) {
	srv := startServer(t, server.Config{Cache: core.Config{Capacity: 500, Window: 1000}, Shards: 2})
	got, err := netclient.Replay(srv.Addr().String(), testTrace, netclient.ReplayOptions{Limit: 2500})
	if err != nil {
		t.Fatal(err)
	}
	if got.Requests != 2500 {
		t.Errorf("Requests = %d, want 2500", got.Requests)
	}
	if st := srv.Cache().Stats(); st.Requests != 2500 {
		t.Errorf("server processed %d requests, want 2500", st.Requests)
	}
}

// TestAdminStats exercises the admin HTTP endpoint end to end.
func TestAdminStats(t *testing.T) {
	cfg := core.Config{Capacity: 1000, Window: 2000}
	srv := startServer(t, server.Config{Cache: cfg, Shards: 2})
	if err := srv.ListenAdmin("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := netclient.Replay(srv.Addr().String(), testTrace.Truncate(8000), netclient.ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/stats?top=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var snap server.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Core.Requests != 8000 {
		t.Errorf("admin Requests = %d, want 8000", snap.Core.Requests)
	}
	if snap.Core.ReadHits == 0 {
		t.Error("admin reports no hits")
	}
	if snap.Policy != "CLIC/2" {
		t.Errorf("admin Policy = %q, want CLIC/2", snap.Policy)
	}
	if len(snap.Clients) != 1 || snap.Clients[0].Name != testTrace.Name {
		t.Errorf("admin Clients = %+v, want one entry named %q", snap.Clients, testTrace.Name)
	}
	if len(snap.WindowStats) == 0 || len(snap.WindowStats) > 5 {
		t.Errorf("admin WindowStats has %d entries, want 1..5", len(snap.WindowStats))
	}
	if _, err := http.Get("http://" + srv.AdminAddr().String() + "/stats?top=bogus"); err != nil {
		t.Fatal(err)
	}
}

// TestHintVocabularyLimit checks that the server refuses connections that
// would grow the shared dictionary past the configured bound, at both the
// Hello and the Intern stage.
func TestHintVocabularyLimit(t *testing.T) {
	srv := startServer(t, server.Config{Cache: core.Config{Capacity: 100}, Shards: 2, MaxHintKeys: 4})
	conn, err := netclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Hello("greedy", []string{"a=1", "a=2", "a=3", "a=4", "a=5"}); err == nil {
		t.Error("server accepted a Hello above the hint-vocabulary limit")
	}

	conn2, err := netclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if _, err := conn2.Hello("ok", []string{"a=1", "a=2", "a=3"}); err != nil {
		t.Fatal(err)
	}
	if err := conn2.Announce([]string{"a=4", "a=5"}); err != nil {
		t.Fatal(err) // announce is buffered; the error surfaces on Do
	}
	if _, err := conn2.Do([]trace.Request{{Page: 1}}); err == nil {
		t.Error("server accepted an Intern above the hint-vocabulary limit")
	}
}

// TestHelloVersionMismatch checks that the server rejects unknown protocol
// versions with a readable error.
func TestHelloVersionMismatch(t *testing.T) {
	srv := startServer(t, server.Config{Cache: core.Config{Capacity: 100}, Shards: 2})
	conn, err := netclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Dial+Hello always sends wire.Version; talk to the server raw to
	// simulate a future client. Easiest here: the server must also reject
	// a Batch before Hello.
	if _, err := conn.Do([]trace.Request{{Page: 1}}); err == nil {
		t.Error("server accepted a batch before Hello")
	}
}

// TestLoopbackGlobalLearner runs the whole network stack on a server whose
// shards share the global lock-striped learner: three concurrent client
// connections against two shards, so connection handlers contend for shard
// mutexes and learner stripes at once — the TCP-path stress test for
// global learning (run under -race in CI). Order-free quantities are
// checked against the in-process ServeClients path, and the admin snapshot
// must report the mode.
func TestLoopbackGlobalLearner(t *testing.T) {
	parts := make([]*trace.Trace, 3)
	for i := range parts {
		parts[i] = testTrace.Truncate(8000)
		parts[i].Name = fmt.Sprintf("g%d", i)
	}
	merged, err := trace.Interleave("TRIPLE_GLOBAL", parts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Capacity: 3000, Window: 5000, Stats: core.StatsGlobal}
	want := engine.ServeClients(core.NewSharded(cfg, 2), merged)

	srv := startServer(t, server.Config{Cache: cfg, Shards: 2})
	if err := srv.ListenAdmin("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	got, err := netclient.Replay(srv.Addr().String(), merged, netclient.ReplayOptions{BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	for c := range got.PerClient {
		if got.PerClient[c].Reads != want.PerClient[c].Reads {
			t.Errorf("client %d Reads = %d, want %d", c, got.PerClient[c].Reads, want.PerClient[c].Reads)
		}
	}
	if got.Reads != want.Reads {
		t.Errorf("Reads = %d, want %d", got.Reads, want.Reads)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all")
	}
	st := srv.Cache().Stats()
	if st.ReadHits != got.ReadHits || st.Reads != got.Reads {
		t.Errorf("server stats (%d/%d) disagree with client accounting (%d/%d)",
			st.ReadHits, st.Reads, got.ReadHits, got.Reads)
	}
	if st.Learner != "global" {
		t.Errorf("server Stats.Learner = %q, want global", st.Learner)
	}
	if want := merged.Len() / 5000; st.Windows != want {
		t.Errorf("Windows = %d, want exactly %d (shared learner)", st.Windows, want)
	}

	resp, err := http.Get("http://" + srv.AdminAddr().String() + "/stats?top=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap server.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Core.Learner != "global" {
		t.Errorf("admin snapshot learner = %q, want global", snap.Core.Learner)
	}
	if snap.Core.Requests != uint64(merged.Len()) {
		t.Errorf("admin Requests = %d, want %d", snap.Core.Requests, merged.Len())
	}
}

// TestLoopbackGoldenGlobalSingleShard: a 1-shard global-learner server
// replayed by a single client must match the plain in-process cache
// exactly — the partitioned-vs-global equivalence carried through the
// whole TCP stack.
func TestLoopbackGoldenGlobalSingleShard(t *testing.T) {
	tr := testTrace.Truncate(12000)
	cfg := core.Config{Capacity: 2000, Window: 4000, Stats: core.StatsGlobal}
	want := engine.ServeClients(core.NewSharded(cfg, 1), tr)

	srv := startServer(t, server.Config{Cache: cfg, Shards: 1})
	got, err := netclient.Replay(srv.Addr().String(), tr, netclient.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("loopback %d/%d hits/reads, in-process %d/%d", got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all; the loopback path is vacuous")
	}
}

// TestLoopbackOwnerGolden is the TCP-layer equivalence test for the
// single-owner engine: the same single-client replay against two servers
// that differ only in Config.Engine must produce bit-identical hit counts
// — the wire path, connection handler and batch fan-out preserve exact
// per-request semantics in both engine modes.
func TestLoopbackOwnerGolden(t *testing.T) {
	cfg := core.Config{Capacity: 3000, Window: 5000}
	const shards = 4

	mutexSrv := startServer(t, server.Config{Cache: cfg, Shards: shards})
	want, err := netclient.Replay(mutexSrv.Addr().String(), testTrace, netclient.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ocfg := cfg
	ocfg.Engine = core.EngineOwner
	ownerSrv := startServer(t, server.Config{Cache: ocfg, Shards: shards})
	got, err := netclient.Replay(ownerSrv.Addr().String(), testTrace, netclient.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if got.Reads != want.Reads || got.ReadHits != want.ReadHits {
		t.Errorf("owner server %d/%d hits/reads, mutex server %d/%d",
			got.ReadHits, got.Reads, want.ReadHits, want.Reads)
	}
	if got.ReadHits == 0 {
		t.Error("no hits at all; test is vacuous")
	}
	os, ms := ownerSrv.Cache().Stats(), mutexSrv.Cache().Stats()
	if os.Engine != "owner" || ms.Engine != "mutex" {
		t.Fatalf("engines reported as %q and %q", os.Engine, ms.Engine)
	}
	ms.Engine = os.Engine
	if os != ms {
		t.Errorf("server Stats drift:\nowner %+v\nmutex %+v", os, ms)
	}
}

// TestLoopbackOwnerMultiClient replays three concurrent clients against an
// owner-engine server — the TCP-layer stress for concurrent producers.
// Per-client read counts are exact and the server accounting must agree
// with the clients'.
func TestLoopbackOwnerMultiClient(t *testing.T) {
	parts := make([]*trace.Trace, 3)
	for i := range parts {
		parts[i] = testTrace.Truncate(8000)
		parts[i].Name = string(rune('A' + i))
	}
	merged, err := trace.Interleave("THREE", parts...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Capacity: 3000, Window: 5000, Engine: core.EngineOwner}
	srv := startServer(t, server.Config{Cache: cfg, Shards: 2})
	res, err := netclient.Replay(srv.Addr().String(), merged, netclient.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var reads, hits uint64
	for _, cs := range res.PerClient {
		reads += cs.Reads
		hits += cs.ReadHits
	}
	if res.Reads != reads || res.ReadHits != hits {
		t.Errorf("totals (%d, %d) disagree with per-client sums (%d, %d)", res.Reads, res.ReadHits, reads, hits)
	}
	if res.ReadHits == 0 {
		t.Error("no hits at all")
	}
	st := srv.Cache().Stats()
	if st.Reads != res.Reads || st.ReadHits != res.ReadHits {
		t.Errorf("server stats (%d, %d) disagree with client accounting (%d, %d)",
			st.Reads, st.ReadHits, res.Reads, res.ReadHits)
	}
	if st.Requests != uint64(merged.Len()) {
		t.Errorf("server Requests = %d, want %d", st.Requests, merged.Len())
	}
}
