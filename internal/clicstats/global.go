package clicstats

import (
	"sync"
	"sync/atomic"

	"repro/internal/hint"
	"repro/internal/spacesaving"
)

// DefaultStripes is the lock-stripe count of a Global learner when
// Config.Stripes is zero. The paper's workloads carry tens of distinct
// hint sets, so 16 stripes already put most concurrently-updated hint sets
// behind different locks.
const DefaultStripes = 16

// Global is the shared, concurrency-safe learner: every shard of a sharded
// cache feeds it and reads it, so the priority model Pr(H) is learned from
// the cache-wide request stream over the full window W while page placement
// stays hash-partitioned. This is the "global (striped or merged)
// statistics" design the per-shard W/N heuristic approximates.
//
// Concurrency design, hot path first:
//
//   - Priority/Epoch are wait-free: the priority table is an immutable map
//     behind an atomic pointer, republished once per window rotation.
//   - Arrive/Reref take one stripe mutex each: window counters are striped
//     by hint ID, so requests carrying different hint sets update
//     statistics in parallel. In top-k mode the stripes are a
//     spacesaving.Striped summary with the same property.
//   - EndRequest is one atomic add; the caller that lands exactly on the
//     window boundary performs the rotation (collecting every stripe under
//     its lock, blending, republishing) while all other callers continue
//     against the old table. Shards re-key their victim heaps lazily, at
//     their next request, by observing the epoch change.
//
// Under concurrent callers the boundary is slightly relaxed compared to a
// single-owner learner: requests in flight during a rotation land in
// whichever window their stripe update hits. Driven single-threaded in
// exact (TopK == 0) mode, Global is bit-identical to Partitioned.
type Global struct {
	cfg Config

	// Exact mode: per-stripe window counters (TopK == 0).
	stripes []globalStripe
	// Top-k mode: one striped Space-Saving summary (§5).
	topk *spacesaving.Striped[hint.ID, rerefAux]

	// requests counts EndRequest calls; every Window-th call rotates.
	requests atomic.Uint64
	// table is the immutable priority table + epoch in effect.
	table atomic.Pointer[globalTable]
	// rotateMu serializes rotations (belt and braces: triggers are a full
	// window apart, but rotation must never interleave with itself).
	rotateMu sync.Mutex
	windows  atomic.Int64

	// mergeFresh, when non-nil, replaces the default local-only fresh
	// estimates at rotation with ones computed from the drained window
	// counters plus whatever else the wrapper knows — Merged hooks in here
	// to fold counters absorbed from cluster peers. Called under rotateMu.
	mergeFresh func(local []WindowCounter) map[hint.ID]float64
}

type globalStripe struct {
	mu    sync.Mutex
	stats map[hint.ID]*winStats
	// Pad the 16 bytes of mutex + map header to a full 64-byte cache line
	// so neighbouring stripe locks do not false-share.
	_ [48]byte
}

type globalTable struct {
	pr    map[hint.ID]float64
	epoch uint64
}

var _ Learner = (*Global)(nil)

// stripeHash spreads hint IDs across stripes. IDs are dense small
// integers (interned in discovery order), so SplitMix32-style avalanche
// keeps adjacent — often co-hot — hint sets off the same lock.
func stripeHash(h hint.ID) uint64 {
	x := uint64(h) + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x
}

// minTopKPerStripe is the smallest per-stripe counter budget the top-k
// mode accepts: with only one or two counters per stripe nearly every
// Touch would recycle the stripe's minimum counter, collapsing N = C-e
// toward zero. Small k therefore trades stripe parallelism for accuracy.
const minTopKPerStripe = 8

// NewGlobal returns a shared learner for the configuration.
func NewGlobal(cfg Config) *Global {
	cfg.validate()
	if cfg.Stripes <= 0 {
		cfg.Stripes = DefaultStripes
	}
	g := &Global{cfg: cfg}
	if cfg.TopK > 0 {
		// Keep the §5 budget of k counters total, but never spread it so
		// thin that a stripe cannot track its frequent hint sets.
		stripes := cfg.Stripes
		if max := cfg.TopK / minTopKPerStripe; stripes > max {
			stripes = max
		}
		if stripes < 1 {
			stripes = 1
		}
		g.topk = spacesaving.NewStriped[hint.ID, rerefAux](cfg.TopK, stripes, stripeHash)
	} else {
		g.stripes = make([]globalStripe, cfg.Stripes)
		for i := range g.stripes {
			g.stripes[i].stats = make(map[hint.ID]*winStats)
		}
	}
	g.table.Store(&globalTable{pr: map[hint.ID]float64{}})
	return g
}

// Stripes returns the lock-stripe count in effect.
func (g *Global) Stripes() int {
	if g.topk != nil {
		return g.topk.Stripes()
	}
	return len(g.stripes)
}

func (g *Global) stripe(h hint.ID) *globalStripe {
	return &g.stripes[stripeHash(h)%uint64(len(g.stripes))]
}

// Arrive implements Learner.
func (g *Global) Arrive(h hint.ID) {
	if g.topk != nil {
		g.topk.Touch(h)
		return
	}
	st := g.stripe(h)
	st.mu.Lock()
	ws, ok := st.stats[h]
	if !ok {
		ws = &winStats{}
		st.stats[h] = ws
	}
	ws.n++
	st.mu.Unlock()
}

// Reref implements Learner.
func (g *Global) Reref(h hint.ID, dist uint64) {
	if g.topk != nil {
		g.topk.Update(h, func(c *spacesaving.Counter[hint.ID, rerefAux]) {
			c.Val.nr++
			c.Val.dsum += float64(dist)
		})
		return
	}
	st := g.stripe(h)
	st.mu.Lock()
	ws, ok := st.stats[h]
	if !ok {
		// As in Partitioned: the record that triggered this credit may
		// predate the current window; start a fresh entry.
		ws = &winStats{}
		st.stats[h] = ws
	}
	ws.nr++
	ws.dsum += float64(dist)
	st.mu.Unlock()
}

// EndRequest implements Learner. Exactly one caller observes each multiple
// of the window size (the counter is monotone), so exactly one rotation
// happens per window regardless of how many shards feed the learner.
func (g *Global) EndRequest() bool {
	if g.requests.Add(1)%uint64(g.cfg.Window) != 0 {
		return false
	}
	g.rotate()
	return true
}

// rotate closes the current window: it drains the stripes, blends the
// fresh estimates into a copy of the priority table (Equation 3), and
// republishes the table with the next epoch.
func (g *Global) rotate() {
	g.rotateMu.Lock()
	defer g.rotateMu.Unlock()

	local := g.drainWindow()
	var fresh map[hint.ID]float64
	if g.mergeFresh != nil {
		fresh = g.mergeFresh(local)
	} else {
		fresh = make(map[hint.ID]float64, len(local))
		for _, wc := range local {
			fresh[wc.Hint] = windowPriority(wc.N, wc.Nr, wc.Dsum)
		}
	}

	old := g.table.Load()
	pr := make(map[hint.ID]float64, len(old.pr)+len(fresh))
	for h, v := range old.pr {
		pr[h] = v
	}
	blend(pr, fresh, g.cfg.R)
	g.table.Store(&globalTable{pr: pr, epoch: old.epoch + 1})
	g.windows.Add(1)
}

// drainWindow empties the current window's counters and returns them raw.
// Callers hold rotateMu.
func (g *Global) drainWindow() []WindowCounter {
	var out []WindowCounter
	if g.topk != nil {
		for _, ctr := range g.topk.Drain() {
			out = append(out, WindowCounter{Hint: ctr.Key, N: ctr.Count - ctr.Err, Nr: ctr.Val.nr, Dsum: ctr.Val.dsum})
		}
		return out
	}
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		stats := st.stats
		st.stats = make(map[hint.ID]*winStats, len(stats))
		st.mu.Unlock()
		for h, ws := range stats {
			out = append(out, WindowCounter{Hint: h, N: ws.n, Nr: ws.nr, Dsum: ws.dsum})
		}
	}
	return out
}

// Priority implements Learner; it is wait-free.
func (g *Global) Priority(h hint.ID) float64 { return g.table.Load().pr[h] }

// Epoch implements Learner; it is wait-free.
func (g *Global) Epoch() uint64 { return g.table.Load().epoch }

// Windows implements Learner.
func (g *Global) Windows() int { return int(g.windows.Load()) }

// Priorities implements Learner.
func (g *Global) Priorities() map[hint.ID]float64 {
	pr := g.table.Load().pr
	out := make(map[hint.ID]float64, len(pr))
	for h, v := range pr {
		out[h] = v
	}
	return out
}

// WindowStats implements Learner. The snapshot takes each stripe lock in
// turn, so it is consistent per stripe and approximate across stripes —
// the same guarantee the sharded cache's merged accounting gives.
func (g *Global) WindowStats() []HintStat {
	var out []HintStat
	if g.topk != nil {
		for _, ctr := range g.topk.Counters() {
			out = append(out, newHintStat(ctr.Key, ctr.Count-ctr.Err, ctr.Val.nr, ctr.Val.dsum))
		}
	} else {
		for i := range g.stripes {
			st := &g.stripes[i]
			st.mu.Lock()
			for h, ws := range st.stats {
				out = append(out, newHintStat(h, ws.n, ws.nr, ws.dsum))
			}
			st.mu.Unlock()
		}
	}
	SortHintStats(out)
	return out
}

// TrackedHintSets implements Learner.
func (g *Global) TrackedHintSets() int {
	if g.topk != nil {
		return g.topk.Len()
	}
	n := 0
	for i := range g.stripes {
		st := &g.stripes[i]
		st.mu.Lock()
		n += len(st.stats)
		st.mu.Unlock()
	}
	return n
}
