package clicstats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hint"
)

// drive feeds l a deterministic single-threaded stream of n requests over
// pages drawn from a small hint vocabulary, mimicking what a cache does:
// every request arrives, some re-reference, every request ends.
func drive(l Learner, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		h := hint.ID(rng.Intn(8))
		l.Arrive(h)
		if rng.Intn(3) == 0 {
			l.Reref(h, uint64(rng.Intn(50)+1))
		}
		l.EndRequest()
	}
}

// TestMergedAloneMatchesGlobal pins that a Merged learner with no peers
// (nothing absorbed, bias 0) is bit-identical to Global on the same
// stream: the cluster machinery must cost nothing when unused.
func TestMergedAloneMatchesGlobal(t *testing.T) {
	cfg := Config{Window: 100, R: 0.5}
	g := NewGlobal(cfg)
	m := NewMerged(cfg)
	drive(g, 1000, 7)
	drive(m, 1000, 7)
	if g.Windows() != m.Windows() || g.Epoch() != m.Epoch() {
		t.Fatalf("windows/epoch diverged: global %d/%d, merged %d/%d",
			g.Windows(), g.Epoch(), m.Windows(), m.Epoch())
	}
	gp, mp := g.Priorities(), m.Priorities()
	if len(gp) != len(mp) {
		t.Fatalf("table size diverged: %d vs %d", len(gp), len(mp))
	}
	for h, v := range gp {
		if mv, ok := mp[h]; !ok || math.Float64bits(mv) != math.Float64bits(v) {
			t.Errorf("hint %d: global %v, merged %v", h, v, mv)
		}
	}
	if m.Rounds() != uint64(m.Windows()) {
		t.Errorf("rounds = %d, want %d", m.Rounds(), m.Windows())
	}
}

// TestMergedAbsorb pins the merge arithmetic: remote counters folded in
// before a rotation sum with the local window, exactly as if the remote
// requests had hit this node (Equation 2 over the summed counters).
func TestMergedAbsorb(t *testing.T) {
	m := NewMerged(Config{Window: 4, R: 1})
	// Local window: N(0)=4, Nr(0)=2, dsum=4.
	for i := 0; i < 3; i++ {
		m.Arrive(0)
		m.EndRequest()
	}
	m.Arrive(0)
	m.Reref(0, 1)
	m.Reref(0, 3)
	// Remote: N(0)=4, Nr(0)=2, dsum=4 (a peer that saw the same pattern),
	// plus hint 1 that only the peer saw.
	m.Absorb([]WindowCounter{
		{Hint: 0, N: 4, Nr: 2, Dsum: 4},
		{Hint: 1, N: 2, Nr: 1, Dsum: 10},
	})
	if m.Absorbed() != 1 || m.PendingHintSets() != 2 {
		t.Fatalf("absorbed=%d pending=%d", m.Absorbed(), m.PendingHintSets())
	}
	if !m.EndRequest() {
		t.Fatal("request W did not rotate")
	}
	// Merged hint 0: nr²/(n·dsum) = 16/(8·8) = 0.25 — the same estimate as
	// local-only here, pinning that doubling every counter is neutral.
	if got := m.Priority(0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("Priority(0) = %v, want 0.25", got)
	}
	// Remote-only hint 1: 1/(2·10) = 0.05.
	if got := m.Priority(1); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("Priority(1) = %v, want 0.05", got)
	}
	if m.PendingHintSets() != 0 {
		t.Errorf("pending pool not drained: %d", m.PendingHintSets())
	}
}

// TestMergedLocalBias pins the prior/correction blend: with bias b the
// fresh estimate is (1-b)·merged + b·local.
func TestMergedLocalBias(t *testing.T) {
	m := NewMerged(Config{Window: 2, R: 1, LocalBias: 0.25})
	// Local: N(0)=2, Nr(0)=1, dsum=2 → local est 1/(2·2) = 0.25.
	m.Arrive(0)
	m.EndRequest()
	m.Arrive(0)
	m.Reref(0, 2)
	// Remote skews hint 0 down: merged N=4, Nr=1, dsum=4 → 1/(4·4) = 0.0625.
	m.Absorb([]WindowCounter{{Hint: 0, N: 2, Nr: 0, Dsum: 2}})
	m.EndRequest()
	want := 0.75*0.0625 + 0.25*0.25
	if got := m.Priority(0); math.Abs(got-want) > 1e-12 {
		t.Errorf("Priority(0) = %v, want %v", got, want)
	}

	for _, bad := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LocalBias %v should panic", bad)
				}
			}()
			NewMerged(Config{Window: 2, R: 1, LocalBias: bad})
		}()
	}
}

// TestMergedPublish checks the publication hook: called once per rotation
// with monotone rounds and only this node's local counters.
func TestMergedPublish(t *testing.T) {
	m := NewMerged(Config{Window: 2, R: 1})
	var rounds []uint64
	var lastLocal []WindowCounter
	m.SetPublish(func(round uint64, local []WindowCounter) {
		rounds = append(rounds, round)
		lastLocal = append([]WindowCounter(nil), local...)
	})
	// Absorbed remote counters for hint 5 must NOT appear in what this
	// node publishes.
	m.Absorb([]WindowCounter{{Hint: 5, N: 100, Nr: 50, Dsum: 500}})
	m.Arrive(0)
	m.EndRequest()
	m.Arrive(0)
	m.Reref(0, 1)
	m.EndRequest()
	if len(rounds) != 1 || rounds[0] != 1 {
		t.Fatalf("rounds = %v, want [1]", rounds)
	}
	if len(lastLocal) != 1 || lastLocal[0].Hint != 0 {
		t.Fatalf("published %+v, want only local hint 0", lastLocal)
	}
	if lastLocal[0].N != 2 || lastLocal[0].Nr != 1 || lastLocal[0].Dsum != 1 {
		t.Errorf("published counters %+v, want N=2 Nr=1 Dsum=1", lastLocal[0])
	}
	m.Arrive(1)
	m.EndRequest()
	m.Arrive(1)
	m.EndRequest()
	if len(rounds) != 2 || rounds[1] != 2 {
		t.Errorf("rounds = %v, want [1 2]", rounds)
	}
}

// TestMergedCrossFeed wires two Merged learners into a two-node cluster by
// hand: each publishes into the other's pending pool. A hint set seen only
// by node A must become prioritized on node B after B's next rotation.
func TestMergedCrossFeed(t *testing.T) {
	cfg := Config{Window: 4, R: 1}
	a, b := NewMerged(cfg), NewMerged(cfg)
	a.SetPublish(func(_ uint64, local []WindowCounter) { b.Absorb(local) })
	b.SetPublish(func(_ uint64, local []WindowCounter) { a.Absorb(local) })

	// Node A sees hint 7 heavily; node B never does.
	for i := 0; i < 3; i++ {
		a.Arrive(7)
		a.Reref(7, 2)
		a.EndRequest()
		b.Arrive(1)
		b.EndRequest()
	}
	a.Arrive(7)
	a.Reref(7, 2)
	a.EndRequest() // A rotates: publishes hint 7 counters into B's pool
	b.Arrive(1)
	b.EndRequest() // B rotates: folds A's counters in
	if got := b.Priority(7); got <= 0 {
		t.Fatalf("node B learned nothing about hint 7 (priority %v)", got)
	}
	// B's estimate for 7 comes purely from A's summary: N=4, Nr=4, dsum=8
	// → 16/(4·8) = 0.5.
	if got := b.Priority(7); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Priority(7) on B = %v, want 0.5", got)
	}
}
