package clicstats

import (
	"sync"
	"sync/atomic"

	"repro/internal/hint"
)

// Merged is the cluster-mode learner: a Global learner whose window
// rotations additionally (1) publish the node's just-closed window counters
// so a cluster exchanger can ship them to peer nodes as wire Summary
// frames, and (2) fold counters absorbed from peers into the fresh
// estimates before the decay blend, so every node's priority table is
// learned from (approximately) the cluster-wide request stream while page
// placement stays partitioned by the ring.
//
// The merge is the same arithmetic MergeHintStats applies to in-process
// shards — sum N and Nr, sum the distance sums, recompute Equation 2 —
// followed by the ordinary Equation 3 decay blend, so cross-node learning
// reuses the existing machinery rather than inventing a second estimator.
// Remote counters arrive asynchronously and wait in a pending pool until
// this node's own next rotation; they are one window stale by
// construction, which the decay blend tolerates the same way it tolerates
// any window-to-window drift.
//
// With LocalBias > 0 the fresh estimate becomes a weighted average
// (1-bias)·merged + bias·local, turning the cluster-wide counters into
// priors that per-node corrections can pull against; bias 0 (the default)
// trusts the merged stream outright.
//
// Publishing happens inside the rotation, under the rotation lock, with
// only this node's local counters — never the absorbed remote ones — so a
// summary forwarded around a cluster cannot echo a peer's requests back to
// it and double-count them.
type Merged struct {
	*Global

	bias float64

	// publish, when set, receives each closed window's local counters and
	// the merge round that closed it. Set once, before traffic.
	publish func(round uint64, local []WindowCounter)

	mu      sync.Mutex
	pending map[hint.ID]*winStats

	rounds   atomic.Uint64
	absorbed atomic.Uint64
}

// NewMerged returns a cluster-mode learner for the configuration.
func NewMerged(cfg Config) *Merged {
	if cfg.LocalBias < 0 || cfg.LocalBias >= 1 {
		panic("clicstats: LocalBias must be in [0, 1)")
	}
	m := &Merged{bias: cfg.LocalBias, pending: make(map[hint.ID]*winStats)}
	m.Global = NewGlobal(cfg)
	m.Global.mergeFresh = m.fold
	return m
}

// SetPublish installs the summary publication hook. It must be called
// before the learner sees traffic; the hook runs under the rotation lock,
// so it must not call back into the learner.
func (m *Merged) SetPublish(fn func(round uint64, local []WindowCounter)) {
	m.publish = fn
}

// Absorb folds one peer summary's window counters into the pending pool;
// they take effect at this node's next rotation. Safe for concurrent use
// with the request path.
func (m *Merged) Absorb(counters []WindowCounter) {
	m.mu.Lock()
	for _, wc := range counters {
		ws, ok := m.pending[wc.Hint]
		if !ok {
			ws = &winStats{}
			m.pending[wc.Hint] = ws
		}
		ws.n += wc.N
		ws.nr += wc.Nr
		ws.dsum += wc.Dsum
	}
	m.mu.Unlock()
	m.absorbed.Add(1)
}

// Rounds returns the number of merge rounds (window rotations) completed.
func (m *Merged) Rounds() uint64 { return m.rounds.Load() }

// Absorbed returns the number of peer summaries folded in so far.
func (m *Merged) Absorbed() uint64 { return m.absorbed.Load() }

// PendingHintSets returns the number of hint sets with remote counters
// waiting for the next rotation.
func (m *Merged) PendingHintSets() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// fold is the mergeFresh hook: publish the local window, swap out the
// pending remote counters, and estimate each hint set from the sum of
// both. Runs under the rotation lock.
func (m *Merged) fold(local []WindowCounter) map[hint.ID]float64 {
	round := m.rounds.Add(1)
	if m.publish != nil {
		m.publish(round, local)
	}

	m.mu.Lock()
	pending := m.pending
	m.pending = make(map[hint.ID]*winStats)
	m.mu.Unlock()

	fresh := make(map[hint.ID]float64, len(local)+len(pending))
	for _, wc := range local {
		n, nr, dsum := wc.N, wc.Nr, wc.Dsum
		if ws, ok := pending[wc.Hint]; ok {
			n += ws.n
			nr += ws.nr
			dsum += ws.dsum
			delete(pending, wc.Hint)
		}
		est := windowPriority(n, nr, dsum)
		if m.bias > 0 {
			est = (1-m.bias)*est + m.bias*windowPriority(wc.N, wc.Nr, wc.Dsum)
		}
		fresh[wc.Hint] = est
	}
	// Hint sets only peers saw this round: the local estimate is zero, so
	// bias simply discounts the merged one.
	for h, ws := range pending {
		est := windowPriority(ws.n, ws.nr, ws.dsum)
		if m.bias > 0 {
			est = (1 - m.bias) * est
		}
		fresh[h] = est
	}
	return fresh
}
