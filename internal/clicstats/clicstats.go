// Package clicstats is CLIC's hint-statistics learner, factored out of the
// cache so that priority learning and page placement are independent design
// axes. The learner owns everything the paper's §3 calls "statistics
// gathering": the per-window counters N(H), Nr(H) and the re-reference
// distance sum behind D(H) (Equations 1–2), the Space-Saving top-k summary
// that bounds them (§5), the window rotation with decay blending r
// (Equation 3), and the resulting priority table Pr(H).
//
// Two implementations of the Learner interface cover the two ends of the
// sharded-cache design space:
//
//   - Partitioned is the classic single-owner learner: not safe for
//     concurrent use, bit-identical to the bookkeeping that used to be
//     inlined in core.Cache. A sharded cache gives each shard its own
//     Partitioned learner over a W/N window — learning is fully
//     partitioned along with placement.
//   - Global is a lock-striped, concurrency-safe learner that every shard
//     of a sharded cache feeds and reads: page placement stays
//     hash-partitioned while the priority model is learned from the full
//     cache-wide request stream over the full window W.
//
// Driven single-threaded in exact (TopK == 0) mode, Global produces exactly
// the same priorities as Partitioned; the difference is purely who may call
// it and which request subsequence it sees.
//
// The caller (the cache) remains responsible for page-level work: detecting
// re-references via its page and outqueue records, and re-keying its victim
// heap when the priority table changes. The Epoch method makes the latter
// cheap: the epoch advances on every rotation, so a cache compares it to
// the epoch it last synced at and rebuilds only then.
package clicstats

import (
	"sort"

	"repro/internal/hint"
)

// Config parameterises a learner. Unlike core.Config it carries no
// defaults: the cache layer resolves those before constructing a learner.
type Config struct {
	// Window is W, the number of requests per statistics window (> 0).
	Window int
	// R is the exponential decay parameter r in (0, 1] (Equation 3).
	R float64
	// TopK bounds hint-set tracking to the k most frequent hint sets with
	// the adapted Space-Saving summary (§5); 0 tracks all hint sets.
	TopK int
	// Stripes is the lock-stripe count of a Global learner; 0 selects
	// DefaultStripes. Partitioned ignores it.
	Stripes int
	// LocalBias weights a Merged learner's node-local window estimate over
	// the cluster-merged one when forming fresh priorities: 0 learns from
	// the pure cluster-wide counters (the default), values toward 1 favour
	// what this node saw itself. Must be in [0, 1). Partitioned and Global
	// ignore it.
	LocalBias float64
}

func (cfg Config) validate() {
	if cfg.Window <= 0 {
		panic("clicstats: Window must be positive")
	}
	if cfg.R <= 0 || cfg.R > 1 {
		panic("clicstats: R must be in (0, 1]")
	}
}

// Learner accumulates hint-set statistics and serves the priority table
// learned from them. Arrive/Reref/EndRequest are the per-request hot path;
// the cache calls them in that order for every request. Whether a Learner
// tolerates concurrent callers is implementation-defined: Partitioned does
// not, Global does.
type Learner interface {
	// Arrive records one request carrying hint set h (N(H) += 1).
	Arrive(h hint.ID)
	// Reref records that a request with hint set h was followed by a read
	// re-reference at the given distance (Nr(H) += 1, D-sum += dist). In
	// top-k mode the credit is dropped unless h is currently tracked,
	// exactly as §5 prescribes.
	Reref(h hint.ID, dist uint64)
	// EndRequest counts one request against the window and reports whether
	// this call closed a window (rotating statistics into the priority
	// table and advancing the epoch).
	EndRequest() bool
	// Priority returns Pr(h) from the table currently in effect.
	Priority(h hint.ID) float64
	// Epoch identifies the priority table in effect; it advances by one at
	// every window rotation. A cache that cached priorities (in its victim
	// heap) refreshes them when the epoch it last synced at is stale.
	Epoch() uint64
	// Windows returns the number of completed statistics windows.
	Windows() int
	// Priorities returns a copy of the priority table in effect.
	Priorities() map[hint.ID]float64
	// WindowStats snapshots the statistics accumulated so far in the
	// current window, sorted by descending N.
	WindowStats() []HintStat
	// TrackedHintSets returns the number of hint sets with statistics in
	// the current window (bounded by k in top-k mode).
	TrackedHintSets() int
}

// winStats are the per-window statistics for one hint set.
type winStats struct {
	n    uint64  // N(H): requests with this hint set this window
	nr   uint64  // Nr(H): read re-references credited to this hint set
	dsum float64 // sum of re-reference distances (D(H) = dsum/nr)
}

// WindowCounter is one hint set's raw window counters — the pre-division
// inputs of Equation 2. It is the exchange currency of cluster-wide merged
// learning: a rotation drains the window into these, a wire.SummaryEntry
// is one of them keyed by canonical string instead of local hint ID, and
// Merged.Absorb folds a peer's counters back in by summing them.
type WindowCounter struct {
	Hint hint.ID
	N    uint64
	Nr   uint64
	Dsum float64
}

// rerefAux is the auxiliary state the adapted Space-Saving algorithm keeps
// per tracked hint set (§5): read re-references and distance sum
// accumulated while the hint set was being tracked.
type rerefAux struct {
	nr   uint64
	dsum float64
}

// windowPriority computes the within-window priority estimate
// p̂r(H) = fhit(H)/D(H) = (nr/n)/(dsum/nr) = nr² / (n·dsum), Equation 2.
func windowPriority(n, nr uint64, dsum float64) float64 {
	if n == 0 || nr == 0 || dsum <= 0 {
		return 0
	}
	return float64(nr) * float64(nr) / (float64(n) * dsum)
}

// eps is the threshold below which a decayed priority is dropped from the
// table. A missing entry reads as priority 0, so pruning is invisible to
// Priority lookups; it only bounds the table's size.
const eps = 1e-12

// blend folds one window's fresh estimates into the priority table with
// decay r (Equation 3), in place: entries unseen this window decay by
// (1-r) and are pruned once negligible, seen entries become
// r·p̂ + (1-r)·old. Both learners rotate through this one function so their
// arithmetic cannot drift apart.
func blend(pr map[hint.ID]float64, fresh map[hint.ID]float64, r float64) {
	for h, old := range pr {
		if _, seen := fresh[h]; seen {
			continue
		}
		nv := (1 - r) * old
		if nv < eps {
			delete(pr, h)
			continue
		}
		pr[h] = nv
	}
	for h, phat := range fresh {
		pr[h] = r*phat + (1-r)*pr[h]
	}
}

// HintStat is an analysis snapshot of one hint set's statistics, used to
// regenerate the paper's Figure 3 scatter plot and the server's /stats
// window view.
type HintStat struct {
	Hint hint.ID
	Key  string // canonical hint-set key, filled by the caller's dictionary
	N    uint64
	Nr   uint64
	D    float64 // mean read re-reference distance (0 when Nr == 0)
	Pr   float64 // p̂r computed from this snapshot's statistics
}

// newHintStat assembles one snapshot entry from raw window counters.
func newHintStat(h hint.ID, n, nr uint64, dsum float64) HintStat {
	hs := HintStat{Hint: h, N: n, Nr: nr}
	if nr > 0 {
		hs.D = dsum / float64(nr)
	}
	hs.Pr = windowPriority(n, nr, dsum)
	return hs
}

// SortHintStats orders snapshots by descending N, ties broken by hint ID.
func SortHintStats(out []HintStat) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].N != out[j].N {
			return out[i].N > out[j].N
		}
		return out[i].Hint < out[j].Hint
	})
}

// MergeHintStats merges per-partition window snapshots into one cache-wide
// view: N and Nr sum, D is the combined mean distance, and Pr is recomputed
// from the merged numbers (Equation 2). Used by the sharded cache to
// present fully-partitioned learners as a single statistics surface.
func MergeHintStats(parts ...[]HintStat) []HintStat {
	merged := make(map[hint.ID]*winStats)
	var order []hint.ID
	for _, part := range parts {
		for _, hs := range part {
			a, ok := merged[hs.Hint]
			if !ok {
				a = &winStats{}
				merged[hs.Hint] = a
				order = append(order, hs.Hint)
			}
			a.n += hs.N
			a.nr += hs.Nr
			a.dsum += hs.D * float64(hs.Nr)
		}
	}
	out := make([]HintStat, 0, len(order))
	for _, h := range order {
		a := merged[h]
		out = append(out, newHintStat(h, a.n, a.nr, a.dsum))
	}
	SortHintStats(out)
	return out
}
