package clicstats

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/hint"
)

func TestConfigValidate(t *testing.T) {
	for _, cfg := range []Config{{Window: 0, R: 1}, {Window: 10, R: 0}, {Window: 10, R: 1.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v should panic", cfg)
				}
			}()
			NewPartitioned(cfg)
		}()
	}
}

// TestPartitionedWindowMath pins the Equation 1–3 arithmetic on a
// hand-computed stream: one window with N(A)=4, Nr(A)=2, distances 1+3.
func TestPartitionedWindowMath(t *testing.T) {
	p := NewPartitioned(Config{Window: 4, R: 0.5})
	p.Arrive(0)
	p.EndRequest()
	p.Arrive(0)
	p.Reref(0, 1)
	p.EndRequest()
	p.Arrive(0)
	p.EndRequest()
	p.Arrive(0)
	p.Reref(0, 3)
	if p.Windows() != 0 || p.Epoch() != 0 {
		t.Fatalf("rotated early: windows=%d epoch=%d", p.Windows(), p.Epoch())
	}
	ws := p.WindowStats()
	if len(ws) != 1 || ws[0].N != 4 || ws[0].Nr != 2 || math.Abs(ws[0].D-2) > 1e-12 {
		t.Fatalf("window stats = %+v", ws)
	}
	if !p.EndRequest() {
		t.Fatal("request W did not rotate")
	}
	// p̂ = nr²/(n·dsum) = 4/(4·4) = 0.25; blended with r=0.5 from 0 → 0.125.
	if got := p.Priority(0); math.Abs(got-0.125) > 1e-12 {
		t.Errorf("Priority = %v, want 0.125", got)
	}
	if p.Windows() != 1 || p.Epoch() != 1 {
		t.Errorf("windows=%d epoch=%d, want 1, 1", p.Windows(), p.Epoch())
	}
	if p.TrackedHintSets() != 0 {
		t.Errorf("stats not cleared after rotation: %d tracked", p.TrackedHintSets())
	}
	// Next window: hint 0 unseen → decays by (1-r); hint 1 appears.
	for i := 0; i < 4; i++ {
		p.Arrive(1)
		if i == 1 {
			p.Reref(1, 2)
		}
		p.EndRequest()
	}
	if got := p.Priority(0); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("decayed Priority(0) = %v, want 0.0625", got)
	}
	if got := p.Priority(1); got <= 0 {
		t.Errorf("Priority(1) = %v, want > 0", got)
	}
}

// TestDecayPrunesTable checks that entries decaying below eps vanish from
// the table (their priority reads as 0 either way; pruning bounds memory).
func TestDecayPrunesTable(t *testing.T) {
	p := NewPartitioned(Config{Window: 2, R: 1})
	p.Arrive(0)
	p.Reref(0, 1)
	p.EndRequest()
	p.Arrive(0)
	p.EndRequest() // rotation 1: Pr(0) > 0
	if p.Priority(0) <= 0 {
		t.Fatal("no priority learned")
	}
	p.Arrive(1)
	p.EndRequest()
	p.Arrive(1)
	p.EndRequest() // rotation 2: r=1 forgets hint 0 entirely
	if got := p.Priority(0); got != 0 {
		t.Errorf("Priority(0) = %v after full decay, want 0", got)
	}
	if pr := p.Priorities(); len(pr) != 1 {
		t.Errorf("table not pruned: %v", pr)
	}
}

// TestGlobalMatchesPartitionedSerial is the mode-equivalence test: driven
// single-threaded in exact mode, the Global learner must produce exactly
// the same priorities, window counts and snapshots as Partitioned at every
// epoch.
func TestGlobalMatchesPartitionedSerial(t *testing.T) {
	for _, r := range []float64{1, 0.5} {
		cfg := Config{Window: 100, R: r}
		p := NewPartitioned(cfg)
		g := NewGlobal(cfg)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 5000; i++ {
			h := hint.ID(rng.Intn(12))
			p.Arrive(h)
			g.Arrive(h)
			if rng.Intn(3) == 0 {
				rh := hint.ID(rng.Intn(12))
				d := uint64(1 + rng.Intn(80))
				p.Reref(rh, d)
				g.Reref(rh, d)
			}
			pe, ge := p.EndRequest(), g.EndRequest()
			if pe != ge {
				t.Fatalf("r=%v request %d: rotation mismatch (partitioned %v, global %v)", r, i, pe, ge)
			}
			if p.Epoch() != g.Epoch() || p.Windows() != g.Windows() {
				t.Fatalf("r=%v request %d: epoch/windows diverged", r, i)
			}
			if pe {
				pp, gp := p.Priorities(), g.Priorities()
				if len(pp) != len(gp) {
					t.Fatalf("r=%v epoch %d: table sizes %d vs %d", r, p.Epoch(), len(pp), len(gp))
				}
				for h, v := range pp {
					if gv, ok := gp[h]; !ok || gv != v {
						t.Fatalf("r=%v epoch %d hint %d: partitioned %v, global %v", r, p.Epoch(), h, v, gp[h])
					}
				}
			}
		}
		pws, gws := p.WindowStats(), g.WindowStats()
		if len(pws) != len(gws) {
			t.Fatalf("r=%v: window stats lengths %d vs %d", r, len(pws), len(gws))
		}
		for i := range pws {
			if pws[i] != gws[i] {
				t.Fatalf("r=%v: window stat %d: %+v vs %+v", r, i, pws[i], gws[i])
			}
		}
	}
}

// TestGlobalConcurrent hammers one Global learner from several goroutines;
// under -race this exercises the stripe locks and the table republishing.
// Totals are exact: every arrival lands in exactly one window, so the sum
// of current-window N plus W per completed window equals the request count.
func TestGlobalConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 20000
		window  = 1000
	)
	g := NewGlobal(Config{Window: window, R: 0.5, Stripes: 4})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				h := hint.ID(rng.Intn(32))
				g.Arrive(h)
				if i%4 == 0 {
					g.Reref(h, uint64(1+rng.Intn(9)))
				}
				g.EndRequest()
			}
		}(w)
	}
	wg.Wait()
	if want := workers * perW / window; g.Windows() != want {
		t.Errorf("Windows = %d, want %d", g.Windows(), want)
	}
	if g.Epoch() != uint64(g.Windows()) {
		t.Errorf("Epoch = %d, want %d", g.Epoch(), g.Windows())
	}
	var n uint64
	for _, hs := range g.WindowStats() {
		n += hs.N
	}
	if total := n + uint64(g.Windows()*window); total != workers*perW {
		t.Errorf("arrivals accounted = %d, want %d", total, workers*perW)
	}
	if len(g.Priorities()) == 0 {
		t.Error("no priorities learned from a re-referencing stream")
	}
}

// TestGlobalTopKStripeClamp: a small top-k budget must not be spread so
// thin across the default stripe count that per-stripe Space-Saving
// degenerates (one counter per stripe recycles on almost every Touch).
func TestGlobalTopKStripeClamp(t *testing.T) {
	for _, tc := range []struct {
		topk, stripes, want int
	}{
		{20, 0, 2},   // default 16 stripes would leave 1–2 counters each
		{200, 0, 16}, // big budgets keep full stripe parallelism
		{4, 0, 1},    // tiny budgets serialize entirely
		{64, 4, 4},   // explicit stripe counts survive when affordable
	} {
		g := NewGlobal(Config{Window: 1000, R: 1, TopK: tc.topk, Stripes: tc.stripes})
		if got := g.Stripes(); got != tc.want {
			t.Errorf("TopK=%d Stripes=%d: got %d stripes, want %d", tc.topk, tc.stripes, got, tc.want)
		}
	}
	// With the clamp, a skewed stream over a small budget still learns the
	// frequent hints (this configuration degenerated to zero priorities
	// when 16 stripes each held a single counter).
	g := NewGlobal(Config{Window: 2000, R: 1, TopK: 20})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 6000; i++ {
		h := hint.ID(rng.Intn(2))
		if rng.Intn(5) == 0 {
			h = hint.ID(2 + rng.Intn(30))
		}
		g.Arrive(h)
		if h < 2 && rng.Intn(2) == 0 {
			g.Reref(h, uint64(1+rng.Intn(5)))
		}
		g.EndRequest()
	}
	pr := g.Priorities()
	if pr[0] <= 0 || pr[1] <= 0 {
		t.Errorf("frequent hints have priorities %v, %v under a clamped small budget; want > 0", pr[0], pr[1])
	}
}

// TestGlobalTopK checks the striped top-k mode end to end: tracking stays
// within budget and frequent hint sets earn nonzero priorities.
func TestGlobalTopK(t *testing.T) {
	g := NewGlobal(Config{Window: 2000, R: 1, TopK: 16, Stripes: 2})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 6000; i++ {
		// Hints 0–1 dominate with quick re-references; 2–31 are noise.
		h := hint.ID(rng.Intn(2))
		if rng.Intn(5) == 0 {
			h = hint.ID(2 + rng.Intn(30))
		}
		g.Arrive(h)
		if h < 2 && rng.Intn(2) == 0 {
			g.Reref(h, uint64(1+rng.Intn(5)))
		}
		g.EndRequest()
	}
	if got := g.TrackedHintSets(); got > 16 {
		t.Errorf("TrackedHintSets = %d, want <= 16", got)
	}
	pr := g.Priorities()
	if pr[0] <= 0 || pr[1] <= 0 {
		t.Errorf("frequent hints have priorities %v, %v; want > 0", pr[0], pr[1])
	}
	if ws := g.WindowStats(); len(ws) > 16 {
		t.Errorf("WindowStats has %d entries, want <= 16", len(ws))
	}
}

// TestMergeHintStats checks the cross-partition merge arithmetic.
func TestMergeHintStats(t *testing.T) {
	a := []HintStat{newHintStat(1, 10, 2, 6), newHintStat(2, 5, 0, 0)}
	b := []HintStat{newHintStat(1, 20, 2, 10)}
	m := MergeHintStats(a, b)
	if len(m) != 2 {
		t.Fatalf("merged %d entries, want 2", len(m))
	}
	// Sorted by N desc: hint 1 first with N=30, Nr=4, dsum=16 → D=4.
	if m[0].Hint != 1 || m[0].N != 30 || m[0].Nr != 4 || math.Abs(m[0].D-4) > 1e-12 {
		t.Errorf("merged[0] = %+v", m[0])
	}
	if want := windowPriority(30, 4, 16); m[0].Pr != want {
		t.Errorf("merged Pr = %v, want %v", m[0].Pr, want)
	}
	if m[1].Hint != 2 || m[1].N != 5 {
		t.Errorf("merged[1] = %+v", m[1])
	}
}

func BenchmarkPartitionedArrive(b *testing.B) {
	p := NewPartitioned(Config{Window: 100000, R: 1})
	for i := 0; i < b.N; i++ {
		p.Arrive(hint.ID(i % 64))
		p.EndRequest()
	}
}

func BenchmarkGlobalArrive(b *testing.B) {
	g := NewGlobal(Config{Window: 100000, R: 1})
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			g.Arrive(hint.ID(i % 64))
			g.EndRequest()
			i++
		}
	})
}
