package clicstats

import (
	"repro/internal/hint"
	"repro/internal/spacesaving"
)

// Partitioned is the single-owner learner: the statistics machinery the
// paper describes for one cache, verbatim. It is not safe for concurrent
// use — exactly like the cache that owns it. A sharded cache running in
// partitioned-learning mode gives each shard its own Partitioned learner
// over a scaled W/N window, so each shard learns only from its own request
// subsequence.
type Partitioned struct {
	cfg Config

	// pr holds the priorities in effect during the current window,
	// computed at the last window boundary (Equation 3).
	pr map[hint.ID]float64

	// Exact per-window statistics (TopK == 0).
	stats map[hint.ID]*winStats
	// Bounded per-window statistics (TopK > 0, §5).
	topk *spacesaving.Summary[hint.ID, rerefAux]

	sinceRotate int
	windows     int
	epoch       uint64
}

var _ Learner = (*Partitioned)(nil)

// NewPartitioned returns a single-owner learner for the configuration.
func NewPartitioned(cfg Config) *Partitioned {
	cfg.validate()
	p := &Partitioned{cfg: cfg, pr: make(map[hint.ID]float64)}
	if cfg.TopK > 0 {
		p.topk = spacesaving.New[hint.ID, rerefAux](cfg.TopK)
	} else {
		p.stats = make(map[hint.ID]*winStats)
	}
	return p
}

// Arrive implements Learner.
func (p *Partitioned) Arrive(h hint.ID) {
	if p.topk != nil {
		p.topk.Touch(h)
		return
	}
	st, ok := p.stats[h]
	if !ok {
		st = &winStats{}
		p.stats[h] = st
	}
	st.n++
}

// Reref implements Learner.
func (p *Partitioned) Reref(h hint.ID, dist uint64) {
	if p.topk != nil {
		if ctr, ok := p.topk.Get(h); ok {
			ctr.Val.nr++
			ctr.Val.dsum += float64(dist)
		}
		return
	}
	st, ok := p.stats[h]
	if !ok {
		// The prior request that established the record may have arrived in
		// an earlier window; stats were cleared since. Start a fresh entry
		// so the re-reference still informs this window's priorities.
		st = &winStats{}
		p.stats[h] = st
	}
	st.nr++
	st.dsum += float64(dist)
}

// EndRequest implements Learner: it counts the request against the window
// and rotates at the boundary (§3.2).
func (p *Partitioned) EndRequest() bool {
	p.sinceRotate++
	if p.sinceRotate < p.cfg.Window {
		return false
	}
	blend(p.pr, p.windowEstimates(), p.cfg.R)
	if p.topk != nil {
		p.topk.Reset()
	} else {
		p.stats = make(map[hint.ID]*winStats, len(p.stats))
	}
	p.sinceRotate = 0
	p.windows++
	p.epoch++
	return true
}

// windowEstimates returns p̂r for every hint set with statistics in the
// current window.
func (p *Partitioned) windowEstimates() map[hint.ID]float64 {
	if p.topk != nil {
		out := make(map[hint.ID]float64, p.topk.Len())
		for _, ctr := range p.topk.Counters() {
			// §5: N(H) is the frequency estimate minus the error bound.
			out[ctr.Key] = windowPriority(ctr.Count-ctr.Err, ctr.Val.nr, ctr.Val.dsum)
		}
		return out
	}
	out := make(map[hint.ID]float64, len(p.stats))
	for h, st := range p.stats {
		out[h] = windowPriority(st.n, st.nr, st.dsum)
	}
	return out
}

// Priority implements Learner.
func (p *Partitioned) Priority(h hint.ID) float64 { return p.pr[h] }

// Epoch implements Learner.
func (p *Partitioned) Epoch() uint64 { return p.epoch }

// Windows implements Learner.
func (p *Partitioned) Windows() int { return p.windows }

// Priorities implements Learner.
func (p *Partitioned) Priorities() map[hint.ID]float64 {
	out := make(map[hint.ID]float64, len(p.pr))
	for h, pr := range p.pr {
		out[h] = pr
	}
	return out
}

// WindowStats implements Learner.
func (p *Partitioned) WindowStats() []HintStat {
	var out []HintStat
	if p.topk != nil {
		for _, ctr := range p.topk.Counters() {
			out = append(out, newHintStat(ctr.Key, ctr.Count-ctr.Err, ctr.Val.nr, ctr.Val.dsum))
		}
	} else {
		for h, st := range p.stats {
			out = append(out, newHintStat(h, st.n, st.nr, st.dsum))
		}
	}
	SortHintStats(out)
	return out
}

// TrackedHintSets implements Learner.
func (p *Partitioned) TrackedHintSets() int {
	if p.topk != nil {
		return p.topk.Len()
	}
	return len(p.stats)
}
