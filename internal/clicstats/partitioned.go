package clicstats

import (
	"repro/internal/hint"
	"repro/internal/spacesaving"
)

// Partitioned is the single-owner learner: the statistics machinery the
// paper describes for one cache, verbatim. It is not safe for concurrent
// use — exactly like the cache that owns it. A sharded cache running in
// partitioned-learning mode gives each shard its own Partitioned learner
// over a scaled W/N window, so each shard learns only from its own request
// subsequence.
//
// The learner's whole steady state is allocation-free: exact-mode window
// statistics live in a flat table indexed by hint ID (IDs are interned
// densely) with a touched-list so rotation visits only the hint sets seen
// this window, the top-k summary recycles its counters and buckets, and
// the window-boundary blend reuses one scratch estimates map.
type Partitioned struct {
	cfg Config

	// pr holds the priorities in effect during the current window,
	// computed at the last window boundary (Equation 3).
	pr map[hint.ID]float64

	// Exact per-window statistics (TopK == 0): stats is indexed by hint
	// ID, touched lists the IDs with nonzero statistics this window.
	stats   []winStats
	touched []hint.ID
	// Bounded per-window statistics (TopK > 0, §5).
	topk *spacesaving.Summary[hint.ID, rerefAux]

	// fresh is the scratch estimates map handed to blend at each window
	// boundary, cleared (not reallocated) after use.
	fresh map[hint.ID]float64

	sinceRotate int
	windows     int
	epoch       uint64
}

var _ Learner = (*Partitioned)(nil)

// NewPartitioned returns a single-owner learner for the configuration.
func NewPartitioned(cfg Config) *Partitioned {
	cfg.validate()
	p := &Partitioned{
		cfg:   cfg,
		pr:    make(map[hint.ID]float64),
		fresh: make(map[hint.ID]float64),
	}
	if cfg.TopK > 0 {
		p.topk = spacesaving.New[hint.ID, rerefAux](cfg.TopK)
	}
	return p
}

// stat returns the window statistics slot for a hint set, growing the flat
// table when a new ID appears (vocabulary growth only — not steady state)
// and recording first touches of the window.
func (p *Partitioned) stat(h hint.ID) *winStats {
	for int(h) >= len(p.stats) {
		p.stats = append(p.stats, winStats{})
	}
	st := &p.stats[h]
	if st.n == 0 && st.nr == 0 {
		p.touched = append(p.touched, h)
	}
	return st
}

// Arrive implements Learner.
func (p *Partitioned) Arrive(h hint.ID) {
	if p.topk != nil {
		p.topk.Touch(h)
		return
	}
	p.stat(h).n++
}

// Reref implements Learner.
func (p *Partitioned) Reref(h hint.ID, dist uint64) {
	if p.topk != nil {
		if ctr, ok := p.topk.Get(h); ok {
			ctr.Val.nr++
			ctr.Val.dsum += float64(dist)
		}
		return
	}
	// The prior request that established the record may have arrived in an
	// earlier window; stats were cleared since. stat starts a fresh entry
	// so the re-reference still informs this window's priorities.
	st := p.stat(h)
	st.nr++
	st.dsum += float64(dist)
}

// EndRequest implements Learner: it counts the request against the window
// and rotates at the boundary (§3.2).
func (p *Partitioned) EndRequest() bool {
	p.sinceRotate++
	if p.sinceRotate < p.cfg.Window {
		return false
	}
	p.fillEstimates()
	blend(p.pr, p.fresh, p.cfg.R)
	clear(p.fresh)
	if p.topk != nil {
		p.topk.Reset()
	} else {
		for _, h := range p.touched {
			p.stats[h] = winStats{}
		}
		p.touched = p.touched[:0]
	}
	p.sinceRotate = 0
	p.windows++
	p.epoch++
	return true
}

// fillEstimates computes p̂r for every hint set with statistics in the
// current window into the scratch map.
func (p *Partitioned) fillEstimates() {
	if p.topk != nil {
		p.topk.Range(func(ctr *spacesaving.Counter[hint.ID, rerefAux]) {
			// §5: N(H) is the frequency estimate minus the error bound.
			p.fresh[ctr.Key] = windowPriority(ctr.Count-ctr.Err, ctr.Val.nr, ctr.Val.dsum)
		})
		return
	}
	for _, h := range p.touched {
		st := &p.stats[h]
		p.fresh[h] = windowPriority(st.n, st.nr, st.dsum)
	}
}

// Priority implements Learner.
func (p *Partitioned) Priority(h hint.ID) float64 { return p.pr[h] }

// Epoch implements Learner.
func (p *Partitioned) Epoch() uint64 { return p.epoch }

// Windows implements Learner.
func (p *Partitioned) Windows() int { return p.windows }

// Priorities implements Learner.
func (p *Partitioned) Priorities() map[hint.ID]float64 {
	out := make(map[hint.ID]float64, len(p.pr))
	for h, pr := range p.pr {
		out[h] = pr
	}
	return out
}

// WindowStats implements Learner.
func (p *Partitioned) WindowStats() []HintStat {
	var out []HintStat
	if p.topk != nil {
		for _, ctr := range p.topk.Counters() {
			out = append(out, newHintStat(ctr.Key, ctr.Count-ctr.Err, ctr.Val.nr, ctr.Val.dsum))
		}
	} else {
		for _, h := range p.touched {
			st := &p.stats[h]
			out = append(out, newHintStat(h, st.n, st.nr, st.dsum))
		}
	}
	SortHintStats(out)
	return out
}

// TrackedHintSets implements Learner.
func (p *Partitioned) TrackedHintSets() int {
	if p.topk != nil {
		return p.topk.Len()
	}
	return len(p.touched)
}
