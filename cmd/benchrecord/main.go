// Command benchrecord runs the core cache benchmarks and records the
// results as JSON, so the performance trajectory of the repository is
// visible per commit instead of living only in scrollback.
//
// It shells out to `go test -run ^$ -bench <pattern> -benchmem`, parses
// the standard benchmark output format, and writes one JSON document with
// ns/op, allocs/op, B/op and every custom metric the benchmarks report
// (reqs/s, hit_%). The committed snapshot lives at BENCH_core.json; CI
// regenerates it with a short -benchtime as a smoke check and uploads the
// result as an artifact.
//
// Usage:
//
//	go run ./cmd/benchrecord [-suite core|cluster|gen|net] [-bench regexp] [-benchtime 1s] [-o FILE]
//	go run ./cmd/benchrecord -check BENCH_core.json                  # assert nonzero reqs/s
//	go run ./cmd/benchrecord -suite cluster -check BENCH_cluster.json
//
// -suite selects a preset: "core" (the default) runs the engine and
// serving benchmarks into BENCH_core.json; "cluster" runs the
// distributed-front benchmarks (BenchmarkCluster*: the whole stream into
// one loopback node versus routed across a 3-node merging cluster) into
// BENCH_cluster.json; "gen" runs the streaming trace-pipeline benchmarks
// (BenchmarkGen*: generation, v2 encoding, scanning, the streaming
// transforms, plus the streaming serve) into BENCH_gen.json, including the
// encoder's bytes/s; "net" runs the pipelined-wire benchmarks
// (BenchmarkNet*: the loopback replay lock-step at in-flight depth 1
// versus pipelined, with batch round-trip p50/p99) into BENCH_net.json.
// -bench and -o override the preset's regexp and output file.
//
// With -check, no benchmarks run: the named file is loaded and benchrecord
// exits nonzero unless the suite's required benchmarks are present and
// every recorded benchmark of the suite's family shows nonzero throughput
// — the CI assertion that the measured paths actually moved requests. The
// net suite additionally asserts the pipelined replay did not regress
// below the lock-step depth-1 baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurements. Metrics not reported by the
// benchmark are zero.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	ReqsPerSec float64 `json:"reqs_per_s,omitempty"`
	BytesSec   float64 `json:"bytes_per_s,omitempty"`
	HitPercent float64 `json:"hit_pct,omitempty"`
	RttP50Us   float64 `json:"rtt_p50_us,omitempty"`
	RttP99Us   float64 `json:"rtt_p99_us,omitempty"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsOp   float64 `json:"allocs_per_op"`
}

// Record is the document written to BENCH_core.json.
type Record struct {
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchtime  string   `json:"benchtime"`
	RecordedAt string   `json:"recorded_at"`
	Results    []Result `json:"results"`
}

// suite is one benchmark preset: what to run, where to record it, and
// what -check demands of the record.
type suite struct {
	bench    string                        // go test -bench regexp
	out      string                        // default output file
	family   string                        // name substring whose results must show nonzero reqs/s
	required []string                      // benchmarks that must be present
	verify   func(map[string]Result) error // extra suite-specific -check assertions
}

var suites = map[string]suite{
	"core": {
		bench:  "Sharded|ServeClients|ServeLoopback",
		out:    "BENCH_core.json",
		family: "Sharded",
		required: []string{
			"BenchmarkShardedPartitioned", "BenchmarkShardedSingleOwner", "BenchmarkShardedInstrumented",
		},
	},
	"cluster": {
		bench:  "^BenchmarkCluster",
		out:    "BENCH_cluster.json",
		family: "Cluster",
		required: []string{
			"BenchmarkClusterDirectLoopback", "BenchmarkClusterRouterLoopback",
		},
	},
	"gen": {
		bench:  "^BenchmarkGen|^BenchmarkServeIterator$",
		out:    "BENCH_gen.json",
		family: "Gen",
		required: []string{
			"BenchmarkGenSerial", "BenchmarkGenParallel", "BenchmarkGenEncode",
			"BenchmarkGenScan", "BenchmarkGenPipeline",
		},
	},
	"net": {
		bench:  "^BenchmarkNet",
		out:    "BENCH_net.json",
		family: "Net",
		required: []string{
			"BenchmarkNetDepth1", "BenchmarkNetPipelined",
		},
		verify: func(rs map[string]Result) error {
			d1, pl := rs["BenchmarkNetDepth1"], rs["BenchmarkNetPipelined"]
			if pl.ReqsPerSec < d1.ReqsPerSec {
				return fmt.Errorf("pipelined replay (%.0f reqs/s) is slower than the depth-1 baseline (%.0f reqs/s)",
					pl.ReqsPerSec, d1.ReqsPerSec)
			}
			for _, n := range []string{"BenchmarkNetDepth1", "BenchmarkNetPipelined"} {
				if r := rs[n]; r.RttP99Us <= 0 || r.RttP99Us < r.RttP50Us {
					return fmt.Errorf("%s recorded batch RTT p50=%.1fus p99=%.1fus, want 0 < p50 <= p99", n, r.RttP50Us, r.RttP99Us)
				}
			}
			return nil
		},
	},
}

func main() {
	suiteName := flag.String("suite", "core", "benchmark preset: core|cluster|gen|net")
	bench := flag.String("bench", "", "benchmark name regexp passed to go test -bench (default: the suite's)")
	benchtime := flag.String("benchtime", "1s", "passed to go test -benchtime")
	out := flag.String("o", "", "output file (default: the suite's)")
	check := flag.String("check", "", "check an existing record for nonzero throughput instead of benchmarking")
	flag.Parse()

	s, ok := suites[*suiteName]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchrecord: unknown suite %q (want core, cluster, gen or net)\n", *suiteName)
		os.Exit(1)
	}
	if *bench == "" {
		*bench = s.bench
	}
	if *out == "" {
		*out = s.out
	}

	if *check != "" {
		if err := checkRecord(*check, s); err != nil {
			fmt.Fprintln(os.Stderr, "benchrecord:", err)
			os.Exit(1)
		}
		fmt.Printf("benchrecord: all %s benchmarks show nonzero throughput\n", *suiteName)
		return
	}

	rec, err := run(*bench, *benchtime)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		os.Exit(1)
	}
	fmt.Printf("benchrecord: wrote %d results to %s\n", len(rec.Results), *out)
}

// run executes the benchmarks and parses their output.
func run(bench, benchtime string) (*Record, error) {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench,
		"-benchmem", "-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, outBytes)
	}
	rec := &Record{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  benchtime,
		RecordedAt: time.Now().UTC().Format(time.RFC3339),
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		if r, ok := parseLine(line); ok {
			rec.Results = append(rec.Results, r)
		}
	}
	if len(rec.Results) == 0 {
		return nil, fmt.Errorf("no benchmark results matched %q", bench)
	}
	sort.Slice(rec.Results, func(i, j int) bool { return rec.Results[i].Name < rec.Results[j].Name })
	return rec, nil
}

// parseLine parses one line of standard `go test -bench` output:
//
//	BenchmarkName-4   12   98765432 ns/op   3.2e+06 reqs/s   52.1 hit_%   0 B/op   0 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i] // strip the -GOMAXPROCS suffix
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "reqs/s":
			r.ReqsPerSec = v
		case "bytes/s":
			r.BytesSec = v
		case "hit_%", "hit-%":
			r.HitPercent = v
		case "p50_us":
			r.RttP50Us = v
		case "p99_us":
			r.RttP99Us = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
		}
	}
	return r, true
}

// checkRecord loads a record and verifies every benchmark of the suite's
// family recorded nonzero throughput and that the suite's required
// benchmarks are all present (for core: both engine modes plus the
// instrumented run; for cluster: the direct baseline and the routed
// cluster).
func checkRecord(path string, s suite) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	seen := map[string]Result{}
	for _, r := range rec.Results {
		seen[r.Name] = r
		if strings.Contains(r.Name, s.family) && r.ReqsPerSec <= 0 {
			return fmt.Errorf("%s recorded %v reqs/s, want > 0", r.Name, r.ReqsPerSec)
		}
	}
	for _, want := range s.required {
		if _, ok := seen[want]; !ok {
			return fmt.Errorf("record is missing %s (the suite's required benchmarks must all be measured)", want)
		}
	}
	if s.verify != nil {
		if err := s.verify(seen); err != nil {
			return err
		}
	}
	return nil
}
