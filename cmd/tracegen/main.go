// Command tracegen generates the paper's workload traces (Figure 5) and
// writes them as binary trace files.
//
// Usage:
//
//	tracegen -out traces/                    # generate all eight presets
//	tracegen -trace DB2_C60 -out traces/     # generate one preset
//	tracegen -trace DB2_C60 -requests 500000 -text -out traces/
//
// Preset names: DB2_C60, DB2_C300, DB2_C540, DB2_H80, DB2_H400, DB2_H720,
// MY_H65, MY_H98.
//
// Paper-scale traces stream: -stream generates straight into the v2
// block-framed format without ever materialising the trace, so memory
// stays bounded at any request count. The workload is a generator spec —
// PRESET[*clients][:requests][@seed] — so one flag names a multi-client
// interleaved workload:
//
//	tracegen -stream -spec DB2_C60*8:100000000 -o traces/big.trc
//	tracegen -stream -spec DB2_C60:10000000 -o big.trc -progress -verify
//
// -workers sets the parallel block encoders (0 = all cores; the output
// bytes are identical at any setting), -progress reports throughput every
// million requests, and -verify re-scans the written file end to end,
// checking the block checksums and the trailer counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", "traces", "output directory")
		name     = flag.String("trace", "", "preset name (empty = all presets)")
		requests = flag.Int("requests", 0, "override the preset's request count")
		seed     = flag.Int64("seed", 0, "override the preset's seed")
		text     = flag.Bool("text", false, "also write a human-readable .txt trace")
		stream   = flag.Bool("stream", false, "stream to the v2 format in bounded memory (requires -spec or -trace)")
		spec     = flag.String("spec", "", "-stream: generator spec PRESET[*clients][:requests][@seed]")
		outFile  = flag.String("o", "", "-stream: output file (default <out>/<spec name>.trc)")
		workers  = flag.Int("workers", 0, "-stream: parallel block encoders (0 = all cores)")
		progress = flag.Bool("progress", false, "-stream: report throughput every 1M requests")
		verifyF  = flag.Bool("verify", false, "-stream: re-scan the written file and check its integrity")
	)
	flag.Parse()

	if *stream || *spec != "" {
		streamGen(*spec, *name, *requests, *seed, *out, *outFile, *workers, *progress, *verifyF)
		return
	}

	presets := workload.Presets()
	if *name != "" {
		p, err := workload.PresetByName(*name)
		if err != nil {
			fatal(err)
		}
		presets = []workload.Preset{p}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, p := range presets {
		if *requests > 0 {
			p.Requests = *requests
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		fmt.Printf("generating %-10s (%s, %d requests)... ", p.Name, p.Kind, p.Requests)
		t, err := workload.Generate(p)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, p.Name+".trc")
		if err := trace.Save(path, t); err != nil {
			fatal(err)
		}
		s := t.Stats()
		fmt.Printf("done: %d reads, %d writes, %d hint sets, %d pages -> %s\n",
			s.Reads, s.Writes, s.DistinctHints, s.DistinctPages, path)
		if *text {
			tp := filepath.Join(*out, p.Name+".txt")
			f, err := os.Create(tp)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteText(f, t); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("  text copy -> %s\n", tp)
		}
	}
}

// streamGen generates a spec straight into a v2 trace file: generator
// goroutines feed the parallel block encoder through bounded pipes, so the
// resident set stays flat no matter how many requests are asked for.
func streamGen(specStr, presetName string, requests int, seed int64, outDir, outFile string, workers int, progress, verify bool) {
	if specStr == "" {
		if presetName == "" {
			fatal(fmt.Errorf("-stream needs -spec (or -trace) to name the workload"))
		}
		specStr = presetName
	}
	s, err := workload.ParseSpec(specStr)
	if err != nil {
		fatal(err)
	}
	if requests > 0 {
		s.Preset.Requests = requests
	}
	if seed != 0 {
		s.Preset.Seed = seed
	}
	path := outFile
	if path == "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			fatal(err)
		}
		path = filepath.Join(outDir, s.Preset.Name+".trc")
	}
	w, err := trace.Create(path, s.Preset.Name, s.Preset.PageSize, s.ClientNames(),
		trace.WriterOptions{Workers: workers})
	if err != nil {
		fatal(err)
	}
	var sink trace.Sink = w
	start := time.Now()
	if progress {
		sink = &progressSink{Sink: w, start: start}
	}
	fmt.Printf("streaming %s (%d clients, %d requests) -> %s\n",
		s.String(), s.Clients, s.Preset.Requests, path)
	if err := s.GenerateTo(sink); err != nil {
		w.Close()
		fatal(err)
	}
	if err := w.Close(); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	fi, err := os.Stat(path)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("done: %s requests, %s bytes in %.1fs (%.2fM req/s, %.1f MB/s)\n",
		report.Num(s.Preset.Requests), report.Num(fi.Size()), elapsed.Seconds(),
		float64(s.Preset.Requests)/elapsed.Seconds()/1e6,
		float64(fi.Size())/elapsed.Seconds()/1e6)
	// The bounded-memory claim, measured: the kernel's high-water mark for
	// this process (Linux only; silently absent elsewhere). CI asserts on
	// this line when streaming at paper scale.
	if kb := peakRSSKB(); kb > 0 {
		fmt.Printf("peak rss: %d KB\n", kb)
	}
	if verify {
		verifyFile(path, uint64(s.Preset.Requests))
	}
}

// verifyFile re-reads the whole file through the scanner, which checks the
// per-block CRCs and the trailer's request and dictionary counts, and
// cross-checks the scanned request count against the expected one.
func verifyFile(path string, want uint64) {
	start := time.Now()
	it, err := trace.Open(path)
	if err != nil {
		fatal(fmt.Errorf("verify: %w", err))
	}
	defer it.Close()
	var n uint64
	for it.Scan() {
		n++
	}
	if err := it.Err(); err != nil {
		fatal(fmt.Errorf("verify: %w", err))
	}
	if n != want {
		fatal(fmt.Errorf("verify: scanned %d requests, wrote %d", n, want))
	}
	fmt.Printf("verify: OK — %s requests, %d hint sets, %d clients (%.1fs)\n",
		report.Num(n), it.HintDict().Len(), len(it.Clients()), time.Since(start).Seconds())
}

// progressSink wraps the writer with a once-per-million-requests
// throughput report on stderr.
type progressSink struct {
	trace.Sink
	n     uint64
	start time.Time
}

func (p *progressSink) AppendReq(r trace.Request) {
	p.Sink.AppendReq(r)
	p.n++
	if p.n%1_000_000 == 0 {
		el := time.Since(p.start).Seconds()
		fmt.Fprintf(os.Stderr, "  %4dM requests, %.2fM req/s\n", p.n/1_000_000, float64(p.n)/el/1e6)
	}
}

// peakRSSKB reads the process's peak resident set size (VmHWM) from
// /proc/self/status. Returns 0 where that interface doesn't exist.
func peakRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			v, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			if err != nil {
				return 0
			}
			return v
		}
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
