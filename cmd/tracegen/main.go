// Command tracegen generates the paper's workload traces (Figure 5) and
// writes them as binary trace files.
//
// Usage:
//
//	tracegen -out traces/                    # generate all eight presets
//	tracegen -trace DB2_C60 -out traces/     # generate one preset
//	tracegen -trace DB2_C60 -requests 500000 -text -out traces/
//
// Preset names: DB2_C60, DB2_C300, DB2_C540, DB2_H80, DB2_H400, DB2_H720,
// MY_H65, MY_H98.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		out      = flag.String("out", "traces", "output directory")
		name     = flag.String("trace", "", "preset name (empty = all presets)")
		requests = flag.Int("requests", 0, "override the preset's request count")
		seed     = flag.Int64("seed", 0, "override the preset's seed")
		text     = flag.Bool("text", false, "also write a human-readable .txt trace")
	)
	flag.Parse()

	presets := workload.Presets()
	if *name != "" {
		p, err := workload.PresetByName(*name)
		if err != nil {
			fatal(err)
		}
		presets = []workload.Preset{p}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, p := range presets {
		if *requests > 0 {
			p.Requests = *requests
		}
		if *seed != 0 {
			p.Seed = *seed
		}
		fmt.Printf("generating %-10s (%s, %d requests)... ", p.Name, p.Kind, p.Requests)
		t, err := workload.Generate(p)
		if err != nil {
			fatal(err)
		}
		path := filepath.Join(*out, p.Name+".trc")
		if err := trace.Save(path, t); err != nil {
			fatal(err)
		}
		s := t.Stats()
		fmt.Printf("done: %d reads, %d writes, %d hint sets, %d pages -> %s\n",
			s.Reads, s.Writes, s.DistinctHints, s.DistinctPages, path)
		if *text {
			tp := filepath.Join(*out, p.Name+".txt")
			f, err := os.Create(tp)
			if err != nil {
				fatal(err)
			}
			if err := trace.WriteText(f, t); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("  text copy -> %s\n", tp)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
