// Command experiments regenerates every table and figure of the paper's
// evaluation section (§6), printing each as a text table and optionally
// writing the whole set as a markdown report (-md).
//
// Usage:
//
//	experiments                        # run everything at full (scaled) size
//	experiments -fig 6                 # one figure
//	experiments -scale 0.25            # quick run at a quarter of the requests
//	experiments -workers 1             # force the serial path (same numbers)
//	experiments -cache traces -md out.md
//
// Each experiment's grid of independent simulations is fanned across a
// worker pool (internal/engine); -workers bounds the pool (default: all
// cores). The traces the selected experiments replay are also generated up
// front in parallel (workload.GenerateAll). Results are identical at any
// worker count.
//
// Beyond the paper's figures, -fig learner runs the partitioned-vs-global
// statistics ablation for the sharded CLIC front (see core.Config.Stats),
// and -fig cluster runs the distributed-CLIC ablation: a single node
// against a 3-node consistent-hash cluster with and without cross-node
// merged learning, replayed through the real router over loopback TCP
// (internal/cluster).
//
// -stream SPEC|FILE bypasses the figures and serves one sharded CLIC front
// straight from a live generator spec (PRESET[*clients][:requests][@seed])
// or a trace file, in bounded memory at any request count — the
// paper-scale mode; -stream-cache and -stream-shards size the front.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		fig      = flag.String("fig", "", "comma-separated figures to run: 2,3,5,6,7,8,9,10,11,ablations,learner,cluster,extension,zoo (empty = all)")
		scale    = flag.Float64("scale", 1, "request-count scale factor for quick runs")
		cacheDir = flag.String("cache", "traces", "trace cache directory (empty = regenerate every run)")
		mdPath   = flag.String("md", "", "also write all tables as markdown to this file")
		window   = flag.Int("window", 0, "CLIC window W override")
		decay    = flag.Float64("r", 0, "CLIC decay r override")
		workers  = flag.Int("workers", 0, "parallel simulations per experiment (0 = all cores)")
		progress = flag.Bool("progress", false, "log each completed grid cell to stderr")
		stream   = flag.String("stream", "", "stream one serve over a generator spec PRESET[*clients][:requests][@seed] or a trace file instead of running figures")
		sCache   = flag.Int("stream-cache", 18000, "-stream: server cache size in pages")
		sShards  = flag.Int("stream-shards", 8, "-stream: shards of the concurrent front")
	)
	flag.Parse()

	env := experiments.NewEnv(*cacheDir)
	env.Scale = *scale
	env.Window = *window
	env.R = *decay
	env.Workers = *workers
	if *stream != "" {
		runStream(*stream, *sCache, *sShards, *window, *decay)
		return
	}
	if *progress {
		env.Progress = func(done, total int, r sim.Result) {
			fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s cache=%d hit=%.1f%%\n",
				done, total, r.Trace, r.Policy, r.CacheSize, 100*r.HitRatio())
		}
	}

	want := map[string]bool{}
	if *fig != "" {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }

	var md strings.Builder
	emit := func(tables ...*report.Table) {
		for _, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			md.WriteString(t.Markdown())
		}
	}

	type step struct {
		id     string
		traces []string // presets the step replays (prefetched in parallel)
		fn     func() ([]*report.Table, error)
	}
	one := func(fn func() (*report.Table, error)) func() ([]*report.Table, error) {
		return func() ([]*report.Table, error) {
			t, err := fn()
			if err != nil {
				return nil, err
			}
			return []*report.Table{t}, nil
		}
	}
	// Step trace lists reference the dependency variables declared next to
	// the experiment functions in internal/experiments, so the prefetch
	// cannot drift from what the functions replay.
	tpccTraces := experiments.TPCCTraceNames
	tpchTraces := experiments.TPCHTraceNames
	steps := []step{
		{"2", experiments.Fig2TraceNames, env.Fig2},
		{"3", []string{experiments.Fig3TraceName}, one(env.Fig3)},
		{"5", experiments.TraceNames, one(env.Fig5)},
		{"6", tpccTraces, env.Fig6},
		{"7", tpchTraces, env.Fig7},
		{"8", experiments.MySQLTraceNames, env.Fig8},
		{"9", append(append([]string{}, tpccTraces...), tpchTraces...), env.Fig9},
		{"10", tpccTraces, one(env.Fig10)},
		{"11", tpccTraces, one(env.Fig11)},
		{"ablations", []string{experiments.AblationTraceName}, func() ([]*report.Table, error) {
			var out []*report.Table
			for _, fn := range []func() (*report.Table, error){env.AblationR, env.AblationW, env.AblationOutqueue} {
				t, err := fn()
				if err != nil {
					return nil, err
				}
				out = append(out, t)
			}
			return out, nil
		}},
		{"learner", []string{experiments.LearnerTraceName}, one(env.AblationLearner)},
		{"cluster", []string{experiments.ClusterTraceName}, one(env.AblationCluster)},
		{"extension", tpccTraces, func() ([]*report.Table, error) {
			t, err := env.ExtensionGeneralize()
			if err != nil {
				return nil, err
			}
			return []*report.Table{t}, nil
		}},
		{"zoo", []string{experiments.AblationTraceName}, func() ([]*report.Table, error) {
			t, err := env.PolicyZoo(experiments.AblationTraceName, experiments.MidCacheSize)
			if err != nil {
				return nil, err
			}
			return []*report.Table{t}, nil
		}},
	}

	// Generate every trace the selected steps will replay up front, fanned
	// across the worker pool (simulations were already parallel; this
	// removes trace generation as the run's serial bottleneck).
	var wanted []string
	for _, s := range steps {
		if run(s.id) {
			wanted = append(wanted, s.traces...)
		}
	}
	fmt.Fprintln(os.Stderr, "== generating traces ==")
	if err := env.Prefetch(wanted, *workers); err != nil {
		fatal(err)
	}

	for _, s := range steps {
		if !run(s.id) {
			continue
		}
		fmt.Fprintf(os.Stderr, "== running experiment %s ==\n", s.id)
		tables, err := s.fn()
		if err != nil {
			fatal(err)
		}
		emit(tables...)
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(md.String()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "markdown written to %s\n", *mdPath)
	}
}

// runStream is the paper-scale escape hatch: one sharded CLIC front served
// straight from a request source — a trace file if the argument names one
// on disk, otherwise a generator spec — in bounded memory at any request
// count. The whole stream is consumed exactly once; nothing is cached.
func runStream(arg string, cacheSize, shards, window int, r float64) {
	var src trace.Source
	if _, err := os.Stat(arg); err == nil {
		src = trace.FileSource(arg)
	} else {
		spec, err := workload.ParseSpec(arg)
		if err != nil {
			fatal(fmt.Errorf("-stream %q is neither a file nor a spec: %w", arg, err))
		}
		src = spec.Source()
	}
	cfg := core.Config{Capacity: sim.ClicCapacity(cacheSize), Window: window, R: r}
	front := core.NewSharded(cfg, shards)
	defer front.Close()
	start := time.Now()
	res, err := engine.ServeSource(front, src, 0)
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	tbl := report.NewTable(fmt.Sprintf("streaming serve — %s against %s (%s requests)",
		res.Trace, res.Policy, report.Num(res.Requests)),
		"clients", "reads", "read hits", "hit ratio", "req/s")
	tbl.AddRow(report.Num(len(res.PerClient)), report.Num(res.Reads), report.Num(res.ReadHits),
		fmt.Sprintf("%.1f%%", 100*res.HitRatio()),
		fmt.Sprintf("%.2fM", float64(res.Requests)/elapsed.Seconds()/1e6))
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
