// Command clicsim simulates a storage-server cache over a trace file and
// reports the read hit ratio.
//
// Usage:
//
//	clicsim -trace traces/DB2_C60.trc -policy CLIC -cache 18000
//	clicsim -trace traces/DB2_C60.trc -policy LRU,ARC,TQ,CLIC,OPT -cache 6000,12000,18000
//	clicsim -trace traces/DB2_C60.trc -policy CLIC -cache 18000 -topk 100 -window 100000 -r 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "binary trace file (required)")
		policies  = flag.String("policy", "CLIC", "comma-separated policies: "+strings.Join(sim.PolicyNames, ","))
		caches    = flag.String("cache", "18000", "comma-separated server cache sizes in pages")
		topk      = flag.Int("topk", 0, "CLIC: track only the k most frequent hint sets (0 = all)")
		window    = flag.Int("window", 0, "CLIC: statistics window W (0 = default)")
		decay     = flag.Float64("r", 0, "CLIC: decay parameter r (0 = default 1.0)")
		noutq     = flag.Int("noutq", 0, "CLIC: outqueue entries (0 = 5 per cache page)")
		perClient = flag.Bool("per-client", false, "report per-client hit ratios")
	)
	flag.Parse()
	if *tracePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	t, err := trace.Load(*tracePath)
	if err != nil {
		fatal(err)
	}
	sizes, err := parseInts(*caches)
	if err != nil {
		fatal(err)
	}
	clicCfg := core.Config{TopK: *topk, Window: *window, R: *decay, Noutq: *noutq}

	tbl := report.NewTable(fmt.Sprintf("read hit ratio — trace %s (%s requests)",
		t.Name, report.Num(t.Len())), "policy", "cache (pages)", "read hit ratio")
	for _, polName := range strings.Split(*policies, ",") {
		polName = strings.TrimSpace(polName)
		for _, size := range sizes {
			p, err := sim.NewPolicy(polName, size, t, clicCfg)
			if err != nil {
				fatal(err)
			}
			res := sim.Run(p, t)
			tbl.AddRow(polName, report.Num(size), report.Pct(res.HitRatio()))
			if *perClient && len(res.PerClient) > 1 {
				for _, cs := range res.PerClient {
					tbl.AddRow("  "+cs.Name, "", report.Pct(cs.HitRatio()))
				}
			}
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clicsim:", err)
	os.Exit(1)
}
