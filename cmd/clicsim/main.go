// Command clicsim simulates a storage-server cache over a trace file and
// reports the read hit ratio.
//
// Usage:
//
//	clicsim -trace traces/DB2_C60.trc -policy CLIC -cache 18000
//	clicsim -trace traces/DB2_C60.trc -policy LRU,ARC,TQ,CLIC,OPT -cache 6000,12000,18000
//	clicsim -trace traces/DB2_C60.trc -policy CLIC -cache 18000 -topk 100 -window 100000 -r 1
//	clicsim -trace traces/DB2_C60.trc -policy CLIC -cache 18000 -shards 8 -concurrent
//
// The policy × cache-size grid is fanned across a worker pool
// (internal/engine); -workers bounds the pool (default: all cores) and the
// numbers are identical at any setting. -shards runs CLIC behind the
// concurrency-safe sharded front (core.Sharded); adding -concurrent drives
// it with one goroutine per trace client instead of replaying serially, and
// -stats selects where the front learns its hint statistics: "partitioned"
// (per shard, W/N windows — the default) or "global" (one shared
// lock-striped learner over the full window W). -engine picks the front's
// concurrency architecture: "mutex" (a lock per shard — the default) or
// "owner" (one goroutine owning each shard, fed request batches; requires
// -concurrent or -serve since it is a batch architecture).
//
// -cpuprofile and -memprofile write the standard pprof profiles covering
// the run.
//
// The simulator also speaks the network protocol (internal/wire):
//
//	clicsim -serve :7070 -cache 18000 -shards 8      # run a cache server
//	clicsim -connect :7070 -trace traces/DB2_C60.trc # replay over the wire
//
// -serve wraps the CLIC configuration in a TCP cache server (one-size,
// CLIC-only — cmd/clicserve is the full-featured server). -connect streams
// the trace file to a running server with one concurrent connection per
// trace client (one goroutine each) and reports per-client and total hit
// ratios measured from the server's responses; -limit caps the replayed
// request count and -batch sets the requests per wire frame. Every address
// is probed with a throwaway handshake before the replay starts, so a bad
// address or an incompatible server fails immediately with a clear error
// instead of mid-replay.
//
// -connect also takes a comma-separated address list — a cluster
// (cmd/clicserve -cluster, internal/cluster). The replay then routes every
// request to its owning node by consistent hash (one router per trace
// client). Placement is keyed by the address strings, so every client of a
// cluster should list the same addresses:
//
//	clicsim -connect :7070,:7071,:7072 -trace traces/DB2_C60.trc
//
// Everywhere a -trace file is accepted, -gen SPEC generates the workload
// live instead — SPEC is PRESET[*clients][:requests][@seed], e.g.
// DB2_C60*8:100000000 — so paper-scale runs need no trace file at all.
// Replays (-connect) and concurrent serves (-concurrent) consume the
// stream incrementally in constant memory; the serial grid path
// materialises it first (policies like OPT need the whole trace).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/netclient"
	"repro/internal/policy"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		tracePath  = flag.String("trace", "", "binary trace file (this or -gen is required)")
		genSpec    = flag.String("gen", "", "generate the workload live from a spec PRESET[*clients][:requests][@seed] instead of reading -trace")
		policies   = flag.String("policy", "CLIC", "comma-separated policies: "+strings.Join(sim.PolicyNames, ","))
		caches     = flag.String("cache", "18000", "comma-separated server cache sizes in pages")
		topk       = flag.Int("topk", 0, "CLIC: track only the k most frequent hint sets (0 = all)")
		window     = flag.Int("window", 0, "CLIC: statistics window W (0 = default)")
		decay      = flag.Float64("r", 0, "CLIC: decay parameter r (0 = default 1.0)")
		noutq      = flag.Int("noutq", 0, "CLIC: outqueue entries (0 = 5 per cache page)")
		perClient  = flag.Bool("per-client", false, "report per-client hit ratios")
		workers    = flag.Int("workers", 0, "parallel grid cells (0 = all cores)")
		shards     = flag.Int("shards", 1, "CLIC: run behind a sharded concurrent front (>1 enables)")
		stats      = flag.String("stats", "partitioned", "CLIC sharded front: statistics learning mode (partitioned|global)")
		concurrent = flag.Bool("concurrent", false, "drive the sharded CLIC front with one goroutine per client (requires -shards > 1)")
		engineFlag = flag.String("engine", "mutex", "CLIC sharded front: concurrency engine (mutex|owner)")
		serveAddr  = flag.String("serve", "", "run as a network cache server on this address instead of simulating")
		connect    = flag.String("connect", "", "replay the trace against a cache server (or a comma-separated cluster of servers) at these addresses")
		batch      = flag.Int("batch", 0, "-connect: requests per wire frame (0 = adaptive, grown toward the sweet spot)")
		depth      = flag.Int("depth", 0, "-connect: pipelined batches in flight per connection (0 = default, 1 = lock-step)")
		limit      = flag.Int("limit", 0, "-connect: replay at most this many requests (0 = all)")
		timeline   = flag.String("timeline", "", "-concurrent: write per-interval metrics rows (CSV) to this file")
		interval   = flag.Duration("metrics-interval", time.Second, "-timeline: sampling interval")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()
	statsMode, err := core.ParseStatsMode(*stats)
	if err != nil {
		fatal(err)
	}
	engineMode, err := core.ParseEngineMode(*engineFlag)
	if err != nil {
		fatal(err)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "clicsim: profile:", err)
		}
	}()
	if *serveAddr != "" {
		serve(*serveAddr, *shards, sizesOrDie(*caches),
			core.Config{TopK: *topk, Window: *window, R: *decay, Noutq: *noutq, Stats: statsMode, Engine: engineMode})
		return
	}
	if *tracePath == "" && *genSpec == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *tracePath != "" && *genSpec != "" {
		fatal(fmt.Errorf("-trace and -gen are mutually exclusive"))
	}
	src, label := source(*tracePath, *genSpec)
	if *connect != "" {
		replay(strings.Split(*connect, ","), src, label, *batch, *depth, *limit, *perClient)
		return
	}
	if *concurrent && *shards < 2 {
		fatal(fmt.Errorf("-concurrent requires -shards > 1 (a plain cache is not safe for concurrent use)"))
	}
	if engineMode == core.EngineOwner && !*concurrent {
		// A serial replay through the owner engine pays a frame round trip
		// per request — that measures nothing useful; the batch drivers
		// (-concurrent, -serve, the network server) are the owner paths.
		fatal(fmt.Errorf("-engine owner requires -concurrent (or -serve); serial replay uses the mutex engine"))
	}
	// The grid path and the timeline recorder need the whole trace; the
	// plain concurrent serve streams it instead (constant memory at any
	// trace length — a -gen spec never materialises at all).
	var t *trace.Trace
	if !*concurrent || *timeline != "" {
		it, err := src.Iter()
		if err != nil {
			fatal(err)
		}
		t, err = trace.Collect(it)
		it.Close()
		if err != nil {
			fatal(err)
		}
	}
	sizes := sizesOrDie(*caches)
	clicCfg := core.Config{TopK: *topk, Window: *window, R: *decay, Noutq: *noutq, Stats: statsMode, Engine: engineMode}

	// Build the policy × size grid as engine jobs, each with its own row
	// metadata so results and labels cannot drift apart.
	type cell struct {
		policy string
		size   int
	}
	var jobs []engine.Job
	var cells []cell
	anySharded := false
	for _, polName := range strings.Split(*policies, ",") {
		polName = strings.TrimSpace(polName)
		sharded := polName == "CLIC" && *shards > 1
		anySharded = anySharded || sharded
		if *concurrent && !sharded {
			// ServeClients drives the cache from one goroutine per client;
			// only the sharded CLIC front is safe for that.
			fatal(fmt.Errorf("-concurrent only supports CLIC behind -shards > 1; %q is not safe for concurrent use", polName))
		}
		if !sharded {
			if _, err := sim.NewPolicy(polName, 1, t, clicCfg); err != nil {
				fatal(err)
			}
		}
		for _, size := range sizes {
			var mk func() policy.Policy
			if sharded {
				cfg := clicCfg
				cfg.Capacity = sim.ClicCapacity(size)
				n := *shards
				mk = func() policy.Policy { return core.NewSharded(cfg, n) }
			} else {
				ctor := sim.Constructor(polName, t, clicCfg)
				size := size
				mk = func() policy.Policy { return ctor(size) }
			}
			jobs = append(jobs, engine.Job{New: mk, Trace: t})
			cells = append(cells, cell{policy: polName, size: size})
		}
	}
	if *shards > 1 && !anySharded {
		fatal(fmt.Errorf("-shards only applies to CLIC, which is not in -policy %q", *policies))
	}

	if *timeline != "" && (!*concurrent || len(jobs) != 1) {
		// A timeline is the time-resolved story of one cache under load; a
		// grid of cells would interleave incomparable rows in one file.
		fatal(fmt.Errorf("-timeline requires -concurrent and a single policy × cache cell (got %d cells)", len(jobs)))
	}

	var results []sim.Result
	if *concurrent {
		// Concurrent serving: every cell is one sharded front driven by all
		// clients at once; the cells themselves still run in sequence so
		// each front gets the full core budget.
		for _, j := range jobs {
			p := j.New()
			if *timeline != "" {
				results = append(results, serveTimeline(p, t, *timeline, *interval))
			} else {
				// Stream the source through the front — the request stream is
				// generated or read from disk again for each cell, and never
				// held in RAM.
				res, err := engine.ServeSource(p, src, 0)
				if err != nil {
					fatal(err)
				}
				results = append(results, res)
			}
			if s, ok := p.(*core.Sharded); ok {
				s.Close()
			}
		}
	} else {
		results = engine.Run(jobs, engine.Options{Workers: *workers})
	}

	traceName, reqCount := label, uint64(0)
	if t != nil {
		traceName, reqCount = t.Name, uint64(t.Len())
	} else if len(results) > 0 {
		traceName, reqCount = results[0].Trace, results[0].Requests
	}
	tbl := report.NewTable(fmt.Sprintf("read hit ratio — trace %s (%s requests)",
		traceName, report.Num(reqCount)), "policy", "cache (pages)", "read hit ratio")
	for i, res := range results {
		label := cells[i].policy
		if label == "CLIC" && *shards > 1 {
			label = res.Policy // e.g. CLIC/8
		}
		tbl.AddRow(label, report.Num(cells[i].size), report.Pct(res.HitRatio()))
		if *perClient && len(res.PerClient) > 1 {
			for _, cs := range res.PerClient {
				tbl.AddRow("  "+cs.Name, "", report.Pct(cs.HitRatio()))
			}
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

// serveTimeline is engine.ServeClients with a timeline recorder attached:
// the standard cache columns (engine.CacheTimeline) over a batch-latency
// histogram fed by every client goroutine, sampled every interval and on
// window rotations, with a final row when the replay drains.
func serveTimeline(p policy.Policy, t *trace.Trace, path string, interval time.Duration) sim.Result {
	s, ok := p.(*core.Sharded)
	if !ok {
		fatal(fmt.Errorf("-timeline requires the sharded CLIC front"))
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	bf := bufio.NewWriter(f)
	var lat metrics.Histogram
	tl := metrics.NewTimeline(bf)
	engine.CacheTimeline(tl, s, &lat)
	stop := tl.Start(interval, func() float64 { return float64(s.Windows()) })
	res := engine.ServeClientsMetrics(p, t, &engine.ServeMetrics{BatchLatency: &lat})
	stop()
	if err := tl.Err(); err != nil {
		fatal(fmt.Errorf("timeline: %w", err))
	}
	if err := bf.Flush(); err != nil {
		fatal(fmt.Errorf("timeline: %w", err))
	}
	if err := f.Close(); err != nil {
		fatal(fmt.Errorf("timeline: %w", err))
	}
	fmt.Fprintf(os.Stderr, "clicsim: timeline written to %s\n", path)
	return res
}

// serve runs a CLIC cache server until killed: the -serve counterpart of
// cmd/clicserve, kept here so a loopback experiment needs only one binary.
// The first -cache size is the server capacity, docked 1% like every other
// CLIC run (§6.1) so loopback numbers compare to the in-process grid.
func serve(addr string, shards int, sizes []int, cfg core.Config) {
	if shards < 1 {
		shards = 1
	}
	cfg.Capacity = sim.ClicCapacity(sizes[0])
	srv := server.New(server.Config{Cache: cfg, Shards: shards})
	if err := srv.Listen(addr); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "clicsim: %s front with %s pages serving on %s\n",
		srv.Cache().Name(), report.Num(sizes[0]), srv.Addr())
	if err := srv.Serve(); err != nil {
		fatal(err)
	}
}

// source resolves -trace/-gen into a request source plus a display label:
// a trace file streamed from disk, or a workload generated live from a
// spec — either way the replay and serve paths consume it incrementally.
func source(path, spec string) (trace.Source, string) {
	if spec != "" {
		s, err := workload.ParseSpec(spec)
		if err != nil {
			fatal(err)
		}
		return s.Source(), s.String()
	}
	return trace.FileSource(path), path
}

// replay streams the source to a cache server — or, with several
// addresses, routes it across a cluster by consistent hash — and reports
// the hit ratios the servers' responses imply. Every address is validated
// with a probe handshake before any request is replayed.
func replay(addrs []string, src trace.Source, label string, batch, depth, limit int, perClient bool) {
	for i, addr := range addrs {
		addrs[i] = strings.TrimSpace(addr)
		if addrs[i] == "" {
			fatal(fmt.Errorf("-connect: empty address in list"))
		}
		if err := netclient.Probe(addrs[i]); err != nil {
			fatal(fmt.Errorf("no usable cache server at %q: %w", addrs[i], err))
		}
	}
	var (
		res sim.Result
		err error
	)
	start := time.Now()
	if len(addrs) == 1 {
		// Single server: stream the source in constant memory.
		res, err = netclient.ReplaySource(addrs[0], src, netclient.ReplayOptions{BatchSize: batch, Depth: depth, Limit: limit})
	} else {
		// Cluster: the routers split batches by page owner and stream the
		// source in constant memory, announcing hint keys as they appear.
		nodes := make([]cluster.Node, len(addrs))
		for i, addr := range addrs {
			nodes[i] = cluster.Node{Name: addr, Addr: addr}
		}
		res, err = cluster.ReplaySource(nodes, src, cluster.ReplayOptions{BatchSize: batch, Depth: depth, Limit: limit})
	}
	elapsed := time.Since(start)
	if err != nil {
		fatal(fmt.Errorf("replaying %s: %w", label, err))
	}
	tbl := report.NewTable(fmt.Sprintf("networked replay — trace %s against %s at %s (%s requests)",
		res.Trace, res.Policy, strings.Join(addrs, ","), report.Num(res.Requests)),
		"client", "reads", "read hits", "hit ratio")
	if perClient && len(res.PerClient) > 1 {
		for _, cs := range res.PerClient {
			tbl.AddRow(cs.Name, report.Num(cs.Reads), report.Num(cs.ReadHits), report.Pct(cs.HitRatio()))
		}
	}
	tbl.AddRow("total", report.Num(res.Reads), report.Num(res.ReadHits), report.Pct(res.HitRatio()))
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
	// One machine-greppable summary line (the CI smoke test parses it,
	// and compares rate= across -depth settings).
	fmt.Printf("replay total: requests=%d reads=%d hits=%d ratio=%.4f rate=%.0f\n",
		res.Requests, res.Reads, res.ReadHits, res.HitRatio(),
		float64(res.Requests)/elapsed.Seconds())
	// Client-side latency: every Do on every connection lands in the
	// process-wide RTT histogram, so this is the whole replay's view.
	if rtt := netclient.BatchRTT().Summary(); rtt.Count > 0 {
		fmt.Printf("batch rtt: batches=%d mean_us=%.1f p50_us=%.1f p99_us=%.1f\n",
			rtt.Count, rtt.Mean/1e3, rtt.P50/1e3, rtt.P99/1e3)
	}
}

func sizesOrDie(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal(fmt.Errorf("bad size %q: %w", part, err))
		}
		out = append(out, v)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clicsim:", err)
	os.Exit(1)
}
