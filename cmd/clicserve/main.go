// Command clicserve runs the CLIC cache as a standalone network server:
// clients connect over TCP, stream page requests with hints (the wire
// protocol of internal/wire), and receive hit/miss verdicts while the
// sharded second-tier cache learns caching priorities from their hints.
//
// Usage:
//
//	clicserve -addr :7070 -cache 18000 -shards 8
//	clicserve -addr :7070 -admin :7071 -cache 18000 -topk 100 -window 100000
//	clicserve -addr :7070 -cache 18000 -shards 8 -stats global
//
// -stats selects where the sharded front learns its hint statistics:
// "partitioned" (each shard privately, over a W/N window — the default),
// "global" (all shards feed one shared lock-striped learner over the full
// window W, so the priority model is cache-wide), or "merged" (global plus
// the cluster summary exchange below). -engine selects the front's
// concurrency architecture: "mutex" (a lock per shard — the default) or
// "owner" (one goroutine owning each shard, fed request frames by the
// connection handlers). The admin /stats JSON reports both modes.
//
// Several clicserve processes form a cluster (internal/cluster): clients
// route requests across the nodes by consistent hash (clicsim -connect
// with the address list), and -cluster makes the nodes exchange window
// summaries so each node's learner approximates the cluster-wide request
// stream:
//
//	clicserve -addr :7070 -cluster -node-id node0 -peers :7071,:7072
//	clicserve -addr :7071 -cluster -node-id node1 -peers :7070,:7072
//	clicserve -addr :7072 -cluster -node-id node2 -peers :7070,:7071
//
// -cluster implies -stats merged. At every window rotation the node ships
// its window's hint counters to every -peers address (lossy gossip over
// the ordinary wire protocol — an unreachable peer costs summaries, never
// correctness) and folds the summaries it received into its own
// priorities. -node-id names this node in published summaries and the
// admin cluster accounting; -local-bias in [0,1) weights the node's own
// window estimate over the cluster-merged one. Run each node's share of
// the cluster-wide cache/window/outqueue budget (e.g. a third each for
// three nodes); the in-process harness splits them the same way.
//
// With -admin set, live statistics (the front aggregate, the per-shard
// breakdown, connection accounting, batch-latency summaries, the current
// window's per-hint-set statistics) are served as JSON at
// http://<admin>/stats, every layer's series in the Prometheus text format
// at http://<admin>/metrics, and the standard pprof handlers are mounted
// under http://<admin>/debug/pprof/. -timeline additionally streams
// per-interval CSV rows (hit ratio, throughput, outqueue depth, eviction
// and rotation counts, batch-latency quantiles) to a file, sampled every
// -metrics-interval and on window rotations. -cpuprofile/-memprofile write
// file profiles covering the serving run (finished at graceful shutdown).
// On SIGINT/SIGTERM the server drains and prints a final accounting table.
//
// Replay a trace against it with clicsim -connect (see cmd/clicsim), or
// drive it from your own client via internal/netclient.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", ":7070", "page-request listen address")
		admin      = flag.String("admin", "", "admin HTTP listen address (empty = disabled)")
		cache      = flag.Int("cache", 18000, "server cache size in pages")
		shards     = flag.Int("shards", 8, "CLIC shard count")
		topk       = flag.Int("topk", 0, "CLIC: track only the k most frequent hint sets (0 = all)")
		window     = flag.Int("window", 0, "CLIC: statistics window W (0 = default)")
		decay      = flag.Float64("r", 0, "CLIC: decay parameter r (0 = default 1.0)")
		noutq      = flag.Int("noutq", 0, "CLIC: outqueue entries (0 = 5 per cache page)")
		stats      = flag.String("stats", "partitioned", "statistics learning mode across shards (partitioned|global|merged)")
		inflight   = flag.Int("max-inflight", 0, "pipelined batches in flight per connection before backpressure (0 = default)")
		engineFlag = flag.String("engine", "mutex", "shard concurrency engine (mutex|owner)")
		clusterOn  = flag.Bool("cluster", false, "exchange window summaries with -peers (implies -stats merged)")
		peers      = flag.String("peers", "", "-cluster: comma-separated peer page-request addresses")
		nodeID     = flag.String("node-id", "", "-cluster: this node's name in published summaries (default \"node\")")
		localBias  = flag.Float64("local-bias", 0, "-cluster: weight of the node-local window estimate in [0,1)")
		timeline   = flag.String("timeline", "", "append per-interval metrics rows (CSV) to this file")
		interval   = flag.Duration("metrics-interval", time.Second, "timeline sampling interval")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file (stopped at shutdown)")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at shutdown")
	)
	flag.Parse()
	statsMode, err := core.ParseStatsMode(*stats)
	if err != nil {
		fatal(err)
	}
	engineMode, err := core.ParseEngineMode(*engineFlag)
	if err != nil {
		fatal(err)
	}
	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}

	// Cluster mode: merged statistics plus a gossip sender shipping each
	// closed window's summary to every peer.
	var gossip *cluster.Gossip
	scfg := server.Config{
		Node: *nodeID,
	}
	if *clusterOn {
		statsMode = core.StatsMerged
		var peerAddrs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerAddrs = append(peerAddrs, p)
			}
		}
		if len(peerAddrs) == 0 {
			fatal(fmt.Errorf("-cluster needs at least one -peers address"))
		}
		gossip = cluster.NewGossip(peerAddrs, 0)
		scfg.OnSummary = gossip.Publish
	} else if *peers != "" || *nodeID != "" {
		fatal(fmt.Errorf("-peers and -node-id need -cluster"))
	}

	// Dock the capacity 1% for CLIC's tracking structures (§6.1), like
	// every simulated CLIC run, so server hit ratios compare directly to
	// the in-process grid at the same -cache value.
	scfg.Cache = core.Config{Capacity: sim.ClicCapacity(*cache), TopK: *topk, Window: *window, R: *decay,
		Noutq: *noutq, Stats: statsMode, Engine: engineMode, LocalBias: *localBias}
	scfg.Shards = *shards
	scfg.MaxInflight = *inflight
	srv := server.New(scfg)
	if err := srv.Listen(*addr); err != nil {
		fatal(err)
	}
	if *admin != "" {
		if err := srv.ListenAdmin(*admin); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "clicserve: admin stats at http://%s/stats, metrics at http://%s/metrics\n",
			srv.AdminAddr(), srv.AdminAddr())
	}
	stopTimeline := func() {}
	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			fatal(err)
		}
		bf := bufio.NewWriter(f)
		stop := srv.StartTimeline(bf, *interval)
		stopTimeline = func() {
			stop()
			if err := bf.Flush(); err == nil {
				err = f.Close()
				if err != nil {
					fmt.Fprintln(os.Stderr, "clicserve: timeline:", err)
				}
			} else {
				fmt.Fprintln(os.Stderr, "clicserve: timeline:", err)
				f.Close()
			}
		}
		fmt.Fprintf(os.Stderr, "clicserve: timeline every %s to %s\n", *interval, *timeline)
	}
	fmt.Fprintf(os.Stderr, "clicserve: %s front with %s pages serving on %s\n",
		srv.Cache().Name(), report.Num(*cache), srv.Addr())
	if gossip != nil {
		fmt.Fprintf(os.Stderr, "clicserve: cluster node %q gossiping window summaries to %s\n",
			srv.Node(), *peers)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	select {
	case err := <-done:
		if err != nil {
			fatal(err)
		}
	case <-sig:
		fmt.Fprintln(os.Stderr, "clicserve: shutting down")
		if err := srv.Close(); err != nil {
			fatal(err)
		}
	}
	if gossip != nil {
		// Drain buffered summaries before reporting; the cache (and so the
		// rotation source) is already closed.
		gossip.Close()
		fmt.Fprintf(os.Stderr, "clicserve: gossip published %d summaries, dropped %d\n",
			gossip.Published(), gossip.Dropped())
	}
	// The cache and its counters survive Close, so the final timeline row
	// still reads the end-of-run state.
	stopTimeline()
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "clicserve: profile:", err)
	}

	snap := srv.Snapshot(10)
	tbl := report.NewTable(fmt.Sprintf("%s — final accounting", snap.Policy),
		"client", "reads", "read hits", "hit ratio")
	for _, c := range snap.Clients {
		ratio := 0.0
		if c.Reads > 0 {
			ratio = float64(c.ReadHits) / float64(c.Reads)
		}
		tbl.AddRow(c.Name, report.Num(int(c.Reads)), report.Num(int(c.ReadHits)), report.Pct(ratio))
	}
	tbl.AddRow("overall", report.Num(int(snap.Core.Reads)), report.Num(int(snap.Core.ReadHits)),
		report.Pct(snap.Core.HitRatio()))
	if err := tbl.Render(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "clicserve:", err)
	os.Exit(1)
}
