// Command traceinfo inspects a binary trace file: its Figure-5 summary row
// and, with -hints, its hint-type domains (Figure 2) and most frequent hint
// sets. With -windows W it streams the trace through the scanner (never
// loading it whole) and prints one row per W-request window — requests,
// reads, writes, unique pages, unique hint sets — the request-count windows
// CLIC's learner rotates on.
//
// Usage:
//
//	traceinfo traces/DB2_C60.trc
//	traceinfo -hints traces/DB2_C60.trc
//	traceinfo -windows 100000 traces/DB2_C60.trc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	hints := flag.Bool("hints", false, "also print hint domains and top hint sets")
	windows := flag.Int("windows", 0, "print per-window rows for this window size in requests (streaming)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-hints] [-windows W] trace.trc...")
		os.Exit(2)
	}
	if *windows > 0 {
		for _, path := range flag.Args() {
			if err := printWindows(path, *windows); err != nil {
				fmt.Fprintln(os.Stderr, "traceinfo:", err)
				os.Exit(1)
			}
		}
		return
	}
	for _, path := range flag.Args() {
		t, err := trace.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		s := t.Stats()
		tbl := report.NewTable("trace "+t.Name,
			"requests", "reads", "writes", "distinct hint sets", "distinct pages", "clients")
		tbl.AddRow(report.Num(s.Requests), report.Num(s.Reads), report.Num(s.Writes),
			report.Num(s.DistinctHints), report.Num(s.DistinctPages), report.Num(s.Clients))
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		if *hints {
			printHints(t)
		}
	}
}

// printWindows streams the trace through the scanner — constant memory no
// matter the trace length — and prints one summary row per window of w
// requests, plus a trailing partial-window row when the trace doesn't
// divide evenly.
func printWindows(path string, w int) error {
	sc, err := trace.Open(path)
	if err != nil {
		return err
	}
	defer sc.Close()

	tbl := report.NewTable(fmt.Sprintf("%s — windows of %s requests", sc.Name(), report.Num(w)),
		"window", "requests", "reads", "writes", "unique pages", "unique hint sets")
	var (
		idx, n, reads, writes int
		pages                 = make(map[uint64]struct{})
		hintSets              = make(map[uint32]struct{})
	)
	flush := func() {
		tbl.AddRow(fmt.Sprintf("%d", idx), report.Num(n), report.Num(reads), report.Num(writes),
			report.Num(len(pages)), report.Num(len(hintSets)))
		idx++
		n, reads, writes = 0, 0, 0
		clear(pages)
		clear(hintSets)
	}
	for sc.Scan() {
		r := sc.Request()
		n++
		if r.Op == trace.Read {
			reads++
		} else {
			writes++
		}
		pages[r.Page] = struct{}{}
		hintSets[uint32(r.Hint)] = struct{}{}
		if n == w {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if n > 0 {
		flush()
	}
	return tbl.Render(os.Stdout)
}

func printHints(t *trace.Trace) {
	domains := t.Dict.Domains()
	types := make([]string, 0, len(domains))
	for typ := range domains {
		types = append(types, typ)
	}
	sort.Strings(types)
	dt := report.NewTable("hint type domains", "hint type", "cardinality")
	for _, typ := range types {
		dt.AddRow(typ, report.Num(len(domains[typ])))
	}
	_ = dt.Render(os.Stdout)

	counts := make(map[uint32]int)
	for _, r := range t.Reqs {
		counts[r.Hint]++
	}
	type hc struct {
		id uint32
		n  int
	}
	list := make([]hc, 0, len(counts))
	for id, n := range counts {
		list = append(list, hc{id, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].id < list[j].id
	})
	top := report.NewTable("top 20 hint sets by frequency", "hint set", "requests")
	for i, e := range list {
		if i == 20 {
			break
		}
		top.AddRow(t.Dict.Key(e.id), report.Num(e.n))
	}
	_ = top.Render(os.Stdout)
}
