// Command traceinfo inspects a binary trace file: its Figure-5 summary row
// and, with -hints, its hint-type domains (Figure 2) and most frequent hint
// sets.
//
// Usage:
//
//	traceinfo traces/DB2_C60.trc
//	traceinfo -hints traces/DB2_C60.trc
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	hints := flag.Bool("hints", false, "also print hint domains and top hint sets")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: traceinfo [-hints] trace.trc...")
		os.Exit(2)
	}
	for _, path := range flag.Args() {
		t, err := trace.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		s := t.Stats()
		tbl := report.NewTable("trace "+t.Name,
			"requests", "reads", "writes", "distinct hint sets", "distinct pages", "clients")
		tbl.AddRow(report.Num(s.Requests), report.Num(s.Reads), report.Num(s.Writes),
			report.Num(s.DistinctHints), report.Num(s.DistinctPages), report.Num(s.Clients))
		if err := tbl.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "traceinfo:", err)
			os.Exit(1)
		}
		if *hints {
			printHints(t)
		}
	}
}

func printHints(t *trace.Trace) {
	domains := t.Dict.Domains()
	types := make([]string, 0, len(domains))
	for typ := range domains {
		types = append(types, typ)
	}
	sort.Strings(types)
	dt := report.NewTable("hint type domains", "hint type", "cardinality")
	for _, typ := range types {
		dt.AddRow(typ, report.Num(len(domains[typ])))
	}
	_ = dt.Render(os.Stdout)

	counts := make(map[uint32]int)
	for _, r := range t.Reqs {
		counts[r.Hint]++
	}
	type hc struct {
		id uint32
		n  int
	}
	list := make([]hc, 0, len(counts))
	for id, n := range counts {
		list = append(list, hc{id, n})
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].id < list[j].id
	})
	top := report.NewTable("top 20 hint sets by frequency", "hint set", "requests")
	for i, e := range list {
		if i == 20 {
			break
		}
		top.AddRow(t.Dict.Key(e.id), report.Num(e.n))
	}
	_ = top.Render(os.Stdout)
}
